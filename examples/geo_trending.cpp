// Geo-trending: the paper's Twitter application with weekly online
// reconfiguration on a drifting stream.
//
// A replicated source feeds (location, hashtag) tuples whose correlations
// drift week over week (trending tags move between regions, new tags appear,
// popularity shifts).  The manager reconfigures at every week boundary; the
// example prints, per week, the A->B locality and load balance, plus the
// state migration volume — the live view of Figure 11.
//
// Build & run:   ./build/examples/geo_trending
#include <cstdio>

#include "core/lar.hpp"
#include "runtime/engine.hpp"
#include "workload/twitter_like.hpp"

using namespace lar;

int main() {
  constexpr std::uint32_t kServers = 4;
  constexpr int kWeeks = 5;
  constexpr int kTuplesPerWeek = 60'000;

  const Topology topology = make_two_stage_topology(kServers);
  const Placement placement = Placement::round_robin(topology, kServers);
  runtime::Engine engine(
      topology, placement,
      [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
        if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
        return std::make_unique<runtime::CountingOperator>(op == 1 ? 0u : 1u);
      },
      {.fields_mode = FieldsRouting::kTable});
  engine.start();
  core::Manager manager(topology, placement, {});

  workload::TwitterLikeConfig config;
  config.num_locations = 100;
  config.num_hashtags = 5'000;
  config.new_keys_per_epoch = 500;
  config.seed = 42;
  workload::TwitterLikeGenerator tweets(config);

  std::printf("%-6s %-10s %-14s %-10s %-8s\n", "week", "locality",
              "load-balance", "migrated", "keys");
  runtime::EdgeMetricsSnapshot last_edge{};
  for (int week = 1; week <= kWeeks; ++week) {
    for (int i = 0; i < kTuplesPerWeek; ++i) engine.inject(tweets.next());
    engine.flush();

    const auto metrics = engine.metrics();
    const auto& edge = metrics.edges[1];  // location -> hashtag hop
    const double locality =
        static_cast<double>(edge.local - last_edge.local) /
        static_cast<double>(edge.local + edge.remote - last_edge.local -
                            last_edge.remote);
    last_edge = edge;
    const double balance = imbalance(metrics.instance_processed[2]);

    // End-of-week reconfiguration against the live engine.
    const core::ReconfigurationPlan plan = engine.reconfigure(manager);
    std::printf("%-6d %-10.3f %-14.3f %-10zu %-8zu\n", week, locality,
                balance, plan.total_moves(), plan.keys_assigned);
    tweets.advance_epoch();
  }

  // What is trending where?  Each hashtag-counter instance owns its keys
  // exclusively (fields grouping), so per-instance top-k is exact.
  std::printf("\ntrending hashtags per server (key id: count):\n");
  const auto metrics = engine.metrics();
  for (InstanceIndex i = 0; i < kServers; ++i) {
    const auto& counter =
        static_cast<runtime::CountingOperator&>(engine.operator_at(2, i));
    std::printf("  server %u (%llu tuples, %zu tags):", i,
                static_cast<unsigned long long>(
                    metrics.instance_processed[2][i]),
                counter.counts().size());
    for (const auto& [key, count] : counter.top(3)) {
      std::printf("  #%llu:%llu",
                  static_cast<unsigned long long>(
                      key - workload::kHashtagKeyBase),
                  static_cast<unsigned long long>(count));
    }
    std::printf("\n");
  }
  engine.shutdown();
  return 0;
}
