// Flickr tags: the offline-analysis workflow on a stable workload.
//
// When correlations are stable (Section 3.2, "Offline analysis"), routing
// tables can be computed once from a recorded sample and loaded at startup.
// This example records a trace of (tag, country) photo metadata, counts key
// pairs exactly offline, computes the plan, and then compares — in the
// deterministic performance simulator — hash routing against the
// precomputed locality-aware tables across the paper's two network speeds.
//
// Build & run:   ./build/examples/flickr_tags
#include <cstdio>
#include <filesystem>

#include "core/lar.hpp"
#include "sim/simulator.hpp"
#include "workload/flickr_like.hpp"
#include "workload/trace.hpp"

using namespace lar;

int main() {
  constexpr std::uint32_t kServers = 6;
  constexpr std::uint64_t kSample = 300'000;
  const std::string trace_path =
      (std::filesystem::temp_directory_path() / "flickr_sample.lart").string();

  // --- 1. Record a sample of the stream ------------------------------------
  workload::FlickrLikeConfig config;
  config.padding = 8'000;  // photo metadata + thumbnail
  config.seed = 7;
  workload::FlickrLikeGenerator photos(config);
  const Status recorded = workload::record_trace(photos, kSample, trace_path);
  LAR_CHECK(recorded.is_ok());
  std::printf("recorded %llu tuples to %s\n",
              static_cast<unsigned long long>(kSample), trace_path.c_str());

  // --- 2. Offline analysis: exact pair counting over the sample ------------
  core::PairStats stats(/*capacity=*/0);  // 0 = exact counting
  {
    workload::TraceReader reader(trace_path);
    LAR_CHECK(reader.status().is_ok());
    for (std::uint64_t i = 0; i < reader.num_tuples(); ++i) {
      const Tuple t = reader.next();
      stats.record(t.fields[0], t.fields[1]);
    }
  }
  std::printf("offline analysis: %zu distinct (tag, country) pairs\n",
              stats.size());

  // --- 3. Compute the routing tables once ----------------------------------
  const Topology topology = make_two_stage_topology(kServers);
  const Placement placement = Placement::round_robin(topology, kServers);
  core::Manager manager(topology, placement, {});
  const core::ReconfigurationPlan plan =
      manager.compute_plan({core::HopStats{1, 2, stats.snapshot()}});
  std::printf(
      "plan: %zu keys pinned, expected locality %.0f%%, imbalance %.2f\n",
      plan.keys_assigned, 100 * plan.expected_locality, plan.imbalance);

  // --- 4. Compare hash vs precomputed tables at 10 Gb/s and 1 Gb/s ---------
  std::printf("\n%-10s %-14s %-18s %-6s\n", "network", "hash-based",
              "locality-aware", "gain");
  for (const double bandwidth : {sim::kTenGbps, sim::kOneGbps}) {
    sim::SimConfig sim_config;
    sim_config.source_mode = SourceMode::kRoundRobin;
    sim_config.nic_bandwidth = bandwidth;

    auto throughput = [&](bool with_tables) {
      sim::Simulator simulator(topology, placement, sim_config,
                               FieldsRouting::kTable);
      if (with_tables) simulator.apply_plan(plan);
      workload::TraceReader replay(trace_path);
      LAR_CHECK(replay.status().is_ok());
      return simulator.run_window(replay, kSample).throughput;
    };
    const double hash = throughput(false);
    const double aware = throughput(true);
    std::printf("%-10s %-14.0f %-18.0f %.2fx\n",
                bandwidth == sim::kTenGbps ? "10Gb/s" : "1Gb/s", hash / 1000,
                aware / 1000, aware / hash);
  }

  std::filesystem::remove(trace_path);
  return 0;
}
