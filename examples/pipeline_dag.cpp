// Pipeline with mixed groupings: the deployment of the paper's Figure 3.
//
//   S ──fields──► B(stateful) ──local-or-shuffle──► C(stateless)
//     ──fields──► D(stateful)
//
// Local-or-shuffle keeps the B->C hop machine-local for free (stateless
// recipients don't care which instance processes a tuple); the two
// fields-grouped hops are what the locality optimizer improves.  The example
// prints per-edge locality before and after one reconfiguration — note the
// local-or-shuffle edge is at 100% locality from the start, exactly the
// paper's argument for why stateful hops are the real problem.
//
// Build & run:   ./build/examples/pipeline_dag
#include <cstdio>

#include "core/lar.hpp"
#include "runtime/engine.hpp"
#include "workload/flickr_like.hpp"

using namespace lar;

int main() {
  constexpr std::uint32_t kServers = 4;

  Topology topo;
  const OperatorId s = topo.add_operator({.name = "S",
                                          .parallelism = kServers,
                                          .is_source = true,
                                          .cpu_cost_per_tuple = 0.05});
  const OperatorId b = topo.add_operator(
      {.name = "B", .parallelism = kServers, .stateful = true});
  const OperatorId c = topo.add_operator(
      {.name = "C", .parallelism = kServers, .stateful = false});
  const OperatorId d = topo.add_operator(
      {.name = "D", .parallelism = kServers, .stateful = true});
  topo.connect(s, b, GroupingType::kFields, /*key_field=*/0);
  topo.connect(b, c, GroupingType::kLocalOrShuffle);
  topo.connect(c, d, GroupingType::kFields, /*key_field=*/1);
  LAR_CHECK(topo.validate().is_ok());

  const Placement placement = Placement::round_robin(topo, kServers);
  runtime::Engine engine(
      topo, placement,
      [&](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
        if (op == b) return std::make_unique<runtime::CountingOperator>(0);
        if (op == d) return std::make_unique<runtime::CountingOperator>(1);
        return std::make_unique<runtime::PassThroughOperator>();
      },
      {.fields_mode = FieldsRouting::kTable});
  engine.start();
  core::Manager manager(topo, placement, {});

  workload::FlickrLikeConfig wcfg;
  wcfg.num_tags = 2'000;
  wcfg.num_countries = 50;
  wcfg.seed = 99;
  workload::FlickrLikeGenerator photos(wcfg);

  auto report = [&](const char* phase,
                    const runtime::EngineMetrics& base) {
    const auto m = engine.metrics();
    std::printf("%s\n", phase);
    const char* names[] = {"S->B (fields)", "B->C (local-or-shuffle)",
                           "C->D (fields)"};
    for (std::size_t e = 0; e < m.edges.size(); ++e) {
      const auto local = m.edges[e].local - base.edges[e].local;
      const auto remote = m.edges[e].remote - base.edges[e].remote;
      std::printf("  %-26s locality %.0f%%\n", names[e],
                  100.0 * static_cast<double>(local) /
                      static_cast<double>(local + remote));
    }
  };

  const runtime::EngineMetrics zero = engine.metrics();
  for (int i = 0; i < 40'000; ++i) engine.inject(photos.next());
  engine.flush();
  const auto before = engine.metrics();
  report("before reconfiguration:", zero);

  // NOTE on the B->C->D chain: C is stateless, so the pair statistics that
  // drive the optimizer couple B's keys (observed at B) with D's keys — the
  // engine records them on B's outbound path and the manager co-locates
  // B-keys with their correlated D-keys.  Local-or-shuffle then keeps the
  // middle hop on the same server, completing the local chain.
  const auto plan = engine.reconfigure(manager);
  std::printf(
      "reconfigured: %zu keys pinned, %zu states migrated, expected locality "
      "%.0f%%\n",
      plan.keys_assigned, plan.total_moves(), 100 * plan.expected_locality);

  for (int i = 0; i < 40'000; ++i) engine.inject(photos.next());
  engine.flush();
  report("after reconfiguration:", before);

  engine.shutdown();
  return 0;
}
