// Quickstart: the paper's running example on the public API.
//
// Geo-tagged messages (region, hashtag) flow through two stateful counting
// operators: the first counts per region, the second per hashtag.  Both hops
// use fields grouping.  We run the stream with default hash routing, let the
// manager learn the region<->hashtag correlations through the full online
// reconfiguration protocol (statistics collection, graph partitioning, table
// deployment, state migration), and watch the A->B locality jump while every
// count stays exact.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/lar.hpp"
#include "runtime/engine.hpp"

using namespace lar;

int main() {
  // --- 1. Describe the application DAG ------------------------------------
  Topology topology;
  const OperatorId source = topology.add_operator({.name = "source",
                                                   .parallelism = 2,
                                                   .stateful = false,
                                                   .is_source = true});
  const OperatorId by_region = topology.add_operator(
      {.name = "count-region", .parallelism = 2, .stateful = true});
  const OperatorId by_tag = topology.add_operator(
      {.name = "count-hashtag", .parallelism = 2, .stateful = true});
  topology.connect(source, by_region, GroupingType::kFields, /*key_field=*/0);
  topology.connect(by_region, by_tag, GroupingType::kFields, /*key_field=*/1);
  LAR_CHECK(topology.validate().is_ok());

  // --- 2. Deploy on two (logical) servers ---------------------------------
  const Placement placement = Placement::round_robin(topology, 2);
  runtime::Engine engine(
      topology, placement,
      [&](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
        if (op == source) return std::make_unique<runtime::PassThroughOperator>();
        return std::make_unique<runtime::CountingOperator>(
            op == by_region ? 0u : 1u);
      },
      {.fields_mode = FieldsRouting::kTable});  // tables, hash fallback
  engine.start();

  // --- 3. Stream some data -------------------------------------------------
  // Asia tweets about #java and #ruby, Oceania about #python — the
  // correlation structure of the paper's Figure 4.
  KeyDict dict;
  struct Msg {
    const char* region;
    const char* tag;
    int copies;
  };
  const std::vector<Msg> pattern = {
      {"Asia", "#java", 35},   {"Asia", "#ruby", 30},
      {"Asia", "#python", 10}, {"Oceania", "#python", 31},
      {"Oceania", "#java", 12}, {"Oceania", "#ruby", 9},
  };
  auto stream = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (const Msg& msg : pattern) {
        for (int c = 0; c < msg.copies; ++c) {
          engine.inject(Tuple{
              .fields = {dict.intern(msg.region), dict.intern(msg.tag)},
              .padding = 140});
        }
      }
    }
  };
  stream(50);
  engine.flush();
  const auto before = engine.metrics();
  std::printf("before reconfiguration: region->hashtag locality = %.0f%%\n",
              100 * before.edges[1].locality());

  // --- 4. One online reconfiguration round --------------------------------
  core::Manager manager(topology, placement, {});
  const core::ReconfigurationPlan plan = engine.reconfigure(manager);
  std::printf(
      "reconfigured: %zu keys pinned, %zu key states migrated, expected "
      "locality %.0f%%, imbalance %.2f\n",
      plan.keys_assigned, plan.total_moves(), 100 * plan.expected_locality,
      plan.imbalance);

  stream(50);
  engine.flush();
  const auto after = engine.metrics();
  const double window_locality =
      static_cast<double>(after.edges[1].local - before.edges[1].local) /
      static_cast<double>(after.edges[1].local + after.edges[1].remote -
                          before.edges[1].local - before.edges[1].remote);
  std::printf("after reconfiguration:  region->hashtag locality = %.0f%%\n",
              100 * window_locality);

  // --- 5. State survived the migration ------------------------------------
  std::printf("\nhashtag counts (exact despite key migration):\n");
  for (const char* tag : {"#java", "#ruby", "#python"}) {
    const Key key = *dict.find(tag);
    std::uint64_t total = 0;
    for (InstanceIndex i = 0; i < 2; ++i) {
      total += static_cast<runtime::CountingOperator&>(
                   engine.operator_at(by_tag, i))
                   .count(key);
    }
    std::printf("  %-8s %llu\n", tag, static_cast<unsigned long long>(total));
  }
  engine.shutdown();
  return 0;
}
