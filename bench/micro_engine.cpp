// End-to-end threaded-runtime throughput: the tentpole number for the
// data-plane fast path (DESIGN.md §13).  Pushes a synthetic stream through a
// real Engine (per-producer SPSC lanes, batched hand-off, tuple arenas,
// zero-copy local edges all active) and reports sustained tuples/sec over
// the inject+flush hot loop.
//
// Doubles as a determinism self-check: the same stream is replayed with
// lane_batch = 1 — the degenerate batch, publishing every push exactly like
// the unbatched hand-off — and the per-key count checksum of both runs must
// match bit-for-bit (batching is a hand-off granularity, never a semantic).
// fig13 cannot host this check (it is simulator-only and lane-free), so the
// batch-equivalence gate lives here; scripts/check.sh runs it with a
// tuples/sec floor.  Exit is nonzero on checksum mismatch or a missed floor.
//
// Like BENCH_micro_hotpath.json, BENCH_micro_engine.json embeds measured
// wall-clock throughput and is not byte-stable across runs; the checksum and
// tuple counts in it are.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/hash.hpp"
#include "runtime/engine.hpp"
#include "topology/placement.hpp"
#include "topology/topology.hpp"
#include "workload/synthetic.hpp"

using namespace lar;

namespace {

runtime::OperatorFactory counting_factory() {
  return [](OperatorId op,
            InstanceIndex) -> std::unique_ptr<runtime::Operator> {
    if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
    return std::make_unique<runtime::CountingOperator>(op == 1 ? 0u : 1u);
  };
}

struct RunResult {
  double seconds = 0.0;       // inject+flush wall time (not byte-stable)
  std::uint64_t checksum = 0; // order-independent per-key count digest
};

RunResult run_engine(std::size_t lane_batch, std::uint64_t tuples) {
  const std::uint32_t parallelism = 4;
  const Topology topo = make_two_stage_topology(parallelism);
  const Placement place = Placement::round_robin(topo, parallelism);
  runtime::EngineOptions opts;
  opts.fields_mode = FieldsRouting::kHash;
  opts.lane_batch = lane_batch;
  runtime::Engine engine(topo, place, counting_factory(), opts);
  engine.start();
  workload::SyntheticGenerator gen({.num_values = parallelism * 1000,
                                    .locality = 0.8,
                                    .padding = 16,
                                    .seed = 17});
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < tuples; ++i) engine.inject(gen.next());
  engine.flush();
  const auto t1 = std::chrono::steady_clock::now();

  // Quiescent after flush(): fold every stateful instance's (key, count)
  // pairs into a commutative digest, so the thread-dependent interleaving
  // cannot affect it — only the counts themselves can.
  RunResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (OperatorId op = 1; op < topo.num_operators(); ++op) {
    for (InstanceIndex i = 0; i < topo.op(op).parallelism; ++i) {
      const auto& counter =
          static_cast<runtime::CountingOperator&>(engine.operator_at(op, i));
      for (const auto& [key, count] : counter.counts()) {
        r.checksum += mix64(key * 0x9E3779B97F4A7C15ULL + count);
      }
    }
  }
  engine.shutdown();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t tuples = 500'000;
  double min_tps = 0.0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--tuples") == 0) {
      tuples = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--min-tps") == 0) {
      min_tps = std::strtod(argv[i + 1], nullptr);
    }
  }
  if (tuples == 0) tuples = 1;

  std::printf(
      "# micro_engine — threaded-runtime end-to-end throughput (%" PRIu64
      " tuples)\n"
      "# two-stage topology on 4 servers; SPSC lanes + batched hand-off +\n"
      "# arenas + zero-copy local edges; lane_batch default vs 1 must agree\n",
      tuples);

  // Warm-up (thread spawn, page faults), then the timed default-batch run
  // and the degenerate-batch replay for the equivalence check.
  (void)run_engine(runtime::EngineOptions{}.lane_batch,
                   std::min<std::uint64_t>(tuples / 10 + 1, 50'000));
  const RunResult fast = run_engine(runtime::EngineOptions{}.lane_batch, tuples);
  const RunResult unbatched = run_engine(1, tuples);

  const double tps = static_cast<double>(tuples) / fast.seconds;
  const double tps1 = static_cast<double>(tuples) / unbatched.seconds;
  std::printf("tuples_per_sec            %12.0f  (lane_batch %zu)\n", tps,
              runtime::EngineOptions{}.lane_batch);
  std::printf("tuples_per_sec_batch1     %12.0f  (degenerate hand-off)\n",
              tps1);
  std::printf("checksum                  %" PRIu64 "\n", fast.checksum);

  int failures = 0;
  if (fast.checksum != unbatched.checksum) {
    std::fprintf(stderr,
                 "DETERMINISM MISMATCH: lane_batch default vs 1 (%" PRIu64
                 " vs %" PRIu64 ")\n",
                 fast.checksum, unbatched.checksum);
    ++failures;
  }
  if (min_tps > 0.0 && tps < min_tps) {
    std::fprintf(stderr, "THROUGHPUT FLOOR MISSED: %.0f < %.0f tuples/s\n",
                 tps, min_tps);
    ++failures;
  }

  char tps_buf[64];
  char tps1_buf[64];
  std::snprintf(tps_buf, sizeof tps_buf, "%.0f", tps);
  std::snprintf(tps1_buf, sizeof tps1_buf, "%.0f", tps1);
  const std::string json =
      std::string("{\"bench\":\"micro_engine\",\"tuples\":") +
      std::to_string(tuples) + ",\"tuples_per_sec\":" + tps_buf +
      ",\"tuples_per_sec_batch1\":" + tps1_buf +
      ",\"lane_batch\":" + std::to_string(runtime::EngineOptions{}.lane_batch) +
      ",\"checksum\":" + std::to_string(fast.checksum) + "}\n";
  if (std::FILE* f = std::fopen("BENCH_micro_engine.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("# wrote BENCH_micro_engine.json\n");
  }
  return failures == 0 ? 0 : 1;
}
