// Tracked hot-path microbenchmarks: the data-plane costs the simulator pays
// per tuple, measured in isolation so regressions show up before they blur
// into a 50-second figure run.
//
//   * table routing: the seed's std::unordered_map table behind a virtual
//     Router call vs FlatMap behind RouterBank's switch (the acceptance
//     target is >= 2x);
//   * route() cost per router kind, virtual vs devirtualized;
//   * SpaceSaving::add throughput (the per-tuple statistics cost);
//   * FlatMap vs std::unordered_map probe cost.
//
// Every timed pair doubles as a differential test: the virtual and
// devirtualized paths must produce identical decision checksums, and FlatMap
// must agree with std::unordered_map — any mismatch exits nonzero, so the
// `perf`-labelled ctest smoke run catches determinism breakage, not just
// build rot.
//
// Unlike the fig benches' BENCH_*.json (which embed deterministic obs
// reports), BENCH_micro_hotpath.json contains measured wall-clock timings and
// is not byte-stable across runs; the checksums in it are.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "runtime/queue.hpp"
#include "sim/route_desc.hpp"
#include "sketch/space_saving.hpp"
#include "sketch/zipf.hpp"
#include "topology/routing.hpp"

using namespace lar;

namespace {

using Clock = std::chrono::steady_clock;

struct Point {
  std::string name;
  double ns_per_op = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t checksum = 0;  // deterministic under fixed seeds
};

template <typename Fn>
Point timed(std::string name, std::uint64_t ops, Fn&& fn) {
  const auto t0 = Clock::now();
  const std::uint64_t checksum = fn();
  const auto t1 = Clock::now();
  Point p;
  p.name = std::move(name);
  p.ops = ops;
  p.checksum = checksum;
  p.ns_per_op = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                static_cast<double>(ops);
  return p;
}

/// The seed's table-routing data path, kept faithful as the baseline: a
/// node-based std::unordered_map (std::hash) held behind a shared_ptr (the
/// seed's TableFieldsRouter shared one RoutingTable per edge), probed through
/// a virtual call with the seed's per-tuple LAR_CHECK.
class LegacyTableRouter final : public Router {
 public:
  LegacyTableRouter(std::uint32_t key_field, std::uint32_t fanout,
                    std::shared_ptr<const std::unordered_map<Key, InstanceIndex>> table)
      : key_field_(key_field), fanout_(fanout), table_(std::move(table)) {}

  [[nodiscard]] InstanceIndex route(const Tuple& tuple) override {
    LAR_CHECK(key_field_ < tuple.fields.size());
    const Key key = tuple.fields[key_field_];
    const auto it = table_->find(key);
    return it != table_->end() ? it->second : hash_instance(key, fanout_);
  }

 private:
  std::uint32_t key_field_;
  std::uint32_t fanout_;
  std::shared_ptr<const std::unordered_map<Key, InstanceIndex>> table_;
};

/// Benchmark topology: S(4) -fields-> A(8) -shuffle-> B(8) -local-> C(8).
Topology bench_topology() {
  Topology topo;
  const OperatorId s =
      topo.add_operator({.name = "S", .parallelism = 4, .is_source = true});
  const OperatorId a = topo.add_operator({.name = "A", .parallelism = 8});
  const OperatorId b = topo.add_operator({.name = "B", .parallelism = 8});
  const OperatorId c = topo.add_operator({.name = "C", .parallelism = 8});
  topo.connect(s, a, GroupingType::kFields, /*key_field=*/0);
  topo.connect(a, b, GroupingType::kShuffle);
  topo.connect(b, c, GroupingType::kLocalOrShuffle);
  return topo;
}

int failures = 0;

void check_equal(const char* what, std::uint64_t a, std::uint64_t b) {
  if (a != b) {
    std::fprintf(stderr, "DETERMINISM MISMATCH: %s (%" PRIu64 " vs %" PRIu64 ")\n",
                 what, a, b);
    ++failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t ops = 2'000'000;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--ops") == 0) {
      ops = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  if (ops == 0) ops = 1;

  std::printf(
      "# micro_hotpath — per-tuple data-plane costs (%" PRIu64 " ops/point)\n"
      "# columns: benchmark, ns/op; every virtual/switch pair is also a\n"
      "# differential determinism check (mismatch -> nonzero exit)\n",
      ops);

  const Topology topo = bench_topology();
  const Placement place = Placement::round_robin(topo, 4);
  const std::size_t n_keys = 50'000;
  constexpr std::size_t kTupleMask = (1u << 16) - 1;

  // Pre-generated key stream: uniform over 2x the table's key range, so
  // about half the lookups fall back to hash routing, like a live window
  // whose tail keys were never planned.
  std::vector<Tuple> tuples;
  tuples.reserve(kTupleMask + 1);
  {
    Rng rng(404);
    for (std::size_t i = 0; i <= kTupleMask; ++i) {
      tuples.push_back(Tuple{.fields = {rng.below(2 * n_keys)}});
    }
  }

  std::vector<Point> points;

  // --- headline: table routing, seed baseline vs this PR's hot path --------
  //
  // Workload model: 1M planned keys (the top fig12 budget) drawn from a
  // sparse 64-bit id space (stream keys are hashed identifiers before
  // KeyDict interning densifies them), 90% table hit rate (the table exists
  // to cover the heavy hitters, so most traffic hits it).
  //
  // The loops are latency-bound on purpose: in PipelineModel::deliver the
  // route result feeds the pair-stats bucket and the next hop's frame, so
  // the simulator pays the lookup's *latency*, not its pipelined throughput.
  // The dependent index (`idx += i + dst`) reproduces that: it serializes
  // each lookup on the previous decision, which is also why the checksums of
  // the two loops must match bit-for-bit.
  const EdgeSpec& fields_edge = topo.edges()[0];
  {
    const std::size_t n_table_keys = 1'000'000;
    auto legacy_map =
        std::make_shared<std::unordered_map<Key, InstanceIndex>>();
    RoutingTable table;
    std::vector<Key> planned;
    planned.reserve(n_table_keys);
    Rng keys(7);
    for (std::size_t i = 0; i < n_table_keys; ++i) {
      const Key k = keys.next();
      const auto inst = static_cast<InstanceIndex>(mix64(k * 3) % 8);
      planned.push_back(k);
      legacy_map->emplace(k, inst);
      table.assign(k, inst);
    }
    // Key stream only; the routed tuple itself is kept hot (a single scratch
    // tuple rewritten per iteration) because that matches the simulator: a
    // tuple is routed right after the generator or the upstream hop wrote
    // it, never fetched cold from a far-away pool.
    std::vector<Key> stream;
    stream.reserve(kTupleMask + 1);
    {
      Rng pick(404);
      Rng miss(13);
      for (std::size_t i = 0; i <= kTupleMask; ++i) {
        stream.push_back(pick.below(100) < 90 ? planned[pick.below(n_table_keys)]
                                              : miss.next());
      }
    }
    Tuple scratch{.fields = {0}};
    std::unique_ptr<Router> legacy = std::make_unique<LegacyTableRouter>(
        /*key_field=*/0, /*fanout=*/8, legacy_map);
    sim::RouterBank bank;
    const std::uint32_t slot =
        bank.add(fields_edge, 0, topo, place, place.server_of(0, 0),
                 FieldsRouting::kTable, &table, /*seed=*/1);

    points.push_back(timed("table_route_virtual_unordered", ops, [&] {
      std::uint64_t sum = 0;
      std::uint64_t idx = 0;
      for (std::uint64_t i = 0; i < ops; ++i) {
        scratch.fields[0] = stream[idx & kTupleMask];
        const InstanceIndex dst = legacy->route(scratch);
        sum += dst;
        idx += i + dst;
      }
      return sum;
    }));
    points.push_back(timed("table_route_switch_flatmap", ops, [&] {
      std::uint64_t sum = 0;
      std::uint64_t idx = 0;
      for (std::uint64_t i = 0; i < ops; ++i) {
        scratch.fields[0] = stream[idx & kTupleMask];
        const InstanceIndex dst = bank.route(slot, scratch);
        sum += dst;
        idx += i + dst;
      }
      return sum;
    }));
    check_equal("table routing decisions",
                points[points.size() - 2].checksum, points.back().checksum);
  }

  // --- route() cost per router kind, virtual vs devirtualized --------------
  struct ModePoint {
    const char* name;
    FieldsRouting mode;
    std::uint32_t edge;
  };
  const ModePoint modes[] = {
      {"hash", FieldsRouting::kHash, 0},
      {"permutation", FieldsRouting::kPermutation, 0},
      {"identity", FieldsRouting::kIdentity, 0},
      {"partial_key", FieldsRouting::kPartialKey, 0},
      {"shuffle", FieldsRouting::kHash, 1},         // grouping decides
      {"local_or_shuffle", FieldsRouting::kHash, 2},
  };
  for (const ModePoint& m : modes) {
    const EdgeSpec& edge = topo.edges()[m.edge];
    auto router = make_router(edge, m.edge, topo, place,
                              place.server_of(edge.from, 0), m.mode, nullptr,
                              /*seed=*/9);
    sim::RouterBank bank;
    const std::uint32_t slot =
        bank.add(edge, m.edge, topo, place, place.server_of(edge.from, 0),
                 m.mode, nullptr, /*seed=*/9);
    points.push_back(timed(std::string("route_virtual_") + m.name, ops, [&] {
      std::uint64_t sum = 0;
      for (std::uint64_t i = 0; i < ops; ++i) {
        sum += router->route(tuples[i & kTupleMask]);
      }
      return sum;
    }));
    points.push_back(timed(std::string("route_switch_") + m.name, ops, [&] {
      std::uint64_t sum = 0;
      for (std::uint64_t i = 0; i < ops; ++i) {
        sum += bank.route(slot, tuples[i & kTupleMask]);
      }
      return sum;
    }));
    // Stateful routers advanced through identical call sequences, so the
    // decision streams — and hence the sums — must agree exactly.
    check_equal(m.name, points[points.size() - 2].checksum,
                points.back().checksum);
  }

  // --- split routing: d-candidate least-loaded, virtual vs devirtualized ----
  //
  // Tables where 10% of the planned keys are split (lar::split hot keys):
  // each split lookup walks its d candidates' sent counters and bumps the
  // winner, so this prices the per-degree overhead over plain table routing.
  for (const std::uint32_t degree : {2u, 4u}) {
    const EdgeSpec& edge = topo.edges()[0];
    const std::uint32_t fanout = 8;  // op A's parallelism
    auto table = std::make_shared<RoutingTable>();
    Rng fill(21 + degree);
    for (std::size_t i = 0; i < n_keys; ++i) {
      const Key k = static_cast<Key>(i);
      if (fill.below(10) == 0) {
        std::vector<InstanceIndex> cands;
        const auto first = static_cast<InstanceIndex>(fill.below(fanout));
        for (std::uint32_t c = 0; c < degree; ++c) {
          cands.push_back((first + c) % fanout);
        }
        table->assign_split(k, cands);
      } else {
        table->assign(k, static_cast<InstanceIndex>(fill.below(fanout)));
      }
    }
    auto router = make_router(edge, 0, topo, place,
                              place.server_of(edge.from, 0),
                              FieldsRouting::kTable, table, /*seed=*/9);
    sim::RouterBank bank;
    const std::uint32_t slot =
        bank.add(edge, 0, topo, place, place.server_of(edge.from, 0),
                 FieldsRouting::kTable, table.get(), /*seed=*/9);
    const std::string name = "split_d" + std::to_string(degree);
    points.push_back(timed("route_" + name + "_virtual", ops, [&] {
      std::uint64_t sum = 0;
      for (std::uint64_t i = 0; i < ops; ++i) {
        sum += router->route(tuples[i & kTupleMask]);
      }
      return sum;
    }));
    points.push_back(timed("route_" + name + "_switch", ops, [&] {
      std::uint64_t sum = 0;
      for (std::uint64_t i = 0; i < ops; ++i) {
        sum += bank.route(slot, tuples[i & kTupleMask]);
      }
      return sum;
    }));
    // Both routers advanced their sent counters through identical call
    // sequences, so the decision streams must agree exactly.
    check_equal(name.c_str(), points[points.size() - 2].checksum,
                points.back().checksum);
  }

  // --- SpaceSaving add throughput -------------------------------------------
  {
    std::vector<std::uint64_t> keys;
    keys.reserve(kTupleMask + 1);
    sketch::ZipfSampler zipf(100'000, 1.05);
    Rng rng(7);
    for (std::size_t i = 0; i <= kTupleMask; ++i) keys.push_back(zipf.sample(rng));
    sketch::SpaceSaving<std::uint64_t> sketch(1u << 15);
    points.push_back(timed("space_saving_add", ops, [&] {
      for (std::uint64_t i = 0; i < ops; ++i) sketch.add(keys[i & kTupleMask]);
      return sketch.total() + sketch.min_count();
    }));
  }

  // --- FlatMap vs std::unordered_map probe ----------------------------------
  {
    FlatMap<Key, std::uint64_t> flat;
    std::unordered_map<Key, std::uint64_t> umap;
    Rng rng(12);
    for (std::size_t i = 0; i < n_keys; ++i) {
      const Key k = rng.next();
      flat[k] = i;
      umap[k] = i;
    }
    // Probe stream: alternating hits (re-drawn from the same Rng sequence)
    // and misses.
    std::vector<Key> probes;
    probes.reserve(kTupleMask + 1);
    Rng replay(12);
    Rng miss(13);
    for (std::size_t i = 0; i <= kTupleMask; ++i) {
      probes.push_back((i & 1) == 0 ? replay.next() : miss.next());
    }
    points.push_back(timed("probe_unordered_map", ops, [&] {
      std::uint64_t sum = 0;
      for (std::uint64_t i = 0; i < ops; ++i) {
        const auto it = umap.find(probes[i & kTupleMask]);
        if (it != umap.end()) sum += it->second;
      }
      return sum;
    }));
    points.push_back(timed("probe_flat_map", ops, [&] {
      std::uint64_t sum = 0;
      for (std::uint64_t i = 0; i < ops; ++i) {
        if (const std::uint64_t* v = flat.find(probes[i & kTupleMask])) sum += *v;
      }
      return sum;
    }));
    check_equal("flat map vs unordered map contents",
                points[points.size() - 2].checksum, points.back().checksum);
  }

  // --- channel hand-off: shared MPSC queue vs SPSC lane vs batched lane -----
  //
  // The runtime's per-hop cost (DESIGN.md §13), measured single-threaded in
  // push/pop chunks so the numbers isolate the hand-off mechanism itself:
  // mutex+deque (the seed's only path, still the control plane), an SPSC
  // ring lane publishing every push (batch 1 — the degenerate batch, same
  // per-item visibility as the old queue), and the same lane publishing
  // every 32 pushes (the engine's default lane_batch).  All three pop the
  // identical value stream, so the checksums triple as a differential test.
  {
    constexpr std::uint64_t kChunk = 64;
    const std::uint64_t chunks = std::max<std::uint64_t>(ops / kChunk, 1);
    const std::uint64_t n = chunks * kChunk;
    {
      runtime::Channel<std::uint64_t> ch(kChunk);
      points.push_back(timed("channel_mpsc_push_pop", n, [&] {
        std::uint64_t sum = 0;
        std::uint64_t v = 1;
        for (std::uint64_t c = 0; c < chunks; ++c) {
          for (std::uint64_t k = 0; k < kChunk; ++k) ch.push(v++);
          for (std::uint64_t k = 0; k < kChunk; ++k) sum += *ch.try_pop();
        }
        return sum;
      }));
    }
    {
      runtime::Channel<std::uint64_t> ch(kChunk);
      const std::uint32_t lane = ch.add_lane(kChunk);
      points.push_back(timed("channel_spsc_lane_push_pop", n, [&] {
        std::uint64_t sum = 0;
        std::uint64_t v = 1;
        for (std::uint64_t c = 0; c < chunks; ++c) {
          for (std::uint64_t k = 0; k < kChunk; ++k) ch.lane_push(lane, v++);
          for (std::uint64_t k = 0; k < kChunk; ++k) sum += *ch.try_pop();
        }
        return sum;
      }));
    }
    {
      runtime::Channel<std::uint64_t> ch(kChunk);
      const std::uint32_t lane = ch.add_lane(kChunk);
      ch.set_lane_batch(32);
      points.push_back(timed("channel_batched_push_pop", n, [&] {
        std::uint64_t sum = 0;
        std::uint64_t v = 1;
        for (std::uint64_t c = 0; c < chunks; ++c) {
          for (std::uint64_t k = 0; k < kChunk; ++k) ch.lane_push(lane, v++);
          ch.lane_flush(lane);
          for (std::uint64_t k = 0; k < kChunk; ++k) sum += *ch.try_pop();
        }
        return sum;
      }));
    }
    check_equal("channel mpsc vs spsc lane", points[points.size() - 3].checksum,
                points[points.size() - 2].checksum);
    check_equal("channel spsc lane vs batched",
                points[points.size() - 2].checksum, points.back().checksum);
  }

  // --- report ----------------------------------------------------------------
  double legacy_ns = 0.0;
  double devirt_ns = 0.0;
  for (const Point& p : points) {
    std::printf("%-32s %10.2f ns/op\n", p.name.c_str(), p.ns_per_op);
    if (p.name == "table_route_virtual_unordered") legacy_ns = p.ns_per_op;
    if (p.name == "table_route_switch_flatmap") devirt_ns = p.ns_per_op;
  }
  const double speedup = devirt_ns > 0.0 ? legacy_ns / devirt_ns : 0.0;
  std::printf("# table routing speedup (virtual+unordered_map -> "
              "switch+FlatMap): %.2fx (target >= 2x)\n", speedup);

  std::string json = "{\"bench\":\"micro_hotpath\",\"ops\":" +
                     std::to_string(ops) + ",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i > 0) json += ',';
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.2f", points[i].ns_per_op);
    json += "{\"name\":\"" + points[i].name + "\",\"ns_per_op\":" + buf +
            ",\"checksum\":" + std::to_string(points[i].checksum) + "}";
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", speedup);
  json += std::string("],\"table_route_speedup\":") + buf + "}\n";
  if (std::FILE* f = std::fopen("BENCH_micro_hotpath.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("# wrote BENCH_micro_hotpath.json\n");
  }

  if (failures != 0) {
    std::fprintf(stderr, "# %d differential check(s) FAILED\n", failures);
    return 1;
  }
  return 0;
}
