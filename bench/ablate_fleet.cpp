// Ablation: multi-tenant joint planning (lar::fleet) vs independent planning.
//
// Sweeps the tenant count T in {1, 2, 4} against the planning mode
// {joint, independent} on a shared 6-server fleet.  Every tenant runs the
// two-stage topology (parallelism 6) over the SAME Zipf-skewed correlated
// stream — the worst case for independent planning: each tenant's planner
// solves an identical key graph in isolation, so every tenant's hot keys
// land on the same shared servers and stack, while joint planning sees the
// summed per-server mass and interleaves tenants (DESIGN.md §15).
//
// Self-checks (nonzero exit on violation):
//   * determinism — every (T, mode) cell runs twice and the two obs reports
//     must match byte for byte;
//   * single-tenant equivalence — at T=1 joint and independent planning are
//     the same planner, so their reports must be byte-identical;
//   * conservation — per tenant, the measure window's summed B-stage
//     instance load equals the window tuple count (no tuple lost or
//     duplicated by slicing);
//   * shared-fleet imbalance — for T >= 2 the joint plan's per-server
//     max/mean CPU load must beat the independent plan's.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fleet/fleet.hpp"
#include "sim/simulator.hpp"
#include "sketch/zipf.hpp"
#include "workload/workload.hpp"

using namespace lar;

namespace {

constexpr std::uint32_t kParallelism = 6;
constexpr std::uint32_t kServers = 6;
constexpr std::uint64_t kWindow = 100'000;
constexpr std::uint32_t kNumKeys = 40;
constexpr double kSkew = 1.4;
constexpr double kLocality = 0.9;

/// Zipf-skewed correlated pair stream: field 0 draws a Zipf(s) rank, field 1
/// repeats it with probability `locality` (else uniform) — the synthetic
/// workload's correlation structure with the Zipf marginal the paper argues
/// real streams have.  At s = 1.4 the head key carries ~1/3 of the stream:
/// more than one server's fair share, so *where* the head keys of different
/// tenants land decides the fleet's balance.
class ZipfPairGenerator final : public workload::TupleGenerator {
 public:
  ZipfPairGenerator(std::uint32_t num_keys, double skew, double locality,
                    std::uint64_t seed)
      : zipf_(num_keys, skew), locality_(locality), rng_(seed) {}

  [[nodiscard]] Tuple next() override {
    Tuple t;
    const Key a = zipf_.sample(rng_);
    const bool correlated =
        static_cast<double>(rng_.next() % 1'000'000) / 1'000'000.0 < locality_;
    const Key b = correlated ? a : rng_.next() % zipf_.size();
    t.fields = {a, b};
    return t;
  }

 private:
  sketch::ZipfSampler zipf_;
  double locality_;
  Rng rng_;
};

struct CellResult {
  double imbalance = 0.0;   // per-server CPU max/mean over the shared fleet
  double locality = 0.0;    // mean A -> B hop locality over tenants
  double throughput = 0.0;  // tuples/s
  bool conserved = true;    // per-tenant B-stage load == window tuples
  std::string report;       // canonical obs report (byte-stable)
};

/// Learn for one window, run one tenant-scoped reconfiguration per tenant
/// (joint or independent planning), measure for one window.  Deterministic:
/// everything flows from the fixed seeds.
CellResult run_cell(std::uint32_t tenants, sim::Simulator::FleetPlanMode mode) {
  std::vector<fleet::AppSpec> specs;
  specs.reserve(tenants);
  for (std::uint32_t t = 0; t < tenants; ++t) {
    specs.push_back({"tenant" + std::to_string(t),
                     make_two_stage_topology(kParallelism)});
  }
  fleet::FleetManager fleet(std::move(specs),
                            {.num_servers = kServers, .manager = {}});
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  sim::Simulator simulator(fleet.combined_topology(),
                           fleet.combined_placement(), cfg,
                           FieldsRouting::kTable);
  fleet.set_metrics_registry(&simulator.registry());
  ZipfPairGenerator gen(kNumKeys, kSkew, kLocality, 83);

  simulator.run_window(gen, kWindow);  // learn, then per-tenant waves
  for (fleet::AppId app = 0; app < tenants; ++app) {
    (void)simulator.reconfigure_app(fleet, app, mode);
  }
  const auto window = simulator.run_window(gen, kWindow);

  CellResult out;
  const auto& stats = simulator.model().stats();
  double max_cpu = 0.0;
  double sum_cpu = 0.0;
  for (const double c : stats.cpu_units) {
    max_cpu = max_cpu > c ? max_cpu : c;
    sum_cpu += c;
  }
  out.imbalance = max_cpu / (sum_cpu / static_cast<double>(kServers));
  out.throughput = window.throughput;
  for (fleet::AppId app = 0; app < tenants; ++app) {
    const fleet::AppContext& ctx = fleet.app(app);
    // Edge ids follow composition order: (S->A, A->B) per tenant.
    out.locality += window.edge_locality[2 * app + 1];
    std::uint64_t processed = 0;
    for (const std::uint64_t l : stats.instance_load[ctx.op_begin + 2]) {
      processed += l;
    }
    if (processed != window.window_tuples) out.conserved = false;
  }
  out.locality /= static_cast<double>(tenants);
  out.report = obs::report_json(simulator.registry());
  return out;
}

const char* mode_name(sim::Simulator::FleetPlanMode mode) {
  return mode == sim::Simulator::FleetPlanMode::kJoint ? "joint" : "indep";
}

}  // namespace

int main() {
  std::printf(
      "# Ablation — multi-tenant joint vs independent planning on one shared "
      "fleet; T two-stage tenants, parallelism %u, %u servers\n"
      "# identical Zipf(%.1f) correlated stream per tenant (%u keys, "
      "locality %.1f); one learn + one measure window of %llu tuples\n"
      "# columns: T, mode, imbalance (server CPU max/mean), locality, "
      "throughput (Ktuples/s), conserved\n"
      "# expected shape: independent stacks every tenant's hot keys on the "
      "same servers (imbalance grows with T); joint interleaves tenants\n",
      kParallelism, kServers, kSkew, kNumKeys, kLocality,
      static_cast<unsigned long long>(kWindow));

  const std::uint32_t tenant_counts[] = {1, 2, 4};
  const sim::Simulator::FleetPlanMode modes[] = {
      sim::Simulator::FleetPlanMode::kJoint,
      sim::Simulator::FleetPlanMode::kIndependent};
  bench::JsonBenchReport report("ablate_fleet");
  int failures = 0;

  for (const std::uint32_t tenants : tenant_counts) {
    std::vector<CellResult> row;
    for (const auto mode : modes) {
      CellResult first = run_cell(tenants, mode);
      const CellResult second = run_cell(tenants, mode);
      if (first.report != second.report) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: two runs at T=%u mode=%s "
                     "produced different observability reports\n",
                     tenants, mode_name(mode));
        ++failures;
      }
      if (!first.conserved) {
        std::fprintf(stderr,
                     "CONSERVATION VIOLATION: T=%u mode=%s lost or duplicated "
                     "tuples across tenant slices\n",
                     tenants, mode_name(mode));
        ++failures;
      }
      char label[32];
      std::snprintf(label, sizeof(label), "T=%u,%s", tenants, mode_name(mode));
      report.add_panel_report(label, first.report);
      std::printf("%-4u %-8s %-11.3f %-9.3f %-10.1f %s\n", tenants,
                  mode_name(mode), first.imbalance, first.locality,
                  first.throughput / 1000.0, first.conserved ? "yes" : "NO");
      row.push_back(std::move(first));
    }

    if (tenants == 1) {
      // One tenant: joint and independent are the same planner — identical
      // plans, identical measurements, byte-identical reports.
      if (row[0].report != row[1].report) {
        std::fprintf(stderr,
                     "EQUIVALENCE VIOLATION: T=1 joint and independent "
                     "reports differ\n");
        ++failures;
      }
    } else if (row[0].imbalance >= row[1].imbalance) {
      // Shared fleet: joint planning must spread what independent stacks.
      std::fprintf(stderr,
                   "IMBALANCE VIOLATION: T=%u joint %.3f not better than "
                   "independent %.3f\n",
                   tenants, row[0].imbalance, row[1].imbalance);
      ++failures;
    }
  }

  std::printf("# determinism self-check: all cells byte-identical across two "
              "runs\n");
  report.write();
  return failures == 0 ? 0 : 1;
}
