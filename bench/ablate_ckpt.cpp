// Ablation: checkpoint interval vs crash rate on the fig13 timeline.
//
// The threaded runtime is the correctness substrate for lar::ckpt — the
// aligned-barrier protocol and exactly-once recovery identities are pinned
// in tests/test_ckpt.cpp.  The simulator stays checkpoint-free by design
// (it is the *performance* substrate), so this ablation composes measured
// fig13 windows with the checkpoint cost model instead of instrumenting the
// sim's data plane:
//
//   - a checkpoint commits at the end of every `interval`-th window and
//     costs one alignment pause (kAlignPause of the window) — barriers
//     quiesce each POI's input links before the snapshot;
//   - a crash in window w rolls the region back to the last committed
//     checkpoint and replays everything since it: recovery time is the
//     replay distance d = w - last_commit windows, and the crash window's
//     effective throughput drops to raw/(1 + d) while the replay catches up;
//   - replay volume is d windows of source input (the downstream closure of
//     a crashed server spans the whole two-stage pipeline, so the region
//     re-consumes the full inject stream since the cut).
//
// The crash schedule is a pure function of the FaultPlan seed — the same
// mix64 draw the runtime's maybe_crash() uses — evaluated per (server,
// window).  Grid: crash rates {none, ~1/run, ~1/epoch} x checkpoint
// intervals {2, 8} windows.  The tradeoff under test: short intervals pay
// alignment pauses every other window but replay almost nothing after a
// crash; long intervals run near-clean until a crash makes them re-earn up
// to a whole epoch.
//
// Every panel is run twice and the two obs reports must match byte for
// byte; a nonzero exit means the determinism invariant broke.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chaos/fault_plan.hpp"
#include "core/manager.hpp"
#include "obs/export.hpp"
#include "sim/simulator.hpp"
#include "workload/flickr_like.hpp"

using namespace lar;

namespace {

constexpr int kMinutes = 30;
constexpr int kReconfigPeriod = 10;
constexpr std::uint64_t kTuplesPerMinute = 100'000;
constexpr std::uint32_t kPadding = 8'000;
constexpr std::uint64_t kCrashSeed = 4242;
// Alignment pause per committed checkpoint, as a fraction of the window:
// the barrier wave stalls each input link between barrier arrival and
// snapshot, and the stall is amortized over the whole window.
constexpr double kAlignPause = 0.02;

struct PanelResult {
  std::vector<double> series;  // effective Ktuples/s per minute
  std::string report;          // canonical obs report (byte-stable)
  std::uint64_t checkpoints = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recovery_windows = 0;  // summed replay distances
  std::uint64_t replayed_tuples = 0;
  std::uint64_t replayed_bytes = 0;
};

// `rate` is the per-(server, window) crash probability; the expected crash
// count for a panel is rate * kMinutes * parallelism.
PanelResult run(double rate, int interval) {
  const std::uint32_t n = 6;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.nic_bandwidth = sim::kOneGbps;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager manager(topo, place, {});
  manager.set_metrics_registry(&simulator.registry());
  workload::FlickrLikeConfig wcfg;
  wcfg.padding = kPadding;
  wcfg.seed = 13;
  workload::FlickrLikeGenerator gen(wcfg);

  chaos::FaultPlan plan(kCrashSeed);
  plan.set(chaos::FaultSite::kServerCrash, {.rate = rate});

  PanelResult out;
  int last_commit = 0;  // window index of the last committed checkpoint
  for (int minute = 1; minute <= kMinutes; ++minute) {
    double eff =
        simulator.run_window(gen, kTuplesPerMinute).throughput / 1000.0;
    // Crash decision mid-window, before any end-of-window commit: the same
    // pure (site, entity, seq) draw Engine::maybe_crash() consults, with
    // the window number as the per-server event counter.
    for (std::uint32_t s = 0; s < n; ++s) {
      if (!plan.should_inject(chaos::FaultSite::kServerCrash, s,
                              static_cast<std::uint64_t>(minute))) {
        continue;
      }
      const auto d = static_cast<std::uint64_t>(minute - last_commit);
      ++out.crashes;
      out.recovery_windows += d;
      out.replayed_tuples += d * kTuplesPerMinute;
      out.replayed_bytes += d * kTuplesPerMinute * kPadding;
      eff /= 1.0 + static_cast<double>(d);
      break;  // one server crash per window is the runtime's granularity
    }
    if (minute % interval == 0) {
      ++out.checkpoints;
      last_commit = minute;
      eff *= 1.0 - kAlignPause;
    }
    out.series.push_back(eff);
    if (minute % kReconfigPeriod == 0 && minute < kMinutes) {
      simulator.reconfigure(manager);
    }
  }

  obs::Registry& reg = simulator.registry();
  reg.counter("lar_ckpt_checkpoints_total").advance_to(out.checkpoints);
  reg.counter("lar_ckpt_crashes_total").advance_to(out.crashes);
  reg.counter("lar_ckpt_recovery_windows_total")
      .advance_to(out.recovery_windows);
  reg.counter("lar_ckpt_tuples_replayed_total").advance_to(out.replayed_tuples);
  reg.counter("lar_ckpt_replayed_bytes").advance_to(out.replayed_bytes);
  out.report = obs::report_json(reg, &simulator.trace());
  return out;
}

}  // namespace

int main() {
  std::printf(
      "# Ablation — checkpoint interval vs crash rate on the fig13 "
      "timeline; parallelism 6, Flickr-like, 8kB padding, 1Gb/s network, "
      "reconfiguration every 10 min\n"
      "# crash schedule: pure function of FaultPlan seed %llu per (server, "
      "window); recovery replays from the last committed checkpoint\n"
      "# columns: minute, effective throughput (Ktuples/s) at crash rate "
      "{none, ~1/run, ~1/epoch} for each checkpoint interval\n"
      "# expected shape: the t=10min locality step survives every panel; "
      "interval=2 pays a visible alignment ripple but tiny replay dips, "
      "interval=8 runs cleaner between crashes and dips up to 8 windows "
      "deep\n",
      static_cast<unsigned long long>(kCrashSeed));

  bench::JsonBenchReport report("ablate_ckpt");
  const int intervals[] = {2, 8};
  const std::uint32_t n = 6;
  for (const int interval : intervals) {
    // Per-(server, window) rates targeting ~1 crash per run and ~1 crash
    // per checkpoint epoch respectively.
    const double rates[] = {0.0, 1.0 / (kMinutes * n),
                            1.0 / (interval * n)};
    const char* labels[] = {"none", "1-per-run", "1-per-epoch"};
    std::vector<PanelResult> results;
    for (std::size_t r = 0; r < 3; ++r) {
      PanelResult first = run(rates[r], interval);
      const PanelResult second = run(rates[r], interval);
      if (first.report != second.report) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: two runs at interval %d, crash "
                     "rate %s produced different observability reports\n",
                     interval, labels[r]);
        return 1;
      }
      report.add_panel_report(
          "interval=" + std::to_string(interval) + ",crash=" + labels[r],
          first.report);
      results.push_back(std::move(first));
    }

    std::printf("# --- checkpoint interval = %d windows ---\n", interval);
    std::printf("%-8s %-12s %-12s %-12s\n", "minute", "crash=none",
                "crash=1/run", "crash=1/epoch");
    for (int m = 0; m < kMinutes; ++m) {
      std::printf("%-8d %-12.1f %-12.1f %-12.1f\n", m + 1,
                  results[0].series[m], results[1].series[m],
                  results[2].series[m]);
    }
    for (std::size_t r = 0; r < results.size(); ++r) {
      std::printf(
          "# interval=%d crash=%s: checkpoints %llu, crashes %llu, recovery "
          "%llu windows, replay %.1f Mtuples (%.1f MB)\n",
          interval, labels[r],
          static_cast<unsigned long long>(results[r].checkpoints),
          static_cast<unsigned long long>(results[r].crashes),
          static_cast<unsigned long long>(results[r].recovery_windows),
          static_cast<double>(results[r].replayed_tuples) / 1e6,
          static_cast<double>(results[r].replayed_bytes) / 1e6);
    }
  }
  std::printf("# determinism self-check: all panels byte-identical across "
              "two runs\n");
  report.write();
  return 0;
}
