// Ablation: checkpoint interval vs crash rate on the fig13 timeline.
//
// The threaded runtime is the correctness substrate for lar::ckpt — the
// aligned-barrier protocol and exactly-once recovery identities are pinned
// in tests/test_ckpt.cpp.  The simulator stays checkpoint-free by design
// (it is the *performance* substrate), so this ablation composes measured
// fig13 windows with the checkpoint cost model instead of instrumenting the
// sim's data plane:
//
//   - a checkpoint commits at the end of every `interval`-th window and
//     costs one alignment pause (kAlignPause of the window) — barriers
//     quiesce each POI's input links before the snapshot;
//   - a crash in window w rolls the region back to the last committed
//     checkpoint and replays everything since it: recovery time is the
//     replay distance d = w - last_commit windows, and the crash window's
//     effective throughput drops to raw/(1 + d) while the replay catches up;
//   - replay volume is d windows of source input (the downstream closure of
//     a crashed server spans the whole two-stage pipeline, so the region
//     re-consumes the full inject stream since the cut).
//
// The crash schedule is a pure function of the FaultPlan seed — the same
// mix64 draw the runtime's maybe_crash() uses — evaluated per (server,
// window).  Grid: crash rates {none, ~1/run, ~1/epoch} x checkpoint
// intervals {2, 8} windows.  The tradeoff under test: short intervals pay
// alignment pauses every other window but replay almost nothing after a
// crash; long intervals run near-clean until a crash makes them re-earn up
// to a whole epoch.
//
// A second, durable section runs the REAL threaded runtime against a
// file-backed DurableCheckpointStore (ckpt/durable.hpp) over the grid
// interval x {full, incremental} x state size, and reports the alignment
// pause proxy (state captured per epoch), the bytes spilled to disk and the
// compaction count.  Gate: at the large state size, incremental epochs must
// write strictly fewer bytes than full ones.  Store directories live under
// the working directory with deterministic names, and every cell runs twice
// — the two store directories must match byte for byte (scripts/check.sh
// additionally diffs the whole working tree across two bench processes).
//
// Every panel is run twice and the two obs reports must match byte for
// byte; a nonzero exit means the determinism invariant broke.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chaos/fault_plan.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/durable.hpp"
#include "core/manager.hpp"
#include "obs/export.hpp"
#include "runtime/engine.hpp"
#include "sim/simulator.hpp"
#include "workload/flickr_like.hpp"
#include "workload/synthetic.hpp"

using namespace lar;

namespace {

constexpr int kMinutes = 30;
constexpr int kReconfigPeriod = 10;
constexpr std::uint64_t kTuplesPerMinute = 100'000;
constexpr std::uint32_t kPadding = 8'000;
constexpr std::uint64_t kCrashSeed = 4242;
// Alignment pause per committed checkpoint, as a fraction of the window:
// the barrier wave stalls each input link between barrier arrival and
// snapshot, and the stall is amortized over the whole window.
constexpr double kAlignPause = 0.02;

struct PanelResult {
  std::vector<double> series;  // effective Ktuples/s per minute
  std::string report;          // canonical obs report (byte-stable)
  std::uint64_t checkpoints = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recovery_windows = 0;  // summed replay distances
  std::uint64_t replayed_tuples = 0;
  std::uint64_t replayed_bytes = 0;
};

// `rate` is the per-(server, window) crash probability; the expected crash
// count for a panel is rate * kMinutes * parallelism.
PanelResult run(double rate, int interval) {
  const std::uint32_t n = 6;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.nic_bandwidth = sim::kOneGbps;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager manager(topo, place, {});
  manager.set_metrics_registry(&simulator.registry());
  workload::FlickrLikeConfig wcfg;
  wcfg.padding = kPadding;
  wcfg.seed = 13;
  workload::FlickrLikeGenerator gen(wcfg);

  chaos::FaultPlan plan(kCrashSeed);
  plan.set(chaos::FaultSite::kServerCrash, {.rate = rate});

  PanelResult out;
  int last_commit = 0;  // window index of the last committed checkpoint
  for (int minute = 1; minute <= kMinutes; ++minute) {
    double eff =
        simulator.run_window(gen, kTuplesPerMinute).throughput / 1000.0;
    // Crash decision mid-window, before any end-of-window commit: the same
    // pure (site, entity, seq) draw Engine::maybe_crash() consults, with
    // the window number as the per-server event counter.
    for (std::uint32_t s = 0; s < n; ++s) {
      if (!plan.should_inject(chaos::FaultSite::kServerCrash, s,
                              static_cast<std::uint64_t>(minute))) {
        continue;
      }
      const auto d = static_cast<std::uint64_t>(minute - last_commit);
      ++out.crashes;
      out.recovery_windows += d;
      out.replayed_tuples += d * kTuplesPerMinute;
      out.replayed_bytes += d * kTuplesPerMinute * kPadding;
      eff /= 1.0 + static_cast<double>(d);
      break;  // one server crash per window is the runtime's granularity
    }
    if (minute % interval == 0) {
      ++out.checkpoints;
      last_commit = minute;
      eff *= 1.0 - kAlignPause;
    }
    out.series.push_back(eff);
    if (minute % kReconfigPeriod == 0 && minute < kMinutes) {
      simulator.reconfigure(manager);
    }
  }

  obs::Registry& reg = simulator.registry();
  reg.counter("lar_ckpt_checkpoints_total").advance_to(out.checkpoints);
  reg.counter("lar_ckpt_crashes_total").advance_to(out.crashes);
  reg.counter("lar_ckpt_recovery_windows_total")
      .advance_to(out.recovery_windows);
  reg.counter("lar_ckpt_tuples_replayed_total").advance_to(out.replayed_tuples);
  reg.counter("lar_ckpt_replayed_bytes").advance_to(out.replayed_bytes);
  out.report = obs::report_json(reg, &simulator.trace());
  return out;
}

// --- durable store: the threaded runtime against real epoch files -----------

constexpr int kDurableBatches = 24;
constexpr int kDurableBatchTuples = 4'000;

struct DurableCell {
  std::uint64_t epochs = 0;
  double captured_kb_per_epoch = 0;  // alignment-pause proxy
  std::uint64_t disk_bytes = 0;
  std::uint64_t compactions = 0;
  std::string report;  // lar_ckpt_*-filtered obs report (byte-stable)
};

std::map<std::string, std::string> dir_bytes(const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    out[entry.path().filename().string()] = std::move(buf).str();
  }
  return out;
}

DurableCell run_durable(int interval, bool incremental, std::size_t keys,
                        const std::string& dir) {
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  std::filesystem::remove_all(dir);
  obs::Registry registry;
  ckpt::DurableStoreOptions sopts;
  sopts.dir = dir;
  sopts.incremental = incremental;
  sopts.compact_every = 4;
  sopts.registry = &registry;
  auto store = std::make_unique<ckpt::DurableCheckpointStore>(sopts);
  const ckpt::DurableCheckpointStore* durable = store.get();
  ckpt::CheckpointCoordinator coord(std::move(store), &registry);
  runtime::Engine engine(
      topo, place,
      [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
        if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
        return std::make_unique<runtime::CountingOperator>(op == 1 ? 0 : 1);
      },
      {.fields_mode = FieldsRouting::kTable,
       .registry = &registry,
       .checkpoint = &coord});
  engine.start();
  workload::SyntheticGenerator gen({.num_values =
                                        static_cast<std::uint32_t>(keys),
                                    .locality = 0.8,
                                    .padding = 0,
                                    .seed = 13});
  DurableCell out;
  std::uint64_t captured_bytes = 0;
  for (int batch = 1; batch <= kDurableBatches; ++batch) {
    for (int i = 0; i < kDurableBatchTuples; ++i) engine.inject(gen.next());
    engine.flush();
    if (batch % interval == 0) {
      engine.checkpoint();
      captured_bytes += coord.store().last_committed_meta().captured_state_bytes;
    }
  }
  out.epochs = coord.checkpoints_committed();
  out.captured_kb_per_epoch = out.epochs == 0
                                  ? 0.0
                                  : static_cast<double>(captured_bytes) /
                                        (1024.0 * static_cast<double>(out.epochs));
  out.disk_bytes = durable->bytes_written();
  out.compactions = durable->compactions();
  engine.publish_metrics();
  engine.shutdown();
  out.report = obs::report_json(
      registry, nullptr,
      [](std::string_view name) { return name.starts_with("lar_ckpt_"); });
  return out;
}

}  // namespace

int main() {
  std::printf(
      "# Ablation — checkpoint interval vs crash rate on the fig13 "
      "timeline; parallelism 6, Flickr-like, 8kB padding, 1Gb/s network, "
      "reconfiguration every 10 min\n"
      "# crash schedule: pure function of FaultPlan seed %llu per (server, "
      "window); recovery replays from the last committed checkpoint\n"
      "# columns: minute, effective throughput (Ktuples/s) at crash rate "
      "{none, ~1/run, ~1/epoch} for each checkpoint interval\n"
      "# expected shape: the t=10min locality step survives every panel; "
      "interval=2 pays a visible alignment ripple but tiny replay dips, "
      "interval=8 runs cleaner between crashes and dips up to 8 windows "
      "deep\n",
      static_cast<unsigned long long>(kCrashSeed));

  bench::JsonBenchReport report("ablate_ckpt");
  const int intervals[] = {2, 8};
  const std::uint32_t n = 6;
  for (const int interval : intervals) {
    // Per-(server, window) rates targeting ~1 crash per run and ~1 crash
    // per checkpoint epoch respectively.
    const double rates[] = {0.0, 1.0 / (kMinutes * n),
                            1.0 / (interval * n)};
    const char* labels[] = {"none", "1-per-run", "1-per-epoch"};
    std::vector<PanelResult> results;
    for (std::size_t r = 0; r < 3; ++r) {
      PanelResult first = run(rates[r], interval);
      const PanelResult second = run(rates[r], interval);
      if (first.report != second.report) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: two runs at interval %d, crash "
                     "rate %s produced different observability reports\n",
                     interval, labels[r]);
        return 1;
      }
      report.add_panel_report(
          "interval=" + std::to_string(interval) + ",crash=" + labels[r],
          first.report);
      results.push_back(std::move(first));
    }

    std::printf("# --- checkpoint interval = %d windows ---\n", interval);
    std::printf("%-8s %-12s %-12s %-12s\n", "minute", "crash=none",
                "crash=1/run", "crash=1/epoch");
    for (int m = 0; m < kMinutes; ++m) {
      std::printf("%-8d %-12.1f %-12.1f %-12.1f\n", m + 1,
                  results[0].series[m], results[1].series[m],
                  results[2].series[m]);
    }
    for (std::size_t r = 0; r < results.size(); ++r) {
      std::printf(
          "# interval=%d crash=%s: checkpoints %llu, crashes %llu, recovery "
          "%llu windows, replay %.1f Mtuples (%.1f MB)\n",
          interval, labels[r],
          static_cast<unsigned long long>(results[r].checkpoints),
          static_cast<unsigned long long>(results[r].crashes),
          static_cast<unsigned long long>(results[r].recovery_windows),
          static_cast<double>(results[r].replayed_tuples) / 1e6,
          static_cast<double>(results[r].replayed_bytes) / 1e6);
    }
  }
  // --- durable section: real runtime, real epoch files ----------------------
  std::printf(
      "# --- durable checkpoints: threaded runtime over a file-backed store "
      "---\n"
      "# grid: interval x {full, incremental} x resident keyspace; %d "
      "batches of %d tuples, compaction every 4 deltas\n"
      "# columns: cell, epochs, captured KB/epoch (alignment-pause proxy), "
      "disk KB written, compactions\n",
      kDurableBatches, kDurableBatchTuples);
  const std::size_t key_sizes[] = {200, 20'000};
  const char* key_labels[] = {"small", "large"};
  // disk bytes at [interval index][mode][state size] for the gate below.
  std::uint64_t disk[2][2][2] = {};
  for (std::size_t ii = 0; ii < 2; ++ii) {
    const int interval = intervals[ii];
    for (int mode = 0; mode < 2; ++mode) {
      const bool incremental = mode == 1;
      for (std::size_t ks = 0; ks < 2; ++ks) {
        const std::string cell = "interval=" + std::to_string(interval) +
                                 ",mode=" +
                                 (incremental ? "incremental" : "full") +
                                 ",state=" + key_labels[ks];
        const std::string base = "ablate_ckpt_store/i" +
                                 std::to_string(interval) +
                                 (incremental ? "_inc_" : "_full_") +
                                 key_labels[ks];
        const DurableCell first =
            run_durable(interval, incremental, key_sizes[ks], base + "_a");
        const DurableCell second =
            run_durable(interval, incremental, key_sizes[ks], base + "_b");
        if (first.report != second.report ||
            dir_bytes(base + "_a") != dir_bytes(base + "_b")) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: two same-seed durable runs at "
                       "%s differ (report or store files)\n",
                       cell.c_str());
          return 1;
        }
        disk[ii][mode][ks] = first.disk_bytes;
        report.add_panel_report("durable," + cell, first.report);
        std::printf("%-44s %-7llu %-10.1f %-10.1f %llu\n", cell.c_str(),
                    static_cast<unsigned long long>(first.epochs),
                    first.captured_kb_per_epoch,
                    static_cast<double>(first.disk_bytes) / 1024.0,
                    static_cast<unsigned long long>(first.compactions));
      }
    }
  }
  for (std::size_t ii = 0; ii < 2; ++ii) {
    if (disk[ii][1][1] >= disk[ii][0][1]) {
      std::fprintf(stderr,
                   "GATE FAILURE: incremental epochs wrote %llu bytes, full "
                   "wrote %llu at the large state size (interval %d) — "
                   "deltas must be strictly cheaper\n",
                   static_cast<unsigned long long>(disk[ii][1][1]),
                   static_cast<unsigned long long>(disk[ii][0][1]),
                   intervals[ii]);
      return 1;
    }
  }
  std::printf(
      "# durability gate: incremental < full disk bytes at the large state "
      "size for every interval\n");

  std::printf("# determinism self-check: all panels byte-identical across "
              "two runs\n");
  report.write();
  return 0;
}
