// Figure 14: average throughput with and without reconfiguration for
// parallelisms 2-6, padding 4 kB, on the 1 Gb/s network (Flickr-like
// workload).  With reconfiguration, the average is measured after the first
// reconfiguration, as in the paper.
#include <cstdio>

#include "core/manager.hpp"
#include "sim/simulator.hpp"
#include "workload/flickr_like.hpp"

using namespace lar;

namespace {

constexpr std::uint64_t kWindow = 150'000;

/// (throughput w/o reconfig, throughput after first reconfig) in Ktuples/s.
std::pair<double, double> run(std::uint32_t parallelism) {
  const Topology topo = make_two_stage_topology(parallelism);
  const Placement place = Placement::round_robin(topo, parallelism);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.nic_bandwidth = sim::kOneGbps;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager manager(topo, place, {});
  workload::FlickrLikeConfig wcfg;
  wcfg.padding = 4'000;
  wcfg.seed = 14;
  workload::FlickrLikeGenerator gen(wcfg);

  const double before = simulator.run_window(gen, kWindow).throughput;
  simulator.reconfigure(manager);
  const double after = simulator.run_window(gen, kWindow).throughput;
  return {before / 1000.0, after / 1000.0};
}

}  // namespace

int main() {
  std::printf(
      "# Figure 14 — average throughput vs parallelism, padding 4kB, "
      "1 Gb/s network\n"
      "# columns: parallelism, w/ reconfiguration, w/o reconfiguration "
      "(Ktuples/s)\n"
      "# expected shape: the gap between the two grows with parallelism\n");
  std::printf("%-12s %-12s %-12s %-8s\n", "parallelism", "w/reconf",
              "w/o-reconf", "gain");
  for (std::uint32_t n = 2; n <= 6; ++n) {
    const auto [without, with] = run(n);
    std::printf("%-12u %-12.1f %-12.1f %-8.2f\n", n, with, without,
                with / without);
  }
  return 0;
}
