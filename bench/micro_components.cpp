// Component micro-benchmarks (google-benchmark): the per-tuple and
// per-reconfiguration costs that the paper argues are small enough for
// online use — SpaceSaving updates, routing decisions, graph partitioning,
// end-to-end plan computation and the lar::obs instruments.
//
// The custom main() additionally (a) measures the engine's hot-path
// throughput with observability attached vs the no-op disabled mode (the
// acceptance bar is a <5% delta; the per-tuple path is registry-free by
// design, so the true cost is a couple of null checks) and (b) writes a
// deterministic BENCH_micro_components.json snapshot of one instrumented
// engine reconfiguration round.
#include <algorithm>
#include <benchmark/benchmark.h>
#include <chrono>

#include "bench_util.hpp"
#include "core/manager.hpp"
#include "core/pair_stats.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "partition/partitioner.hpp"
#include "runtime/engine.hpp"
#include "sim/pipeline.hpp"
#include "sketch/space_saving.hpp"
#include "sketch/zipf.hpp"
#include "topology/routing.hpp"
#include "workload/synthetic.hpp"
#include "workload/twitter_like.hpp"

namespace {

using namespace lar;

void BM_SpaceSavingAdd(benchmark::State& state) {
  sketch::SpaceSaving<std::uint64_t> sketch(
      static_cast<std::size_t>(state.range(0)));
  sketch::ZipfSampler zipf(100'000, 1.1);
  Rng rng(1);
  std::vector<std::uint64_t> keys(1 << 14);
  for (auto& k : keys) k = zipf.sample(rng);
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.add(keys[i++ & (keys.size() - 1)]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingAdd)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_PairStatsRecord(benchmark::State& state) {
  core::PairStats stats(1 << 16);
  sketch::ZipfSampler zipf(10'000, 1.1);
  Rng rng(2);
  std::vector<std::pair<Key, Key>> pairs(1 << 14);
  for (auto& p : pairs) p = {zipf.sample(rng), 1'000'000 + zipf.sample(rng)};
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [in, out] = pairs[i++ & (pairs.size() - 1)];
    stats.record(in, out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PairStatsRecord);

void BM_HashRouting(benchmark::State& state) {
  HashFieldsRouter router(0, 6);
  Tuple t{.fields = {12345, 678}, .padding = 0};
  for (auto _ : state) {
    t.fields[0] += 1;
    benchmark::DoNotOptimize(router.route(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashRouting);

void BM_TableRouting(benchmark::State& state) {
  auto table = std::make_shared<RoutingTable>();
  for (Key k = 0; k < static_cast<Key>(state.range(0)); ++k) {
    table->assign(k, static_cast<InstanceIndex>(k % 6));
  }
  TableFieldsRouter router(0, 6, table);
  Tuple t{.fields = {0, 0}, .padding = 0};
  Key k = 0;
  for (auto _ : state) {
    t.fields[0] = (k++) % (2 * state.range(0));  // 50% hits, 50% fallback
    benchmark::DoNotOptimize(router.route(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableRouting)->Arg(1 << 10)->Arg(1 << 17);

void BM_PartitionKeyGraph(benchmark::State& state) {
  // A bipartite key graph of the size a weekly reconfiguration handles.
  const std::size_t tags = static_cast<std::size_t>(state.range(0));
  core::BipartiteGraphBuilder builder;
  std::vector<core::PairCount> pairs;
  Rng rng(3);
  sketch::ZipfSampler loc_zipf(300, 1.0);
  for (std::size_t t = 0; t < tags; ++t) {
    // Each tag co-occurs with a home and two noise locations.
    pairs.push_back({loc_zipf.sample(rng), 1'000'000 + t, 50});
    pairs.push_back({loc_zipf.sample(rng), 1'000'000 + t, 5});
    pairs.push_back({loc_zipf.sample(rng), 1'000'000 + t, 3});
  }
  builder.add_pairs(1, 2, pairs);
  const core::KeyGraph kg = builder.build();
  partition::PartitionOptions opts;
  opts.num_parts = 6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::partition_graph(kg.graph, opts));
  }
  state.counters["vertices"] =
      static_cast<double>(kg.graph.num_vertices());
}
BENCHMARK(BM_PartitionKeyGraph)->Arg(2'000)->Arg(20'000)->Unit(benchmark::kMillisecond);

void BM_ManagerComputePlan(benchmark::State& state) {
  // Full plan computation (graph build + partition + tables + moves) on a
  // realistic weekly statistics snapshot.
  const Topology topo = make_two_stage_topology(6);
  const Placement place = Placement::round_robin(topo, 6);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  sim::PipelineModel model(topo, place, cfg, FieldsRouting::kHash);
  workload::TwitterLikeGenerator gen({});
  for (int i = 0; i < 200'000; ++i) model.process(gen.next());
  const auto stats = model.collect_hop_stats();
  for (auto _ : state) {
    core::Manager manager(topo, place, {});
    benchmark::DoNotOptimize(manager.compute_plan(stats));
  }
  state.counters["pairs"] = static_cast<double>(stats[0].pairs.size());
}
BENCHMARK(BM_ManagerComputePlan)->Unit(benchmark::kMillisecond);

void BM_PipelineProcess(benchmark::State& state) {
  const Topology topo = make_two_stage_topology(6);
  const Placement place = Placement::round_robin(topo, 6);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kAlignedField0;
  sim::PipelineModel model(topo, place, cfg, FieldsRouting::kHash);
  workload::SyntheticGenerator gen(
      {.num_values = 720, .locality = 0.8, .padding = 0, .seed = 4});
  for (auto _ : state) {
    model.process(gen.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PipelineProcess);

// --- lar::obs instruments --------------------------------------------------

void BM_ObsCounterInc(benchmark::State& state) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("bench_counter_total");
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Registry reg;
  obs::Histogram& h =
      reg.histogram("bench_hist", {1, 2, 4, 8, 16, 32, 64, 128});
  double v = 0.0;
  for (auto _ : state) {
    v = v < 200.0 ? v + 1.0 : 0.0;
    h.observe(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsRegistryLookup(benchmark::State& state) {
  // Worst-case usage: resolving the instrument by name + labels every time
  // instead of caching the reference (what publish-time code paths do).
  obs::Registry reg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        &reg.counter("bench_lookup_total", {{"op", "count"}, {"inst", "3"}}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsRegistryLookup);

/// Populates `reg` like a mid-size instrumented run: `samples` counter and
/// gauge samples spread across two families.
void populate_registry(obs::Registry& reg, std::int64_t samples) {
  for (std::int64_t i = 0; i < samples; ++i) {
    const obs::Labels labels = {{"op", "count"},
                                {"inst", std::to_string(i)}};
    reg.counter("bench_tuples_total", labels)
        .inc(static_cast<std::uint64_t>(i));
    reg.gauge("bench_depth", labels).set(static_cast<double>(i % 7));
  }
}

void BM_ObsRegistrySnapshot(benchmark::State& state) {
  // Cost of one canonical families() walk — what every timeline tick and
  // every exporter pass pays.
  obs::Registry reg;
  populate_registry(reg, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.families());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsRegistrySnapshot)->Arg(16)->Arg(256);

void BM_ObsTimelineTick(benchmark::State& state) {
  // Steady-state timeline tick: values unchanged between ticks, so each
  // tick flattens the registry and emits an empty delta — the per-window
  // cost fig13 pays with a timeline attached.
  obs::Registry reg;
  populate_registry(reg, state.range(0));
  obs::Timeline timeline;
  double vtime = 0.0;
  for (auto _ : state) {
    timeline.tick(reg, vtime += 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsTimelineTick)->Arg(16)->Arg(256);

// --- custom main: obs overhead check + BENCH json --------------------------

runtime::OperatorFactory counting_factory() {
  return [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
    if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
    return std::make_unique<runtime::CountingOperator>(op == 1 ? 0u : 1u);
  };
}

/// Pushes `tuples` through a small engine and returns the elapsed seconds of
/// the inject+flush hot loop, with observability attached or in the no-op
/// disabled mode.
double engine_hot_loop_seconds(bool obs_on, std::uint64_t tuples) {
  const std::uint32_t n = 2;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  obs::Registry reg;
  obs::TraceRecorder trace;
  runtime::EngineOptions opts;
  opts.fields_mode = FieldsRouting::kHash;
  if (obs_on) {
    opts.registry = &reg;
    opts.trace = &trace;
  }
  runtime::Engine engine(topo, place, counting_factory(), opts);
  engine.start();
  workload::SyntheticGenerator gen(
      {.num_values = 500, .locality = 0.8, .padding = 16, .seed = 5});
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < tuples; ++i) engine.inject(gen.next());
  engine.flush();
  const auto t1 = std::chrono::steady_clock::now();
  if (obs_on) engine.publish_metrics();
  engine.shutdown();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// One deterministic instrumented engine round (inject -> reconfigure ->
/// inject -> publish) whose registry + trace feed BENCH_micro_components.json.
void write_bench_json() {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  obs::Registry reg;
  obs::TraceRecorder trace;
  runtime::EngineOptions opts;
  opts.fields_mode = FieldsRouting::kHash;
  opts.pair_stats_capacity = 0;  // exact stats -> deterministic plans
  opts.registry = &reg;
  opts.trace = &trace;
  runtime::Engine engine(topo, place, counting_factory(), opts);
  engine.start();
  core::Manager manager(topo, place, {});
  manager.set_metrics_registry(&reg);
  workload::SyntheticGenerator gen(
      {.num_values = 300, .locality = 0.8, .padding = 16, .seed = 6});
  for (int i = 0; i < 20'000; ++i) engine.inject(gen.next());
  engine.flush();  // quiescent: reconfigure without buffering
  (void)engine.reconfigure(manager);
  for (int i = 0; i < 20'000; ++i) engine.inject(gen.next());
  engine.flush();
  engine.publish_metrics();
  bench::JsonBenchReport report("micro_components");
  // Queue high-water marks depend on thread scheduling; everything else in
  // this quiescent round is deterministic, keeping the file byte-stable.
  report.add_panel("engine_reconfig_round", reg, &trace,
                   [](std::string_view name) {
                     return name.substr(0, 10) != "lar_queue_";
                   });
  report.write();
  engine.shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Hot-path overhead of observability: medians of interleaved repetitions.
  constexpr std::uint64_t kTuples = 100'000;
  std::vector<double> off;
  std::vector<double> on;
  engine_hot_loop_seconds(false, kTuples);  // warm-up
  for (int rep = 0; rep < 3; ++rep) {
    off.push_back(engine_hot_loop_seconds(false, kTuples));
    on.push_back(engine_hot_loop_seconds(true, kTuples));
  }
  std::sort(off.begin(), off.end());
  std::sort(on.begin(), on.end());
  const double base = off[off.size() / 2];
  const double inst = on[on.size() / 2];
  std::printf(
      "# engine hot path, %llu tuples: obs-off %.0f tuples/s, obs-on %.0f "
      "tuples/s, delta %+.2f%% (acceptance: <5%%)\n",
      static_cast<unsigned long long>(kTuples),
      static_cast<double>(kTuples) / base, static_cast<double>(kTuples) / inst,
      (inst - base) / base * 100.0);

  // The SPSC ring slot size: every lane hand-off moves one Message by value
  // (DESIGN.md §13), so growth here is a data-plane regression.  Tracked as a
  // printed report, not an assert — alternates legitimately differ per ABI.
  std::printf("# sizeof(lar::runtime::Message) = %zu bytes (SPSC ring slot); "
              "sizeof(Tuple) = %zu, sizeof(DataMsg) = %zu\n",
              sizeof(runtime::Message), sizeof(Tuple), sizeof(runtime::DataMsg));

  write_bench_json();
  return 0;
}
