// Component micro-benchmarks (google-benchmark): the per-tuple and
// per-reconfiguration costs that the paper argues are small enough for
// online use — SpaceSaving updates, routing decisions, graph partitioning
// and end-to-end plan computation.
#include <benchmark/benchmark.h>

#include "core/manager.hpp"
#include "core/pair_stats.hpp"
#include "partition/partitioner.hpp"
#include "sim/pipeline.hpp"
#include "sketch/space_saving.hpp"
#include "sketch/zipf.hpp"
#include "topology/routing.hpp"
#include "workload/synthetic.hpp"
#include "workload/twitter_like.hpp"

namespace {

using namespace lar;

void BM_SpaceSavingAdd(benchmark::State& state) {
  sketch::SpaceSaving<std::uint64_t> sketch(
      static_cast<std::size_t>(state.range(0)));
  sketch::ZipfSampler zipf(100'000, 1.1);
  Rng rng(1);
  std::vector<std::uint64_t> keys(1 << 14);
  for (auto& k : keys) k = zipf.sample(rng);
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.add(keys[i++ & (keys.size() - 1)]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingAdd)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_PairStatsRecord(benchmark::State& state) {
  core::PairStats stats(1 << 16);
  sketch::ZipfSampler zipf(10'000, 1.1);
  Rng rng(2);
  std::vector<std::pair<Key, Key>> pairs(1 << 14);
  for (auto& p : pairs) p = {zipf.sample(rng), 1'000'000 + zipf.sample(rng)};
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [in, out] = pairs[i++ & (pairs.size() - 1)];
    stats.record(in, out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PairStatsRecord);

void BM_HashRouting(benchmark::State& state) {
  HashFieldsRouter router(0, 6);
  Tuple t{.fields = {12345, 678}, .padding = 0};
  for (auto _ : state) {
    t.fields[0] += 1;
    benchmark::DoNotOptimize(router.route(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashRouting);

void BM_TableRouting(benchmark::State& state) {
  auto table = std::make_shared<RoutingTable>();
  for (Key k = 0; k < static_cast<Key>(state.range(0)); ++k) {
    table->assign(k, static_cast<InstanceIndex>(k % 6));
  }
  TableFieldsRouter router(0, 6, table);
  Tuple t{.fields = {0, 0}, .padding = 0};
  Key k = 0;
  for (auto _ : state) {
    t.fields[0] = (k++) % (2 * state.range(0));  // 50% hits, 50% fallback
    benchmark::DoNotOptimize(router.route(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableRouting)->Arg(1 << 10)->Arg(1 << 17);

void BM_PartitionKeyGraph(benchmark::State& state) {
  // A bipartite key graph of the size a weekly reconfiguration handles.
  const std::size_t tags = static_cast<std::size_t>(state.range(0));
  core::BipartiteGraphBuilder builder;
  std::vector<core::PairCount> pairs;
  Rng rng(3);
  sketch::ZipfSampler loc_zipf(300, 1.0);
  for (std::size_t t = 0; t < tags; ++t) {
    // Each tag co-occurs with a home and two noise locations.
    pairs.push_back({loc_zipf.sample(rng), 1'000'000 + t, 50});
    pairs.push_back({loc_zipf.sample(rng), 1'000'000 + t, 5});
    pairs.push_back({loc_zipf.sample(rng), 1'000'000 + t, 3});
  }
  builder.add_pairs(1, 2, pairs);
  const core::KeyGraph kg = builder.build();
  partition::PartitionOptions opts;
  opts.num_parts = 6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::partition_graph(kg.graph, opts));
  }
  state.counters["vertices"] =
      static_cast<double>(kg.graph.num_vertices());
}
BENCHMARK(BM_PartitionKeyGraph)->Arg(2'000)->Arg(20'000)->Unit(benchmark::kMillisecond);

void BM_ManagerComputePlan(benchmark::State& state) {
  // Full plan computation (graph build + partition + tables + moves) on a
  // realistic weekly statistics snapshot.
  const Topology topo = make_two_stage_topology(6);
  const Placement place = Placement::round_robin(topo, 6);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  sim::PipelineModel model(topo, place, cfg, FieldsRouting::kHash);
  workload::TwitterLikeGenerator gen({});
  for (int i = 0; i < 200'000; ++i) model.process(gen.next());
  const auto stats = model.collect_hop_stats();
  for (auto _ : state) {
    core::Manager manager(topo, place, {});
    benchmark::DoNotOptimize(manager.compute_plan(stats));
  }
  state.counters["pairs"] = static_cast<double>(stats[0].pairs.size());
}
BENCHMARK(BM_ManagerComputePlan)->Unit(benchmark::kMillisecond);

void BM_PipelineProcess(benchmark::State& state) {
  const Topology topo = make_two_stage_topology(6);
  const Placement place = Placement::round_robin(topo, 6);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kAlignedField0;
  sim::PipelineModel model(topo, place, cfg, FieldsRouting::kHash);
  workload::SyntheticGenerator gen(
      {.num_values = 720, .locality = 0.8, .padding = 0, .seed = 4});
  for (auto _ : state) {
    model.process(gen.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PipelineProcess);

}  // namespace
