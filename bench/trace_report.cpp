// trace_report — the obs v2 span-tree report for one fig13-style
// reconfiguration wave.
//
// Runs the two-stage Flickr-like simulation with spans enabled, triggers a
// reconfiguration at window 10, rebuilds the causal span tree from the
// recorded trace and prints its virtual-time critical path: gather ->
// compute -> stage -> slowest ack -> propagate -> migrate -> last drain,
// with per-phase begin/end vtimes from the SimConfig vt_* cost model.
//
// Determinism self-check: the whole pipeline runs twice with the same seed
// and the rendered report plus the timeline JSON must be byte-identical
// (exit 1 otherwise) — the "with one attached" half of the obs v2
// byte-identity invariant.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/manager.hpp"
#include "obs/probe.hpp"
#include "obs/span_report.hpp"
#include "obs/timeline.hpp"
#include "sim/simulator.hpp"
#include "workload/flickr_like.hpp"

using namespace lar;

namespace {

constexpr int kWindows = 12;
constexpr int kReconfigWindow = 10;
constexpr std::uint64_t kTuplesPerWindow = 100'000;

struct RunOutput {
  std::string report;    ///< rendered span-tree + critical-path report
  std::string timeline;  ///< timeline JSON over all windows
};

RunOutput run_once() {
  const std::uint32_t n = 6;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager manager(topo, place, {});
  manager.set_metrics_registry(&simulator.registry());
  obs::Timeline timeline;
  obs::Probe probe;
  simulator.trace().set_spans_enabled(true);
  simulator.set_timeline(&timeline);
  simulator.set_probe(&probe);
  workload::FlickrLikeConfig wcfg;
  wcfg.padding = 8'000;
  wcfg.seed = 13;
  workload::FlickrLikeGenerator gen(wcfg);
  for (int w = 1; w <= kWindows; ++w) {
    (void)simulator.run_window(gen, kTuplesPerWindow);
    if (w == kReconfigWindow) (void)simulator.reconfigure(manager);
  }
  const obs::SpanTree tree =
      obs::build_span_tree(simulator.trace().canonical_events());
  return RunOutput{obs::render_span_report(tree),
                   obs::timeline_to_json(timeline)};
}

}  // namespace

int main() {
  std::printf(
      "# trace_report — virtual-time critical path of one reconfiguration "
      "wave (fig13 setup: parallelism 6, Flickr-like, reconfigure at window "
      "%d of %d)\n"
      "# expected shape: one wave span whose child phases run gather -> "
      "compute -> stage -> ack -> propagate -> migrate back to back; the "
      "critical path total is the wave's virtual duration\n",
      kReconfigWindow, kWindows);

  const RunOutput a = run_once();
  const RunOutput b = run_once();
  if (a.report != b.report || a.timeline != b.timeline) {
    std::printf(
        "# FAIL: same-seed outputs differ (span report %s, timeline JSON "
        "%s)\n",
        a.report == b.report ? "identical" : "DIFFER",
        a.timeline == b.timeline ? "identical" : "DIFFER");
    return 1;
  }
  std::fputs(a.report.c_str(), stdout);
  std::printf(
      "# determinism self-check: span report and timeline JSON "
      "byte-identical across two same-seed runs\n");
  return 0;
}
