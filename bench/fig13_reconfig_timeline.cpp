// Figure 13: evolution of throughput over a 30-minute run on the stable
// Flickr-like workload, with and without a reconfiguration every 10 minutes,
// for paddings {4, 8, 12} kB and networks {10 Gb/s, 1 Gb/s}, parallelism 6.
//
// With a stable workload only the FIRST reconfiguration matters (the paper
// observes the step at t = 10 min and flat behaviour after); the later ones
// at t = 20 min are near no-ops and must not hurt.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/manager.hpp"
#include "obs/probe.hpp"
#include "obs/timeline.hpp"
#include "sim/simulator.hpp"
#include "workload/flickr_like.hpp"

using namespace lar;

namespace {

constexpr int kMinutes = 30;
constexpr int kReconfigPeriod = 10;
constexpr std::uint64_t kTuplesPerMinute = 100'000;

/// Per-minute sustainable throughput for one configuration.  When `report`
/// is given, the run is fully instrumented with obs v2 — spans enabled on
/// the trace, a per-window timeline and a health probe attached — and the
/// simulator's registry plus the span-carrying reconfiguration trace are
/// captured as panel `panel_label` (the timeline lands in `timelines`).
std::vector<double> run(std::uint32_t padding, double bandwidth,
                        bool with_reconfig,
                        bench::JsonBenchReport* report = nullptr,
                        const std::string& panel_label = {},
                        bench::JsonTimelineArtifact* timelines = nullptr) {
  const std::uint32_t n = 6;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.nic_bandwidth = bandwidth;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager manager(topo, place, {});
  manager.set_metrics_registry(&simulator.registry());
  obs::Timeline timeline;
  obs::Probe probe;
  if (report != nullptr) {
    simulator.trace().set_spans_enabled(true);
    simulator.set_timeline(&timeline);
    simulator.set_probe(&probe);
  }
  workload::FlickrLikeConfig wcfg;
  wcfg.padding = padding;
  wcfg.seed = 13;
  workload::FlickrLikeGenerator gen(wcfg);

  std::vector<double> series;
  for (int minute = 1; minute <= kMinutes; ++minute) {
    series.push_back(
        simulator.run_window(gen, kTuplesPerMinute).throughput / 1000.0);
    if (with_reconfig && minute % kReconfigPeriod == 0 &&
        minute < kMinutes) {
      simulator.reconfigure(manager);
    }
  }
  if (report != nullptr) {
    report->add_panel(panel_label, simulator.registry(), &simulator.trace());
    if (timelines != nullptr) timelines->add_panel(panel_label, timeline);
  }
  return series;
}

}  // namespace

int main() {
  std::printf(
      "# Figure 13 — throughput over time, reconfiguration every 10 min vs "
      "none; parallelism 6, Flickr-like stable workload\n"
      "# columns: minute, w/ reconfiguration, w/o reconfiguration "
      "(Ktuples/s)\n"
      "# expected shape: a step increase right after t=10min sustained for "
      "the rest of the run; the gain grows with padding and is larger on the "
      "1 Gb/s network; reconfiguration itself causes no dip\n");

  bench::JsonBenchReport report("fig13_reconfig_timeline");
  bench::JsonTimelineArtifact timelines("fig13_reconfig_timeline");
  char panel = 'a';
  for (const double bandwidth : {sim::kTenGbps, sim::kOneGbps}) {
    for (const std::uint32_t padding : {4'000u, 8'000u, 12'000u}) {
      const std::string label =
          std::string(1, panel) + ":" +
          (bandwidth == sim::kTenGbps ? "10Gbps" : "1Gbps") + ",padding=" +
          std::to_string(padding / 1000) + "kB";
      std::printf("\n# (%c) network=%s, padding=%ukB\n", panel++,
                  bandwidth == sim::kTenGbps ? "10Gb/s" : "1Gb/s",
                  padding / 1000);
      const auto with = run(padding, bandwidth, true, &report, label,
                            &timelines);
      const auto without = run(padding, bandwidth, false);
      std::printf("%-8s %-12s %-12s\n", "minute", "w/reconf", "w/o-reconf");
      for (int m = 0; m < kMinutes; ++m) {
        std::printf("%-8d %-12.1f %-12.1f\n", m + 1, with[m], without[m]);
      }
      double avg_after = 0;
      for (int m = kReconfigPeriod; m < kMinutes; ++m) {
        avg_after += with[m] / (kMinutes - kReconfigPeriod);
      }
      std::printf("# gain after first reconfiguration: %.2fx\n",
                  avg_after / without[0]);
    }
  }
  report.write();
  timelines.write();
  return 0;
}
