// Ablation: multilevel partitioner design choices (DESIGN.md §5).
//
// On key graphs harvested from the Twitter-like workload, measures how edge
// cut, balance and wall time react to (a) disabling FM refinement,
// (b) disabling coarsening, (c) the number of initial-partition trials, and
// (d) sweeping the balance constraint α (the locality/balance trade-off the
// paper fixes at Metis' default 1.03).
#include <chrono>
#include <cstdio>

#include "core/bipartite.hpp"
#include "core/manager.hpp"
#include "partition/partitioner.hpp"
#include "partition/quality.hpp"
#include "sim/pipeline.hpp"
#include "workload/twitter_like.hpp"

using namespace lar;

namespace {

core::KeyGraph harvest_key_graph(std::uint64_t tuples) {
  const Topology topo = make_two_stage_topology(6);
  const Placement place = Placement::round_robin(topo, 6);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.pair_stats_capacity = 0;
  sim::PipelineModel model(topo, place, cfg, FieldsRouting::kHash);
  workload::TwitterLikeGenerator gen({});
  for (std::uint64_t i = 0; i < tuples; ++i) model.process(gen.next());
  core::BipartiteGraphBuilder builder;
  for (const auto& hop : model.collect_hop_stats()) {
    builder.add_pairs(hop.in_op, hop.out_op, hop.pairs);
  }
  return builder.build();
}

struct Row {
  std::uint64_t cut;
  double imbalance;
  double millis;
};

Row run(const partition::Graph& g, const partition::PartitionOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = partition::partition_graph(g, opts);
  const auto t1 = std::chrono::steady_clock::now();
  return Row{result.edge_cut, result.achieved_imbalance,
             std::chrono::duration<double, std::milli>(t1 - t0).count()};
}

void print_row(const char* label, const Row& row,
               std::uint64_t total_weight) {
  std::printf("%-28s cut=%-10llu (%.1f%% of weight)  imbalance=%-6.3f %.1f ms\n",
              label, static_cast<unsigned long long>(row.cut),
              100.0 * static_cast<double>(row.cut) /
                  static_cast<double>(total_weight),
              row.imbalance, row.millis);
}

}  // namespace

int main() {
  std::printf(
      "# Ablation — multilevel partitioner (key graph from 300k Twitter-like "
      "tuples, 6 parts)\n");
  const core::KeyGraph kg = harvest_key_graph(300'000);
  const partition::Graph& g = kg.graph;
  const std::uint64_t w = g.total_edge_weight();
  std::printf("# graph: %zu vertices, %zu edges, total pair weight %llu\n\n",
              g.num_vertices(), g.num_edges(),
              static_cast<unsigned long long>(w));

  partition::PartitionOptions base;
  base.num_parts = 6;
  print_row("baseline (full multilevel)", run(g, base), w);

  partition::PartitionOptions no_fm = base;
  no_fm.enable_refinement = false;
  print_row("no FM refinement", run(g, no_fm), w);

  partition::PartitionOptions no_coarsen = base;
  no_coarsen.coarsen_to = 1u << 30;  // never coarsen
  print_row("no coarsening", run(g, no_coarsen), w);

  partition::PartitionOptions one_trial = base;
  one_trial.initial_trials = 1;
  print_row("1 initial trial (vs 4)", run(g, one_trial), w);

  partition::PartitionOptions many_trials = base;
  many_trials.initial_trials = 16;
  print_row("16 initial trials", run(g, many_trials), w);

  std::printf("\n# alpha sweep: locality/balance trade-off (expected "
              "locality = 1 - cut/weight)\n");
  std::printf("%-8s %-18s %-10s\n", "alpha", "expected-locality", "imbalance");
  for (const double alpha : {1.001, 1.03, 1.10, 1.25, 1.50, 2.00}) {
    partition::PartitionOptions opts = base;
    opts.alpha = alpha;
    const Row row = run(g, opts);
    std::printf("%-8.3f %-18.3f %-10.3f\n", alpha,
                1.0 - static_cast<double>(row.cut) / static_cast<double>(w),
                row.imbalance);
  }
  return 0;
}
