// Ablation: the fig13 reconfiguration timeline under injected faults.
//
// Re-runs the stable Flickr-like timeline (reconfiguration every 10 minutes,
// parallelism 6, 8 kB padding, 1 Gb/s network — the panel where
// reconfiguration matters most) with the protocol-level fault sites armed at
// rates {0, 1%, 5%}: pair-statistics reports lost or delayed a gather epoch,
// migration payloads redelivered or duplicated.  The claim under test is the
// paper's robustness story: the locality step survives partial statistics,
// because a plan computed from a sampled subset of the pair distribution
// still co-locates the heavy pairs, and every migration fault is absorbed by
// redelivery/dedup accounting rather than by losing state.
//
// Chaos is deterministic by construction (a FaultPlan is a pure function of
// its seed), so this bench double-checks its own reproducibility: every rate
// is run twice and the two obs reports must match byte for byte — a nonzero
// exit means the determinism invariant broke.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "core/manager.hpp"
#include "sim/simulator.hpp"
#include "workload/flickr_like.hpp"

using namespace lar;

namespace {

constexpr int kMinutes = 30;
constexpr int kReconfigPeriod = 10;
constexpr std::uint64_t kTuplesPerMinute = 100'000;
constexpr std::uint64_t kChaosSeed = 1913;

struct TimelineResult {
  std::vector<double> series;  // Ktuples/s per minute
  std::string report;          // canonical obs report (byte-stable)
  std::uint64_t faults = 0;    // total faults fired across all sites
  std::uint64_t stats_lost = 0;
  std::uint64_t stats_stale = 0;
  std::uint64_t migrate_faults = 0;
};

TimelineResult run(double fault_rate) {
  const std::uint32_t n = 6;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.nic_bandwidth = sim::kOneGbps;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  if (fault_rate > 0.0) {
    chaos::FaultPlan plan(kChaosSeed);
    plan.set(chaos::FaultSite::kStatsLoss, {.rate = fault_rate});
    plan.set(chaos::FaultSite::kStatsDelay, {.rate = fault_rate});
    plan.set(chaos::FaultSite::kMigrateDelay,
             {.rate = fault_rate, .magnitude = 3});
    plan.set(chaos::FaultSite::kMigrateDuplicate, {.rate = fault_rate});
    simulator.set_fault_plan(plan);
  }
  core::Manager manager(topo, place, {});
  manager.set_metrics_registry(&simulator.registry());
  workload::FlickrLikeConfig wcfg;
  wcfg.padding = 8'000;
  wcfg.seed = 13;
  workload::FlickrLikeGenerator gen(wcfg);

  TimelineResult out;
  for (int minute = 1; minute <= kMinutes; ++minute) {
    out.series.push_back(
        simulator.run_window(gen, kTuplesPerMinute).throughput / 1000.0);
    if (minute % kReconfigPeriod == 0 && minute < kMinutes) {
      simulator.reconfigure(manager);
    }
  }
  out.report = obs::report_json(simulator.registry(), &simulator.trace());
  if (chaos::Injector* inj = simulator.injector()) {
    for (std::size_t s = 0; s < chaos::kNumFaultSites; ++s) {
      out.faults += inj->fired(static_cast<chaos::FaultSite>(s));
    }
    out.stats_lost = inj->fired(chaos::FaultSite::kStatsLoss);
    out.stats_stale = inj->fired(chaos::FaultSite::kStatsDelay);
    out.migrate_faults = inj->fired(chaos::FaultSite::kMigrateDelay) +
                         inj->fired(chaos::FaultSite::kMigrateDuplicate);
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "# Ablation — fig13 reconfiguration timeline under chaos; parallelism "
      "6, Flickr-like, 8kB padding, 1Gb/s network, reconfiguration every 10 "
      "min\n"
      "# fault sites: stats loss/delay + migrate delay/duplicate, each at "
      "the panel's rate (seed %llu)\n"
      "# columns: minute, throughput at fault rate {0%%, 1%%, 5%%} "
      "(Ktuples/s)\n"
      "# expected shape: the t=10min locality step survives all rates — "
      "plans from partial statistics still co-locate the heavy pairs; "
      "migration faults cost recovery work, never state\n",
      static_cast<unsigned long long>(kChaosSeed));

  bench::JsonBenchReport report("ablate_chaos");
  const double rates[] = {0.0, 0.01, 0.05};
  std::vector<TimelineResult> results;
  for (const double rate : rates) {
    TimelineResult first = run(rate);
    const TimelineResult second = run(rate);
    if (first.report != second.report) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: two runs at fault rate %.2f "
                   "produced different observability reports\n",
                   rate);
      return 1;
    }
    const std::string label =
        "rate=" + std::to_string(static_cast<int>(rate * 100)) + "%";
    report.add_panel_report(label, first.report);
    results.push_back(std::move(first));
  }

  std::printf("%-8s %-10s %-10s %-10s\n", "minute", "rate=0%", "rate=1%",
              "rate=5%");
  for (int m = 0; m < kMinutes; ++m) {
    std::printf("%-8d %-10.1f %-10.1f %-10.1f\n", m + 1, results[0].series[m],
                results[1].series[m], results[2].series[m]);
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    double avg_after = 0;
    for (int m = kReconfigPeriod; m < kMinutes; ++m) {
      avg_after += results[i].series[m] / (kMinutes - kReconfigPeriod);
    }
    std::printf(
        "# rate=%.0f%%: gain after first reconfiguration %.2fx; faults "
        "fired %llu (stats lost %llu, stale %llu, migrate %llu)\n",
        rates[i] * 100, avg_after / results[i].series[0],
        static_cast<unsigned long long>(results[i].faults),
        static_cast<unsigned long long>(results[i].stats_lost),
        static_cast<unsigned long long>(results[i].stats_stale),
        static_cast<unsigned long long>(results[i].migrate_faults));
  }
  std::printf("# determinism self-check: all rates byte-identical across two "
              "runs\n");
  report.write();
  return 0;
}
