// Ablation: hierarchical (rack-aware) key placement — the paper's Section 6
// future work, implemented.
//
// Six servers in two racks whose numbering does NOT follow the physical
// layout (server s in rack s % 2).  The workload has community structure
// coarser than one server: "continents" of tags and countries that do not
// fit on a single machine but fit in a rack.  Flat partitioning scatters
// each continent across racks; hierarchical partitioning first splits the
// key graph across racks, then across the rack's servers, keeping the
// unavoidable server-cut traffic off the rack uplinks.
#include <cstdio>

#include "common/rng.hpp"
#include "core/manager.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

using namespace lar;

namespace {

/// Community-structured workload: `communities` disjoint clusters, each with
/// its own tag and country vocabulary; tuples stay inside their community.
class CommunityGenerator final : public workload::TupleGenerator {
 public:
  CommunityGenerator(std::uint32_t communities, std::uint32_t tags_per,
                     std::uint32_t countries_per, std::uint32_t padding,
                     std::uint64_t seed)
      : communities_(communities),
        tags_per_(tags_per),
        countries_per_(countries_per),
        padding_(padding),
        rng_(seed) {}

  Tuple next() override {
    const std::uint64_t c = rng_.below(communities_);
    const Key tag = c * 100'000 + rng_.below(tags_per_);
    const Key country = 50'000'000 + c * 100'000 + rng_.below(countries_per_);
    return Tuple{.fields = {tag, country}, .padding = padding_};
  }

 private:
  std::uint32_t communities_;
  std::uint32_t tags_per_;
  std::uint32_t countries_per_;
  std::uint32_t padding_;
  Rng rng_;
};

}  // namespace

int main() {
  std::printf(
      "# Ablation — rack-aware hierarchical partitioning (paper Sec 6 future "
      "work)\n"
      "# 6 servers, 2 racks interleaved (rack = server %% 2), 1 Gb/s rack "
      "uplinks, 8kB tuples,\n"
      "# 2 communities of 600 tags x 12 countries each\n"
      "# expected: similar server locality, much higher rack locality and "
      "throughput for rack-aware (the uplink is the bottleneck)\n\n");

  const std::uint32_t n = 6;
  const Topology topo = make_two_stage_topology(n);
  const Placement place =
      Placement::round_robin(topo, n).with_racks({0, 1, 0, 1, 0, 1});

  std::printf("%-12s %-14s %-14s %-14s %-12s\n", "mode", "srv-locality",
              "rack-locality", "throughput", "bottleneck");
  for (const bool rack_aware : {false, true}) {
    sim::SimConfig cfg;
    cfg.source_mode = SourceMode::kRoundRobin;
    cfg.rack_uplink_bandwidth = 1.25e8;  // 1 Gb/s shared per rack
    sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
    core::ManagerOptions mopts;
    mopts.rack_aware = rack_aware;
    core::Manager manager(topo, place, mopts);
    CommunityGenerator gen(2, 600, 12, 8'000, 31);
    simulator.run_window(gen, 150'000);
    simulator.reconfigure(manager);
    const auto report = simulator.run_window(gen, 150'000);
    std::printf("%-12s %-14.3f %-14.3f %-14.1f %-12s\n",
                rack_aware ? "rack-aware" : "flat",
                report.edge_locality[1], report.edge_rack_locality[1],
                report.throughput / 1000.0, to_string(report.bottleneck));
  }
  return 0;
}
