// Figure 7: throughput when varying parallelism (number of machines), for
// locality in {60%, 100%} and padding in {0, 8 kB, 20 kB}, comparing
// locality-aware, hash-based and worst-case fields grouping.
#include "bench_util.hpp"

using namespace lar;
using namespace lar::bench;

int main() {
  print_header(
      "Figure 7 — throughput vs parallelism",
      "panels (a)-(f): locality {60,100}% x padding {0, 8kB, 20kB}; "
      "columns: parallelism, locality-aware, hash-based, worst-case "
      "(Ktuples/s)",
      "locality-aware scales ~linearly with parallelism; hash/worst flatten; "
      "at padding 20kB hash-based *drops* from 1 to 2 servers; at locality "
      "100% locality-aware is padding-insensitive (zero network)");

  const double localities[] = {0.60, 1.00};
  const std::uint32_t paddings[] = {0, 8'000, 20'000};
  char panel = 'a';
  for (const double locality : localities) {
    for (const std::uint32_t padding : paddings) {
      std::printf("\n# (%c) locality=%.0f%%, padding=%u\n", panel++,
                  locality * 100, padding);
      std::printf("%-12s %-16s %-12s %-12s\n", "parallelism", "locality-aware",
                  "hash-based", "worst-case");
      for (std::uint32_t n = 1; n <= 6; ++n) {
        SyntheticPoint p{.parallelism = n, .locality = locality,
                         .padding = padding};
        p.routing = FieldsRouting::kIdentity;
        const double aware = synthetic_throughput(p);
        p.routing = FieldsRouting::kHash;
        const double hash = synthetic_throughput(p);
        p.routing = FieldsRouting::kWorstCase;
        const double worst = synthetic_throughput(p);
        std::printf("%-12u %-16.1f %-12.1f %-12.1f\n", n, ktps(aware),
                    ktps(hash), ktps(worst));
      }
    }
  }
  // The Section 4.2 text claim: "even when tuples are extremely small
  // (padding = 0), routing through the network lowers the performance by 22%".
  const double aware0 = synthetic_throughput(
      {.parallelism = 6, .locality = 1.0, .padding = 0,
       .routing = FieldsRouting::kIdentity});
  const double hash0 = synthetic_throughput(
      {.parallelism = 6, .locality = 1.0, .padding = 0,
       .routing = FieldsRouting::kHash});
  std::printf(
      "\n# text claim (Sec 4.2): padding=0, n=6 -> network routing lowers "
      "throughput by %.0f%% (paper: 22%%)\n",
      (1.0 - hash0 / aware0) * 100.0);
  return 0;
}
