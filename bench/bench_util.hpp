// Shared helpers for the figure-reproduction benchmarks.
//
// Every benchmark prints a self-describing header (what the paper's figure
// shows, what shape to expect) followed by whitespace-separated data columns
// that regenerate the figure's series.
// Benchmarks additionally write a machine-readable BENCH_<name>.json via
// JsonBenchReport below; the schema is stable and, under fixed seeds,
// byte-identical across runs (it embeds obs::report_json output, which is
// canonical by construction).
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/manager.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "topology/placement.hpp"
#include "topology/topology.hpp"
#include "workload/synthetic.hpp"

namespace lar::bench {

/// One synthetic-workload measurement point (the Section 4.2 setup): the
/// two-stage topology on `parallelism` servers, the given fields routing,
/// and the synthetic generator with the given locality/padding.
struct SyntheticPoint {
  std::uint32_t parallelism = 6;
  double locality = 0.6;      // fraction of correlated tuples
  std::uint32_t padding = 0;  // payload bytes
  FieldsRouting routing = FieldsRouting::kHash;
  double nic_bandwidth = sim::kTenGbps;
};

/// Sustainable throughput in tuples/s for the point, measured over `window`
/// sampled tuples.  Deterministic.
inline double synthetic_throughput(const SyntheticPoint& p,
                                   std::uint64_t window = 100'000) {
  const Topology topo = make_two_stage_topology(p.parallelism);
  const Placement place = Placement::round_robin(topo, p.parallelism);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kAlignedField0;
  cfg.nic_bandwidth = p.nic_bandwidth;
  cfg.seed = 17;
  sim::Simulator simulator(topo, place, cfg, p.routing);
  // Key universe 1000x the parallelism: large enough that hash routing is
  // load-balanced (key-count granularity skew ~2%), small enough that every
  // key recurs within the window (see DESIGN.md).
  workload::SyntheticGenerator gen({.num_values = p.parallelism * 1000,
                                    .locality = p.locality,
                                    .padding = p.padding,
                                    .seed = 17});
  return simulator.run_window(gen, window).throughput;
}

inline void print_header(const char* figure, const char* description,
                         const char* expectation) {
  std::printf("# %s\n# %s\n# expected shape: %s\n", figure, description,
              expectation);
}

/// Formats tuples/s as the paper's Ktuples/s axis.
inline double ktps(double tuples_per_sec) { return tuples_per_sec / 1000.0; }

/// Accumulates per-panel observability reports and writes them as
/// BENCH_<name>.json:
///
///   {"bench":"<name>","panels":[
///     {"panel":"<label>","report":{"metrics":[...],"trace":[...]}}, ...]}
///
/// Panel labels and the embedded reports are emitted in insertion order, so
/// the file is byte-stable whenever the benchmark itself is deterministic.
class JsonBenchReport {
 public:
  explicit JsonBenchReport(std::string bench) : bench_(std::move(bench)) {}

  /// Captures `registry` (and optionally `trace`) as one panel.
  void add_panel(std::string label, const obs::Registry& registry,
                 const obs::TraceRecorder* trace = nullptr,
                 const obs::MetricFilter& keep = nullptr) {
    panels_.emplace_back(std::move(label),
                         obs::report_json(registry, trace, keep));
  }

  /// Captures an already-serialized obs report as one panel — for benches
  /// that byte-compare the report (determinism self-checks) and then want
  /// to embed exactly the bytes they verified.
  void add_panel_report(std::string label, std::string report) {
    panels_.emplace_back(std::move(label), std::move(report));
  }

  /// Writes BENCH_<bench>.json into the working directory and announces it
  /// as a comment line.  Returns the path.
  std::string write() const {
    const std::string path = "BENCH_" + bench_ + ".json";
    std::string out = "{\"bench\":\"" + bench_ + "\",\"panels\":[";
    for (std::size_t i = 0; i < panels_.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"panel\":\"" + panels_[i].first +
             "\",\"report\":" + panels_[i].second + '}';
    }
    out += "]}\n";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fputs(out.c_str(), f);
      std::fclose(f);
      std::printf("# wrote %s\n", path.c_str());
    } else {
      std::printf("# failed to write %s\n", path.c_str());
    }
    return path;
  }

 private:
  std::string bench_;
  std::vector<std::pair<std::string, std::string>> panels_;  // label, report
};

/// Accumulates per-panel obs::Timeline snapshots and writes them as
/// TIMELINE_<name>.json:
///
///   {"bench":"<name>","panels":[
///     {"panel":"<label>","timeline":{"ticks_total":...,"base":{...},
///      "ticks":[...]}}, ...]}
///
/// Like JsonBenchReport, emission order is insertion order and the embedded
/// JSON is canonical, so the file is byte-stable for deterministic runs.
class JsonTimelineArtifact {
 public:
  explicit JsonTimelineArtifact(std::string bench) : bench_(std::move(bench)) {}

  void add_panel(std::string label, const obs::Timeline& timeline) {
    panels_.emplace_back(std::move(label), obs::timeline_to_json(timeline));
  }

  /// Writes TIMELINE_<bench>.json into the working directory and announces
  /// it as a comment line.  Returns the path.
  std::string write() const {
    const std::string path = "TIMELINE_" + bench_ + ".json";
    std::string out = "{\"bench\":\"" + bench_ + "\",\"panels\":[";
    for (std::size_t i = 0; i < panels_.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"panel\":\"" + panels_[i].first +
             "\",\"timeline\":" + panels_[i].second + '}';
    }
    out += "]}\n";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fputs(out.c_str(), f);
      std::fclose(f);
      std::printf("# wrote %s\n", path.c_str());
    } else {
      std::printf("# failed to write %s\n", path.c_str());
    }
    return path;
  }

 private:
  std::string bench_;
  std::vector<std::pair<std::string, std::string>> panels_;  // label, json
};

}  // namespace lar::bench
