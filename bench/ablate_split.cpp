// Ablation: hot-key splitting (lar::split) under Zipf skew.
//
// Sweeps the Flickr-like tag skew s in {0.6, 1.0, 1.4} against the split
// budget max-degree in {1, 2, 4} on the two-stage topology (parallelism 6,
// 4 kB padding, 1 Gb/s).  The claim under test is DESIGN.md §14's: splitting
// only the keys whose mass exceeds the balance cap holds the load-balance
// alpha as skew grows, while the *tail* — every key the planner did not
// split — keeps its locality, because tail keys still route through a single
// explicit mapping.  max-degree 1 is the no-split baseline (the default:
// identical to the pre-split planner).
//
// Self-checks (nonzero exit on violation):
//   * determinism — every (s, max-degree) cell runs twice and the two obs
//     reports must match byte for byte;
//   * balance — wherever the planner split at least one key, the measured
//     hot-op balance must be no worse than the no-split run's;
//   * tail locality — re-measuring both the split and the no-split plan on
//     the tail traffic only (split keys filtered out of the stream), the
//     split run's locality must stay within 5% of the baseline's.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/manager.hpp"
#include "sim/simulator.hpp"
#include "workload/flickr_like.hpp"

using namespace lar;

namespace {

constexpr std::uint32_t kParallelism = 6;
constexpr std::uint64_t kWindow = 100'000;

workload::FlickrLikeConfig workload_config(double s) {
  workload::FlickrLikeConfig wcfg;
  wcfg.zipf_tags = s;
  wcfg.padding = 4'000;
  wcfg.seed = 61;
  return wcfg;
}

/// Flickr-like stream with every tuple touching a split key redrawn — the
/// tail traffic both plans route through single explicit mappings.
class TailGenerator final : public workload::TupleGenerator {
 public:
  TailGenerator(const workload::FlickrLikeConfig& cfg,
                const std::set<Key>& skip)
      : gen_(cfg), skip_(skip) {}

  [[nodiscard]] Tuple next() override {
    for (;;) {
      Tuple t = gen_.next();
      if (skip_.count(t.fields[0]) == 0 && skip_.count(t.fields[1]) == 0) {
        return t;
      }
    }
  }

 private:
  workload::FlickrLikeGenerator gen_;
  const std::set<Key>& skip_;
};

struct CellResult {
  double balance_a = 0.0;   // hot-op (tag stage) max/avg instance load
  double balance_b = 0.0;   // country stage
  double locality = 0.0;    // A -> B hop locality
  double throughput = 0.0;  // tuples/s
  std::uint64_t keys_split = 0;
  std::uint32_t max_split_degree = 0;
  std::set<Key> split_keys;  // union over the plan's tables
  std::string report;        // canonical obs report (byte-stable)
};

/// Learn for one window, reconfigure with the given split budget, measure
/// for one window.  Deterministic: everything flows from the fixed seeds.
CellResult run_cell(double s, std::uint32_t max_degree) {
  const Topology topo = make_two_stage_topology(kParallelism);
  const Placement place = Placement::round_robin(topo, kParallelism);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.nic_bandwidth = sim::kOneGbps;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::ManagerOptions mopts;
  mopts.split.max_degree = max_degree;
  core::Manager manager(topo, place, mopts);
  manager.set_metrics_registry(&simulator.registry());
  workload::FlickrLikeGenerator gen(workload_config(s));

  simulator.run_window(gen, kWindow);  // learn, then measure
  const auto plan = simulator.reconfigure(manager);
  const auto window = simulator.run_window(gen, kWindow);

  CellResult out;
  out.balance_a = window.op_load_balance[1];
  out.balance_b = window.op_load_balance[2];
  out.locality = window.edge_locality[1];
  out.throughput = window.throughput;
  out.keys_split = plan.keys_split;
  out.max_split_degree = plan.max_split_degree;
  for (const auto& [op, table] : plan.tables) {
    for (const auto& [key, cands] : table->sorted_split_entries()) {
      (void)cands;
      out.split_keys.insert(key);
    }
  }
  out.report = obs::report_json(simulator.registry());
  return out;
}

/// Locality of the tail traffic under the plan a fresh (same-seeded) manager
/// with the given budget deploys: learn + reconfigure exactly like run_cell,
/// then measure one window with the split keys filtered from the stream.
double tail_locality(double s, std::uint32_t max_degree,
                     const std::set<Key>& split_keys) {
  const Topology topo = make_two_stage_topology(kParallelism);
  const Placement place = Placement::round_robin(topo, kParallelism);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.nic_bandwidth = sim::kOneGbps;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::ManagerOptions mopts;
  mopts.split.max_degree = max_degree;
  core::Manager manager(topo, place, mopts);
  workload::FlickrLikeGenerator learn(workload_config(s));
  simulator.run_window(learn, kWindow);
  simulator.reconfigure(manager);
  TailGenerator tail(workload_config(s), split_keys);
  return simulator.run_window(tail, kWindow).edge_locality[1];
}

}  // namespace

int main() {
  std::printf(
      "# Ablation — hot-key splitting under Zipf skew; two-stage Flickr-like, "
      "parallelism %u, 4kB padding, 1Gb/s\n"
      "# cells: tag skew s x split budget max-degree; one learn + one "
      "measure window of %llu tuples each\n"
      "# columns: s, max-degree, keys-split, max-split, balance(A), "
      "balance(B), locality, throughput (Ktuples/s)\n"
      "# expected shape: balance(A) degrades with s at max-degree 1 and is "
      "held by splitting; tail locality stays within 5%% of no-split\n",
      kParallelism, static_cast<unsigned long long>(kWindow));

  const double skews[] = {0.6, 1.0, 1.4};
  const std::uint32_t degrees[] = {1, 2, 4};
  bench::JsonBenchReport report("ablate_split");
  int failures = 0;

  for (const double s : skews) {
    std::vector<CellResult> row;
    for (const std::uint32_t d : degrees) {
      CellResult first = run_cell(s, d);
      const CellResult second = run_cell(s, d);
      if (first.report != second.report) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: two runs at s=%.1f max-degree=%u "
                     "produced different observability reports\n",
                     s, d);
        ++failures;
      }
      char label[32];
      std::snprintf(label, sizeof(label), "s=%.1f,d=%u", s, d);
      report.add_panel_report(label, first.report);
      std::printf("%-6.1f %-10u %-10llu %-9u %-11.3f %-11.3f %-9.3f %-10.1f\n",
                  s, d, static_cast<unsigned long long>(first.keys_split),
                  first.max_split_degree, first.balance_a, first.balance_b,
                  first.locality, first.throughput / 1000.0);
      row.push_back(std::move(first));
    }

    // max-degree 1 must split nothing (it is the disabled default) …
    if (row[0].keys_split != 0) {
      std::fprintf(stderr, "SPLIT VIOLATION: max-degree 1 split %llu keys\n",
                   static_cast<unsigned long long>(row[0].keys_split));
      ++failures;
    }
    for (std::size_t i = 1; i < row.size(); ++i) {
      const CellResult& cell = row[i];
      if (cell.keys_split == 0) continue;  // under the cap: nothing to check
      // … and wherever splitting engaged, the hot op's balance is held.
      if (cell.balance_a > row[0].balance_a + 1e-9) {
        std::fprintf(stderr,
                     "BALANCE VIOLATION: s=%.1f max-degree=%u balance %.3f "
                     "worse than no-split %.3f\n",
                     s, degrees[i], cell.balance_a, row[0].balance_a);
        ++failures;
      }
      // Tail locality: measure both plans on the split-key-free stream.
      const double base = tail_locality(s, 1, cell.split_keys);
      const double with = tail_locality(s, degrees[i], cell.split_keys);
      const double drift = base > 0.0 ? (base - with) / base : 0.0;
      std::printf("# s=%.1f max-degree=%u: tail locality %.3f vs no-split "
                  "%.3f (drift %+.1f%%)\n",
                  s, degrees[i], with, base, drift * 100.0);
      if (drift > 0.05) {
        std::fprintf(stderr,
                     "TAIL LOCALITY VIOLATION: s=%.1f max-degree=%u tail "
                     "locality %.3f fell more than 5%% below no-split %.3f\n",
                     s, degrees[i], with, base);
        ++failures;
      }
    }
  }

  std::printf("# determinism self-check: all cells byte-identical across two "
              "runs\n");
  report.write();
  return failures == 0 ? 0 : 1;
}
