// Ablation: online scale-out/in with the autoscaling controller driving
// locality-aware re-planning (lar::elastic).
//
// Timeline: the two-stage Flickr-like pipeline on a capacity-8 cluster,
// starting with only 4 servers live.  The offered rate follows a
// low -> high -> low schedule; the controller (dual thresholds + confirm +
// cooldown hysteresis) reads the per-window registry signals and resizes the
// fleet 4 -> 8 -> 4 through Simulator::resize(), which re-plans via
// Manager::plan_for() — so every resize lands with locality-aware tables
// whose hash-fallback domain is the new active set.  The claim under test:
// scale-out is not a locality reset — a handful of windows after growing,
// edge locality is back within 5% of what a fixed 8-server fleet achieves
// on the same stream (re-planning moves keys WITH the resize, it does not
// start over from hash routing).
//
// Self-checks (nonzero exit on violation):
//   - determinism: both panels byte-identical across two same-seed runs;
//   - the controller actually reaches 8 and returns to 4;
//   - tuple conservation: every window, each chain operator processes
//     exactly the window's tuples — across both resizes nothing is lost or
//     duplicated (the per-key exactly-once identities of the threaded
//     runtime are pinned separately in `ctest -L elastic`);
//   - locality recovery: post-scale-out locality within 5% of the fixed
//     8-server steady state.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/manager.hpp"
#include "elastic/controller.hpp"
#include "sim/simulator.hpp"
#include "workload/flickr_like.hpp"

using namespace lar;

namespace {

constexpr int kMinutes = 24;
constexpr std::uint64_t kTuplesPerMinute = 50'000;
constexpr std::uint32_t kCapacity = 8;   // provisioned servers
constexpr std::uint32_t kStartServers = 4;
// Controller active from minute 5; the first 4 minutes calibrate the offered
// rates against the locality-optimized 4-server throughput.
constexpr int kControllerFrom = 5;
constexpr int kHighFrom = 11;
constexpr int kHighUntil = 16;

struct MinutePoint {
  double throughput = 0.0;   // Ktuples/s
  double locality = 0.0;     // mean edge locality
  std::uint32_t servers = 0; // live servers AFTER this minute's decision
  double utilization = 0.0;
};

struct TimelineResult {
  std::vector<MinutePoint> series;
  std::string report;  // canonical obs report (byte-stable)
  bool reached_capacity = false;
  bool returned_to_start = false;
  bool conserved = true;
};

/// Mean edge locality of one window report.
double mean_locality(const sim::WindowReport& report) {
  double sum = 0.0;
  for (const double l : report.edge_locality) sum += l;
  return report.edge_locality.empty()
             ? 0.0
             : sum / static_cast<double>(report.edge_locality.size());
}

/// Every non-source operator must process exactly the window's tuples —
/// resizing must neither drop nor duplicate work.
bool window_conserved(sim::Simulator& simulator, std::uint64_t n) {
  const sim::TrafficStats& s = simulator.model().stats();
  const Topology& topo = simulator.model().topology();
  for (OperatorId op = 0; op < topo.num_operators(); ++op) {
    if (topo.op(op).is_source) continue;
    std::uint64_t total = 0;
    for (const std::uint64_t load : s.instance_load[op]) total += load;
    if (total != n) return false;
  }
  return true;
}

TimelineResult run_elastic() {
  const Topology topo = make_two_stage_topology(kCapacity);
  const Placement place = Placement::round_robin(topo, kCapacity);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.nic_bandwidth = sim::kOneGbps;
  cfg.active_servers = kStartServers;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager manager(topo, place, {});
  manager.set_metrics_registry(&simulator.registry());
  workload::FlickrLikeConfig wcfg;
  wcfg.padding = 8'000;
  wcfg.seed = 13;
  workload::FlickrLikeGenerator gen(wcfg);

  elastic::Controller controller({.min_servers = kStartServers,
                                  .max_servers = kCapacity,
                                  .scale_out_utilization = 0.85,
                                  .scale_in_utilization = 0.45,
                                  .confirm_epochs = 2,
                                  .cooldown_epochs = 2});

  TimelineResult out;
  std::uint32_t servers = kStartServers;
  double rate_low = 0.0;
  double rate_high = 0.0;
  for (int minute = 1; minute <= kMinutes; ++minute) {
    const sim::WindowReport report =
        simulator.run_window(gen, kTuplesPerMinute);
    out.conserved =
        out.conserved && window_conserved(simulator, kTuplesPerMinute);

    MinutePoint point;
    point.throughput = report.throughput / 1000.0;
    point.locality = mean_locality(report);

    if (minute == 2) {
      // Locality-optimize the starting fleet before calibrating rates.
      simulator.reconfigure(manager);
    }
    if (minute == 4) {
      // Offered rates relative to the optimized 4-server capacity: low sits
      // in the dead band at n=4 and under the scale-in threshold at n=8;
      // high overloads n=4 and is just about sustainable at n=8 (the
      // controller parks at the max bound).
      rate_low = 0.6 * report.throughput;
      rate_high = 1.6 * report.throughput;
    }
    if (minute >= kControllerFrom) {
      const double offered =
          minute >= kHighFrom && minute <= kHighUntil ? rate_high : rate_low;
      elastic::Signals signals =
          elastic::signals_from_registry(simulator.registry(), offered);
      point.utilization = signals.utilization;
      const elastic::ScaleDecision decision =
          controller.evaluate(signals, servers);
      elastic::publish_decision(simulator.registry(), decision);
      if (decision.changed(servers)) {
        simulator.resize(manager, decision.target_servers);
        if (decision.target_servers == kCapacity) {
          out.reached_capacity = true;
        }
        if (out.reached_capacity &&
            decision.target_servers == kStartServers) {
          out.returned_to_start = true;
        }
        servers = decision.target_servers;
      }
    }
    point.servers = servers;
    out.series.push_back(point);
  }
  out.report = obs::report_json(simulator.registry(), &simulator.trace());
  return out;
}

/// Reference: the same stream on a fixed 8-server fleet (elasticity never
/// engaged — the byte-identity panel), locality-optimized on the same
/// cadence.  Its steady-state locality anchors the 5% recovery check.
TimelineResult run_fixed() {
  const Topology topo = make_two_stage_topology(kCapacity);
  const Placement place = Placement::round_robin(topo, kCapacity);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.nic_bandwidth = sim::kOneGbps;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager manager(topo, place, {});
  manager.set_metrics_registry(&simulator.registry());
  workload::FlickrLikeConfig wcfg;
  wcfg.padding = 8'000;
  wcfg.seed = 13;
  workload::FlickrLikeGenerator gen(wcfg);

  TimelineResult out;
  for (int minute = 1; minute <= kMinutes; ++minute) {
    const sim::WindowReport report =
        simulator.run_window(gen, kTuplesPerMinute);
    out.conserved =
        out.conserved && window_conserved(simulator, kTuplesPerMinute);
    MinutePoint point;
    point.throughput = report.throughput / 1000.0;
    point.locality = mean_locality(report);
    point.servers = kCapacity;
    out.series.push_back(point);
    if (minute == 2) simulator.reconfigure(manager);
  }
  out.report = obs::report_json(simulator.registry(), &simulator.trace());
  return out;
}

}  // namespace

int main() {
  std::printf(
      "# Ablation — elastic scale-out/in timeline; two-stage Flickr-like, "
      "capacity 8, start 4, 8kB padding, 1Gb/s network\n"
      "# offered rate: low (min 1-10) -> high (min 11-16) -> low (min "
      "17-24); controller thresholds 0.85/0.45, confirm 2, cooldown 2\n"
      "# columns: minute, live servers, utilization, throughput (Ktuples/s), "
      "mean edge locality; reference = fixed 8-server fleet\n"
      "# expected shape: 4->8 around min 12, locality recovers to the fixed "
      "fleet's steady state within a few windows, 8->4 around min 18\n");

  bench::JsonBenchReport report("ablate_elastic");

  TimelineResult fixed = run_fixed();
  const TimelineResult fixed2 = run_fixed();
  if (fixed.report != fixed2.report) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: two fixed-fleet runs produced "
                 "different observability reports\n");
    return 1;
  }
  TimelineResult elastic_run = run_elastic();
  const TimelineResult elastic2 = run_elastic();
  if (elastic_run.report != elastic2.report) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: two elastic runs produced different "
                 "observability reports\n");
    return 1;
  }
  report.add_panel_report("fixed-n8", fixed.report);
  report.add_panel_report("elastic-4-8-4", elastic_run.report);

  std::printf("%-8s %-8s %-8s %-12s %-10s %-12s\n", "minute", "servers",
              "util", "tput", "locality", "fixed-n8");
  for (int m = 0; m < kMinutes; ++m) {
    const MinutePoint& p = elastic_run.series[m];
    std::printf("%-8d %-8u %-8.2f %-12.1f %-10.3f %-12.1f\n", m + 1,
                p.servers, p.utilization, p.throughput, p.locality,
                fixed.series[m].throughput);
  }

  bool ok = true;
  if (!elastic_run.reached_capacity || !elastic_run.returned_to_start) {
    std::fprintf(stderr,
                 "SCALE FAILURE: controller reached capacity=%d, returned=%d"
                 "\n",
                 elastic_run.reached_capacity, elastic_run.returned_to_start);
    ok = false;
  }
  if (!elastic_run.conserved || !fixed.conserved) {
    std::fprintf(stderr,
                 "CONSERVATION VIOLATION: an operator processed a different "
                 "tuple count than was offered in some window\n");
    ok = false;
  }
  // Locality recovery: compare the last full-fleet window before the
  // scale-in against the fixed fleet's steady state.
  const double steady = fixed.series[kMinutes - 1].locality;
  double post_scale_out = 0.0;
  for (int m = 0; m < kMinutes; ++m) {
    if (elastic_run.series[m].servers == kCapacity) {
      post_scale_out = elastic_run.series[m].locality;  // last such window
    }
  }
  // One-sided: the elastic fleet may beat the reference (every resize
  // re-plans with fresher pair statistics); only a locality LOSS beyond 5%
  // would mean scale-out degraded routing.
  const double deviation = (steady - post_scale_out) / steady;
  std::printf(
      "# locality: post-scale-out %.3f vs fixed-n8 steady %.3f "
      "(loss %.1f%%)\n",
      post_scale_out, steady, deviation * 100.0);
  if (deviation > 0.05) {
    std::fprintf(stderr,
                 "LOCALITY REGRESSION: post-scale-out locality %.3f is >5%% "
                 "below the fixed-fleet steady state %.3f\n",
                 post_scale_out, steady);
    ok = false;
  }
  std::printf(
      "# determinism self-check: both panels byte-identical across two "
      "runs\n");
  report.write();
  return ok ? 0 : 1;
}
