// Figure 8: throughput when varying the workload's locality (60-100%), with
// padding 12 kB, for parallelism in {2, 4, 6}.
#include "bench_util.hpp"

using namespace lar;
using namespace lar::bench;

int main() {
  print_header(
      "Figure 8 — throughput vs locality",
      "panels (a)-(c): parallelism {2,4,6}, padding 12kB; columns: locality%, "
      "locality-aware, hash-based, worst-case (Ktuples/s)",
      "locality-aware grows ~linearly with locality and flattens above ~90%; "
      "hash-based is locality-oblivious (flat); worst-case decreases");

  char panel = 'a';
  for (const std::uint32_t n : {2u, 4u, 6u}) {
    std::printf("\n# (%c) parallelism=%u, padding=12kB\n", panel++, n);
    std::printf("%-10s %-16s %-12s %-12s\n", "locality", "locality-aware",
                "hash-based", "worst-case");
    for (int pct = 60; pct <= 100; pct += 5) {
      SyntheticPoint p{.parallelism = n, .locality = pct / 100.0,
                       .padding = 12'000};
      p.routing = FieldsRouting::kIdentity;
      const double aware = synthetic_throughput(p);
      p.routing = FieldsRouting::kHash;
      const double hash = synthetic_throughput(p);
      p.routing = FieldsRouting::kWorstCase;
      const double worst = synthetic_throughput(p);
      std::printf("%-10d %-16.1f %-12.1f %-12.1f\n", pct, ktps(aware),
                  ktps(hash), ktps(worst));
    }
  }
  return 0;
}
