// Baseline comparison: partial key grouping (Nasir et al., ICDE'15) vs
// hash-based vs the paper's locality-aware tables, on the skewed Flickr-like
// workload (6 servers, 1 Gb/s).
//
// Partial key grouping is the paper's Section 5.2 related work: it fixes the
// load imbalance of skewed keys with power-of-two-choices, but collects no
// correlation information — so locality stays at the hash baseline.  The
// paper's tables fix BOTH, which is exactly what this table shows.
// (Note: PKG also splits each key's state over two instances, which only
// associative aggregations tolerate; the counting workload here is one.)
#include <cstdio>

#include "bench_util.hpp"
#include "core/manager.hpp"
#include "sim/simulator.hpp"
#include "workload/flickr_like.hpp"

using namespace lar;

int main() {
  std::printf(
      "# Baseline — partial key grouping vs hash vs locality-aware tables\n"
      "# Flickr-like stream (skewed), parallelism 6, padding 4kB, 1 Gb/s\n"
      "# expected: PKG fixes balance but not locality; tables fix both\n\n");

  const std::uint32_t n = 6;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  workload::FlickrLikeConfig wcfg;
  wcfg.zipf_tags = 1.0;  // accentuate the skew PKG is designed for
  wcfg.padding = 4'000;
  wcfg.seed = 61;

  bench::JsonBenchReport json("baseline_pkg");
  std::printf("%-16s %-10s %-14s %-14s\n", "routing", "locality",
              "load-balance", "throughput");
  for (const FieldsRouting mode :
       {FieldsRouting::kHash, FieldsRouting::kPartialKey,
        FieldsRouting::kTable}) {
    sim::SimConfig cfg;
    cfg.source_mode = SourceMode::kRoundRobin;
    cfg.nic_bandwidth = sim::kOneGbps;
    sim::Simulator simulator(topo, place, cfg, mode);
    core::Manager manager(topo, place, {});
    workload::FlickrLikeGenerator gen(wcfg);
    if (mode == FieldsRouting::kTable) {
      simulator.run_window(gen, 120'000);  // learn, then measure
      simulator.reconfigure(manager);
    }
    const auto report = simulator.run_window(gen, 120'000);
    std::printf("%-16s %-10.3f %-14.3f %-14.1f\n", to_string(mode),
                report.edge_locality[1], report.op_load_balance[2],
                report.throughput / 1000.0);
    json.add_panel(to_string(mode), simulator.registry());
  }
  json.write();
  return 0;
}
