// Figure 12: locality achieved when the reconfiguration only considers the
// top-N heaviest key pairs ("edges"), for parallelisms 2-6.  This quantifies
// the statistics-memory/quality trade-off that justifies SpaceSaving's
// bounded budget (Section 4.3: ~0.1% of edges already doubles locality).
#include <cstdio>
#include <vector>

#include "core/manager.hpp"
#include "sim/simulator.hpp"
#include "workload/twitter_like.hpp"

using namespace lar;

namespace {

double locality_with_budget(std::uint32_t parallelism, std::size_t top_edges,
                            std::uint64_t window) {
  const Topology topo = make_two_stage_topology(parallelism);
  const Placement place = Placement::round_robin(topo, parallelism);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.pair_stats_capacity = 0;  // exact statistics; the budget is top_edges
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::ManagerOptions mopts;
  mopts.top_edges = top_edges;
  core::Manager manager(topo, place, mopts);
  workload::TwitterLikeConfig wcfg;
  wcfg.new_key_fraction = 0.0;  // isolate the budget effect from vocabulary growth
  wcfg.recent_fraction = 0.0;
  wcfg.seed = 12;
  workload::TwitterLikeGenerator gen(wcfg);

  simulator.run_window(gen, window);          // train
  simulator.reconfigure(manager);             // partition top-N pairs
  return simulator.run_window(gen, window).edge_locality[1];  // evaluate
}

}  // namespace

int main() {
  std::printf(
      "# Figure 12 — locality vs number of considered edges (log scale), "
      "parallelisms 2-6\n"
      "# columns: edges, then locality for parallelism 2..6\n"
      "# expected shape: locality rises with the edge budget; a small "
      "fraction of all edges already captures most of the achievable "
      "locality (Zipf concentration); lower parallelism saturates higher\n");

  constexpr std::uint64_t kWindow = 400'000;
  const std::size_t budgets[] = {10, 100, 1'000, 10'000, 100'000, 1'000'000};

  std::printf("%-10s %-8s %-8s %-8s %-8s %-8s\n", "edges", "par=2", "par=3",
              "par=4", "par=5", "par=6");
  for (const std::size_t budget : budgets) {
    std::printf("%-10zu", budget);
    for (std::uint32_t n = 2; n <= 6; ++n) {
      std::printf(" %-8.3f", locality_with_budget(n, budget, kWindow));
    }
    std::printf("\n");
  }
  return 0;
}
