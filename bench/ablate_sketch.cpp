// Ablation: SpaceSaving statistics capacity vs. reconfiguration quality
// (DESIGN.md §5).
//
// Figure 12 studies truncating *exact* statistics to the top-N pairs; this
// ablation instead bounds the per-POI sketch itself (what a deployment would
// actually budget — the paper's "1 MB of memory per POI is sufficient") and
// measures the locality the resulting plans achieve, against exact counting.
#include <cstdio>

#include "core/manager.hpp"
#include "sim/simulator.hpp"
#include "workload/twitter_like.hpp"

using namespace lar;

namespace {

double locality_with_capacity(std::size_t capacity, std::uint64_t window) {
  const std::uint32_t n = 6;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.pair_stats_capacity = capacity;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager manager(topo, place, {});
  workload::TwitterLikeConfig wcfg;
  wcfg.new_key_fraction = 0.0;  // isolate the sketch effect
  wcfg.recent_fraction = 0.0;
  wcfg.seed = 21;
  workload::TwitterLikeGenerator gen(wcfg);
  simulator.run_window(gen, window);
  simulator.reconfigure(manager);
  return simulator.run_window(gen, window).edge_locality[1];
}

}  // namespace

int main() {
  std::printf(
      "# Ablation — SpaceSaving capacity per POI vs achieved locality\n"
      "# (~16 B per monitored pair: 4096 entries ~ 64 kB, 65536 ~ 1 MB — the "
      "paper's budget)\n"
      "# expected: locality saturates well before exact counting, because "
      "Zipfian pair frequencies concentrate the optimization value in the "
      "head\n\n");
  constexpr std::uint64_t kWindow = 300'000;
  std::printf("%-14s %-10s\n", "capacity", "locality");
  for (const std::size_t capacity : {256u, 1024u, 4096u, 16'384u, 65'536u}) {
    std::printf("%-14zu %-10.3f\n", capacity,
                locality_with_capacity(capacity, kWindow));
  }
  std::printf("%-14s %-10.3f\n", "exact",
              locality_with_capacity(0, kWindow));
  return 0;
}
