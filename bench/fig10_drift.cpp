// Figure 10: occurrences of one popular hashtag in different locations over
// time (the paper tracks #nevertrump across Virginia/Florida/Texas over 12
// days of March 2016).  This is a *data characterization*, not a performance
// measurement: it demonstrates that a hashtag's dominant location moves,
// which is what motivates online reconfiguration.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "workload/twitter_like.hpp"

using namespace lar;

int main() {
  std::printf(
      "# Figure 10 — daily frequency of one trending hashtag per location\n"
      "# columns: day, freq@locA, freq@locB, freq@locC\n"
      "# expected shape: the hashtag's peak moves between locations across "
      "days (paper: Florida on Mar 3, Virginia on Mar 9, Texas on Mar 11)\n");

  workload::TwitterLikeConfig cfg;
  cfg.num_locations = 51;  // US states, say
  cfg.num_hashtags = 5'000;
  cfg.transient_correlation = 0.30;  // a trending tag is strongly transient
  cfg.stable_correlation = 0.10;
  cfg.transient_churn = 0.5;  // day-scale churn is faster than week-scale
  cfg.new_key_fraction = 0.0;
  cfg.recent_fraction = 0.0;
  cfg.seed = 2016;

  workload::TwitterLikeGenerator gen(cfg);
  constexpr int kDays = 12;
  constexpr std::uint64_t kTuplesPerDay = 200'000;
  const std::uint32_t tracked_tag = 0;  // the most popular hashtag

  // counts[day][location] of the tracked hashtag.
  std::vector<std::vector<std::uint64_t>> counts(
      kDays, std::vector<std::uint64_t>(cfg.num_locations, 0));
  for (int day = 0; day < kDays; ++day) {
    for (std::uint64_t i = 0; i < kTuplesPerDay; ++i) {
      const Tuple t = gen.next();
      if (t.fields[1] == workload::kHashtagKeyBase + tracked_tag) {
        ++counts[day][t.fields[0]];
      }
    }
    gen.advance_epoch();
  }

  // Pick the three locations with the highest single-day peaks on distinct
  // days — the "Virginia / Florida / Texas" of this synthetic run.
  struct Peak {
    std::uint64_t count;
    int day;
    std::uint32_t location;
  };
  std::vector<Peak> peaks;
  for (std::uint32_t loc = 0; loc < cfg.num_locations; ++loc) {
    Peak best{0, 0, loc};
    for (int day = 0; day < kDays; ++day) {
      if (counts[day][loc] > best.count) best = {counts[day][loc], day, loc};
    }
    peaks.push_back(best);
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.count > b.count; });
  std::vector<Peak> chosen;
  for (const Peak& p : peaks) {
    bool day_taken = false;
    for (const Peak& c : chosen) day_taken |= (c.day == p.day);
    if (!day_taken) chosen.push_back(p);
    if (chosen.size() == 3) break;
  }

  std::printf("# tracked hashtag: rank %u; locations: %u (peak day %d), "
              "%u (peak day %d), %u (peak day %d)\n",
              tracked_tag, chosen[0].location, chosen[0].day,
              chosen[1].location, chosen[1].day, chosen[2].location,
              chosen[2].day);
  std::printf("%-5s %-10s %-10s %-10s\n", "day", "locA", "locB", "locC");
  for (int day = 0; day < kDays; ++day) {
    std::printf("%-5d %-10llu %-10llu %-10llu\n", day + 1,
                static_cast<unsigned long long>(counts[day][chosen[0].location]),
                static_cast<unsigned long long>(counts[day][chosen[1].location]),
                static_cast<unsigned long long>(counts[day][chosen[2].location]));
  }
  return 0;
}
