// Figure 9: throughput when varying tuple size (padding 0-5 kB), with
// locality 80%, for parallelism in {2, 4, 6}.
#include "bench_util.hpp"

using namespace lar;
using namespace lar::bench;

int main() {
  print_header(
      "Figure 9 — throughput vs padding",
      "panels (a)-(c): parallelism {2,4,6}, locality 80%; columns: padding B, "
      "locality-aware, hash-based, worst-case (Ktuples/s)",
      "the locality-aware advantage grows with both padding and parallelism; "
      "hash-based approaches worst-case in the hardest configurations");

  char panel = 'a';
  for (const std::uint32_t n : {2u, 4u, 6u}) {
    std::printf("\n# (%c) parallelism=%u, locality=80%%\n", panel++, n);
    std::printf("%-10s %-16s %-12s %-12s\n", "padding", "locality-aware",
                "hash-based", "worst-case");
    for (std::uint32_t padding = 0; padding <= 5000; padding += 500) {
      SyntheticPoint p{.parallelism = n, .locality = 0.80, .padding = padding};
      p.routing = FieldsRouting::kIdentity;
      const double aware = synthetic_throughput(p);
      p.routing = FieldsRouting::kHash;
      const double hash = synthetic_throughput(p);
      p.routing = FieldsRouting::kWorstCase;
      const double worst = synthetic_throughput(p);
      std::printf("%-10u %-16.1f %-12.1f %-12.1f\n", padding, ktps(aware),
                  ktps(hash), ktps(worst));
    }
  }
  return 0;
}
