// Figure 11: locality (a) and load balance (b) over 25 weeks on the drifting
// Twitter-like workload with parallelism 6, comparing:
//   online  — reconfiguration every week,
//   offline — one reconfiguration after week 1,
//   hash    — no reconfiguration.
#include <cstdio>
#include <vector>

#include "core/manager.hpp"
#include "sim/simulator.hpp"
#include "workload/twitter_like.hpp"

using namespace lar;

namespace {

struct WeeklySeries {
  std::vector<double> locality;
  std::vector<double> balance;
};

WeeklySeries run(bool reconfig_every_week, bool reconfig_at_all, int weeks,
                 std::uint64_t tuples_per_week) {
  const std::uint32_t n = 6;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager manager(topo, place, {});
  workload::TwitterLikeConfig wcfg;  // defaults reproduce Sec 4.3 dynamics
  wcfg.seed = 11;
  workload::TwitterLikeGenerator gen(wcfg);

  WeeklySeries series;
  for (int w = 0; w < weeks; ++w) {
    const auto report = simulator.run_window(gen, tuples_per_week);
    series.locality.push_back(report.edge_locality[1]);
    // Load balance of the hashtag-counting stage (op 2), the paper's most
    // skew-exposed operator.
    series.balance.push_back(report.op_load_balance[2]);
    if (reconfig_at_all && (reconfig_every_week || w == 0)) {
      simulator.reconfigure(manager);
    }
    gen.advance_epoch();
  }
  return series;
}

}  // namespace

int main() {
  std::printf(
      "# Figure 11 — locality (a) and load balance (b) over 25 weeks, "
      "parallelism 6\n"
      "# online: reconfiguration every week; offline: once after week 1; "
      "hash-based: never\n"
      "# expected shape: (a) hash ~16.6%% (=1/6); online sustains the highest "
      "locality; offline decays toward the stable-correlation floor.  (b) "
      "hash ~1.1; online corrects imbalance spikes; offline drifts upward\n");

  constexpr int kWeeks = 25;
  constexpr std::uint64_t kTuplesPerWeek = 150'000;
  const WeeklySeries online = run(true, true, kWeeks, kTuplesPerWeek);
  const WeeklySeries offline = run(false, true, kWeeks, kTuplesPerWeek);
  const WeeklySeries hash = run(false, false, kWeeks, kTuplesPerWeek);

  std::printf("\n# (a) locality\n%-6s %-10s %-10s %-10s\n", "week", "online",
              "offline", "hash");
  for (int w = 0; w < kWeeks; ++w) {
    std::printf("%-6d %-10.3f %-10.3f %-10.3f\n", w + 1, online.locality[w],
                offline.locality[w], hash.locality[w]);
  }

  std::printf("\n# (b) load balance (most loaded POI / average)\n");
  std::printf("%-6s %-10s %-10s %-10s\n", "week", "online", "offline", "hash");
  for (int w = 0; w < kWeeks; ++w) {
    std::printf("%-6d %-10.3f %-10.3f %-10.3f\n", w + 1, online.balance[w],
                offline.balance[w], hash.balance[w]);
  }

  auto tail_mean = [&](const std::vector<double>& v) {
    double s = 0;
    for (int w = kWeeks - 10; w < kWeeks; ++w) s += v[w];
    return s / 10;
  };
  std::printf(
      "\n# steady state (mean of last 10 weeks): locality online=%.3f "
      "offline=%.3f hash=%.3f (paper: ~0.50 / ~0.40 / 0.166)\n",
      tail_mean(online.locality), tail_mean(offline.locality),
      tail_mean(hash.locality));
  return 0;
}
