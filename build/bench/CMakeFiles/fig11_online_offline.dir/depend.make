# Empty dependencies file for fig11_online_offline.
# This may be replaced when dependencies are built.
