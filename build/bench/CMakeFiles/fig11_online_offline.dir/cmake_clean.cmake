file(REMOVE_RECURSE
  "CMakeFiles/fig11_online_offline.dir/fig11_online_offline.cpp.o"
  "CMakeFiles/fig11_online_offline.dir/fig11_online_offline.cpp.o.d"
  "fig11_online_offline"
  "fig11_online_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_online_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
