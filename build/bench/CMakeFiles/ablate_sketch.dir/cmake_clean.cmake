file(REMOVE_RECURSE
  "CMakeFiles/ablate_sketch.dir/ablate_sketch.cpp.o"
  "CMakeFiles/ablate_sketch.dir/ablate_sketch.cpp.o.d"
  "ablate_sketch"
  "ablate_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
