# Empty compiler generated dependencies file for ablate_sketch.
# This may be replaced when dependencies are built.
