# Empty dependencies file for baseline_pkg.
# This may be replaced when dependencies are built.
