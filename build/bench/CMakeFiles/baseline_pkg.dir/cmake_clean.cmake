file(REMOVE_RECURSE
  "CMakeFiles/baseline_pkg.dir/baseline_pkg.cpp.o"
  "CMakeFiles/baseline_pkg.dir/baseline_pkg.cpp.o.d"
  "baseline_pkg"
  "baseline_pkg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_pkg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
