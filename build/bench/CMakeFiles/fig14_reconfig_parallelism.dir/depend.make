# Empty dependencies file for fig14_reconfig_parallelism.
# This may be replaced when dependencies are built.
