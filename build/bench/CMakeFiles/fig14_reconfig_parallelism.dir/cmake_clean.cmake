file(REMOVE_RECURSE
  "CMakeFiles/fig14_reconfig_parallelism.dir/fig14_reconfig_parallelism.cpp.o"
  "CMakeFiles/fig14_reconfig_parallelism.dir/fig14_reconfig_parallelism.cpp.o.d"
  "fig14_reconfig_parallelism"
  "fig14_reconfig_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_reconfig_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
