file(REMOVE_RECURSE
  "CMakeFiles/fig13_reconfig_timeline.dir/fig13_reconfig_timeline.cpp.o"
  "CMakeFiles/fig13_reconfig_timeline.dir/fig13_reconfig_timeline.cpp.o.d"
  "fig13_reconfig_timeline"
  "fig13_reconfig_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_reconfig_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
