# Empty compiler generated dependencies file for fig07_parallelism.
# This may be replaced when dependencies are built.
