file(REMOVE_RECURSE
  "CMakeFiles/fig07_parallelism.dir/fig07_parallelism.cpp.o"
  "CMakeFiles/fig07_parallelism.dir/fig07_parallelism.cpp.o.d"
  "fig07_parallelism"
  "fig07_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
