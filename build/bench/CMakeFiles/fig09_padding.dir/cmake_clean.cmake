file(REMOVE_RECURSE
  "CMakeFiles/fig09_padding.dir/fig09_padding.cpp.o"
  "CMakeFiles/fig09_padding.dir/fig09_padding.cpp.o.d"
  "fig09_padding"
  "fig09_padding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
