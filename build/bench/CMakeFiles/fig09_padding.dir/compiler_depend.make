# Empty compiler generated dependencies file for fig09_padding.
# This may be replaced when dependencies are built.
