# Empty dependencies file for fig08_locality.
# This may be replaced when dependencies are built.
