file(REMOVE_RECURSE
  "CMakeFiles/fig08_locality.dir/fig08_locality.cpp.o"
  "CMakeFiles/fig08_locality.dir/fig08_locality.cpp.o.d"
  "fig08_locality"
  "fig08_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
