# Empty dependencies file for fig12_edges.
# This may be replaced when dependencies are built.
