file(REMOVE_RECURSE
  "CMakeFiles/fig12_edges.dir/fig12_edges.cpp.o"
  "CMakeFiles/fig12_edges.dir/fig12_edges.cpp.o.d"
  "fig12_edges"
  "fig12_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
