file(REMOVE_RECURSE
  "CMakeFiles/ablate_rack_aware.dir/ablate_rack_aware.cpp.o"
  "CMakeFiles/ablate_rack_aware.dir/ablate_rack_aware.cpp.o.d"
  "ablate_rack_aware"
  "ablate_rack_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_rack_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
