# Empty compiler generated dependencies file for ablate_rack_aware.
# This may be replaced when dependencies are built.
