file(REMOVE_RECURSE
  "CMakeFiles/fig10_drift.dir/fig10_drift.cpp.o"
  "CMakeFiles/fig10_drift.dir/fig10_drift.cpp.o.d"
  "fig10_drift"
  "fig10_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
