# Empty dependencies file for fig10_drift.
# This may be replaced when dependencies are built.
