# Empty dependencies file for ablate_partitioner.
# This may be replaced when dependencies are built.
