file(REMOVE_RECURSE
  "CMakeFiles/ablate_partitioner.dir/ablate_partitioner.cpp.o"
  "CMakeFiles/ablate_partitioner.dir/ablate_partitioner.cpp.o.d"
  "ablate_partitioner"
  "ablate_partitioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_partitioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
