file(REMOVE_RECURSE
  "CMakeFiles/geo_trending.dir/geo_trending.cpp.o"
  "CMakeFiles/geo_trending.dir/geo_trending.cpp.o.d"
  "geo_trending"
  "geo_trending.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_trending.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
