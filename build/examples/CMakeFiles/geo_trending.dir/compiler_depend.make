# Empty compiler generated dependencies file for geo_trending.
# This may be replaced when dependencies are built.
