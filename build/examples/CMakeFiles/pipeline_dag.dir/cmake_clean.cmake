file(REMOVE_RECURSE
  "CMakeFiles/pipeline_dag.dir/pipeline_dag.cpp.o"
  "CMakeFiles/pipeline_dag.dir/pipeline_dag.cpp.o.d"
  "pipeline_dag"
  "pipeline_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
