# Empty compiler generated dependencies file for pipeline_dag.
# This may be replaced when dependencies are built.
