file(REMOVE_RECURSE
  "CMakeFiles/flickr_tags.dir/flickr_tags.cpp.o"
  "CMakeFiles/flickr_tags.dir/flickr_tags.cpp.o.d"
  "flickr_tags"
  "flickr_tags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flickr_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
