# Empty dependencies file for flickr_tags.
# This may be replaced when dependencies are built.
