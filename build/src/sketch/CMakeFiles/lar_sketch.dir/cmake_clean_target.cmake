file(REMOVE_RECURSE
  "liblar_sketch.a"
)
