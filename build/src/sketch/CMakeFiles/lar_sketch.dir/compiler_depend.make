# Empty compiler generated dependencies file for lar_sketch.
# This may be replaced when dependencies are built.
