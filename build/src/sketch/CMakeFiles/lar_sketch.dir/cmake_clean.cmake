file(REMOVE_RECURSE
  "CMakeFiles/lar_sketch.dir/zipf.cpp.o"
  "CMakeFiles/lar_sketch.dir/zipf.cpp.o.d"
  "liblar_sketch.a"
  "liblar_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
