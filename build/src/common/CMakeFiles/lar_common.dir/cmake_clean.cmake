file(REMOVE_RECURSE
  "CMakeFiles/lar_common.dir/hash.cpp.o"
  "CMakeFiles/lar_common.dir/hash.cpp.o.d"
  "CMakeFiles/lar_common.dir/logging.cpp.o"
  "CMakeFiles/lar_common.dir/logging.cpp.o.d"
  "CMakeFiles/lar_common.dir/strings.cpp.o"
  "CMakeFiles/lar_common.dir/strings.cpp.o.d"
  "liblar_common.a"
  "liblar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
