file(REMOVE_RECURSE
  "liblar_common.a"
)
