# Empty dependencies file for lar_common.
# This may be replaced when dependencies are built.
