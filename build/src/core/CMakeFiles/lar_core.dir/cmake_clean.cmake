file(REMOVE_RECURSE
  "CMakeFiles/lar_core.dir/bipartite.cpp.o"
  "CMakeFiles/lar_core.dir/bipartite.cpp.o.d"
  "CMakeFiles/lar_core.dir/manager.cpp.o"
  "CMakeFiles/lar_core.dir/manager.cpp.o.d"
  "CMakeFiles/lar_core.dir/pair_stats.cpp.o"
  "CMakeFiles/lar_core.dir/pair_stats.cpp.o.d"
  "CMakeFiles/lar_core.dir/snapshot.cpp.o"
  "CMakeFiles/lar_core.dir/snapshot.cpp.o.d"
  "liblar_core.a"
  "liblar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
