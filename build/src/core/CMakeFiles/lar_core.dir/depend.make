# Empty dependencies file for lar_core.
# This may be replaced when dependencies are built.
