
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bipartite.cpp" "src/core/CMakeFiles/lar_core.dir/bipartite.cpp.o" "gcc" "src/core/CMakeFiles/lar_core.dir/bipartite.cpp.o.d"
  "/root/repo/src/core/manager.cpp" "src/core/CMakeFiles/lar_core.dir/manager.cpp.o" "gcc" "src/core/CMakeFiles/lar_core.dir/manager.cpp.o.d"
  "/root/repo/src/core/pair_stats.cpp" "src/core/CMakeFiles/lar_core.dir/pair_stats.cpp.o" "gcc" "src/core/CMakeFiles/lar_core.dir/pair_stats.cpp.o.d"
  "/root/repo/src/core/snapshot.cpp" "src/core/CMakeFiles/lar_core.dir/snapshot.cpp.o" "gcc" "src/core/CMakeFiles/lar_core.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/lar_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/lar_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/lar_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
