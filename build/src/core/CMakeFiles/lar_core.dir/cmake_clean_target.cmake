file(REMOVE_RECURSE
  "liblar_core.a"
)
