# Empty compiler generated dependencies file for lar_partition.
# This may be replaced when dependencies are built.
