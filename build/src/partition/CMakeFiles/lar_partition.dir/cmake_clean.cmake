file(REMOVE_RECURSE
  "CMakeFiles/lar_partition.dir/coarsen.cpp.o"
  "CMakeFiles/lar_partition.dir/coarsen.cpp.o.d"
  "CMakeFiles/lar_partition.dir/graph.cpp.o"
  "CMakeFiles/lar_partition.dir/graph.cpp.o.d"
  "CMakeFiles/lar_partition.dir/initial.cpp.o"
  "CMakeFiles/lar_partition.dir/initial.cpp.o.d"
  "CMakeFiles/lar_partition.dir/partitioner.cpp.o"
  "CMakeFiles/lar_partition.dir/partitioner.cpp.o.d"
  "CMakeFiles/lar_partition.dir/quality.cpp.o"
  "CMakeFiles/lar_partition.dir/quality.cpp.o.d"
  "CMakeFiles/lar_partition.dir/refine.cpp.o"
  "CMakeFiles/lar_partition.dir/refine.cpp.o.d"
  "liblar_partition.a"
  "liblar_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
