file(REMOVE_RECURSE
  "liblar_partition.a"
)
