
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/coarsen.cpp" "src/partition/CMakeFiles/lar_partition.dir/coarsen.cpp.o" "gcc" "src/partition/CMakeFiles/lar_partition.dir/coarsen.cpp.o.d"
  "/root/repo/src/partition/graph.cpp" "src/partition/CMakeFiles/lar_partition.dir/graph.cpp.o" "gcc" "src/partition/CMakeFiles/lar_partition.dir/graph.cpp.o.d"
  "/root/repo/src/partition/initial.cpp" "src/partition/CMakeFiles/lar_partition.dir/initial.cpp.o" "gcc" "src/partition/CMakeFiles/lar_partition.dir/initial.cpp.o.d"
  "/root/repo/src/partition/partitioner.cpp" "src/partition/CMakeFiles/lar_partition.dir/partitioner.cpp.o" "gcc" "src/partition/CMakeFiles/lar_partition.dir/partitioner.cpp.o.d"
  "/root/repo/src/partition/quality.cpp" "src/partition/CMakeFiles/lar_partition.dir/quality.cpp.o" "gcc" "src/partition/CMakeFiles/lar_partition.dir/quality.cpp.o.d"
  "/root/repo/src/partition/refine.cpp" "src/partition/CMakeFiles/lar_partition.dir/refine.cpp.o" "gcc" "src/partition/CMakeFiles/lar_partition.dir/refine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
