
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/codec.cpp" "src/runtime/CMakeFiles/lar_runtime.dir/codec.cpp.o" "gcc" "src/runtime/CMakeFiles/lar_runtime.dir/codec.cpp.o.d"
  "/root/repo/src/runtime/engine.cpp" "src/runtime/CMakeFiles/lar_runtime.dir/engine.cpp.o" "gcc" "src/runtime/CMakeFiles/lar_runtime.dir/engine.cpp.o.d"
  "/root/repo/src/runtime/operator.cpp" "src/runtime/CMakeFiles/lar_runtime.dir/operator.cpp.o" "gcc" "src/runtime/CMakeFiles/lar_runtime.dir/operator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/lar_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/lar_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/lar_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
