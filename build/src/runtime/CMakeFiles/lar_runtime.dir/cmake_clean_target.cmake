file(REMOVE_RECURSE
  "liblar_runtime.a"
)
