# Empty dependencies file for lar_runtime.
# This may be replaced when dependencies are built.
