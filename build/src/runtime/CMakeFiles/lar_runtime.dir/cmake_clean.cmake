file(REMOVE_RECURSE
  "CMakeFiles/lar_runtime.dir/codec.cpp.o"
  "CMakeFiles/lar_runtime.dir/codec.cpp.o.d"
  "CMakeFiles/lar_runtime.dir/engine.cpp.o"
  "CMakeFiles/lar_runtime.dir/engine.cpp.o.d"
  "CMakeFiles/lar_runtime.dir/operator.cpp.o"
  "CMakeFiles/lar_runtime.dir/operator.cpp.o.d"
  "liblar_runtime.a"
  "liblar_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
