file(REMOVE_RECURSE
  "liblar_sim.a"
)
