file(REMOVE_RECURSE
  "CMakeFiles/lar_sim.dir/pipeline.cpp.o"
  "CMakeFiles/lar_sim.dir/pipeline.cpp.o.d"
  "CMakeFiles/lar_sim.dir/simulator.cpp.o"
  "CMakeFiles/lar_sim.dir/simulator.cpp.o.d"
  "liblar_sim.a"
  "liblar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
