# Empty compiler generated dependencies file for lar_sim.
# This may be replaced when dependencies are built.
