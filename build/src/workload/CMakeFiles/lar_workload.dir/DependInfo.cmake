
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/flickr_like.cpp" "src/workload/CMakeFiles/lar_workload.dir/flickr_like.cpp.o" "gcc" "src/workload/CMakeFiles/lar_workload.dir/flickr_like.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/workload/CMakeFiles/lar_workload.dir/synthetic.cpp.o" "gcc" "src/workload/CMakeFiles/lar_workload.dir/synthetic.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/lar_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/lar_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/twitter_like.cpp" "src/workload/CMakeFiles/lar_workload.dir/twitter_like.cpp.o" "gcc" "src/workload/CMakeFiles/lar_workload.dir/twitter_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/lar_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/lar_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
