file(REMOVE_RECURSE
  "liblar_workload.a"
)
