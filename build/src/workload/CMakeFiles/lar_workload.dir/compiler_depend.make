# Empty compiler generated dependencies file for lar_workload.
# This may be replaced when dependencies are built.
