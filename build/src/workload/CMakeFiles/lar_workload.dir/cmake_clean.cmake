file(REMOVE_RECURSE
  "CMakeFiles/lar_workload.dir/flickr_like.cpp.o"
  "CMakeFiles/lar_workload.dir/flickr_like.cpp.o.d"
  "CMakeFiles/lar_workload.dir/synthetic.cpp.o"
  "CMakeFiles/lar_workload.dir/synthetic.cpp.o.d"
  "CMakeFiles/lar_workload.dir/trace.cpp.o"
  "CMakeFiles/lar_workload.dir/trace.cpp.o.d"
  "CMakeFiles/lar_workload.dir/twitter_like.cpp.o"
  "CMakeFiles/lar_workload.dir/twitter_like.cpp.o.d"
  "liblar_workload.a"
  "liblar_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
