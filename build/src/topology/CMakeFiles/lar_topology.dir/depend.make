# Empty dependencies file for lar_topology.
# This may be replaced when dependencies are built.
