file(REMOVE_RECURSE
  "liblar_topology.a"
)
