file(REMOVE_RECURSE
  "CMakeFiles/lar_topology.dir/key_dict.cpp.o"
  "CMakeFiles/lar_topology.dir/key_dict.cpp.o.d"
  "CMakeFiles/lar_topology.dir/placement.cpp.o"
  "CMakeFiles/lar_topology.dir/placement.cpp.o.d"
  "CMakeFiles/lar_topology.dir/routing.cpp.o"
  "CMakeFiles/lar_topology.dir/routing.cpp.o.d"
  "CMakeFiles/lar_topology.dir/topology.cpp.o"
  "CMakeFiles/lar_topology.dir/topology.cpp.o.d"
  "liblar_topology.a"
  "liblar_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
