
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/key_dict.cpp" "src/topology/CMakeFiles/lar_topology.dir/key_dict.cpp.o" "gcc" "src/topology/CMakeFiles/lar_topology.dir/key_dict.cpp.o.d"
  "/root/repo/src/topology/placement.cpp" "src/topology/CMakeFiles/lar_topology.dir/placement.cpp.o" "gcc" "src/topology/CMakeFiles/lar_topology.dir/placement.cpp.o.d"
  "/root/repo/src/topology/routing.cpp" "src/topology/CMakeFiles/lar_topology.dir/routing.cpp.o" "gcc" "src/topology/CMakeFiles/lar_topology.dir/routing.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/topology/CMakeFiles/lar_topology.dir/topology.cpp.o" "gcc" "src/topology/CMakeFiles/lar_topology.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
