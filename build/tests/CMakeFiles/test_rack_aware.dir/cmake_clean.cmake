file(REMOVE_RECURSE
  "CMakeFiles/test_rack_aware.dir/test_rack_aware.cpp.o"
  "CMakeFiles/test_rack_aware.dir/test_rack_aware.cpp.o.d"
  "test_rack_aware"
  "test_rack_aware.pdb"
  "test_rack_aware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rack_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
