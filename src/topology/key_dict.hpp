// String <-> Key interning.
//
// Applications name keys with strings ("#java", "Asia"); everything below
// the public API routes on dense integer Keys.  The dictionary is append-only
// and grows with the number of *distinct* keys, which is bounded in practice
// by the workload vocabulary.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_map.hpp"
#include "topology/types.hpp"

namespace lar {

/// Append-only bidirectional mapping between strings and dense Keys.
/// Not thread-safe; intern keys before starting the engine or guard
/// externally.
class KeyDict {
 public:
  /// Returns the Key for `name`, interning it on first use.
  Key intern(std::string_view name);

  /// The Key for `name` if already interned.
  [[nodiscard]] std::optional<Key> find(std::string_view name) const;

  /// The string for `key`.  Precondition: key was returned by intern().
  [[nodiscard]] const std::string& name(Key key) const;

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

 private:
  // DetHash<std::string> is transparent, so lookups probe directly with the
  // caller's string_view — no temporary std::string per intern()/find().
  FlatMap<std::string, Key> ids_;
  std::vector<std::string> names_;
};

}  // namespace lar
