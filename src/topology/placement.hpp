// Static assignment of operator instances (POIs) to servers.
//
// The paper assumes POI placement is fixed (Section 3.1, "we assume that the
// deployment of POIs on servers is static") and optimizes *key* placement on
// top of it.  The evaluation deploys instance i of every PO on server i; the
// round-robin constructor generalizes that to any parallelism/server count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "topology/topology.hpp"
#include "topology/types.hpp"

namespace lar {

/// Maps every POI of a Topology to a server.
class Placement {
 public:
  /// Instance i of every PO runs on server (i % num_servers) — the paper's
  /// layout whenever parallelism == num_servers.  All servers share one rack.
  [[nodiscard]] static Placement round_robin(const Topology& topology,
                                             std::uint32_t num_servers);

  /// Like round_robin, but servers are grouped into racks of
  /// `servers_per_rack` consecutive servers (server s is in rack
  /// s / servers_per_rack).  num_servers must be a multiple of
  /// servers_per_rack.  Racks model the paper's future-work hierarchical
  /// network: crossing a rack boundary is more expensive than staying
  /// within one (Section 6).
  [[nodiscard]] static Placement round_robin_racked(
      const Topology& topology, std::uint32_t num_servers,
      std::uint32_t servers_per_rack);

  /// Fully explicit placement: `servers[op][instance]` = server id.
  [[nodiscard]] static Placement explicit_placement(
      std::vector<std::vector<ServerId>> servers, std::uint32_t num_servers);

  [[nodiscard]] std::uint32_t num_servers() const noexcept {
    return num_servers_;
  }

  /// Server hosting the given POI.
  [[nodiscard]] ServerId server_of(OperatorId op, InstanceIndex index) const {
    LAR_CHECK(op < servers_.size());
    LAR_CHECK(index < servers_[op].size());
    return servers_[op][index];
  }
  [[nodiscard]] ServerId server_of(InstanceId id) const {
    return server_of(id.op, id.index);
  }

  /// Instances of `op` hosted on `server` (possibly empty).
  [[nodiscard]] const std::vector<InstanceIndex>& local_instances(
      OperatorId op, ServerId server) const {
    LAR_CHECK(op < locals_.size());
    LAR_CHECK(server < num_servers_);
    return locals_[op][server];
  }

  [[nodiscard]] std::uint32_t parallelism_of(OperatorId op) const {
    LAR_CHECK(op < servers_.size());
    return static_cast<std::uint32_t>(servers_[op].size());
  }

  // --- rack topology --------------------------------------------------------

  [[nodiscard]] std::uint32_t num_racks() const noexcept { return num_racks_; }

  /// Rack hosting `server` (0 for every server in a rack-less deployment).
  [[nodiscard]] std::uint32_t rack_of(ServerId server) const {
    LAR_CHECK(server < rack_of_server_.size());
    return rack_of_server_[server];
  }

  /// All servers of `rack`, ascending.
  [[nodiscard]] std::vector<ServerId> servers_in_rack(std::uint32_t rack) const;

  /// Copy of this placement with an explicit server -> rack mapping (one
  /// entry per server; racks must be 0..max contiguous and non-empty).
  /// Server numbering need not align with racks — this is exactly the case
  /// where hierarchical partitioning beats flat recursive bisection, whose
  /// top-level split only matches racks when they are contiguous ranges.
  [[nodiscard]] Placement with_racks(
      std::vector<std::uint32_t> rack_of_server) const;

  // --- elasticity -----------------------------------------------------------

  /// Canonical rebuild at a different server count: same per-operator
  /// parallelism, instance i on server (i % num_servers), single rack —
  /// the round_robin layout without requiring the Topology again.
  [[nodiscard]] Placement with_servers(std::uint32_t num_servers) const;

  /// Instances of `op` hosted on the active server prefix [0, num_active),
  /// ascending.  This is the fallback domain / shuffle target set of an
  /// epoch with `num_active` live servers.
  [[nodiscard]] std::vector<InstanceIndex> active_instances(
      OperatorId op, std::uint32_t num_active) const;

 private:
  Placement() = default;
  void build_locals();

  std::uint32_t num_servers_ = 0;
  std::uint32_t num_racks_ = 1;
  std::vector<std::uint32_t> rack_of_server_;           // [server]
  std::vector<std::vector<ServerId>> servers_;          // [op][instance]
  std::vector<std::vector<std::vector<InstanceIndex>>> locals_;  // [op][server]
};

}  // namespace lar
