#include "topology/routing.hpp"

#include <algorithm>

namespace lar {

ShuffleRouter::ShuffleRouter(std::uint32_t fanout, std::uint64_t seed)
    : fanout_(fanout), next_(static_cast<std::uint32_t>(mix64(seed) % fanout)) {
  LAR_CHECK(fanout >= 1);
}

InstanceIndex ShuffleRouter::route(const Tuple& /*tuple*/) {
  if (!actives_.empty()) {
    const InstanceIndex out = actives_[next_ % actives_.size()];
    next_ = (next_ + 1) % static_cast<std::uint32_t>(actives_.size());
    return out;
  }
  const InstanceIndex out = next_;
  next_ = (next_ + 1) % fanout_;
  return out;
}

void ShuffleRouter::set_active_instances(
    const std::vector<InstanceIndex>& instances) {
  LAR_CHECK(!instances.empty());
  actives_ = instances;
  next_ %= static_cast<std::uint32_t>(actives_.size());
}

LocalOrShuffleRouter::LocalOrShuffleRouter(
    std::vector<InstanceIndex> local_instances, std::uint32_t fanout,
    std::uint64_t seed)
    : locals_(std::move(local_instances)),
      fanout_(fanout),
      next_(static_cast<std::uint32_t>(mix64(seed) % fanout)) {
  LAR_CHECK(fanout >= 1);
}

InstanceIndex LocalOrShuffleRouter::route(const Tuple& /*tuple*/) {
  if (!locals_.empty()) {
    const InstanceIndex out = locals_[next_ % locals_.size()];
    next_ = (next_ + 1) % fanout_;
    return out;
  }
  const InstanceIndex out = next_;
  next_ = (next_ + 1) % fanout_;
  return out;
}

HashFieldsRouter::HashFieldsRouter(std::uint32_t key_field,
                                   std::uint32_t fanout)
    : key_field_(key_field), fanout_(fanout) {
  LAR_CHECK(fanout >= 1);
}

InstanceIndex HashFieldsRouter::route(const Tuple& tuple) {
  LAR_CHECK(key_field_ < tuple.fields.size());
  return hash_instance(tuple.fields[key_field_], fanout_);
}

IdentityFieldsRouter::IdentityFieldsRouter(std::uint32_t key_field,
                                           std::uint32_t fanout,
                                           std::uint32_t offset)
    : key_field_(key_field), fanout_(fanout), offset_(offset) {
  LAR_CHECK(fanout >= 1);
}

InstanceIndex IdentityFieldsRouter::route(const Tuple& tuple) {
  LAR_CHECK(key_field_ < tuple.fields.size());
  return static_cast<InstanceIndex>(
      (tuple.fields[key_field_] + offset_) % fanout_);
}

PermutationFieldsRouter::PermutationFieldsRouter(std::uint32_t key_field,
                                                 std::uint32_t fanout,
                                                 std::uint64_t seed)
    : key_field_(key_field), fanout_(fanout) {
  LAR_CHECK(fanout >= 1);
  perm_.resize(fanout);
  for (std::uint32_t i = 0; i < fanout; ++i) perm_[i] = i;
  Rng rng(seed);
  for (std::uint32_t i = fanout; i > 1; --i) {
    std::swap(perm_[i - 1], perm_[rng.below(i)]);
  }
}

InstanceIndex PermutationFieldsRouter::route(const Tuple& tuple) {
  LAR_CHECK(key_field_ < tuple.fields.size());
  return perm_[tuple.fields[key_field_] % fanout_];
}

PartialKeyRouter::PartialKeyRouter(std::uint32_t key_field,
                                   std::uint32_t fanout)
    : key_field_(key_field), fanout_(fanout), sent_(fanout, 0) {
  LAR_CHECK(fanout >= 1);
}

std::pair<InstanceIndex, InstanceIndex> PartialKeyRouter::candidates(
    Key key) const noexcept {
  // Two independent hash functions via distinct mixing constants.
  const auto h1 = static_cast<InstanceIndex>(mix64(key) % fanout_);
  const auto h2 = static_cast<InstanceIndex>(
      mix64(key ^ 0x9e3779b97f4a7c15ULL) % fanout_);
  return {h1, h2};
}

InstanceIndex PartialKeyRouter::route(const Tuple& tuple) {
  LAR_CHECK(key_field_ < tuple.fields.size());
  const auto [h1, h2] = candidates(tuple.fields[key_field_]);
  const InstanceIndex pick = sent_[h1] <= sent_[h2] ? h1 : h2;
  ++sent_[pick];
  return pick;
}

void PartialKeyRouter::set_table(
    std::shared_ptr<const RoutingTable> /*table*/) {
  std::fill(sent_.begin(), sent_.end(), 0);
}

TableFieldsRouter::TableFieldsRouter(std::uint32_t key_field,
                                     std::uint32_t fanout,
                                     std::shared_ptr<const RoutingTable> table)
    : key_field_(key_field),
      fanout_(fanout),
      table_(std::move(table)),
      sent_(fanout, 0) {
  LAR_CHECK(fanout >= 1);
  LAR_CHECK(table_ != nullptr);
}

InstanceIndex TableFieldsRouter::route(const Tuple& tuple) {
  LAR_CHECK(key_field_ < tuple.fields.size());
  const Key key = tuple.fields[key_field_];
  if (table_->has_splits()) {
    const auto candidates = table_->split_candidates(key);
    if (!candidates.empty()) {
      // Least-loaded-of-d by local sent counters; strict less keeps the
      // first-listed candidate on ties (the 2-choice PKG `<=` rule
      // generalized to candidate order).
      InstanceIndex pick = candidates[0];
      for (const InstanceIndex c : candidates) {
        if (sent_[c] < sent_[pick]) pick = c;
      }
      ++sent_[pick];
      return pick;
    }
  }
  return table_->route(key, fanout_);
}

void TableFieldsRouter::set_table(std::shared_ptr<const RoutingTable> table) {
  LAR_CHECK(table != nullptr);
  table_ = std::move(table);
  std::fill(sent_.begin(), sent_.end(), 0);
}

std::unique_ptr<Router> make_router(const EdgeSpec& edge,
                                    std::uint32_t edge_index,
                                    const Topology& topology,
                                    const Placement& placement,
                                    ServerId src_server,
                                    FieldsRouting fields_mode,
                                    std::shared_ptr<const RoutingTable> table,
                                    std::uint64_t seed) {
  const std::uint32_t fanout = topology.op(edge.to).parallelism;
  switch (edge.grouping) {
    case GroupingType::kShuffle:
      return std::make_unique<ShuffleRouter>(fanout, seed);
    case GroupingType::kLocalOrShuffle:
      return std::make_unique<LocalOrShuffleRouter>(
          placement.local_instances(edge.to, src_server), fanout, seed);
    case GroupingType::kFields:
      switch (fields_mode) {
        case FieldsRouting::kHash:
          return std::make_unique<HashFieldsRouter>(edge.key_field, fanout);
        case FieldsRouting::kPermutation:
          // Seeded per edge (not per emitting instance): all emitters of one
          // edge must agree on the key -> instance map or stateful routing
          // breaks.
          return std::make_unique<PermutationFieldsRouter>(
              edge.key_field, fanout, /*seed=*/0x9d5f + edge_index * 7919);
        case FieldsRouting::kTable:
          if (table == nullptr) {
            table = std::make_shared<const RoutingTable>();
          }
          return std::make_unique<TableFieldsRouter>(edge.key_field, fanout,
                                                     std::move(table));
        case FieldsRouting::kIdentity:
          return std::make_unique<IdentityFieldsRouter>(edge.key_field, fanout,
                                                        /*offset=*/0);
        case FieldsRouting::kWorstCase:
          // Rotation by edge_index + 1: every hop lands off-server for
          // aligned keys, and consecutive hops disagree so correlated keys
          // never end up co-located.
          return std::make_unique<IdentityFieldsRouter>(
              edge.key_field, fanout, /*offset=*/edge_index + 1);
        case FieldsRouting::kPartialKey:
          return std::make_unique<PartialKeyRouter>(edge.key_field, fanout);
      }
      break;
  }
  LAR_CHECK(false && "unreachable: unknown grouping");
  return nullptr;
}

}  // namespace lar
