#include "topology/topology.hpp"

#include <algorithm>
#include <queue>

namespace lar {

OperatorId Topology::add_operator(OperatorSpec spec) {
  LAR_CHECK(spec.parallelism >= 1);
  operators_.push_back(std::move(spec));
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return static_cast<OperatorId>(operators_.size() - 1);
}

void Topology::connect(OperatorId from, OperatorId to, GroupingType grouping,
                       std::uint32_t key_field) {
  LAR_CHECK(from < operators_.size());
  LAR_CHECK(to < operators_.size());
  LAR_CHECK(from != to);
  const auto edge_id = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back(EdgeSpec{from, to, grouping, key_field});
  out_edges_[from].push_back(edge_id);
  in_edges_[to].push_back(edge_id);
}

Status Topology::validate() const {
  if (operators_.empty()) {
    return {ErrorCode::kInvalidArgument, "topology has no operators"};
  }
  bool has_source = false;
  for (OperatorId id = 0; id < operators_.size(); ++id) {
    const OperatorSpec& op = operators_[id];
    if (op.is_source) {
      has_source = true;
      if (!in_edges_[id].empty()) {
        return {ErrorCode::kInvalidArgument,
                "source operator '" + op.name + "' has inbound edges"};
      }
    } else if (in_edges_[id].empty()) {
      return {ErrorCode::kInvalidArgument,
              "operator '" + op.name + "' is unreachable (no inbound edges)"};
    }
    if (op.stateful) {
      for (const auto e : in_edges_[id]) {
        if (edges_[e].grouping != GroupingType::kFields) {
          return {ErrorCode::kInvalidArgument,
                  "stateful operator '" + op.name +
                      "' has a non-fields-grouped inbound edge"};
        }
      }
    }
  }
  if (!has_source) {
    return {ErrorCode::kInvalidArgument, "topology has no source operator"};
  }
  // Cycle check via Kahn's algorithm.
  if (topological_order().size() != operators_.size()) {
    return {ErrorCode::kInvalidArgument, "topology contains a cycle"};
  }
  return Status::ok();
}

std::vector<OperatorId> Topology::topological_order() const {
  std::vector<std::uint32_t> indegree(operators_.size(), 0);
  for (const auto& e : edges_) ++indegree[e.to];
  std::queue<OperatorId> ready;
  for (OperatorId id = 0; id < operators_.size(); ++id) {
    if (indegree[id] == 0) ready.push(id);
  }
  std::vector<OperatorId> order;
  order.reserve(operators_.size());
  while (!ready.empty()) {
    const OperatorId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (const auto e : out_edges_[id]) {
      if (--indegree[edges_[e].to] == 0) ready.push(edges_[e].to);
    }
  }
  return order;  // shorter than operators_.size() iff there is a cycle
}

std::vector<OperatorId> Topology::sources() const {
  std::vector<OperatorId> out;
  for (OperatorId id = 0; id < operators_.size(); ++id) {
    if (operators_[id].is_source) out.push_back(id);
  }
  return out;
}

std::vector<std::optional<OperatorId>> compute_stats_anchors(
    const Topology& topology) {
  std::vector<std::optional<OperatorId>> anchor(topology.num_operators());
  std::vector<bool> ambiguous(topology.num_operators(), false);
  for (const OperatorId op : topology.topological_order()) {
    for (const std::uint32_t eid : topology.in_edges(op)) {
      const EdgeSpec& edge = topology.edges()[eid];
      // A fields edge re-anchors at its destination; any other grouping
      // passes the upstream anchor through unchanged.
      std::optional<OperatorId> incoming;
      bool incoming_ambiguous = false;
      if (edge.grouping == GroupingType::kFields) {
        incoming = op;
      } else {
        incoming = anchor[edge.from];
        incoming_ambiguous = ambiguous[edge.from];
      }
      if (incoming_ambiguous ||
          (anchor[op].has_value() && incoming.has_value() &&
           anchor[op] != incoming)) {
        ambiguous[op] = true;
      } else if (incoming.has_value()) {
        anchor[op] = incoming;
      }
    }
    if (ambiguous[op]) anchor[op] = std::nullopt;
  }
  return anchor;
}

Topology make_two_stage_topology(std::uint32_t parallelism,
                                 double cpu_cost_per_tuple,
                                 std::uint32_t source_parallelism,
                                 double source_cpu_cost) {
  return make_chain_topology(2, parallelism, cpu_cost_per_tuple,
                             source_parallelism, source_cpu_cost);
}

Topology make_chain_topology(std::uint32_t stages, std::uint32_t parallelism,
                             double cpu_cost_per_tuple,
                             std::uint32_t source_parallelism,
                             double source_cpu_cost) {
  LAR_CHECK(stages >= 1);
  if (source_parallelism == 0) source_parallelism = parallelism;
  Topology t;
  OperatorId prev = t.add_operator({.name = "S",
                                    .parallelism = source_parallelism,
                                    .stateful = false,
                                    .is_source = true,
                                    .cpu_cost_per_tuple = source_cpu_cost});
  for (std::uint32_t k = 0; k < stages; ++k) {
    const OperatorId op =
        t.add_operator({.name = std::string(1, static_cast<char>('A' + k)),
                        .parallelism = parallelism,
                        .stateful = true,
                        .is_source = false,
                        .cpu_cost_per_tuple = cpu_cost_per_tuple});
    t.connect(prev, op, GroupingType::kFields, /*key_field=*/k);
    prev = op;
  }
  LAR_CHECK(t.validate().is_ok());
  return t;
}

}  // namespace lar
