#include "topology/key_dict.hpp"

#include "common/status.hpp"

namespace lar {

Key KeyDict::intern(std::string_view name) {
  if (auto it = ids_.find(std::string(name)); it != ids_.end()) {
    return it->second;
  }
  const Key id = names_.size();
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<Key> KeyDict::find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& KeyDict::name(Key key) const {
  LAR_CHECK(key < names_.size());
  return names_[static_cast<std::size_t>(key)];
}

}  // namespace lar
