#include "topology/key_dict.hpp"

#include "common/status.hpp"

namespace lar {

Key KeyDict::intern(std::string_view name) {
  if (const Key* found = ids_.find(name)) return *found;
  const Key id = names_.size();
  names_.emplace_back(name);
  ids_[names_.back()] = id;
  return id;
}

std::optional<Key> KeyDict::find(std::string_view name) const {
  const Key* found = ids_.find(name);
  if (found == nullptr) return std::nullopt;
  return *found;
}

const std::string& KeyDict::name(Key key) const {
  LAR_CHECK(key < names_.size());
  return names_[static_cast<std::size_t>(key)];
}

}  // namespace lar
