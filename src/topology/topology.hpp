// Application model: a DAG of processing operators (POs) connected by
// streams, each stream edge labeled with a routing policy (Section 2 of the
// paper).
//
// The model is deliberately engine-agnostic: both the threaded runtime
// (lar::runtime) and the performance simulator (lar::sim) deploy the same
// Topology, and the locality optimizer (lar::core) rewrites its routing
// tables without knowing which engine executes it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "topology/types.hpp"

namespace lar {

/// How an edge splits a stream between the instances of its recipient PO
/// (Section 2.2).
enum class GroupingType {
  kShuffle,          ///< round robin; stateless recipients only
  kLocalOrShuffle,   ///< prefer a co-located instance, else shuffle
  kFields,           ///< key-based; required for stateful recipients
};

[[nodiscard]] constexpr const char* to_string(GroupingType g) noexcept {
  switch (g) {
    case GroupingType::kShuffle: return "shuffle";
    case GroupingType::kLocalOrShuffle: return "local-or-shuffle";
    case GroupingType::kFields: return "fields";
  }
  return "?";
}

/// A processing operator (PO).
struct OperatorSpec {
  std::string name;
  std::uint32_t parallelism = 1;  ///< number of instances (POIs)
  bool stateful = false;          ///< maintains per-key state
  bool is_source = false;         ///< entry point of the DAG

  /// CPU cost of processing one tuple, in abstract work units (the simulator
  /// converts units to time; 1.0 ~ a trivial counter update).
  double cpu_cost_per_tuple = 1.0;
};

/// A stream edge PO -> PO.
struct EdgeSpec {
  OperatorId from = 0;
  OperatorId to = 0;
  GroupingType grouping = GroupingType::kShuffle;

  /// For kFields: index into Tuple::fields of the routing key.
  std::uint32_t key_field = 0;
};

/// Immutable-after-build DAG description.
class Topology {
 public:
  /// Adds a PO; returns its id.  Source POs must have is_source = true.
  OperatorId add_operator(OperatorSpec spec);

  /// Connects two POs.  Fails (LAR_CHECK) on invalid ids or self loops.
  void connect(OperatorId from, OperatorId to, GroupingType grouping,
               std::uint32_t key_field = 0);

  /// Validates the DAG: at least one source, acyclic, every stateful PO's
  /// inbound edges use fields grouping, every non-source PO is reachable.
  [[nodiscard]] Status validate() const;

  [[nodiscard]] std::size_t num_operators() const noexcept {
    return operators_.size();
  }
  [[nodiscard]] const OperatorSpec& op(OperatorId id) const {
    LAR_CHECK(id < operators_.size());
    return operators_[id];
  }
  [[nodiscard]] const std::vector<EdgeSpec>& edges() const noexcept {
    return edges_;
  }

  /// Ids of edges leaving `id` / entering `id` (indices into edges()).
  [[nodiscard]] const std::vector<std::uint32_t>& out_edges(OperatorId id) const {
    LAR_CHECK(id < out_edges_.size());
    return out_edges_[id];
  }
  [[nodiscard]] const std::vector<std::uint32_t>& in_edges(OperatorId id) const {
    LAR_CHECK(id < in_edges_.size());
    return in_edges_[id];
  }

  /// Operator ids in a topological order (sources first).
  /// Precondition: validate().is_ok().
  [[nodiscard]] std::vector<OperatorId> topological_order() const;

  /// Ids of all source POs.
  [[nodiscard]] std::vector<OperatorId> sources() const;

 private:
  std::vector<OperatorSpec> operators_;
  std::vector<EdgeSpec> edges_;
  std::vector<std::vector<std::uint32_t>> out_edges_;
  std::vector<std::vector<std::uint32_t>> in_edges_;
};

/// Builds the paper's evaluation topology (Section 4.1): a source S feeding
/// two consecutive stateful counting POs A and B, routed by fields grouping
/// on tuple field 0 (S->A) and field 1 (A->B), each with `parallelism`
/// instances.
///
/// The source is replicated like the paper's spout (one instance per server;
/// `source_parallelism` = 0 means "same as parallelism") and emitting is
/// cheap relative to processing (`source_cpu_cost`), which is what lets the
/// paper's deployment scale linearly instead of bottlenecking on the spout.
[[nodiscard]] Topology make_two_stage_topology(
    std::uint32_t parallelism, double cpu_cost_per_tuple = 1.0,
    std::uint32_t source_parallelism = 0, double source_cpu_cost = 0.05);

/// For every operator, the "statistics anchor": the operator whose input
/// key a tuple observed at this operator was most recently routed by
/// (fields grouping).  A stateful operator is its own anchor (its input is
/// fields-grouped); a stateless operator fed through shuffle /
/// local-or-shuffle inherits its predecessor's anchor — which is how the
/// correlation between two stateful POs separated by stateless ones is
/// still observable (paper Section 3.1, Figure 3: B and D are the
/// consecutive *stateful* POs even though C sits between them).
///
/// Returns one entry per operator: the anchor op id, or nullopt when the
/// operator has no upstream fields hop (sources) or an ambiguous one
/// (different inbound paths carrying keys of different operators; such
/// operators conservatively record no statistics).
/// Precondition: topology.validate().is_ok().
[[nodiscard]] std::vector<std::optional<OperatorId>> compute_stats_anchors(
    const Topology& topology);

/// Generalization to `stages` consecutive stateful POs: S -> Op1 -> ... ->
/// OpK, where the edge into Op_k routes on tuple field k-1.  The paper's
/// evaluation topology is the stages == 2 case; longer chains exercise the
/// multi-hop key graph (pairs from hop k share Op_k's keys with pairs from
/// hop k+1, stitching one connected optimization problem — Section 6:
/// "the same graph partitioning technique can be applied to more complex
/// DAGs").
[[nodiscard]] Topology make_chain_topology(
    std::uint32_t stages, std::uint32_t parallelism,
    double cpu_cost_per_tuple = 1.0, std::uint32_t source_parallelism = 0,
    double source_cpu_cost = 0.05);

}  // namespace lar
