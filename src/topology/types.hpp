// Fundamental identifier and data-tuple types of the stream model.
#pragma once

#include <cstdint>
#include <vector>

namespace lar {

/// Interned key: stream keys (words, hashtags, countries, ...) are mapped to
/// dense 64-bit ids by KeyDict.  Routing, statistics and state all operate on
/// ids; only the application boundary deals in strings.
using Key = std::uint64_t;

/// Sentinel: "no key" — e.g. the routing-key context of a tuple that has not
/// passed any fields-grouped hop yet.  Never produced by KeyDict.
inline constexpr Key kNoKey = static_cast<Key>(-1);

/// Index of a processing operator (PO) within a Topology.
using OperatorId = std::uint32_t;

/// Index of an operator instance (POI) within its PO, in [0, parallelism).
using InstanceIndex = std::uint32_t;

/// Physical server index, in [0, num_servers).
using ServerId = std::uint32_t;

/// A (PO, instance) pair globally identifying one POI.
struct InstanceId {
  OperatorId op = 0;
  InstanceIndex index = 0;

  friend bool operator==(const InstanceId&, const InstanceId&) = default;
  friend auto operator<=>(const InstanceId&, const InstanceId&) = default;
};

/// How the emitting source instance is chosen for each injected tuple.
enum class SourceMode {
  /// instance = fields[0] % parallelism.  Models the paper's synthetic
  /// benchmark where the spout on server i produces the tuples whose first
  /// integer maps to i, so S->A can be fully local under locality-aware
  /// routing and 100% locality means zero network traffic (Section 4.2).
  kAlignedField0,

  /// Round-robin.  Models replicated spouts reading shards of a dataset
  /// (the Twitter/Flickr experiments): no routing policy can make S->A
  /// systematically local.
  kRoundRobin,
};

/// A data tuple flowing through the DAG.
///
/// `fields` holds the interned key fields (e.g. {location, hashtag}); which
/// field routes a given hop is declared per-edge in the Topology.  `padding`
/// models the payload bytes that real tuples carry besides their keys (the
/// paper sweeps it from 0 to 20 kB); padding is never materialized, only
/// accounted for in serialized_size().
struct Tuple {
  std::vector<Key> fields;
  std::uint32_t padding = 0;

  /// Bytes this tuple occupies on the wire when crossing servers:
  /// a fixed header, 8 bytes per field, plus the payload.
  [[nodiscard]] std::uint32_t serialized_size() const noexcept {
    constexpr std::uint32_t kHeaderBytes = 16;
    return kHeaderBytes +
           static_cast<std::uint32_t>(fields.size()) * 8u + padding;
  }
};

}  // namespace lar
