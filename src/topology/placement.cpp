#include "topology/placement.hpp"

#include <algorithm>

namespace lar {

Placement Placement::round_robin(const Topology& topology,
                                 std::uint32_t num_servers) {
  LAR_CHECK(num_servers >= 1);
  Placement p;
  p.num_servers_ = num_servers;
  p.rack_of_server_.assign(num_servers, 0);
  p.servers_.resize(topology.num_operators());
  for (OperatorId op = 0; op < topology.num_operators(); ++op) {
    const std::uint32_t parallelism = topology.op(op).parallelism;
    p.servers_[op].resize(parallelism);
    for (InstanceIndex i = 0; i < parallelism; ++i) {
      p.servers_[op][i] = i % num_servers;
    }
  }
  p.build_locals();
  return p;
}

Placement Placement::round_robin_racked(const Topology& topology,
                                        std::uint32_t num_servers,
                                        std::uint32_t servers_per_rack) {
  LAR_CHECK(servers_per_rack >= 1);
  LAR_CHECK(num_servers % servers_per_rack == 0);
  Placement p = round_robin(topology, num_servers);
  p.num_racks_ = num_servers / servers_per_rack;
  for (ServerId s = 0; s < num_servers; ++s) {
    p.rack_of_server_[s] = s / servers_per_rack;
  }
  return p;
}

Placement Placement::with_racks(
    std::vector<std::uint32_t> rack_of_server) const {
  LAR_CHECK(rack_of_server.size() == num_servers_);
  Placement p = *this;
  std::uint32_t max_rack = 0;
  for (const auto r : rack_of_server) max_rack = std::max(max_rack, r);
  p.num_racks_ = max_rack + 1;
  std::vector<bool> seen(p.num_racks_, false);
  for (const auto r : rack_of_server) seen[r] = true;
  for (const bool s : seen) LAR_CHECK(s && "empty rack id in mapping");
  p.rack_of_server_ = std::move(rack_of_server);
  return p;
}

Placement Placement::with_servers(std::uint32_t num_servers) const {
  LAR_CHECK(num_servers >= 1);
  Placement p;
  p.num_servers_ = num_servers;
  p.rack_of_server_.assign(num_servers, 0);
  p.servers_.resize(servers_.size());
  for (std::size_t op = 0; op < servers_.size(); ++op) {
    const std::size_t parallelism = servers_[op].size();
    p.servers_[op].resize(parallelism);
    for (InstanceIndex i = 0; i < parallelism; ++i) {
      p.servers_[op][i] = i % num_servers;
    }
  }
  p.build_locals();
  return p;
}

std::vector<InstanceIndex> Placement::active_instances(
    OperatorId op, std::uint32_t num_active) const {
  LAR_CHECK(op < servers_.size());
  LAR_CHECK(num_active >= 1 && num_active <= num_servers_);
  std::vector<InstanceIndex> out;
  for (InstanceIndex i = 0; i < servers_[op].size(); ++i) {
    if (servers_[op][i] < num_active) out.push_back(i);
  }
  return out;
}

std::vector<ServerId> Placement::servers_in_rack(std::uint32_t rack) const {
  LAR_CHECK(rack < num_racks_);
  std::vector<ServerId> out;
  for (ServerId s = 0; s < num_servers_; ++s) {
    if (rack_of_server_[s] == rack) out.push_back(s);
  }
  return out;
}

Placement Placement::explicit_placement(
    std::vector<std::vector<ServerId>> servers, std::uint32_t num_servers) {
  LAR_CHECK(num_servers >= 1);
  Placement p;
  p.num_servers_ = num_servers;
  p.rack_of_server_.assign(num_servers, 0);
  p.servers_ = std::move(servers);
  for (const auto& per_op : p.servers_) {
    LAR_CHECK(!per_op.empty() && "operator with zero instances");
    for (const auto s : per_op) LAR_CHECK(s < num_servers);
  }
  p.build_locals();
  return p;
}

void Placement::build_locals() {
  locals_.assign(servers_.size(), {});
  for (std::size_t op = 0; op < servers_.size(); ++op) {
    locals_[op].assign(num_servers_, {});
    for (InstanceIndex i = 0; i < servers_[op].size(); ++i) {
      locals_[op][servers_[op][i]].push_back(i);
    }
  }
}

}  // namespace lar
