#include "elastic/controller.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace lar::elastic {

Controller::Controller(ControllerOptions options) : options_(options) {
  LAR_CHECK(options_.min_servers >= 1);
  LAR_CHECK(options_.max_servers >= options_.min_servers);
  LAR_CHECK(options_.scale_in_utilization < options_.scale_out_utilization);
  LAR_CHECK(options_.confirm_epochs >= 1);
}

ScaleDecision Controller::evaluate(const Signals& signals,
                                   std::uint32_t current_servers) {
  LAR_CHECK(current_servers >= 1);
  ScaleDecision decision{current_servers, Reason::kHold};

  // A resize still settling (state in flight) pins the fleet regardless of
  // what utilization reads — half-migrated epochs produce junk signals.
  // The health probe's veto (migration/recovery work observed in the last
  // timeline tick) pins for exactly the same reason.
  if (signals.migration_backlog > 0.0 || signals.health_veto > 0.0 ||
      cooldown_ > 0) {
    if (cooldown_ > 0) --cooldown_;
    over_streak_ = 0;
    under_streak_ = 0;
    decision.reason = Reason::kCooldown;
    return decision;
  }

  // A health-pressure alert (sustained imbalance, locality drop or queue
  // growth) is an overload observation even when raw utilization sits in
  // the dead band — and, by taking this branch, it also blocks scale-in.
  if (signals.utilization >= options_.scale_out_utilization ||
      signals.health_pressure > 0.0) {
    under_streak_ = 0;
    ++over_streak_;
    if (over_streak_ < options_.confirm_epochs) {
      decision.reason = Reason::kConfirming;
      return decision;
    }
    over_streak_ = 0;
    std::uint32_t target = options_.step == 0
                               ? current_servers * 2
                               : current_servers + options_.step;
    target = std::min(target, options_.max_servers);
    if (target == current_servers) {
      decision.reason = Reason::kAtBound;
      return decision;
    }
    cooldown_ = options_.cooldown_epochs;
    decision.target_servers = target;
    decision.reason = Reason::kOverload;
    return decision;
  }

  if (signals.utilization <= options_.scale_in_utilization) {
    over_streak_ = 0;
    ++under_streak_;
    if (under_streak_ < options_.confirm_epochs) {
      decision.reason = Reason::kConfirming;
      return decision;
    }
    under_streak_ = 0;
    std::uint32_t target = options_.step == 0
                               ? current_servers / 2
                               : current_servers -
                                     std::min(options_.step,
                                              current_servers - 1);
    target = std::max(target, options_.min_servers);
    if (target == current_servers) {
      decision.reason = Reason::kAtBound;
      return decision;
    }
    cooldown_ = options_.cooldown_epochs;
    decision.target_servers = target;
    decision.reason = Reason::kUnderload;
    return decision;
  }

  // Dead band: healthy. Streaks reset so a breach must be consecutive.
  over_streak_ = 0;
  under_streak_ = 0;
  return decision;
}

Signals signals_from_registry(const obs::Registry& registry,
                              double offered_rate) {
  Signals out;
  for (const obs::Registry::FamilyView& family : registry.families()) {
    if (family.name == "lar_window_throughput_tps") {
      for (const obs::Registry::Sample& s : family.samples) {
        const double tput = s.gauge->value();
        if (tput > 0.0) out.utilization = offered_rate / tput;
      }
    } else if (family.name == "lar_edge_locality_ratio") {
      double sum = 0.0;
      std::size_t n = 0;
      for (const obs::Registry::Sample& s : family.samples) {
        sum += s.gauge->value();
        ++n;
      }
      if (n > 0) out.locality = sum / static_cast<double>(n);
    } else if (family.name == "lar_op_load_balance_ratio") {
      for (const obs::Registry::Sample& s : family.samples) {
        out.balance = std::max(out.balance, s.gauge->value());
      }
    } else if (family.name == "lar_queue_depth_hwm") {
      for (const obs::Registry::Sample& s : family.samples) {
        out.queue_hwm = std::max(out.queue_hwm, s.gauge->value());
      }
    } else if (family.name == "lar_health_pressure") {
      for (const obs::Registry::Sample& s : family.samples) {
        out.health_pressure = std::max(out.health_pressure, s.gauge->value());
      }
    } else if (family.name == "lar_health_veto") {
      for (const obs::Registry::Sample& s : family.samples) {
        out.health_veto = std::max(out.health_veto, s.gauge->value());
      }
    }
  }
  return out;
}

void publish_decision(obs::Registry& registry, const ScaleDecision& decision) {
  registry
      .gauge("lar_elastic_target_servers", {},
             "Server count the autoscaling controller last asked for.")
      .set(static_cast<double>(decision.target_servers));
  registry
      .counter("lar_elastic_decisions_total",
               {{"reason", to_string(decision.reason)}},
               "Controller evaluations by decision reason.")
      .inc();
}

Signals aggregate_signals(const std::vector<Signals>& per_app) {
  Signals out;
  if (per_app.empty()) return out;
  out.locality = 1.0;
  for (const Signals& s : per_app) {
    out.utilization = std::max(out.utilization, s.utilization);
    out.locality = std::min(out.locality, s.locality);
    out.balance = std::max(out.balance, s.balance);
    out.queue_hwm = std::max(out.queue_hwm, s.queue_hwm);
    out.migration_backlog =
        std::max(out.migration_backlog, s.migration_backlog);
    out.health_pressure = std::max(out.health_pressure, s.health_pressure);
    out.health_veto = std::max(out.health_veto, s.health_veto);
  }
  return out;
}

std::size_t dominant_app(const std::vector<Signals>& per_app) {
  LAR_CHECK(!per_app.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < per_app.size(); ++i) {
    if (per_app[i].utilization > per_app[best].utilization) best = i;
  }
  return best;
}

void publish_decision(obs::Registry& registry, const ScaleDecision& decision,
                      std::string_view app) {
  registry
      .gauge("lar_elastic_target_servers", {},
             "Server count the autoscaling controller last asked for.")
      .set(static_cast<double>(decision.target_servers));
  registry
      .counter("lar_elastic_decisions_total",
               {{"app", std::string(app)},
                {"reason", to_string(decision.reason)}},
               "Controller evaluations by decision reason.")
      .inc();
}

}  // namespace lar::elastic
