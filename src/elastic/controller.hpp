// Autoscaling controller (lar::elastic): decides WHEN to change the live
// server count; the Manager's plan_for() + the engine/sim resize paths
// decide HOW (locality-aware re-planning with epoch-consistent routing).
//
// The controller is a deterministic state machine over observability
// snapshots: every input comes from an obs::Registry (queue high-water
// marks, per-window throughput, locality, load balance) plus the offered
// rate the caller knows, and every decision is a pure function of those
// signals and the controller's own streak/cooldown counters.  No wall
// clock, no randomness — same signal sequence, same decisions, which is
// what makes elastic benches byte-reproducible.
//
// Hysteresis has three layers, all tunable:
//   - dual thresholds: scale out above `scale_out_utilization`, in below
//     `scale_in_utilization`, hold in between (the dead band);
//   - confirmation: a breach must persist `confirm_epochs` consecutive
//     evaluations before acting (ephemeral spikes don't resize);
//   - cooldown: after acting, hold for `cooldown_epochs` evaluations so the
//     fleet and the re-planner settle before the next change.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace lar::elastic {

struct ControllerOptions {
  /// Fleet bounds.  max_servers is the provisioned capacity (the Placement's
  /// server count); scale-out never exceeds it, scale-in never goes below
  /// min_servers.
  std::uint32_t min_servers = 1;
  std::uint32_t max_servers = 1;

  /// Utilization (offered rate / sustainable throughput) above which the
  /// fleet is overloaded and should grow.
  double scale_out_utilization = 0.85;

  /// Utilization below which the fleet is underused and should shrink.
  /// Must sit well under scale_out_utilization: after halving, utilization
  /// roughly doubles, and a dead band narrower than that oscillates.
  double scale_in_utilization = 0.35;

  /// Consecutive breaching evaluations required before acting.
  std::uint32_t confirm_epochs = 2;

  /// Evaluations to hold after a scale decision.
  std::uint32_t cooldown_epochs = 3;

  /// Servers added/removed per decision; 0 = double on the way out, halve on
  /// the way in (reaches any fleet size in logarithmic decisions).
  std::uint32_t step = 0;
};

/// One evaluation's inputs, typically built by signals_from_registry().
struct Signals {
  /// offered rate / sustainable throughput of the last window; > 1 means
  /// the fleet cannot keep up.  The primary scaling signal.
  double utilization = 0.0;

  /// Mean per-edge locality ratio (diagnostic; carried into decisions'
  /// observability, not thresholds — re-planning restores locality after
  /// any resize).
  double locality = 0.0;

  /// Worst per-operator max/avg instance load.
  double balance = 1.0;

  /// Deepest queue high-water mark (runtime engines; 0 in the sim).
  double queue_hwm = 0.0;

  /// Key states still in flight from the previous resize (0 once settled).
  double migration_backlog = 0.0;

  /// Health-probe inputs (obs v2; 0 when no probe publishes, keeping every
  /// probe-free decision sequence identical).  `health_pressure` is the
  /// `lar_health_pressure` gauge: a sustained imbalance / locality-drop /
  /// queue-growth alert counts as an overload observation (and therefore
  /// also blocks scale-in).  `health_veto` is the `lar_health_veto` gauge:
  /// migration or recovery work still in flight pins the fleet exactly
  /// like migration_backlog does.
  double health_pressure = 0.0;
  double health_veto = 0.0;
};

/// Why the controller decided what it decided.
enum class Reason : std::uint8_t {
  kHold,        ///< utilization inside the dead band
  kOverload,    ///< sustained overload -> scale out
  kUnderload,   ///< sustained underload -> scale in
  kCooldown,    ///< holding after a recent decision
  kConfirming,  ///< breach observed but not yet confirmed
  kAtBound,     ///< confirmed breach, but the fleet is at min/max already
};

[[nodiscard]] constexpr const char* to_string(Reason r) noexcept {
  switch (r) {
    case Reason::kHold: return "hold";
    case Reason::kOverload: return "overload";
    case Reason::kUnderload: return "underload";
    case Reason::kCooldown: return "cooldown";
    case Reason::kConfirming: return "confirming";
    case Reason::kAtBound: return "at_bound";
  }
  return "?";
}

/// The controller's verdict: the server count to run with next.
/// target_servers == the current count means "no change" (see reason).
struct ScaleDecision {
  std::uint32_t target_servers = 0;
  Reason reason = Reason::kHold;

  [[nodiscard]] bool changed(std::uint32_t current) const noexcept {
    return target_servers != current;
  }
};

/// Deterministic hysteresis state machine; call evaluate() once per epoch
/// (window, bench interval, ...) and act on decisions that changed().
class Controller {
 public:
  explicit Controller(ControllerOptions options);

  /// One evaluation step.  Mutates only streak/cooldown counters; the same
  /// (signal, current) sequence always yields the same decision sequence.
  [[nodiscard]] ScaleDecision evaluate(const Signals& signals,
                                       std::uint32_t current_servers);

  [[nodiscard]] const ControllerOptions& options() const noexcept {
    return options_;
  }

 private:
  ControllerOptions options_;
  std::uint32_t over_streak_ = 0;
  std::uint32_t under_streak_ = 0;
  std::uint32_t cooldown_ = 0;
};

/// Builds Signals from the canonical registry families the sim/runtime
/// publish: `lar_window_throughput_tps` (utilization denominator),
/// `lar_edge_locality_ratio` (mean), `lar_op_load_balance_ratio` (max),
/// `lar_queue_depth_hwm` (max), plus — when an obs::Probe feeds the same
/// registry — `lar_health_pressure` / `lar_health_veto`.  Missing families
/// leave the struct defaults.  Deterministic: families() iterates in
/// canonical order.
[[nodiscard]] Signals signals_from_registry(const obs::Registry& registry,
                                            double offered_rate);

/// Publishes a decision into `registry`: the `lar_elastic_target_servers`
/// gauge and one `lar_elastic_decisions_total{reason}` counter increment.
void publish_decision(obs::Registry& registry, const ScaleDecision& decision);

/// Fleet aggregation (lar::fleet): folds per-tenant signal snapshots into
/// the one Signals the shared controller evaluates.  Pressure-like signals
/// take the worst tenant (max), locality the worst-served tenant (min), and
/// any tenant's veto pins the fleet (max over the 0/1 health_veto gauge ==
/// any).  Order-independent up to ties, so the canonical app order makes it
/// deterministic.  An empty input returns the Signals defaults.
[[nodiscard]] Signals aggregate_signals(const std::vector<Signals>& per_app);

/// The tenant driving the aggregate pressure: argmax utilization, first
/// index winning ties (canonical app order) — the deterministic
/// noisy-neighbor attribution for `lar_elastic_decisions_total{app}`.
/// Precondition: !per_app.empty().
[[nodiscard]] std::size_t dominant_app(const std::vector<Signals>& per_app);

/// Tenant-attributed variant (lar::fleet): like publish_decision, but the
/// decisions counter names the tenant the aggregate pressure was attributed
/// to — `lar_elastic_decisions_total{app,reason}`.
void publish_decision(obs::Registry& registry, const ScaleDecision& decision,
                      std::string_view app);

}  // namespace lar::elastic
