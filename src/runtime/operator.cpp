#include "runtime/operator.hpp"

#include <algorithm>
#include <cstring>

#include "common/status.hpp"

namespace lar::runtime {

void CountingOperator::process(const Tuple& tuple, Emitter& emitter) {
  LAR_CHECK(key_field_ < tuple.fields.size());
  ++counts_[tuple.fields[key_field_]];
  emitter.emit(tuple);
}

std::vector<std::byte> CountingOperator::export_key_state(Key key) {
  auto it = counts_.find(key);
  if (it == counts_.end()) return {};
  std::vector<std::byte> out(sizeof(std::uint64_t));
  std::memcpy(out.data(), &it->second, sizeof(std::uint64_t));
  return out;
}

void CountingOperator::import_key_state(Key key,
                                        std::span<const std::byte> state) {
  if (state.empty()) return;
  LAR_CHECK(state.size() == sizeof(std::uint64_t));
  std::uint64_t value = 0;
  std::memcpy(&value, state.data(), sizeof(std::uint64_t));
  counts_[key] += value;  // += so partial local counts merge correctly
}

void CountingOperator::drop_key_state(Key key) { counts_.erase(key); }

std::vector<Key> CountingOperator::owned_keys() const {
  std::vector<Key> out;
  out.reserve(counts_.size());
  for (const auto& [key, value] : counts_) out.push_back(key);
  std::sort(out.begin(), out.end());  // canonical drain order
  return out;
}

std::vector<std::pair<Key, std::uint64_t>> CountingOperator::top(
    std::size_t k) const {
  std::vector<std::pair<Key, std::uint64_t>> out(counts_.begin(),
                                                 counts_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::uint64_t CountingOperator::count(Key key) const {
  auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

void PartialCountOperator::process(const Tuple& tuple, Emitter& emitter) {
  LAR_CHECK(key_field_ < tuple.fields.size());
  const Key key = tuple.fields[key_field_];
  ++partials_[key];
  // One delta per input, routed downstream by the key: the merge stage's
  // totals equal the per-key input counts no matter how many replicas the
  // key is split across.
  emitter.emit(Tuple{{key, 1}, /*padding=*/0});
}

std::vector<std::byte> PartialCountOperator::export_key_state(Key key) {
  auto it = partials_.find(key);
  if (it == partials_.end()) return {};
  std::vector<std::byte> out(sizeof(std::uint64_t));
  std::memcpy(out.data(), &it->second, sizeof(std::uint64_t));
  return out;
}

void PartialCountOperator::import_key_state(Key key,
                                            std::span<const std::byte> state) {
  if (state.empty()) return;
  LAR_CHECK(state.size() == sizeof(std::uint64_t));
  std::uint64_t value = 0;
  std::memcpy(&value, state.data(), sizeof(std::uint64_t));
  partials_[key] += value;  // += so converging replica partials merge
}

void PartialCountOperator::drop_key_state(Key key) { partials_.erase(key); }

std::vector<Key> PartialCountOperator::owned_keys() const {
  std::vector<Key> out;
  out.reserve(partials_.size());
  for (const auto& [key, value] : partials_) out.push_back(key);
  std::sort(out.begin(), out.end());  // canonical drain order
  return out;
}

std::uint64_t PartialCountOperator::partial(Key key) const {
  auto it = partials_.find(key);
  return it == partials_.end() ? 0 : it->second;
}

void MergeCountOperator::process(const Tuple& tuple, Emitter& emitter) {
  (void)emitter;  // terminal: deltas are absorbed, nothing flows downstream
  LAR_CHECK(key_field_ < tuple.fields.size());
  LAR_CHECK(value_field_ < tuple.fields.size());
  totals_[tuple.fields[key_field_]] += tuple.fields[value_field_];
}

std::vector<std::byte> MergeCountOperator::export_key_state(Key key) {
  auto it = totals_.find(key);
  if (it == totals_.end()) return {};
  std::vector<std::byte> out(sizeof(std::uint64_t));
  std::memcpy(out.data(), &it->second, sizeof(std::uint64_t));
  return out;
}

void MergeCountOperator::import_key_state(Key key,
                                          std::span<const std::byte> state) {
  if (state.empty()) return;
  LAR_CHECK(state.size() == sizeof(std::uint64_t));
  std::uint64_t value = 0;
  std::memcpy(&value, state.data(), sizeof(std::uint64_t));
  totals_[key] += value;  // += so partial local totals merge correctly
}

void MergeCountOperator::drop_key_state(Key key) { totals_.erase(key); }

std::vector<Key> MergeCountOperator::owned_keys() const {
  std::vector<Key> out;
  out.reserve(totals_.size());
  for (const auto& [key, value] : totals_) out.push_back(key);
  std::sort(out.begin(), out.end());  // canonical drain order
  return out;
}

std::uint64_t MergeCountOperator::total(Key key) const {
  auto it = totals_.find(key);
  return it == totals_.end() ? 0 : it->second;
}

}  // namespace lar::runtime
