#include "runtime/operator.hpp"

#include <algorithm>
#include <cstring>

#include "common/status.hpp"

namespace lar::runtime {

void CountingOperator::process(const Tuple& tuple, Emitter& emitter) {
  LAR_CHECK(key_field_ < tuple.fields.size());
  ++counts_[tuple.fields[key_field_]];
  emitter.emit(tuple);
}

std::vector<std::byte> CountingOperator::export_key_state(Key key) {
  auto it = counts_.find(key);
  if (it == counts_.end()) return {};
  std::vector<std::byte> out(sizeof(std::uint64_t));
  std::memcpy(out.data(), &it->second, sizeof(std::uint64_t));
  return out;
}

void CountingOperator::import_key_state(Key key,
                                        std::span<const std::byte> state) {
  if (state.empty()) return;
  LAR_CHECK(state.size() == sizeof(std::uint64_t));
  std::uint64_t value = 0;
  std::memcpy(&value, state.data(), sizeof(std::uint64_t));
  counts_[key] += value;  // += so partial local counts merge correctly
}

void CountingOperator::drop_key_state(Key key) { counts_.erase(key); }

std::vector<Key> CountingOperator::owned_keys() const {
  std::vector<Key> out;
  out.reserve(counts_.size());
  for (const auto& [key, value] : counts_) out.push_back(key);
  std::sort(out.begin(), out.end());  // canonical drain order
  return out;
}

std::vector<std::pair<Key, std::uint64_t>> CountingOperator::top(
    std::size_t k) const {
  std::vector<std::pair<Key, std::uint64_t>> out(counts_.begin(),
                                                 counts_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::uint64_t CountingOperator::count(Key key) const {
  auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace lar::runtime
