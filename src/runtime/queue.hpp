// Hybrid channel used for both data and control messages.
//
// One channel per operator instance (POI).  The *data* hot path runs on
// per-producer SPSC ring lanes: each registered producer (an upstream POI,
// the injector) owns one fixed-capacity ring and publishes batches of items
// by a single atomic tail store; the owning consumer thread round-robin
// drains lanes without ever taking a lock.  Control messages ride either on
// a per-lane control queue stamped with the lane position they must not
// overtake (push_unbounded_after — exact per-producer FIFO of
// control-behind-data), or on the legacy mutex-guarded shared queue
// (push / push_unbounded / try_push) for producers without a lane: the
// manager, sibling POIs migrating state, a POI messaging itself.
//
// Ordering contract (what the reconfiguration wave / chaos dedup / ckpt
// barriers rely on, see CLAUDE.md):
//   * per lane, data items are consumed in push order;
//   * a control message pushed via push_unbounded_after(lane) is consumed
//     after every data item published on that lane before it and before any
//     data item published after it (the stamped watermark);
//   * the shared queue is FIFO in itself and the consumer serves it *first*
//     whenever it is non-empty — a driver-pushed control message (e.g. a
//     checkpoint commit) is never overtaken by a later lane-side control
//     message (e.g. the next epoch's barrier);
//   * ordering across different producers' lanes is unspecified, exactly as
//     the old global FIFO never promised more than some interleaving.
//
// Memory ordering: the lock-free hand-off uses seq_cst on the four
// cross-thread atomics (tail, head, ctrl_mark, the sleep flags).  The two
// Dekker-style pairs — publish-then-check-consumer-waiting vs
// set-waiting-then-scan, and head-store-then-check-producer-waiting vs
// register-then-recheck — plus lock-then-notify on the shared mutex are what
// make blocking wake-ups race-free; the consumer additionally loads tail
// *before* ctrl_mark so a published post-control suffix can never be seen
// without the control mark that precedes it.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace lar::runtime {

/// Bounded blocking FIFO.  push()/lane_push() block while full (back
/// pressure); pop() blocks while empty.  close() wakes everyone; pushes on a
/// closed channel are ignored, pop() drains remaining items then returns
/// nullopt.  Single consumer; one registered producer thread per lane; any
/// number of unregistered producers on the shared queue.
template <typename T>
class Channel {
 public:
  /// Guard evaluated on every *bounded* push (push / try_push / lane_push).
  /// Control messages must travel unbounded — a bounded control push can
  /// deadlock the reconfiguration wave against data back pressure (see
  /// CLAUDE.md) — so the engine installs validators that reject them; a
  /// rejected push is a bug and aborts via LAR_CHECK.  A plain function
  /// pointer keeps the disabled cost at one predictable branch.
  using PushValidator = bool (*)(const T&);

  explicit Channel(std::size_t capacity) : capacity_(capacity) {
    LAR_CHECK(capacity >= 1);
  }

  /// Installs `v` (nullptr = no checking).  Call before producers start.
  void set_push_validator(PushValidator v) { validator_ = v; }

  // --- lane registration (call before producers start) ----------------------

  /// Adds one SPSC ring lane of at least `capacity` slots (rounded up to a
  /// power of two) and returns its id.  The lane's push side belongs to
  /// exactly one producer thread (or one externally-serialized domain, like
  /// the injector under the engine's source mutex).
  std::uint32_t add_lane(std::size_t capacity) {
    std::lock_guard lock(mutex_);
    lanes_.emplace_back(std::bit_ceil(std::max<std::size_t>(capacity, 2)));
    const auto id = static_cast<std::uint32_t>(lanes_.size() - 1);
    num_lanes_.store(lanes_.size(), std::memory_order_release);
    return id;
  }

  /// Items per lane publication.  1 (the default) publishes every push —
  /// byte-for-byte the unbatched hand-off; larger values defer the tail
  /// store so a burst of emissions costs one atomic per `batch`.  Staged
  /// items become visible at the next auto-publish, lane_flush(), or
  /// push_unbounded_after().  Call before producers start.
  void set_lane_batch(std::size_t batch) {
    LAR_CHECK(batch >= 1);
    batch_ = batch;
  }

  [[nodiscard]] std::size_t num_lanes() const {
    return num_lanes_.load(std::memory_order_acquire);
  }

  // --- producer side ---------------------------------------------------------

  /// Blocking bounded push on `lane`; returns false iff the channel is
  /// closed.  Producer-thread only.
  bool lane_push(std::uint32_t lane_id, T item) {
    LAR_CHECK(validator_ == nullptr || validator_(item));
    Lane& lane = lanes_[lane_id];
    for (;;) {
      if (closed_.load(std::memory_order_relaxed)) return false;
      const std::uint64_t head = lane.head.load(std::memory_order_seq_cst);
      if (lane.staged - head < lane.ring.size()) break;
      // Ring full: publish what we have so the consumer can make progress,
      // then park on the shared condvar until it frees a slot.
      publish(lane);
      std::unique_lock lock(mutex_);
      waiting_producers_.fetch_add(1, std::memory_order_seq_cst);
      not_full_.wait(lock, [&] {
        return closed_ ||
               lane.head.load(std::memory_order_seq_cst) != head;
      });
      waiting_producers_.fetch_sub(1, std::memory_order_relaxed);
      if (closed_) return false;
    }
    lane.ring[lane.staged & lane.mask] = std::move(item);
    ++lane.staged;
    if (lane.staged - lane.tail.load(std::memory_order_relaxed) >= batch_) {
      publish(lane);
    }
    return true;
  }

  /// Publishes any staged items on `lane`.  Producer-thread only.
  void lane_flush(std::uint32_t lane_id) { publish(lanes_[lane_id]); }

  /// Control push FIFO-after `lane`'s data: publishes the lane, then
  /// enqueues `item` stamped with the published position — the consumer
  /// serves it after every data item before that mark and before any item
  /// after it.  Ignores the capacity bound (control must never block behind
  /// data back pressure).  Producer-thread only.  Returns false iff closed.
  bool push_unbounded_after(std::uint32_t lane_id, T item) {
    Lane& lane = lanes_[lane_id];
    publish(lane);
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      const std::uint64_t mark = lane.tail.load(std::memory_order_relaxed);
      lane.ctrl.emplace_back(std::move(item), mark);
      if (lane.ctrl.size() == 1) {
        lane.ctrl_mark.store(mark, std::memory_order_seq_cst);
      }
      slow_count_.fetch_add(1, std::memory_order_seq_cst);
      note_hwm();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Discards `lane`'s staged-but-unpublished items and returns how many
  /// there were.  Crash recovery only: call after the lane's producer thread
  /// has been joined — the consumer never reads past the published tail, so
  /// this is safe against a live (or respawning) consumer.
  std::size_t lane_abort_staged(std::uint32_t lane_id) {
    Lane& lane = lanes_[lane_id];
    const std::uint64_t tail = lane.tail.load(std::memory_order_relaxed);
    const auto n = static_cast<std::size_t>(lane.staged - tail);
    for (std::uint64_t i = tail; i < lane.staged; ++i) {
      lane.ring[i & lane.mask] = T{};
    }
    lane.staged = tail;
    return n;
  }

  // --- legacy shared-queue API (unregistered producers) ----------------------

  /// Blocking bounded push; returns false iff the channel is closed.
  bool push(T item) {
    LAR_CHECK(validator_ == nullptr || validator_(item));
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || shared_.size() < capacity_; });
    if (closed_) return false;
    shared_.push_back(std::move(item));
    slow_count_.fetch_add(1, std::memory_order_seq_cst);
    note_hwm();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Push that ignores the capacity bound (still FIFO with bounded pushes
  /// from the same producer on this queue).  Used for control messages: the
  /// reconfiguration wave must never block behind data back pressure, or a
  /// full queue could deadlock two sibling instances migrating state to
  /// each other.  Returns false iff closed.
  bool push_unbounded(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      shared_.push_back(std::move(item));
      slow_count_.fetch_add(1, std::memory_order_seq_cst);
      note_hwm();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool try_push(T item) {
    LAR_CHECK(validator_ == nullptr || validator_(item));
    {
      std::lock_guard lock(mutex_);
      if (closed_ || shared_.size() >= capacity_) return false;
      shared_.push_back(std::move(item));
      slow_count_.fetch_add(1, std::memory_order_seq_cst);
      note_hwm();
    }
    not_empty_.notify_one();
    return true;
  }

  // --- consumer side ---------------------------------------------------------

  /// Blocking pop; returns nullopt once closed *and* drained.
  std::optional<T> pop() {
    for (;;) {
      // Fast path: lane data only, lock-free, taken whenever no control /
      // shared message is pending (the overwhelmingly common case).
      if (slow_count_.load(std::memory_order_seq_cst) == 0) {
        bool wake = false;
        std::optional<T> item;
        {
          GateGuard gate(*this);
          item = try_pop_lane_data(wake);
        }
        if (item.has_value()) {
          if (wake) wake_producers();
          return item;
        }
      }
      std::unique_lock lock(mutex_);
      {
        bool wake = false;
        std::optional<T> item;
        {
          GateGuard gate(*this);
          item = try_pop_any_locked(wake);
        }
        if (item.has_value()) {
          lock.unlock();
          // We held the mutex after the head store, so a producer mid-wait
          // cannot miss this notification (lock-then-notify).
          if (wake) not_full_.notify_all();
          return item;
        }
      }
      consumer_waiting_.store(true, std::memory_order_seq_cst);
      not_empty_.wait(lock, [&] { return closed_ || available_locked(); });
      consumer_waiting_.store(false, std::memory_order_relaxed);
      if (closed_ && !available_locked()) return std::nullopt;
    }
  }

  /// Non-blocking pop; nullopt when nothing is currently consumable.
  std::optional<T> try_pop() {
    if (slow_count_.load(std::memory_order_seq_cst) == 0) {
      bool wake = false;
      std::optional<T> item;
      {
        GateGuard gate(*this);
        item = try_pop_lane_data(wake);
      }
      if (item.has_value()) {
        if (wake) wake_producers();
      }
      return item;
    }
    std::unique_lock lock(mutex_);
    bool wake = false;
    std::optional<T> item;
    {
      GateGuard gate(*this);
      item = try_pop_any_locked(wake);
    }
    lock.unlock();
    if (item.has_value() && wake) not_full_.notify_all();
    return item;
  }

  /// Closes the channel: producers fail fast, the consumer drains then ends.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_.store(true, std::memory_order_seq_cst);
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Published items currently queued (lanes + control + shared).  Lock-free
  /// relaxed sums — exact when quiescent, a racy-but-safe estimate while
  /// producers run; never stalls the data plane (the obs publish path calls
  /// this from outside the consumer thread).
  [[nodiscard]] std::size_t size() const {
    std::size_t total = slow_count_.load(std::memory_order_relaxed);
    const std::size_t n = num_lanes_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      // head first: the consumer only advances head past values it saw
      // published, so a tail read *after* an acquire-read of head can never
      // lag behind it (clamp anyway against torn interleavings).
      const std::uint64_t h = lanes_[i].head.load(std::memory_order_acquire);
      const std::uint64_t t = lanes_[i].tail.load(std::memory_order_relaxed);
      if (t > h) total += static_cast<std::size_t>(t - h);
    }
    return total;
  }

  /// Atomically removes and returns everything currently published (lane
  /// data and control merged in per-lane FIFO order, then the shared queue).
  /// Crash recovery only (lar::ckpt): the consumer gate makes this safe
  /// against a victim thread still popping; producers may keep pushing
  /// concurrently — anything published after the drain is simply seen by the
  /// respawned consumer.  Staged-unpublished lane items are NOT drained; the
  /// driver reaps those via lane_abort_staged() after the producer joins.
  [[nodiscard]] std::deque<T> drain() {
    std::deque<T> out;
    {
      std::unique_lock lock(mutex_);
      GateGuard gate(*this);
      const std::size_t n = num_lanes_.load(std::memory_order_acquire);
      std::size_t slow_removed = 0;
      for (std::size_t i = 0; i < n; ++i) {
        Lane& lane = lanes_[i];
        std::uint64_t h = lane.head.load(std::memory_order_seq_cst);
        const std::uint64_t t = lane.tail.load(std::memory_order_seq_cst);
        while (!lane.ctrl.empty()) {
          auto& [item, mark] = lane.ctrl.front();
          for (; h < mark; ++h) {
            out.push_back(std::move(lane.ring[h & lane.mask]));
          }
          out.push_back(std::move(item));
          lane.ctrl.pop_front();
          ++slow_removed;
        }
        for (; h < t; ++h) out.push_back(std::move(lane.ring[h & lane.mask]));
        lane.head.store(t, std::memory_order_seq_cst);
        lane.ctrl_mark.store(kNoCtrl, std::memory_order_seq_cst);
      }
      slow_removed += shared_.size();
      for (T& item : shared_) out.push_back(std::move(item));
      shared_.clear();
      if (slow_removed != 0) {
        slow_count_.fetch_sub(slow_removed, std::memory_order_seq_cst);
      }
    }
    not_full_.notify_all();
    return out;
  }

  /// Deepest the channel has ever been (items, including unbounded control
  /// messages), sampled at publish/push points.  A back-pressure indicator
  /// for the observability layer; scheduling-dependent, so exports that must
  /// be byte-stable filter it.  Lock-light: a relaxed ratcheted atomic.
  [[nodiscard]] std::size_t high_water_mark() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kNoCtrl = ~std::uint64_t{0};

  struct Lane {
    explicit Lane(std::size_t capacity)
        : ring(capacity), mask(capacity - 1) {}

    std::vector<T> ring;
    const std::uint64_t mask;

    /// Next unstaged ring position; producer thread only (the recovery
    /// driver may touch it via lane_abort_staged after joining the thread).
    std::uint64_t staged = 0;

    alignas(64) std::atomic<std::uint64_t> tail{0};  ///< published
    alignas(64) std::atomic<std::uint64_t> head{0};  ///< consumed

    /// Control messages FIFO-after this lane's data, each stamped with the
    /// published position it must not overtake.  Guarded by the channel
    /// mutex; ctrl_mark mirrors the front entry's stamp (kNoCtrl when
    /// empty) so the lock-free consumer never reads data past a pending
    /// control message.
    std::deque<std::pair<T, std::uint64_t>> ctrl;
    alignas(64) std::atomic<std::uint64_t> ctrl_mark{kNoCtrl};
  };

  /// Spinlock serializing "consumer" roles: the owning thread's pop against
  /// the recovery driver's drain().  Never held while sleeping or while
  /// acquiring mutex_ (lock order: mutex_ first, gate innermost).
  struct GateGuard {
    explicit GateGuard(const Channel& ch) : ch_(ch) {
      while (ch_.gate_.test_and_set(std::memory_order_acquire)) {
      }
    }
    ~GateGuard() { ch_.gate_.clear(std::memory_order_release); }
    GateGuard(const GateGuard&) = delete;
    GateGuard& operator=(const GateGuard&) = delete;
    const Channel& ch_;
  };

  void publish(Lane& lane) {  // producer thread only
    if (lane.staged == lane.tail.load(std::memory_order_relaxed)) return;
    lane.tail.store(lane.staged, std::memory_order_seq_cst);
    note_hwm();
    if (consumer_waiting_.load(std::memory_order_seq_cst)) {
      // Lock-then-notify: the consumer checks availability under mutex_
      // before sleeping, so touching the mutex here closes the gap between
      // its predicate check and the actual sleep.
      { std::lock_guard lock(mutex_); }
      not_empty_.notify_one();
    }
  }

  void wake_producers() {
    { std::lock_guard lock(mutex_); }
    not_full_.notify_all();
  }

  /// Round-robin scan for consumable lane *data* (below each lane's pending
  /// control mark).  Gate held; no mutex.
  std::optional<T> try_pop_lane_data(bool& wake) {
    const std::size_t n = num_lanes_.load(std::memory_order_acquire);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = cursor_ + k < n ? cursor_ + k : cursor_ + k - n;
      Lane& lane = lanes_[i];
      const std::uint64_t h = lane.head.load(std::memory_order_relaxed);
      // tail before ctrl_mark: the producer stores the mark before any
      // post-control publish, so seeing the suffix implies seeing the mark.
      if (h >= lane.tail.load(std::memory_order_seq_cst)) continue;
      if (h >= lane.ctrl_mark.load(std::memory_order_seq_cst)) continue;
      T item = std::move(lane.ring[h & lane.mask]);
      lane.head.store(h + 1, std::memory_order_seq_cst);
      cursor_ = i + 1 < n ? i + 1 : 0;
      wake = waiting_producers_.load(std::memory_order_seq_cst) != 0;
      return item;
    }
    return std::nullopt;
  }

  /// Full scan under mutex_ + gate: shared queue first (driver-side control
  /// keeps its old FIFO edge over later lane-side control), then per lane a
  /// ready control message or data below the pending mark.
  std::optional<T> try_pop_any_locked(bool& wake) {
    if (!shared_.empty()) {
      T item = std::move(shared_.front());
      shared_.pop_front();
      slow_count_.fetch_sub(1, std::memory_order_seq_cst);
      wake = true;  // shared pops free bounded-push capacity
      return item;
    }
    const std::size_t n = num_lanes_.load(std::memory_order_acquire);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = cursor_ + k < n ? cursor_ + k : cursor_ + k - n;
      Lane& lane = lanes_[i];
      const std::uint64_t h = lane.head.load(std::memory_order_relaxed);
      if (!lane.ctrl.empty() && lane.ctrl.front().second <= h) {
        T item = std::move(lane.ctrl.front().first);
        lane.ctrl.pop_front();
        lane.ctrl_mark.store(
            lane.ctrl.empty() ? kNoCtrl : lane.ctrl.front().second,
            std::memory_order_seq_cst);
        slow_count_.fetch_sub(1, std::memory_order_seq_cst);
        return item;
      }
      const std::uint64_t mark =
          lane.ctrl.empty() ? kNoCtrl : lane.ctrl.front().second;
      if (h < lane.tail.load(std::memory_order_seq_cst) && h < mark) {
        T item = std::move(lane.ring[h & lane.mask]);
        lane.head.store(h + 1, std::memory_order_seq_cst);
        cursor_ = i + 1 < n ? i + 1 : 0;
        wake = waiting_producers_.load(std::memory_order_seq_cst) != 0;
        return item;
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] bool available_locked() const {
    if (!shared_.empty()) return true;
    const std::size_t n = num_lanes_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const Lane& lane = lanes_[i];
      const std::uint64_t h = lane.head.load(std::memory_order_relaxed);
      if (!lane.ctrl.empty() && lane.ctrl.front().second <= h) return true;
      const std::uint64_t mark =
          lane.ctrl.empty() ? kNoCtrl : lane.ctrl.front().second;
      if (h < lane.tail.load(std::memory_order_seq_cst) && h < mark) {
        return true;
      }
    }
    return false;
  }

  void note_hwm() {
    const std::size_t s = size();
    std::size_t cur = high_water_.load(std::memory_order_relaxed);
    while (s > cur && !high_water_.compare_exchange_weak(
                          cur, s, std::memory_order_relaxed)) {
    }
  }

  PushValidator validator_ = nullptr;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;

  // Lanes live in a deque so references stay stable across add_lane; the
  // consumer snapshots num_lanes_ (release/acquire pairs with emplace).
  std::deque<Lane> lanes_;
  std::atomic<std::size_t> num_lanes_{0};
  std::size_t batch_ = 1;
  std::size_t cursor_ = 0;  ///< lane round-robin position (consumer side)

  std::deque<T> shared_;    ///< legacy queue, guarded by mutex_
  std::size_t capacity_;    ///< bound for shared-queue push/try_push

  /// Pending control + shared items; the consumer's fast path is two atomic
  /// loads and a slot move whenever this is zero.
  std::atomic<std::size_t> slow_count_{0};

  mutable std::atomic_flag gate_ = ATOMIC_FLAG_INIT;
  std::atomic<bool> consumer_waiting_{false};
  std::atomic<std::size_t> waiting_producers_{0};
  std::atomic<bool> closed_{false};
  std::atomic<std::size_t> high_water_{0};
};

}  // namespace lar::runtime
