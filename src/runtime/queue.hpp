// Bounded blocking MPSC channel used for both data and control messages.
//
// One channel per operator instance (POI).  Multiple producers (upstream
// POIs, the injector thread, the manager) push; the owning POI thread pops.
// A mutex + condition-variable implementation is deliberately chosen over a
// lock-free ring: the runtime engine is the *correctness* substrate of this
// repository (performance figures come from lar::sim), and the FIFO
// guarantee across producers is what makes the reconfiguration wave safe —
// a PROPAGATE enqueued after a data tuple is always dequeued after it.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/status.hpp"

namespace lar::runtime {

/// Bounded blocking FIFO.  push() blocks while full (back pressure);
/// pop() blocks while empty.  close() wakes everyone; push() on a closed
/// channel is ignored, pop() drains remaining items then returns nullopt.
template <typename T>
class Channel {
 public:
  /// Guard evaluated on every *bounded* push (push / try_push).  Control
  /// messages must travel via push_unbounded — a bounded control push can
  /// deadlock the reconfiguration wave against data back pressure (see
  /// CLAUDE.md) — so the engine installs validators that reject them; a
  /// rejected push is a bug and aborts via LAR_CHECK.  A plain function
  /// pointer keeps the disabled cost at one predictable branch.
  using PushValidator = bool (*)(const T&);

  explicit Channel(std::size_t capacity) : capacity_(capacity) {
    LAR_CHECK(capacity >= 1);
  }

  /// Installs `v` (nullptr = no checking).  Call before producers start.
  void set_push_validator(PushValidator v) { validator_ = v; }

  /// Blocking push; returns false iff the channel is closed.
  bool push(T item) {
    LAR_CHECK(validator_ == nullptr || validator_(item));
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    note_depth();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Push that ignores the capacity bound (still FIFO with bounded pushes
  /// from the same producer).  Used for control messages: the
  /// reconfiguration wave must never block behind data back pressure, or a
  /// full queue could deadlock two sibling instances migrating state to
  /// each other.  Returns false iff closed.
  bool push_unbounded(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
      note_depth();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool try_push(T item) {
    LAR_CHECK(validator_ == nullptr || validator_(item));
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      note_depth();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; returns nullopt once closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the channel: producers fail fast, the consumer drains then ends.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  /// Atomically removes and returns everything currently queued.  Crash
  /// recovery only (lar::ckpt): after the owning POI thread has been killed
  /// and joined, the driver discards the dead inbox's contents — their
  /// effects come back via checkpoint restore + sender replay.  Producers
  /// may keep pushing concurrently; anything pushed after the drain is
  /// simply seen by the respawned consumer.
  [[nodiscard]] std::deque<T> drain() {
    std::deque<T> out;
    {
      std::lock_guard lock(mutex_);
      out.swap(items_);
    }
    not_full_.notify_all();
    return out;
  }

  /// Deepest the queue has ever been (items, including unbounded control
  /// messages).  A back-pressure indicator for the observability layer;
  /// scheduling-dependent, so exports that must be byte-stable filter it.
  [[nodiscard]] std::size_t high_water_mark() const {
    std::lock_guard lock(mutex_);
    return high_water_;
  }

 private:
  void note_depth() {  // caller holds mutex_
    if (items_.size() > high_water_) high_water_ = items_.size();
  }

  PushValidator validator_ = nullptr;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace lar::runtime
