// User-facing operator interface and library-provided operators.
//
// Operators receive tuples and emit tuples; the engine owns routing, pair
// statistics and state migration choreography.  Stateful operators expose
// per-key state as opaque bytes so the engine can move it between instances
// during reconfiguration without understanding it.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "topology/types.hpp"

namespace lar::runtime {

/// Sink for tuples an operator emits; the engine routes them on every
/// outbound edge of the operator.
///
/// The emitted tuple is handed over by value and the engine takes full
/// ownership of its storage: a same-server hop moves the field buffer
/// straight into the destination's lane and otherwise recycles it through a
/// per-POI arena (DESIGN.md §13).  Operators must not keep references into
/// an emitted tuple after emit() returns.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void emit(Tuple tuple) = 0;
};

/// One operator instance's processing logic.  Each POI gets its own object;
/// all calls happen on the owning POI thread, so implementations need no
/// synchronization.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Handles one tuple; may emit any number of downstream tuples.
  virtual void process(const Tuple& tuple, Emitter& emitter) = 0;

  /// Serializes this instance's state for `key` (stateful operators only).
  /// Returning an empty vector means "no state"; the engine still delivers
  /// the (empty) migration message so the receiver can unblock the key.
  /// The engine calls this exactly when no further tuple for `key` can
  /// arrive, and drops the local state afterwards via drop_key_state().
  [[nodiscard]] virtual std::vector<std::byte> export_key_state(Key /*key*/) {
    return {};
  }

  /// Installs state for `key` previously produced by export_key_state() on
  /// another instance.  Empty `state` should be a no-op.
  virtual void import_key_state(Key /*key*/,
                                std::span<const std::byte> /*state*/) {}

  /// Forgets local state for `key` after it was exported.
  virtual void drop_key_state(Key /*key*/) {}

  /// All keys this instance currently holds state for, ascending (stateful
  /// operators only; stateless ones return empty).  The elastic residual
  /// drain scans this to ship keys the new epoch routes elsewhere — even
  /// keys the manager never observed, so no explicit move entry exists.
  /// Because two instances can hold partial state for one key while the
  /// drain converges, import_key_state() of operators that support
  /// elasticity must be a merge (additive), not an overwrite.
  [[nodiscard]] virtual std::vector<Key> owned_keys() const { return {}; }
};

/// Creates the operator object for a given POI.
using OperatorFactory =
    std::function<std::unique_ptr<Operator>(OperatorId, InstanceIndex)>;

/// Stateless pass-through: forwards every tuple unchanged (the engine does
/// the counting).  The shape of the paper's stateless extract/lower POs.
class PassThroughOperator final : public Operator {
 public:
  void process(const Tuple& tuple, Emitter& emitter) override {
    emitter.emit(tuple);
  }
};

/// Stateful per-key counter keyed on one tuple field — the paper's
/// evaluation operator ("counts the number of occurrences of the different
/// values").  Forwards tuples downstream unchanged.
class CountingOperator final : public Operator {
 public:
  explicit CountingOperator(std::uint32_t key_field) : key_field_(key_field) {}

  void process(const Tuple& tuple, Emitter& emitter) override;

  [[nodiscard]] std::vector<std::byte> export_key_state(Key key) override;
  void import_key_state(Key key, std::span<const std::byte> state) override;
  void drop_key_state(Key key) override;
  [[nodiscard]] std::vector<Key> owned_keys() const override;

  /// Current count for `key` (0 if absent).  Test/inspection hook.
  [[nodiscard]] std::uint64_t count(Key key) const;

  /// All (key, count) pairs held by this instance.
  [[nodiscard]] const std::unordered_map<Key, std::uint64_t>& counts()
      const noexcept {
    return counts_;
  }

  /// The `k` most frequent keys of this instance, descending — the paper's
  /// motivating query ("maintains a list of trending hashtags").  Because
  /// fields grouping puts all occurrences of a key on one instance, a
  /// per-instance top-k is exact for the keys it owns.
  [[nodiscard]] std::vector<std::pair<Key, std::uint64_t>> top(
      std::size_t k) const;

 private:
  std::uint32_t key_field_;
  std::unordered_map<Key, std::uint64_t> counts_;
};

/// lar::split partial-aggregation stage: counts per key like
/// CountingOperator, but emits a `{key, 1}` *delta* tuple per input instead
/// of forwarding the input unchanged.  Because counting is associative and
/// commutative, any number of replicas may each hold a partial count for a
/// split key — the per-key total is the sum of the replicas' partials, and
/// the downstream MergeCountOperator reconstructs it exactly from the
/// deltas.  State is a plain uint64 per key, merge-additive on import, so
/// migration convergence and checkpoint restore need nothing new.
class PartialCountOperator final : public Operator {
 public:
  explicit PartialCountOperator(std::uint32_t key_field)
      : key_field_(key_field) {}

  void process(const Tuple& tuple, Emitter& emitter) override;

  [[nodiscard]] std::vector<std::byte> export_key_state(Key key) override;
  void import_key_state(Key key, std::span<const std::byte> state) override;
  void drop_key_state(Key key) override;
  [[nodiscard]] std::vector<Key> owned_keys() const override;

  /// This replica's partial count for `key` (0 if absent).
  [[nodiscard]] std::uint64_t partial(Key key) const;

  [[nodiscard]] const std::unordered_map<Key, std::uint64_t>& partials()
      const noexcept {
    return partials_;
  }

 private:
  std::uint32_t key_field_;
  std::unordered_map<Key, std::uint64_t> partials_;
};

/// lar::split merge stage: sums the delta tuples `{key, delta}` emitted by
/// the upstream partial replicas into exact per-key totals.  Routed by
/// fields grouping on the key, so each key's total lives on exactly one
/// instance (the merge operator itself is never split); with every tuple
/// contributing exactly one delta through exactly one replica, the totals
/// equal the per-key input counts — the split-is-exactly-once invariant the
/// split tests pin.  Terminal: emits nothing.
class MergeCountOperator final : public Operator {
 public:
  /// `key_field`/`value_field`: positions of the key and the delta in the
  /// incoming tuple (the partial stage emits `{key, delta}` = fields 0, 1).
  explicit MergeCountOperator(std::uint32_t key_field = 0,
                              std::uint32_t value_field = 1)
      : key_field_(key_field), value_field_(value_field) {}

  void process(const Tuple& tuple, Emitter& emitter) override;

  [[nodiscard]] std::vector<std::byte> export_key_state(Key key) override;
  void import_key_state(Key key, std::span<const std::byte> state) override;
  void drop_key_state(Key key) override;
  [[nodiscard]] std::vector<Key> owned_keys() const override;

  /// Merged total for `key` (0 if absent).
  [[nodiscard]] std::uint64_t total(Key key) const;

  [[nodiscard]] const std::unordered_map<Key, std::uint64_t>& totals()
      const noexcept {
    return totals_;
  }

 private:
  std::uint32_t key_field_;
  std::uint32_t value_field_;
  std::unordered_map<Key, std::uint64_t> totals_;
};

}  // namespace lar::runtime
