// Messages exchanged on the runtime's data and control planes.
//
// The control messages are exactly the paper's reconfiguration protocol
// (Figure 6 / Algorithm 1): GET_METRICS, SEND_METRICS, SEND_RECONF,
// ACK_RECONF, PROPAGATE and MIGRATE, plus a completion notification so the
// manager knows the wave has finished and a shutdown sentinel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/pair_stats.hpp"
#include "topology/routing.hpp"
#include "topology/types.hpp"

namespace lar::runtime {

/// A data tuple in flight.  `edge` identifies the topology edge it traveled
/// (the receiving POI derives its routing key from the edge's key_field);
/// edge == kInjected marks tuples pushed by the source injector.
struct DataMsg {
  static constexpr std::uint32_t kInjected = static_cast<std::uint32_t>(-1);
  static constexpr std::uint32_t kNoFrom = static_cast<std::uint32_t>(-1);
  Tuple tuple;
  std::uint32_t edge = kInjected;

  /// The key of the nearest upstream fields-grouped hop ("anchor"): for a
  /// fields edge, the routing key itself; for shuffle / local-or-shuffle
  /// edges, propagated from the sender unchanged.  kNoKey before any fields
  /// hop.  This is what lets a stateless relay record (stateful-input,
  /// stateful-output) key pairs for hops like Figure 3's B -> C -> D.
  Key anchor = kNoKey;

  /// Chaos bookkeeping, stamped only when a fault injector is configured:
  /// the sending POI's flat index and a per-(sender, receiver) link sequence
  /// number starting at 1.  The receiver drops seq <= last-seen as a
  /// duplicate; kNoFrom / 0 marks an unstamped (chaos-free) message.
  std::uint32_t from = kNoFrom;
  std::uint64_t seq = 0;
};

/// Manager -> POI: send me your pair statistics.
struct GetMetricsMsg {};

/// Wave membership for one reconfiguration: which instances participate per
/// operator, and (for elastic waves) which remain active once the wave
/// commits.  Shared immutably by every ReconfMsg of the wave, so the
/// bookkeeping rides inside the messages — no cross-thread state.
struct ElasticWave {
  /// Post-commit live-server count (propagated into trace records).
  std::uint32_t target_servers = 0;

  /// Per operator: the instances taking part in this wave, ascending.
  /// Propagate fan-out and propagate_expected are computed from these, so
  /// dormant instances are never waited on.
  std::vector<std::vector<InstanceIndex>> members;

  /// Per operator: the instances active after the wave commits, ascending.
  /// Empty vector-of-vectors = a fixed-fleet wave (no activity change);
  /// shuffle routers then keep their current restriction.
  std::vector<std::vector<InstanceIndex>> actives;
};

/// Manager -> POI: the new configuration (paper Section 3.4).
struct ReconfMsg {
  std::uint64_t version = 0;

  /// Destination operator -> new routing table, for this POI's outbound
  /// fields-grouped edges ("reconfiguration_router").
  std::unordered_map<OperatorId, std::shared_ptr<const RoutingTable>> tables;

  /// Keys whose state this POI must send away ("reconfiguration_send").
  std::vector<std::pair<Key, InstanceIndex>> send;

  /// Keys whose state this POI will receive, paired with the sending
  /// instance ("reconfiguration_receive").  Sender-qualified because a
  /// lar::split degree decrease converges several replicas' partials onto
  /// one instance: the receiver must await one MIGRATE *per sender*, not
  /// per key.
  std::vector<std::pair<Key, InstanceIndex>> receive;

  /// Wave membership (always set by the engine; actives empty when the wave
  /// does not change the active set).
  std::shared_ptr<const ElasticWave> wave;

  /// Elastic waves only: the post-commit table of this POI's *own* operator
  /// (sources have none).  Drives the residual-drain scan — owned keys the
  /// new epoch routes elsewhere are shipped even without an explicit move
  /// entry, which is what makes retirement lossless for keys the manager
  /// never observed.
  std::shared_ptr<const RoutingTable> own_table;
};

/// Predecessor POI (or manager, for sources) -> POI: the reconfiguration
/// wave reached you on this channel.
struct PropagateMsg {
  std::uint64_t version = 0;
};

/// Sibling POI -> POI: state of one reassigned key ("6: Exchange keys").
/// `state` is opaque operator-defined bytes; empty means the old owner had
/// no state for the key yet.
struct MigrateMsg {
  std::uint64_t version = 0;
  Key key = 0;
  std::vector<std::byte> state;

  /// Flat instance index of the sending POI.  Receivers of a lar::split
  /// convergence match (key, from) against their sender-qualified awaiting
  /// lists; pre-split single-sender moves work the same way with one entry.
  InstanceIndex from = 0;

  /// How many times a chaos-delayed copy of this payload has been re-queued
  /// behind the receiver's inbox; bounded by the kMigrateDelay magnitude.
  std::uint32_t redeliveries = 0;

  /// Residual drain (elastic waves): state shipped outside the plan's move
  /// list because the sender's new own-table routes the key elsewhere.  The
  /// receiver imports it unconditionally (imports are merge-additive) and
  /// acknowledges via the engine's drain fence instead of the awaiting set.
  bool drain = false;
};

/// POI -> itself: flush the delay stash of producer link `link` (flat POI
/// index).  Pushed unbounded when a chaos delay opens the stash, so the held
/// suffix drains after exactly the inbox contents present at open time —
/// one logical queue-drain of delay, deadlock-free.
struct FlushDelayedMsg {
  std::uint32_t link = 0;
};

/// Engine -> POI: drain and exit.
struct ShutdownMsg {};

// --- lar::ckpt: aligned checkpoints + crash recovery -------------------------

/// Epoch-numbered checkpoint barrier (control message, push_unbounded only).
/// `link` is the flat POI index of the forwarding producer — kCoordinator
/// for the barrier the coordinator injects into sources (and the pseudo
/// producer id for tuples entering via inject()).  `members` carries the
/// live instance set per operator at injection time, exactly like
/// ElasticWave: alignment counts and the downstream fan-out are computed
/// from it, so dormant/retired POIs are never waited on.
struct BarrierMsg {
  /// Pseudo producer link for coordinator-injected barriers and injected
  /// tuples.  Distinct from DataMsg::kNoFrom so "unstamped" and "stamped by
  /// the injector itself" stay distinguishable.
  static constexpr std::uint32_t kCoordinator =
      static_cast<std::uint32_t>(-2);

  std::uint64_t epoch = 0;
  std::uint32_t link = kCoordinator;
  std::shared_ptr<const std::vector<std::vector<InstanceIndex>>> members;

  /// False when the epoch is an incremental (delta) one: delta-capable POIs
  /// snapshot only the keys dirtied since their previous snapshot.  Stamped
  /// by the coordinator from the store's epoch_is_delta() answer and
  /// propagated unchanged as the barrier is forwarded.
  bool full = true;
};

/// Coordinator -> POI: epoch committed; truncate your replay buffers up to
/// the watermarks you recorded when forwarding this epoch's barrier.
struct CheckpointCommitMsg {
  std::uint64_t epoch = 0;
};

/// Recovery driver -> surviving sender POI: re-push your replay buffer for
/// the link to `target` (flat POI index), then send it a ReplayEndMsg.
/// Handled on the sender's own thread, so replayed tuples stay FIFO with
/// its subsequent live sends.
struct ReplayRequestMsg {
  std::uint32_t target = 0;
};

/// Sender -> recovering POI: the replay for producer link `link` is
/// complete; sort the held tuples by sequence number, apply once each, and
/// resume normal processing on the link.
struct ReplayEndMsg {
  std::uint32_t link = 0;
};

/// Recovery driver -> POI: die where you stand.  Unlike ShutdownMsg the
/// messages queued behind it are NOT processed — they stay in the channel
/// (or are discarded by the driver) and their effects are recovered by
/// checkpoint restore + replay.
struct CrashMsg {};

// DataMsg must stay the first alternative: the channel's SPSC ring slots
// are value-initialized `Message{}` and reset to it when a staged batch is
// aborted, so the default alternative has to be the cheap data one (and
// default-constructible).  Keep Message lean — sizeof(Message) is the ring
// slot size on every data-plane hand-off (bench/micro_hotpath reports it).
using Message =
    std::variant<DataMsg, GetMetricsMsg, ReconfMsg, PropagateMsg, MigrateMsg,
                 FlushDelayedMsg, ShutdownMsg, BarrierMsg, CheckpointCommitMsg,
                 ReplayRequestMsg, ReplayEndMsg, CrashMsg>;

// --- replies to the manager ------------------------------------------------

/// POI -> manager: pair statistics per outbound optimizable edge.
struct MetricsReply {
  InstanceId from;
  /// edge id -> merged pair counts observed by this POI on that edge.
  std::vector<std::pair<std::uint32_t, std::vector<core::PairCount>>> stats;
};

/// POI -> manager: configuration received and staged.
struct AckReconfReply {
  InstanceId from;
  std::uint64_t version = 0;
};

/// POI -> manager: propagation handled, state exchanged, wave forwarded.
struct ReconfDoneReply {
  InstanceId from;
  std::uint64_t version = 0;
};

/// POI -> coordinator: barrier aligned on all input links, state snapshot
/// stored for `epoch`, barrier forwarded downstream.
struct CheckpointAckReply {
  InstanceId from;
  std::uint64_t epoch = 0;
};

/// Recovering POI -> recovery driver: every pending link finished its
/// replay; the instance is caught up and live again.
struct RecoverDoneReply {
  InstanceId from;
};

using ManagerReply = std::variant<MetricsReply, AckReconfReply,
                                  ReconfDoneReply, CheckpointAckReply,
                                  RecoverDoneReply>;

}  // namespace lar::runtime
