#include "runtime/engine.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/flat_map.hpp"
#include "common/logging.hpp"
#include "runtime/codec.hpp"

namespace lar::runtime {

namespace {

/// Stable chaos entity for a producer->consumer channel link (flat POI
/// indices), shared by the sender's duplicate decision and the receiver's
/// delay decision.
[[nodiscard]] std::uint64_t link_entity(std::uint32_t from,
                                        std::size_t to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) |
         static_cast<std::uint64_t>(to);
}

[[nodiscard]] std::string link_entity_str(std::uint32_t from, std::size_t to) {
  return std::to_string(from) + "->" + std::to_string(to);
}

}  // namespace

// ---------------------------------------------------------------------------
// Poi: one deployed operator instance.
// ---------------------------------------------------------------------------

struct Engine::Poi {
  Poi(OperatorId op_id, InstanceIndex idx, ServerId srv,
      std::size_t queue_capacity)
      : op(op_id), index(idx), server(srv), inbox(queue_capacity) {}

  const OperatorId op;
  const InstanceIndex index;
  const ServerId server;
  std::size_t flat = 0;  ///< index into Engine::pois_ (chaos entity id)

  std::unique_ptr<Operator> logic;
  Channel<Message> inbox;
  std::thread thread;

  /// Live in the current epoch (lar::elastic).  Touched only by the driver
  /// thread; dormant/retired POIs have no running thread.
  bool active = true;

  // Parallel to topology.out_edges(op):
  std::vector<std::unique_ptr<Router>> routers;
  std::vector<std::optional<core::PairStats>> pair_stats;

  // --- data-plane fast path (DESIGN.md §13), wired at construction ---------
  // This POI owns one SPSC lane into every channel it can send to; the lane
  // is the producer-side half of the pair, so only this POI's thread may
  // push on it.
  struct OutLane {
    Poi* target = nullptr;
    std::uint32_t lane = 0;
  };
  std::vector<std::vector<OutLane>> out_lanes;  ///< [out_pos][dst instance]
  std::vector<OutLane> flush_lanes;  ///< deduplicated; flushed before idling
  FlatMap<std::uint64_t, std::uint32_t> lane_to;  ///< target flat -> lane id

  /// Bounded free-list of recycled tuple field buffers.  Owned end to end by
  /// this POI's thread: buffers are acquired when this POI copies an
  /// emission for a non-final local edge and released once a delivered
  /// tuple has been fully processed, so the steady-state data path stops
  /// heap-allocating.
  std::vector<std::vector<Key>> arena;
  static constexpr std::size_t kArenaCap = 256;

  [[nodiscard]] std::vector<Key> arena_acquire() {
    if (arena.empty()) return {};
    std::vector<Key> buf = std::move(arena.back());
    arena.pop_back();
    buf.clear();
    return buf;
  }

  void arena_release(std::vector<Key>&& buf) {
    if (buf.capacity() == 0 || arena.size() >= kArenaCap) return;
    arena.push_back(std::move(buf));
  }

  std::atomic<std::uint64_t> processed{0};

  // --- reconfiguration state, touched only by the POI thread --------------
  std::optional<ReconfMsg> staged;
  std::uint32_t propagate_seen = 0;
  std::uint32_t propagate_expected = 0;
  bool actions_done = true;  ///< propagate wave handled (tables installed)
  /// State not here yet: key -> the senders still owing a MIGRATE.  A
  /// lar::split degree decrease lists several senders per key; the key stays
  /// buffered until every replica's partial has arrived and merged.
  std::unordered_map<Key, std::vector<InstanceIndex>> awaiting;
  std::unordered_map<Key, std::vector<DataMsg>> pending;  ///< buffered tuples

  // --- chaos state ---------------------------------------------------------
  // out_seq is written by this POI's thread when sending; the rest only by
  // this POI's thread when receiving.  All empty/idle without an injector.
  FlatMap<std::uint64_t, std::uint64_t> out_seq;  ///< target flat -> last seq
  FlatMap<std::uint64_t, std::uint64_t> last_seq; ///< producer flat -> seen
  std::unordered_map<std::uint32_t, std::vector<DataMsg>>
      delayed;  ///< producer flat -> held link suffix (FIFO within the link)

  std::size_t pending_count = 0;  ///< in-memory buffered tuples (cap basis)
  std::unordered_map<Key, std::vector<std::vector<std::byte>>>
      spilled;  ///< serialized overflow tuples, drained after `pending`

  // --- lar::ckpt state, touched only by the POI thread (the recovery
  // driver touches it only between join and respawn).  All empty/idle
  // without a checkpoint coordinator. ---------------------------------------
  std::uint64_t applied_version = 0;  ///< last reconfiguration applied here
  std::uint64_t ckpt_epoch = 0;       ///< epoch currently aligning (0 = idle)

  /// Incremental checkpointing (durable stores only).  delta_capable is
  /// fixed at construction: true iff every in-edge is fields-grouped, so the
  /// operator's state keys coincide with the routing keys the engine sees
  /// (the migration contract) and a dirty-key set fully covers its state
  /// churn.  Sources and shuffle-fed POIs always snapshot full slices.
  /// `dirty` holds the keys touched since this POI's previous snapshot;
  /// cleared at every snapshot and on crash restore (the pre-crash set is
  /// scheduling-dependent — replay re-marks exactly the post-cut effects).
  bool delta_capable = false;
  std::unordered_set<Key> dirty;
  std::uint32_t barriers_seen = 0;
  std::uint32_t barriers_expected = 0;
  std::shared_ptr<const std::vector<std::vector<InstanceIndex>>>
      barrier_members;
  std::unordered_set<std::uint32_t> blocked_links;  ///< barrier already in
  std::unordered_map<std::uint32_t, std::vector<DataMsg>>
      align_stash;  ///< post-barrier suffix held per blocked link (FIFO)
  std::unordered_map<std::uint64_t, std::vector<DataMsg>>
      replay_out;  ///< target flat -> sends since the last committed epoch
  std::unordered_map<std::uint64_t, std::uint64_t>
      snap_out;  ///< out cursors at the last snapshot (commit truncation)
  std::unordered_set<std::uint32_t> replay_pending;  ///< links mid-replay
  std::unordered_map<std::uint32_t, std::vector<DataMsg>>
      replay_stash;  ///< everything held on a pending link until ReplayEnd

  /// Set by the POI thread as it exits on a crash sentinel.  The recovery
  /// driver spins on it while sweeping victim inboxes, so a victim parked on
  /// a bounded push into another victim's full inbox can run to its death
  /// instead of deadlocking the join.
  std::atomic<bool> crash_exited{false};
};

// ---------------------------------------------------------------------------
// Construction / lifecycle.
// ---------------------------------------------------------------------------

Engine::Engine(const Topology& topology, const Placement& placement,
               OperatorFactory factory, EngineOptions options)
    : topology_(topology),
      placement_(placement),
      options_(options),
      factory_(std::move(factory)),
      manager_inbox_(1 << 16),
      edge_counters_(topology.edges().size()) {
  LAR_CHECK(topology.validate().is_ok());
  LAR_CHECK(factory_ != nullptr);

  // Manager replies are control-plane: they must never take a bounded push
  // (a POI thread blocking on the manager's inbox while the manager waits
  // for that very reply would deadlock the protocol).
  manager_inbox_.set_push_validator([](const ManagerReply&) { return false; });

  anchors_ = compute_stats_anchors(topology);
  sources_ = topology.sources();

  // Elastic restricted start: only the server prefix [0, active_servers)
  // is live; fields edges begin on fallback-domain tables so unknown keys
  // hash over the active instance set, never onto a dormant server.
  active_servers_ = options_.active_servers == 0 ? placement.num_servers()
                                                 : options_.active_servers;
  LAR_CHECK(active_servers_ >= 1 &&
            active_servers_ <= placement.num_servers());
  const bool restricted = active_servers_ < placement.num_servers();
  elastic_ = restricted;
  if (restricted) require_elastic_capable();
  std::unordered_map<OperatorId, std::shared_ptr<const RoutingTable>>
      initial_tables;
  if (restricted) {
    for (const auto& edge : topology.edges()) {
      if (edge.grouping != GroupingType::kFields) continue;
      auto [it, inserted] = initial_tables.try_emplace(edge.to);
      if (!inserted) continue;
      auto table = std::make_shared<RoutingTable>();
      table->set_fallback(
          placement.active_instances(edge.to, active_servers_));
      it->second = std::move(table);
    }
  }

  poi_index_.resize(topology.num_operators());
  for (OperatorId op = 0; op < topology.num_operators(); ++op) {
    const std::uint32_t parallelism = topology.op(op).parallelism;
    poi_index_[op].resize(parallelism);
    for (InstanceIndex i = 0; i < parallelism; ++i) {
      poi_index_[op][i] = pois_.size();
      pois_.push_back(std::make_unique<Poi>(op, i, placement.server_of(op, i),
                                            options_.queue_capacity));
      Poi& poi = *pois_.back();
      poi.flat = poi_index_[op][i];
      // Only the data plane may use the bounded (back-pressuring) pushes;
      // every control message takes push_unbounded (CLAUDE.md invariant).
      poi.inbox.set_push_validator(
          [](const Message& m) { return std::holds_alternative<DataMsg>(m); });
      poi.logic = factory_(op, i);
      LAR_CHECK(poi.logic != nullptr);

      const auto& out = topology.out_edges(op);
      poi.routers.reserve(out.size());
      poi.pair_stats.reserve(out.size());
      for (const std::uint32_t eid : out) {
        const EdgeSpec& edge = topology.edges()[eid];
        std::shared_ptr<const RoutingTable> initial;
        if (auto t = initial_tables.find(edge.to); t != initial_tables.end() &&
                                                   edge.grouping ==
                                                       GroupingType::kFields) {
          initial = t->second;
        }
        poi.routers.push_back(make_router(
            edge, eid, topology, placement, poi.server, options_.fields_mode,
            std::move(initial), options_.seed * 7919 + eid * 131 + i));
        if (restricted && edge.grouping == GroupingType::kShuffle) {
          poi.routers.back()->set_active_instances(
              placement.active_instances(edge.to, active_servers_));
        }
        if (edge.grouping == GroupingType::kFields &&
            anchors_[edge.from].has_value()) {
          poi.pair_stats.emplace_back(
              std::in_place, options_.pair_stats_capacity);
        } else {
          poi.pair_stats.emplace_back(std::nullopt);
        }
      }

      std::uint32_t expected = 0;
      for (const std::uint32_t eid : topology.in_edges(op)) {
        expected += topology.op(topology.edges()[eid].from).parallelism;
      }
      poi.propagate_expected = topology.op(op).is_source ? 1 : expected;
      poi.active = poi.server < active_servers_;
    }
  }
  // Second pass: wire the data-plane fast path.  Every producer of a
  // channel — each upstream POI instance, plus the injector for sources —
  // registers its own SPSC ring lane, sized so the per-channel total stays
  // near queue_capacity.  Dormant instances are wired too: lanes are cheap
  // and registration must finish before any producer thread starts, so an
  // elastic resize never adds lanes mid-stream.
  LAR_CHECK(options_.lane_batch >= 1);
  std::vector<std::uint32_t> producers(topology.num_operators(), 0);
  for (const EdgeSpec& edge : topology.edges()) {
    producers[edge.to] += topology.op(edge.from).parallelism;
  }
  for (OperatorId op = 0; op < topology.num_operators(); ++op) {
    if (topology.op(op).is_source) ++producers[op];  // the injector
  }
  const auto lane_cap = [&](OperatorId op) {
    return std::max<std::size_t>(
        64,
        options_.queue_capacity / std::max<std::uint32_t>(producers[op], 1));
  };
  for (auto& poi_ptr : pois_) {
    Poi& poi = *poi_ptr;
    const auto& out = topology.out_edges(poi.op);
    poi.out_lanes.resize(out.size());
    for (std::size_t k = 0; k < out.size(); ++k) {
      const EdgeSpec& edge = topology.edges()[out[k]];
      const std::uint32_t parallelism = topology.op(edge.to).parallelism;
      poi.out_lanes[k].resize(parallelism);
      for (InstanceIndex i = 0; i < parallelism; ++i) {
        Poi& target = poi_at(edge.to, i);
        const auto flat = static_cast<std::uint64_t>(target.flat);
        std::uint32_t lane = 0;
        if (const std::uint32_t* found = poi.lane_to.find(flat)) {
          lane = *found;  // a second edge into the same channel shares it
        } else {
          lane = target.inbox.add_lane(lane_cap(edge.to));
          poi.lane_to[flat] = lane;
          poi.flush_lanes.push_back(Poi::OutLane{&target, lane});
        }
        poi.out_lanes[k][i] = Poi::OutLane{&target, lane};
      }
    }
  }
  inject_lane_.assign(pois_.size(), 0);
  for (const OperatorId src : sources_) {
    for (const std::size_t flat : poi_index_[src]) {
      inject_lane_[flat] = pois_[flat]->inbox.add_lane(lane_cap(src));
    }
  }
  for (auto& poi : pois_) poi->inbox.set_lane_batch(options_.lane_batch);

  set_inject_actives(active_servers_);

  ckpt_enabled_ = options_.checkpoint != nullptr;
  if (ckpt_enabled_) {
    inject_out_seq_.assign(pois_.size(), 0);
    inject_replay_.resize(pois_.size());
    for (const OperatorId src : sources_) {
      for (const std::size_t flat : poi_index_[src]) {
        source_flats_.push_back(static_cast<std::uint32_t>(flat));
      }
    }
    std::sort(source_flats_.begin(), source_flats_.end());
    ckpt_delta_enabled_ = options_.checkpoint->store().incremental();
    if (ckpt_delta_enabled_) {
      for (auto& poi : pois_) {
        bool capable = !topology.op(poi->op).is_source;
        for (const std::uint32_t eid : topology.in_edges(poi->op)) {
          if (topology.edges()[eid].grouping != GroupingType::kFields) {
            capable = false;
          }
        }
        poi->delta_capable = capable;
      }
    }
  }

  // lar::fleet: the engine must be deployed over the fleet's own combined
  // topology/placement — tenant operator-id ranges and source positions are
  // only meaningful against them.
  fleet_ = options_.fleet;
  if (fleet_ != nullptr) {
    LAR_CHECK(&topology_ == &fleet_->combined_topology());
    LAR_CHECK(&placement_ == &fleet_->combined_placement());
    app_source_pos_.resize(fleet_->num_apps());
    for (std::size_t pos = 0; pos < sources_.size(); ++pos) {
      app_source_pos_[fleet_->app_of(sources_[pos])].push_back(pos);
    }
    app_inject_seq_.assign(fleet_->num_apps(), 0);
    app_tuples_injected_.assign(fleet_->num_apps(), 0);
  }
}

Engine::~Engine() { shutdown(); }

void Engine::start() {
  LAR_CHECK(!started_);
  if (ckpt_enabled_) restore_from_store();
  started_ = true;
  for (auto& poi : pois_) {
    if (!poi->active) continue;  // dormant until add_servers() reaches it
    poi->thread = std::thread([this, p = poi.get()] { poi_loop(*p); });
  }
}

void Engine::restore_from_store() {
  ckpt::CheckpointStore& store = options_.checkpoint->store();
  const ckpt::CheckpointMeta meta = store.last_committed_meta();
  if (meta.epoch == 0) return;  // fresh store: nothing to restore
  const ckpt::Checkpoint snap = store.last_committed();
  LAR_CHECK(snap.committed);

  // Re-activate the snapshotted server prefix: the epoch is the truth, not
  // this process's EngineOptions (a restarted driver usually passes the
  // default full fleet).  Dormant POIs get no thread, exactly like a
  // restricted construction.
  LAR_CHECK(snap.active_servers >= 1 &&
            snap.active_servers <= placement_.num_servers());
  active_servers_ = snap.active_servers;
  const bool restricted = active_servers_ < placement_.num_servers();
  // Constructed restricted: non-fields routers start limited to the
  // EngineOptions prefix and must be re-widened even when the snapshot
  // restores the full fleet (construction already proved elastic-capable).
  const bool constructed_restricted =
      options_.active_servers != 0 &&
      options_.active_servers < placement_.num_servers();
  if (restricted) require_elastic_capable();
  for (auto& poi : pois_) poi->active = poi->server < active_servers_;
  set_inject_actives(active_servers_);
  last_plan_version_ = snap.plan_version;

  // Reinstall the recovered routing configuration (the chain's base file
  // embeds the engine-wide deployed-table union).  Fields edges without a
  // recovered table — nothing was ever deployed for them — fall back to a
  // fresh fallback-domain table when restricted, i.e. the restricted-start
  // construction; shuffle edges re-restrict to the active prefix.
  const core::ReconfigurationPlan* const plan = store.restored_plan();
  bool elastic_tables = false;
  if (plan != nullptr) {
    deployed_tables_ = plan->tables;
    // Tables with a fallback domain came from plan_for: the engine was
    // elastic, and future plans must keep flowing through plan_for.
    for (const auto& [op, table] : deployed_tables_) {
      if (!table->fallback().empty()) elastic_tables = true;
    }
  }
  elastic_ = elastic_ || restricted || elastic_tables;
  std::unordered_map<OperatorId, std::shared_ptr<const RoutingTable>>
      restored_tables = deployed_tables_;
  if (restricted) {
    for (const EdgeSpec& edge : topology_.edges()) {
      if (edge.grouping != GroupingType::kFields) continue;
      auto [it, inserted] = restored_tables.try_emplace(edge.to);
      if (!inserted) continue;
      auto table = std::make_shared<RoutingTable>();
      table->set_fallback(
          placement_.active_instances(edge.to, active_servers_));
      it->second = std::move(table);
    }
  }
  for (auto& poi : pois_) {
    const auto& out = topology_.out_edges(poi->op);
    for (std::size_t k = 0; k < out.size(); ++k) {
      const EdgeSpec& edge = topology_.edges()[out[k]];
      if (edge.grouping != GroupingType::kFields) {
        if (restricted || constructed_restricted) {
          poi->routers[k]->set_active_instances(
              placement_.active_instances(edge.to, active_servers_));
        }
        continue;
      }
      const auto it = restored_tables.find(edge.to);
      if (it == restored_tables.end()) continue;
      poi->routers[k] = std::make_unique<TableFieldsRouter>(
          edge.key_field, topology_.op(edge.to).parallelism, it->second);
    }
  }

  // Restore every snapshotted POI: key states through the migration codec,
  // both cursor sets (regenerated emissions reuse their original sequence
  // numbers; replayed inputs dedup against the restored cut), and the plan
  // version it had applied.
  std::uint64_t restored = 0;
  std::uint64_t restored_bytes = 0;
  for (const auto& [flat, pc] : snap.pois) {
    LAR_CHECK(flat < pois_.size());
    Poi& poi = *pois_[flat];
    for (const auto& [key, state] : pc.states) {
      poi.logic->import_key_state(key, state);
      ++restored;
      restored_bytes += state.size();
    }
    for (const auto& [link, seq] : pc.in_cursors) poi.last_seq[link] = seq;
    for (const auto& [tgt, seq] : pc.out_cursors) poi.out_seq[tgt] = seq;
    poi.applied_version = pc.table_version;
    poi.dirty.clear();
  }
  states_restored_.fetch_add(restored, std::memory_order_relaxed);
  states_restored_bytes_.fetch_add(restored_bytes, std::memory_order_relaxed);

  // Resume the inject sequencing where the cut left it: each source's
  // coordinator-link cursor is exactly how many tuples inject() had pushed
  // to it before the epoch's barrier (barriers ride the same mutex), so the
  // sum is the global inject prefix the chain covers.  The driver replays
  // its stream from restored_inject_offset(); re-injected tuples get fresh
  // sequence numbers past the restored receiver cursors.
  std::uint64_t offset = 0;
  for (const std::uint32_t flat : source_flats_) {
    const auto pc = snap.pois.find(flat);
    if (pc == snap.pois.end()) continue;  // dormant source: no slice
    std::uint64_t cursor = 0;
    for (const auto& [link, seq] : pc->second.in_cursors) {
      if (link == BarrierMsg::kCoordinator) cursor = seq;
    }
    inject_out_seq_[flat] = cursor;
    offset += cursor;
  }
  restored_inject_offset_ = offset;
  inject_seq_.store(offset, std::memory_order_relaxed);
  if (fleet_ != nullptr) {
    std::lock_guard<std::mutex> lock(source_mutex_);
    for (fleet::AppId app = 0; app < fleet_->num_apps(); ++app) {
      std::uint64_t app_offset = 0;
      for (const std::size_t pos : app_source_pos_[app]) {
        for (const std::size_t flat : poi_index_[sources_[pos]]) {
          app_offset += inject_out_seq_[flat];
        }
      }
      app_inject_seq_[app] = app_offset;
    }
  }
  LAR_INFO << "engine: cold restart from checkpoint epoch " << snap.epoch
           << " (" << restored << " states, inject offset " << offset << ")";
}

void Engine::shutdown() {
  if (!started_ || shut_down_) return;
  flush();
  shut_down_ = true;
  for (auto& poi : pois_) {
    poi->inbox.push_unbounded(Message{ShutdownMsg{}});
  }
  for (auto& poi : pois_) {
    if (poi->thread.joinable()) poi->thread.join();
  }
}

Engine::Poi& Engine::poi_at(OperatorId op, InstanceIndex index) {
  return *pois_[poi_index_[op][index]];
}

Operator& Engine::operator_at(OperatorId op, InstanceIndex index) {
  return *poi_at(op, index).logic;
}

// ---------------------------------------------------------------------------
// Data plane.
// ---------------------------------------------------------------------------

void Engine::inject(Tuple tuple) {
  LAR_CHECK(started_ && !shut_down_);
  LAR_CHECK(!sources_.empty());
  OperatorId src = 0;
  InstanceIndex instance = 0;
  {
    // The active lists default to every instance, which makes the picks
    // below exactly the historical `% parallelism` ones; an elastic resize
    // swaps the lists under the same mutex.
    std::lock_guard<std::mutex> lock(source_mutex_);
    const std::uint64_t seq = inject_seq_.load(std::memory_order_relaxed);
    const std::size_t pos = seq % sources_.size();
    src = sources_[pos];
    const std::vector<InstanceIndex>& act = source_actives_[pos];
    switch (options_.source_mode) {
      case SourceMode::kAlignedField0:
        LAR_CHECK(!tuple.fields.empty());
        instance = act[tuple.fields[0] % act.size()];
        break;
      case SourceMode::kRoundRobin:
        instance = act[seq % act.size()];
        break;
    }
    inject_seq_.fetch_add(1, std::memory_order_relaxed);
    inject_push_locked(src, instance, std::move(tuple));
  }
}

void Engine::inject_push_locked(OperatorId src, InstanceIndex instance,
                                Tuple&& tuple) {
  // The injector's SPSC lane: source_mutex_ is its producer serialization
  // domain, so pushing while still holding the mutex keeps the inject log
  // order, the sequence numbers and the lane order in agreement — and a
  // checkpoint barrier injected under this same mutex lands after exactly
  // the tuples logged so far.  The source POI drains its inbox without
  // ever taking this mutex, so a back-pressured push cannot deadlock.
  // Every inject flushes: callers may flush() right after, and a staged
  // tuple nobody publishes would hang that fence.
  Poi& target = poi_at(src, instance);
  const std::uint32_t lane = inject_lane_[target.flat];
  if (ckpt_enabled_) {
    DataMsg dm{std::move(tuple), DataMsg::kInjected};
    dm.from = BarrierMsg::kCoordinator;
    dm.seq = ++inject_out_seq_[target.flat];
    inject_replay_[target.flat].push_back(dm);
    tuples_injected_.fetch_add(1, std::memory_order_relaxed);
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    target.inbox.lane_push(lane, Message{DataMsg{std::move(dm)}});
  } else {
    tuples_injected_.fetch_add(1, std::memory_order_relaxed);
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    target.inbox.lane_push(
        lane, Message{DataMsg{std::move(tuple), DataMsg::kInjected}});
  }
  target.inbox.lane_flush(lane);
}

void Engine::inject_app(fleet::AppId app, Tuple tuple) {
  LAR_CHECK(started_ && !shut_down_);
  LAR_CHECK(fleet_ != nullptr && app < app_source_pos_.size());
  const std::vector<std::size_t>& positions = app_source_pos_[app];
  LAR_CHECK(!positions.empty());
  std::lock_guard<std::mutex> lock(source_mutex_);
  // Per-tenant round-robin over the tenant's own source positions with a
  // per-tenant sequence: each tenant's arrival order is independent of how
  // the driver interleaves tenants.
  const std::uint64_t seq = app_inject_seq_[app]++;
  const std::size_t pos = positions[seq % positions.size()];
  const OperatorId src = sources_[pos];
  const std::vector<InstanceIndex>& act = source_actives_[pos];
  InstanceIndex instance = 0;
  switch (options_.source_mode) {
    case SourceMode::kAlignedField0:
      LAR_CHECK(!tuple.fields.empty());
      instance = act[tuple.fields[0] % act.size()];
      break;
    case SourceMode::kRoundRobin:
      instance = act[seq % act.size()];
      break;
  }
  ++app_tuples_injected_[app];
  inject_push_locked(src, instance, std::move(tuple));
}

void Engine::flush() {
  std::uint64_t v = in_flight_.load(std::memory_order_acquire);
  while (v != 0) {
    in_flight_.wait(v, std::memory_order_acquire);
    v = in_flight_.load(std::memory_order_acquire);
  }
}

void Engine::poi_loop(Poi& poi) {
  chaos::Injector* const inj = options_.injector;
  for (;;) {
    auto msg = poi.inbox.try_pop();
    if (!msg.has_value()) {
      // About to go idle: publish every staged outbound batch first, or a
      // downstream POI could wait forever on tuples already emitted here.
      // Flushing only on the empty-inbox edge (not per message) is what
      // lets batches form while the POI is busy; the per-lane batch bound
      // caps how long a tuple can stay staged meanwhile.
      for (const Poi::OutLane& ol : poi.flush_lanes) {
        ol.target->inbox.lane_flush(ol.lane);
      }
      msg = poi.inbox.pop();
      if (!msg.has_value()) return;
    }
    if (std::holds_alternative<ShutdownMsg>(*msg)) return;
    // A crash sentinel kills the POI where it stands: messages queued behind
    // it stay unprocessed (the recovery driver discards them — their effects
    // come back via checkpoint restore + sender replay).
    if (std::holds_alternative<CrashMsg>(*msg)) {
      poi.crash_exited.store(true, std::memory_order_release);
      return;
    }
    if (inj != nullptr &&
        inj->fire(chaos::FaultSite::kWorkerStall, poi.flat)) {
      // A stall window: the POI yields the CPU `magnitude` times before
      // touching the message; purely a scheduling perturbation.
      const std::uint32_t yields =
          inj->magnitude(chaos::FaultSite::kWorkerStall);
      for (std::uint32_t i = 0; i < yields; ++i) std::this_thread::yield();
    }
    std::visit(
        [&](auto&& m) {
          using T = std::decay_t<decltype(m)>;
          // Any control message force-flushes every delay stash first: the
          // wave relies on a predecessor's pre-switch data being processed
          // before its PROPAGATE, and injected delays must not outlive that
          // ordering.
          if constexpr (std::is_same_v<T, DataMsg>) {
            handle_data(poi, std::move(m));
          } else if constexpr (std::is_same_v<T, FlushDelayedMsg>) {
            flush_delayed(poi, m.link);
          } else if constexpr (std::is_same_v<T, GetMetricsMsg>) {
            flush_all_delayed(poi);
            send_metrics(poi);
          } else if constexpr (std::is_same_v<T, ReconfMsg>) {
            flush_all_delayed(poi);
            handle_reconf(poi, std::move(m));
          } else if constexpr (std::is_same_v<T, PropagateMsg>) {
            flush_all_delayed(poi);
            handle_propagate(poi, m);
          } else if constexpr (std::is_same_v<T, MigrateMsg>) {
            flush_all_delayed(poi);
            handle_migrate(poi, std::move(m));
          } else if constexpr (std::is_same_v<T, BarrierMsg>) {
            flush_all_delayed(poi);
            handle_barrier(poi, m);
          } else if constexpr (std::is_same_v<T, CheckpointCommitMsg>) {
            flush_all_delayed(poi);
            handle_commit(poi, m);
          } else if constexpr (std::is_same_v<T, ReplayRequestMsg>) {
            flush_all_delayed(poi);
            handle_replay_request(poi, m);
          } else if constexpr (std::is_same_v<T, ReplayEndMsg>) {
            flush_all_delayed(poi);
            handle_replay_end(poi, m);
          }
        },
        std::move(*msg));
  }
}

void Engine::handle_data(Poi& poi, DataMsg msg) {
  chaos::Injector* const inj = options_.injector;
  if (msg.from != DataMsg::kNoFrom && (inj != nullptr || ckpt_enabled_)) {
    const std::uint32_t from = msg.from;
    // A link mid-replay holds *everything* — live stragglers may arrive
    // before the replayed copies, so nothing is applied (and no dedup
    // cursor advanced) until ReplayEnd sorts the union by sequence number.
    if (ckpt_enabled_ && poi.replay_pending.contains(from)) {
      poi.replay_stash[from].push_back(std::move(msg));
      return;
    }
    // Dedup before anything else: an injected duplicate (or a recovered
    // sender's regenerated emission) is dropped even if its link is
    // currently held in a stash.
    std::uint64_t& seen = poi.last_seq[from];
    if (msg.seq <= seen) {
      data_dups_dropped_.fetch_add(1, std::memory_order_relaxed);
      if (inj != nullptr) {
        inj->recovery("channel_dedup", link_entity_str(from, poi.flat));
      }
      drop_data_in_flight(1);
      return;
    }
    seen = msg.seq;
    // A link whose barrier is in while a sibling's is pending stashes its
    // whole post-barrier suffix until alignment completes (the consistent
    // cut).  Checked before the chaos delay so a blocked link never
    // re-enters the delay stash mid-alignment.
    if (ckpt_enabled_ && poi.blocked_links.contains(from)) {
      poi.align_stash[from].push_back(std::move(msg));
      return;
    }
    if (inj != nullptr) {
      // A held link stashes its *whole suffix* — per-producer FIFO is
      // preserved by construction, the delay never reorders within a link.
      if (auto it = poi.delayed.find(from); it != poi.delayed.end()) {
        it->second.push_back(std::move(msg));
        return;
      }
      if (inj->fire(chaos::FaultSite::kChannelDelay,
                    link_entity(from, poi.flat))) {
        poi.delayed[from].push_back(std::move(msg));
        // The sentinel flushes the stash once the inbox contents present
        // now have drained: one logical queue-drain of delay, deadlock-free
        // because the push ignores the capacity bound.
        poi.inbox.push_unbounded(Message{FlushDelayedMsg{from}});
        return;
      }
    }
  }
  deliver_data(poi, std::move(msg));
}

void Engine::deliver_data(Poi& poi, DataMsg msg) {
  Key in_key = msg.anchor;
  if (msg.edge != DataMsg::kInjected) {
    const EdgeSpec& edge = topology_.edges()[msg.edge];
    if (edge.grouping == GroupingType::kFields) {
      LAR_CHECK(edge.key_field < msg.tuple.fields.size());
      in_key = msg.tuple.fields[edge.key_field];
      // Buffer tuples whose key state is still in flight (Section 3.4:
      // "tuples are buffered and are only processed once the state of their
      // key is received").
      if (poi.awaiting.contains(in_key)) {
        // Buffering implies a live reconfiguration: `awaiting` is populated
        // by handle_reconf and fully drained before `staged` resets, so a
        // parked tuple always has an incoming MIGRATE to wake it.  Keys not
        // in `awaiting` — including keys the routing table has never seen,
        // which fall back to hash routing — are processed immediately; they
        // can never be parked forever.
        LAR_CHECK(poi.staged.has_value());
        buffer_tuple(poi, in_key, std::move(msg));
        return;  // stays in flight until drained by handle_migrate()
      }
    }
  }
  process_tuple(poi, msg.tuple, in_key);
  poi.arena_release(std::move(msg.tuple.fields));
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    in_flight_.notify_all();
  }
}

void Engine::buffer_tuple(Poi& poi, Key in_key, DataMsg msg) {
  tuples_buffered_.fetch_add(1, std::memory_order_relaxed);
  if (options_.trace != nullptr) {
    options_.trace->record(poi.staged->version, obs::Phase::kBuffer,
                           obs::key_entity(in_key), /*count=*/1);
  }
  const std::size_t cap = options_.buffered_tuples_cap;
  // Spill once the in-memory cap is hit.  Stickiness: after a key's first
  // spill, all its later tuples spill too, so the drain order (in-memory
  // batch first, then the spill store) preserves per-key FIFO.
  if (cap != 0 && (poi.pending_count >= cap || poi.spilled.contains(in_key))) {
    std::vector<std::byte> wire = encode_tuple(msg.tuple);
    tuples_spilled_.fetch_add(1, std::memory_order_relaxed);
    tuples_spilled_bytes_.fetch_add(wire.size(), std::memory_order_relaxed);
    if (options_.injector != nullptr) {
      options_.injector->recovery("buffer_spill", obs::key_entity(in_key),
                                  /*count=*/1, /*bytes=*/wire.size(),
                                  poi.staged->version);
    }
    poi.spilled[in_key].push_back(std::move(wire));
    return;
  }
  poi.pending[in_key].push_back(std::move(msg));
  ++poi.pending_count;
}

void Engine::flush_delayed(Poi& poi, std::uint32_t link) {
  auto it = poi.delayed.find(link);
  if (it == poi.delayed.end()) return;  // already force-flushed by control
  std::vector<DataMsg> held = std::move(it->second);
  poi.delayed.erase(it);
  if (options_.injector != nullptr) {
    options_.injector->recovery("delay_flush", link_entity_str(link, poi.flat),
                                held.size());
  }
  for (DataMsg& dm : held) deliver_data(poi, std::move(dm));
}

void Engine::flush_all_delayed(Poi& poi) {
  while (!poi.delayed.empty()) flush_delayed(poi, poi.delayed.begin()->first);
}

void Engine::process_tuple(Poi& poi, const Tuple& tuple, Key in_key) {
  poi.processed.fetch_add(1, std::memory_order_relaxed);
  // Incremental checkpointing: the routing key is the state key for every
  // delta-capable POI (all-fields inputs), so marking it here covers every
  // state mutation process() can make.  delta_capable is only ever set when
  // the store asked for increments — one branch, the structural-no-op rule.
  if (poi.delta_capable && in_key != kNoKey) poi.dirty.insert(in_key);
  // Emitter bound to the POI currently processing a tuple; routes emissions
  // on every outbound edge and records pair statistics.  A local class so it
  // shares this member function's access to Engine internals.
  struct RoutingEmitter final : Emitter {
    Engine& engine;
    Poi& poi;
    Key in_key;

    RoutingEmitter(Engine& e, Poi& p, Key k)
        : engine(e), poi(p), in_key(k) {}

    void emit(Tuple tuple) override {
      const auto& out = engine.topology_.out_edges(poi.op);
      for (std::size_t k = 0; k < out.size(); ++k) {
        const EdgeSpec& edge = engine.topology_.edges()[out[k]];
        if (poi.pair_stats[k].has_value() && in_key != kNoKey) {
          LAR_CHECK(edge.key_field < tuple.fields.size());
          poi.pair_stats[k]->record(in_key, tuple.fields[edge.key_field]);
        }
        engine.send_data(poi, static_cast<std::uint32_t>(k), tuple, in_key,
                         /*last=*/k + 1 == out.size());
      }
      // The final local edge moved the storage out; anything left (sinks,
      // remote-only emissions) goes back to the free-list.
      poi.arena_release(std::move(tuple.fields));
    }
  } emitter(*this, poi, in_key);
  poi.logic->process(tuple, emitter);
}

void Engine::send_data(Poi& poi, std::uint32_t out_pos, Tuple& tuple,
                       Key in_key, bool last) {
  const std::uint32_t eid = topology_.out_edges(poi.op)[out_pos];
  const EdgeSpec& edge = topology_.edges()[eid];
  const InstanceIndex dst = poi.routers[out_pos]->route(tuple);
  const Poi::OutLane& ol = poi.out_lanes[out_pos][dst];
  Poi& target = *ol.target;
  EdgeCounters& counters = edge_counters_[eid];

  // The receiver's anchor: a fields hop re-anchors at its own key, anything
  // else forwards the sender's.
  const Key anchor = edge.grouping == GroupingType::kFields
                         ? tuple.fields[edge.key_field]
                         : in_key;

  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  DataMsg out{Tuple{}, eid, anchor};
  if (target.server == poi.server) {
    counters.local.fetch_add(1, std::memory_order_relaxed);
    if (last) {
      // Same-server final edge: the hand-off is a pointer move into the
      // co-located POI's lane — the paper's "address in memory" hop, with
      // no copy at all.  The receiver recycles the storage once processed.
      out.tuple = std::move(tuple);
    } else {
      // A non-final local edge still needs its own copy, but into a
      // recycled buffer rather than a fresh heap allocation.
      out.tuple.fields = poi.arena_acquire();
      out.tuple.fields.assign(tuple.fields.begin(), tuple.fields.end());
      out.tuple.padding = tuple.padding;
    }
  } else {
    counters.remote.fetch_add(1, std::memory_order_relaxed);
    const std::vector<std::byte> wire = encode_tuple(tuple);
    counters.remote_bytes.fetch_add(wire.size(), std::memory_order_relaxed);
    out.tuple = decode_tuple(wire);
  }
  chaos::Injector* const inj = options_.injector;
  if (inj != nullptr || ckpt_enabled_) {
    // Stamp the link sequence so the receiver can drop duplicates; out_seq
    // is only ever touched by this POI's own thread.
    out.from = static_cast<std::uint32_t>(poi.flat);
    out.seq = ++poi.out_seq[target.flat];
    if (ckpt_enabled_) {
      // Sender-side replay buffer: everything since the last committed
      // checkpoint, truncated by handle_commit at the snapshot watermark.
      poi.replay_out[target.flat].push_back(out);
    }
    if (inj != nullptr &&
        inj->fire(chaos::FaultSite::kChannelDuplicate,
                  link_entity(out.from, target.flat))) {
      // Same seq on both copies: whichever arrives second is deduped.
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      target.inbox.lane_push(ol.lane, Message{DataMsg{out}});
    }
  }
  target.inbox.lane_push(ol.lane, Message{std::move(out)});
}

// ---------------------------------------------------------------------------
// Control plane: the reconfiguration protocol (POI side).
// ---------------------------------------------------------------------------

void Engine::send_metrics(Poi& poi) {
  MetricsReply reply;
  reply.from = InstanceId{poi.op, poi.index};
  const auto& out = topology_.out_edges(poi.op);
  for (std::size_t k = 0; k < out.size(); ++k) {
    if (!poi.pair_stats[k].has_value()) continue;
    reply.stats.emplace_back(out[k], poi.pair_stats[k]->snapshot());
  }
  manager_inbox_.push_unbounded(ManagerReply{std::move(reply)});
}

void Engine::handle_reconf(Poi& poi, ReconfMsg msg) {
  LAR_CHECK(!poi.staged.has_value());  // one reconfiguration at a time
  const std::uint64_t version = msg.version;
  poi.staged = std::move(msg);
  poi.propagate_seen = 0;
  poi.actions_done = false;
  // The wave spec pins how many PROPAGATEs to expect *this* round: only
  // participating predecessor instances forward the wave, so a dormant or
  // newly spawned fleet never changes what this POI waits for mid-wave.
  // At full membership the sums equal the constructor's static values.
  if (const ElasticWave* wave = poi.staged->wave.get(); wave != nullptr) {
    if (topology_.op(poi.op).is_source) {
      poi.propagate_expected = 1;
    } else {
      std::uint32_t expected = 0;
      for (const std::uint32_t eid : topology_.in_edges(poi.op)) {
        expected += static_cast<std::uint32_t>(
            wave->members[topology_.edges()[eid].from].size());
      }
      poi.propagate_expected = expected;
    }
  }
  // Buffering must start now: upstream POIs may switch to the new tables
  // (and route keys here) before this POI's own propagate arrives.  Each
  // entry is one (key, sender) debt: a split convergence lists the same key
  // once per old replica, and the key unblocks only when all have merged.
  for (const auto& [key, sender] : poi.staged->receive) {
    poi.awaiting[key].push_back(sender);
  }
  if (options_.trace != nullptr) {
    options_.trace->record(version, obs::Phase::kAck,
                           obs::poi_entity(poi.op, poi.index),
                           /*count=*/poi.staged->receive.size());
  }
  manager_inbox_.push_unbounded(
      ManagerReply{AckReconfReply{InstanceId{poi.op, poi.index}, version}});
}

void Engine::handle_propagate(Poi& poi, const PropagateMsg& msg) {
  LAR_CHECK(poi.staged.has_value() && poi.staged->version == msg.version);
  ++poi.propagate_seen;
  if (poi.propagate_seen == poi.propagate_expected) {
    run_reconfig_actions(poi);
  }
}

void Engine::run_reconfig_actions(Poi& poi) {
  ReconfMsg& staged = *poi.staged;
  const auto& out = topology_.out_edges(poi.op);

  // update_routing: install the new tables on outbound fields edges and
  // restart statistics collection from a clean slate.  Elastic waves also
  // swap the shuffle restriction to the post-commit active set, in the same
  // step so a link's pre-switch suffix stays ahead of its PROPAGATE.
  const ElasticWave* const wave = staged.wave.get();
  const bool activity_change = wave != nullptr && !wave->actives.empty();
  for (std::size_t k = 0; k < out.size(); ++k) {
    const EdgeSpec& edge = topology_.edges()[out[k]];
    if (edge.grouping != GroupingType::kFields) {
      if (activity_change) {
        poi.routers[k]->set_active_instances(wave->actives[edge.to]);
      }
      continue;
    }
    auto it = staged.tables.find(edge.to);
    if (it == staged.tables.end()) continue;
    poi.routers[k] = std::make_unique<TableFieldsRouter>(
        edge.key_field, topology_.op(edge.to).parallelism, it->second);
    if (poi.pair_stats[k].has_value()) poi.pair_stats[k]->reset();
  }

  // Export and ship the state of keys this instance no longer owns.  No
  // more tuples for them can arrive: every predecessor switched tables
  // before propagating here, and channels are FIFO.
  for (const auto& [key, dest] : staged.send) {
    std::vector<std::byte> state = poi.logic->export_key_state(key);
    poi.logic->drop_key_state(key);
    Poi& target = poi_at(poi.op, dest);
    if (chaos::Injector* const inj = options_.injector;
        inj != nullptr && inj->fire(chaos::FaultSite::kMigrateDuplicate, key,
                                    staged.version)) {
      // The receiver's awaiting-set check absorbs the second copy.
      target.inbox.push_unbounded(
          Message{MigrateMsg{staged.version, key, state, poi.index}});
    }
    target.inbox.push_unbounded(
        Message{MigrateMsg{staged.version, key, std::move(state), poi.index}});
  }

  // Residual drain (elastic waves only): any still-owned key the new epoch
  // routes away — keys the manager never observed have no move entry, yet a
  // retiring instance must not keep them and a grown fleet must not leave
  // them under the old fallback owner.  Scanned after the planned sends, so
  // `owned_keys` no longer contains the exported ones; receivers import
  // unconditionally (imports are merge-additive), acknowledged through the
  // engine-wide drain fence rather than the awaiting set.
  if (staged.own_table != nullptr) {
    const std::uint32_t parallelism = topology_.op(poi.op).parallelism;
    for (const Key key : poi.logic->owned_keys()) {
      // A split candidate legitimately holds a partial — only ship state the
      // new epoch gives this instance no ownership of at all.
      if (staged.own_table->is_owner(key, poi.index, parallelism)) continue;
      const InstanceIndex dest = staged.own_table->route(key, parallelism);
      std::vector<std::byte> state = poi.logic->export_key_state(key);
      poi.logic->drop_key_state(key);
      states_drained_.fetch_add(1, std::memory_order_relaxed);
      states_drained_bytes_.fetch_add(state.size(),
                                      std::memory_order_relaxed);
      if (options_.trace != nullptr) {
        options_.trace->record(staged.version, obs::Phase::kMigrate,
                               obs::key_entity(key), /*count=*/1,
                               /*bytes=*/state.size());
      }
      drains_in_flight_.fetch_add(1, std::memory_order_acq_rel);
      poi_at(poi.op, dest).inbox.push_unbounded(Message{MigrateMsg{
          staged.version, key, std::move(state), /*from=*/poi.index,
          /*redeliveries=*/0, /*drain=*/true}});
    }
  }

  poi.applied_version = staged.version;
  poi.actions_done = true;
  maybe_finish_reconfig(poi);
}

void Engine::handle_migrate(Poi& poi, MigrateMsg msg) {
  chaos::Injector* const inj = options_.injector;
  // Delayed payload: re-queue behind the inbox's current contents — a
  // bounded logical backoff (at most `magnitude` redeliveries, each one
  // queue-drain long), with the tuples for the key buffering meanwhile.
  if (inj != nullptr &&
      msg.redeliveries < inj->magnitude(chaos::FaultSite::kMigrateDelay) &&
      inj->fire(chaos::FaultSite::kMigrateDelay, msg.key, msg.version)) {
    ++msg.redeliveries;
    migrate_redeliveries_.fetch_add(1, std::memory_order_relaxed);
    inj->recovery("migrate_redelivery", obs::key_entity(msg.key),
                  /*count=*/1, /*bytes=*/msg.state.size(), msg.version);
    poi.inbox.push_unbounded(Message{std::move(msg)});
    return;
  }
  // Residual drain: imported unconditionally — the sender exported-and-
  // dropped, so this is the key's only live copy, and additive imports make
  // a second partial copy merge rather than clobber.  The add/retire caller
  // blocks on the drain fence, so a chaos-delayed drain can never be lost
  // behind a retiree's shutdown.
  if (msg.drain) {
    states_migrated_.fetch_add(1, std::memory_order_relaxed);
    states_migrated_bytes_.fetch_add(msg.state.size(),
                                     std::memory_order_relaxed);
    if (poi.delta_capable) poi.dirty.insert(msg.key);
    poi.logic->import_key_state(msg.key, msg.state);
    if (drains_in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      drains_in_flight_.notify_all();
    }
    return;
  }
  // Idempotence: apply each (key, sender) state at most once per
  // reconfiguration.  A legit first delivery always finds `staged` at the
  // payload's version with the sender still listed under the key in
  // `awaiting` (states ship only after every ack, and the wave can't finish
  // here until awaiting drains).  Anything else is a duplicate or a stale
  // straggler from a finished round — e.g. a redelivered v1 copy popping
  // after v2 re-stages the same key — and importing it would double-apply
  // or resurrect old state, so drop *before* touching the operator.  The
  // sender match matters under lar::split: a degree decrease awaits several
  // senders per key, and a chaos-duplicated copy from one must not consume
  // another's slot.
  const auto awaiting_it = poi.awaiting.find(msg.key);
  const bool legit =
      poi.staged.has_value() && poi.staged->version == msg.version &&
      awaiting_it != poi.awaiting.end() &&
      std::find(awaiting_it->second.begin(), awaiting_it->second.end(),
                msg.from) != awaiting_it->second.end();
  if (!legit) {
    migrates_deduped_.fetch_add(1, std::memory_order_relaxed);
    if (inj != nullptr) {
      inj->recovery("migrate_dedup", obs::key_entity(msg.key),
                    /*count=*/1, /*bytes=*/msg.state.size(), msg.version);
    }
    return;
  }
  states_migrated_.fetch_add(1, std::memory_order_relaxed);
  states_migrated_bytes_.fetch_add(msg.state.size(),
                                   std::memory_order_relaxed);
  if (options_.registry != nullptr) {
    // Rare path (reconfiguration only), so the by-name lookup is fine.
    options_.registry
        ->histogram("lar_state_migration_size_bytes",
                    {0, 16, 64, 256, 1024, 4096, 16384}, {},
                    "Serialized size of one migrated key state.")
        .observe(static_cast<double>(msg.state.size()));
  }
  if (options_.trace != nullptr) {
    options_.trace->record(msg.version, obs::Phase::kMigrate,
                           obs::key_entity(msg.key), /*count=*/1,
                           /*bytes=*/msg.state.size());
  }
  if (poi.delta_capable) poi.dirty.insert(msg.key);
  poi.logic->import_key_state(msg.key, msg.state);
  std::vector<InstanceIndex>& senders = awaiting_it->second;
  senders.erase(std::find(senders.begin(), senders.end(), msg.from));
  if (!senders.empty()) {
    // lar::split convergence: more replica partials are still in flight for
    // this key (imports are merge-additive, so they sum).  The key stays
    // awaited and its tuples stay buffered until the last one lands.
    return;
  }
  poi.awaiting.erase(awaiting_it);
  // Drain tuples that were buffered waiting for this key's state: the
  // in-memory batch first, then (in arrival order after it, by spill
  // stickiness) the serialized spill store.
  std::vector<DataMsg> buffered;
  if (auto it = poi.pending.find(msg.key); it != poi.pending.end()) {
    buffered = std::move(it->second);
    poi.pending.erase(it);
    poi.pending_count -= buffered.size();
  }
  std::vector<std::vector<std::byte>> spilled;
  if (auto it = poi.spilled.find(msg.key); it != poi.spilled.end()) {
    spilled = std::move(it->second);
    poi.spilled.erase(it);
  }
  if (!buffered.empty() || !spilled.empty()) {
    if (options_.trace != nullptr) {
      std::uint64_t spilled_bytes = 0;
      for (const auto& wire : spilled) spilled_bytes += wire.size();
      options_.trace->record(msg.version, obs::Phase::kDrain,
                             obs::key_entity(msg.key),
                             /*count=*/buffered.size() + spilled.size(),
                             /*bytes=*/spilled_bytes);
    }
    for (DataMsg& dm : buffered) {
      process_tuple(poi, dm.tuple, msg.key);
      poi.arena_release(std::move(dm.tuple.fields));
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        in_flight_.notify_all();
      }
    }
    for (const std::vector<std::byte>& wire : spilled) {
      Tuple tuple = decode_tuple(wire);
      process_tuple(poi, tuple, msg.key);
      poi.arena_release(std::move(tuple.fields));
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        in_flight_.notify_all();
      }
    }
  }
  maybe_finish_reconfig(poi);
}

void Engine::maybe_finish_reconfig(Poi& poi) {
  if (!poi.staged.has_value() || !poi.actions_done || !poi.awaiting.empty()) {
    return;
  }
  const std::uint64_t version = poi.staged->version;
  // Forward the wave: one PROPAGATE per participating successor POI per
  // edge.  The membership list rides in the staged message, so the fan-out
  // matches exactly what each successor's propagate_expected counts.
  const std::shared_ptr<const ElasticWave> wave = poi.staged->wave;
  std::uint64_t hops = 0;
  // Each PROPAGATE rides FIFO-after this POI's own lane into its successor:
  // push_unbounded_after publishes any staged batch first, so a successor
  // always processes the pre-switch suffix before it sees the wave.
  for (const std::uint32_t eid : topology_.out_edges(poi.op)) {
    const EdgeSpec& edge = topology_.edges()[eid];
    if (wave != nullptr) {
      for (const InstanceIndex i : wave->members[edge.to]) {
        Poi& target = poi_at(edge.to, i);
        target.inbox.push_unbounded_after(*poi.lane_to.find(target.flat),
                                          Message{PropagateMsg{version}});
        ++hops;
      }
      continue;
    }
    const std::uint32_t parallelism = topology_.op(edge.to).parallelism;
    for (InstanceIndex i = 0; i < parallelism; ++i) {
      Poi& target = poi_at(edge.to, i);
      target.inbox.push_unbounded_after(*poi.lane_to.find(target.flat),
                                        Message{PropagateMsg{version}});
      ++hops;
    }
  }
  if (options_.trace != nullptr) {
    options_.trace->record(version, obs::Phase::kPropagate,
                           obs::poi_entity(poi.op, poi.index),
                           /*count=*/hops);
  }
  poi.staged.reset();
  manager_inbox_.push_unbounded(
      ManagerReply{ReconfDoneReply{InstanceId{poi.op, poi.index}, version}});
}

// ---------------------------------------------------------------------------
// Control plane: the reconfiguration protocol (manager side).
// ---------------------------------------------------------------------------

core::ReconfigurationPlan Engine::reconfigure(core::Manager& manager) {
  LAR_CHECK(started_ && !shut_down_);
  core::ReconfigurationPlan plan =
      run_protocol(manager, active_servers_, active_servers_);
  // Elastic waves may ship residual drains, which ride outside the awaiting
  // sets (and therefore outside flush()'s in-flight accounting); block until
  // they have landed so callers get the usual quiescence semantics.
  if (elastic_) drain_fence();
  // A wave invalidates every earlier checkpoint (its snapshots pre-date the
  // key moves, so restoring one would resurrect migrated keys under their
  // old owners).  Re-checkpoint immediately: recovery always finds a
  // committed epoch at the current plan version (DESIGN.md §11).
  if (ckpt_enabled_) checkpoint();
  end_wave_span();
  return plan;
}

core::ReconfigurationPlan Engine::reconfigure_app(fleet::AppId app) {
  LAR_CHECK(started_ && !shut_down_);
  LAR_CHECK(fleet_ != nullptr && app < fleet_->num_apps());
  core::ReconfigurationPlan plan =
      run_protocol(fleet_->manager(), active_servers_, active_servers_,
                   &fleet_->app(app));
  // Post-wave work mirrors reconfigure().  The drain fence blocks only this
  // driver thread (other tenants' data planes keep flowing through their
  // untouched lanes), and the auto-checkpoint stays global — the aligned
  // cut must cover every tenant or a later crash would restore one tenant
  // across another's wave.
  if (elastic_) drain_fence();
  if (ckpt_enabled_) checkpoint();
  end_wave_span();
  return plan;
}

core::ReconfigurationPlan Engine::resize_fleet(std::uint32_t target_servers) {
  LAR_CHECK(fleet_ != nullptr);
  LAR_CHECK(target_servers != active_servers_);
  // A resize is always a whole-fleet wave: plan_for gives EVERY tenant's
  // fields-destination ops fresh fallback-domain tables, and slicing any of
  // them away would leave that tenant hashing unknown keys over the stale
  // active set.  The joint planner drives the ordinary elastic machinery.
  core::Manager& manager = fleet_->manager();
  core::ReconfigurationPlan plan =
      target_servers > active_servers_
          ? add_servers(manager, target_servers)
          : retire_servers(manager, target_servers);
  // run_protocol already marked the joint planner; fold the deployment into
  // every tenant's bookkeeping (idempotent for the joint planner).
  fleet_->mark_deployed_all(plan);
  return plan;
}

void Engine::end_wave_span() {
  if (wave_span_ == 0) return;
  if (options_.trace != nullptr) {
    options_.trace->end_span(wave_span_, static_cast<double>(control_epoch_));
  }
  wave_span_ = 0;
}

core::ReconfigurationPlan Engine::run_protocol(
    core::Manager& manager, std::uint32_t current_n, std::uint32_t target_n,
    const fleet::AppContext* app_scope) {
  const std::uint32_t max_n = std::max(current_n, target_n);
  const bool resizing = current_n != target_n;
  const bool scoped = app_scope != nullptr;
  LAR_CHECK(!scoped || (fleet_ != nullptr && !resizing));

  // 1) + 2) GET_METRICS -> SEND_METRICS, from the POIs live *before* the
  // wave (a scale-out's fresh POIs have no statistics yet; a scale-in's
  // retirees still hold theirs).  A tenant-scoped round still gathers from
  // EVERYONE: pair statistics are cumulative since each tenant's own last
  // table install, so the full gather is the complete joint picture the
  // shared-capacity plan needs — and a SEND_METRICS reply snapshots without
  // resetting, leaving other tenants' statistics to their own waves.
  std::size_t gather_members = 0;
  for (auto& poi : pois_) {
    if (poi->server >= current_n) continue;
    poi->inbox.push_unbounded(Message{GetMetricsMsg{}});
    ++gather_members;
  }
  std::unordered_map<std::uint32_t, std::vector<std::vector<core::PairCount>>>
      per_edge;
  chaos::Injector* const inj = options_.injector;
  ++gather_epoch_;
  // Reports the previous epoch's gather deadline missed arrive now, one
  // epoch stale; merging them is safe because merge_pair_counts is
  // order-independent over the snapshot *set*.
  const std::uint64_t stale_merged = delayed_stats_.size();
  if (stale_merged > 0) {
    stats_reports_stale_.fetch_add(stale_merged, std::memory_order_relaxed);
    if (inj != nullptr) {
      inj->recovery("stale_merge", "manager", stale_merged, /*bytes=*/0,
                    gather_epoch_);
    }
    for (auto& [eid, counts] : delayed_stats_) {
      per_edge[eid].push_back(std::move(counts));
    }
    delayed_stats_.clear();
  }
  std::uint64_t lost_reports = 0;
  for (std::size_t i = 0; i < gather_members; ++i) {
    auto reply = manager_inbox_.pop();
    LAR_CHECK(reply.has_value());
    auto* metrics = std::get_if<MetricsReply>(&*reply);
    LAR_CHECK(metrics != nullptr);
    if (inj != nullptr) {
      // The manager's gather "timeout" is logical: every envelope is still
      // popped (liveness needs no wall-clock timer), but a faulted report
      // either never makes it into this epoch's statistics (loss: the plan
      // is computed from what arrived in time) or is stashed for the next
      // epoch (delay: merged stale).  Decisions are keyed by the sender's
      // flat index and advance once per epoch, so they are reproducible
      // regardless of reply arrival order.
      const std::size_t sender =
          poi_index_[metrics->from.op][metrics->from.index];
      if (inj->fire(chaos::FaultSite::kStatsLoss, sender, gather_epoch_)) {
        ++lost_reports;
        stats_reports_lost_.fetch_add(1, std::memory_order_relaxed);
        inj->recovery("partial_gather",
                      obs::poi_entity(metrics->from.op, metrics->from.index),
                      /*count=*/1, /*bytes=*/0, gather_epoch_);
        continue;
      }
      if (inj->fire(chaos::FaultSite::kStatsDelay, sender, gather_epoch_)) {
        for (auto& [eid, counts] : metrics->stats) {
          delayed_stats_.emplace_back(eid, std::move(counts));
        }
        inj->recovery("stats_deferred",
                      obs::poi_entity(metrics->from.op, metrics->from.index),
                      /*count=*/1, /*bytes=*/0, gather_epoch_);
        continue;
      }
    }
    for (auto& [eid, counts] : metrics->stats) {
      per_edge[eid].push_back(std::move(counts));
    }
  }
  if (inj != nullptr && options_.registry != nullptr) {
    // Staleness of the statistics the plan is about to be computed from.
    options_.registry
        ->gauge("lar_chaos_gather_lost_reports", {},
                "SEND_METRICS reports lost in the latest gather epoch.")
        .set(static_cast<double>(lost_reports));
    options_.registry
        ->gauge("lar_chaos_gather_stale_reports", {},
                "Late reports merged one epoch stale in the latest gather.")
        .set(static_cast<double>(stale_merged));
  }
  std::vector<core::HopStats> hop_stats;
  std::uint64_t gathered_pairs = 0;
  for (auto& [eid, snapshots] : per_edge) {
    const EdgeSpec& edge = topology_.edges()[eid];
    hop_stats.push_back(core::HopStats{anchors_[edge.from].value(), edge.to,
                                       core::merge_pair_counts(snapshots)});
    gathered_pairs += hop_stats.back().pairs.size();
  }

  // compute_reconfiguration.  Once elastic, ALL plans flow through
  // plan_for — a fixed-fleet compute_plan would drop the fallback domain
  // and silently re-split unknown keys over the full modulus with no
  // migration to match.  Tenant-scoped rounds plan jointly over every
  // tenant's statistics and deploy one tenant's slice (lar::fleet).
  core::ReconfigurationPlan plan =
      scoped ? fleet_->plan_app(app_scope->id, hop_stats,
                                elastic_ ? target_n : 0)
             : (elastic_ ? manager.plan_for(hop_stats, target_n)
                         : manager.compute_plan(hop_stats));
  // One wave = one control epoch, the engine's logical span clock (the
  // runtime has no virtual time; wall-clock is banned).  The span stays
  // open past run_protocol so the caller's post-wave work — drain fence,
  // auto-checkpoint — nests under it; callers close it via end_wave_span().
  ++control_epoch_;
  if (options_.trace != nullptr) {
    wave_span_ = options_.trace->begin_span(
        plan.version, obs::Phase::kWave, "wave", /*count=*/gather_members,
        /*bytes=*/0, static_cast<double>(control_epoch_));
  }
  if (options_.trace != nullptr) {
    options_.trace->record(plan.version, obs::Phase::kGather, "manager",
                           /*count=*/gather_members,
                           /*bytes=*/gathered_pairs * sizeof(core::PairCount));
    options_.trace->record(plan.version, obs::Phase::kCompute, "plan",
                           /*count=*/plan.graph_vertices,
                           /*bytes=*/plan.graph_edges);
  }
  if (plan.tables.empty() && !resizing) {
    if (scoped) {
      fleet_->mark_deployed(app_scope->id, plan);
    } else {
      manager.mark_deployed(plan);
    }
    end_wave_span();  // empty wave: nothing staged, close it here
    return plan;  // nothing observed yet; stay on current routing
  }

  // Advisor gate (Section 6 future work): a steady-state plan whose
  // predicted benefit does not cover its migration cost is not pushed.
  // Resize waves are never gated — the controller already decided — and
  // neither are tenant-scoped ones (the engine-wide measured locality the
  // advisor scores against is meaningless for one tenant's slice).
  if (!scoped && manager.options().advise_deploys && !resizing) {
    const auto [locality, balance] = measured_locality_balance();
    const core::AdvisorVerdict verdict =
        manager.advise(plan, locality, balance);
    if (!verdict.deploy) {
      LAR_INFO << "engine: advisor vetoed plan v" << plan.version
               << " (benefit " << verdict.predicted_benefit << " < cost "
               << verdict.migration_cost << ")";
      end_wave_span();  // vetoed wave: nothing deployed, close it here
      return plan;  // computed, observable, NOT deployed
    }
  }

  // Wave membership: everything live before or after the resize.  The spec
  // travels inside every ReconfMsg of the round so the bookkeeping needs no
  // shared state; `actives` stays empty on fixed-fleet rounds (no activity
  // change to apply).
  auto wave = std::make_shared<ElasticWave>();
  wave->target_servers = target_n;
  wave->members.resize(topology_.num_operators());
  for (OperatorId op = 0; op < topology_.num_operators(); ++op) {
    // Stagger rule (lar::fleet): a tenant-scoped wave's member lists are
    // empty outside the tenant's operator range.  Tenant DAGs share no
    // edges, so propagate_expected derived from these lists keeps the wave
    // entirely inside the tenant — no other tenant's POI ever enters
    // reconfiguration mode, stalls on a drain, or stashes a tuple.
    if (scoped && !app_scope->contains(op)) continue;
    wave->members[op] = placement_.active_instances(op, max_n);
  }
  if (resizing) {
    wave->actives.resize(topology_.num_operators());
    for (OperatorId op = 0; op < topology_.num_operators(); ++op) {
      wave->actives[op] = placement_.active_instances(op, target_n);
    }
  }
  const std::shared_ptr<const ElasticWave> shared_wave = std::move(wave);

  // 3) + 4) SEND_RECONF -> ACK_RECONF (wave members only).
  std::size_t wave_size = 0;
  for (auto& poi : pois_) {
    if (poi->server >= max_n) continue;
    if (scoped && !app_scope->contains(poi->op)) continue;
    ++wave_size;
    ReconfMsg msg;
    msg.version = plan.version;
    msg.wave = shared_wave;
    for (const std::uint32_t eid : topology_.out_edges(poi->op)) {
      const EdgeSpec& edge = topology_.edges()[eid];
      if (edge.grouping != GroupingType::kFields) continue;
      if (auto it = plan.tables.find(edge.to); it != plan.tables.end()) {
        msg.tables.emplace(edge.to, it->second);
      }
    }
    if (elastic_) {
      // The POI's own post-commit table arms the residual-drain scan.  Every
      // elastic wave needs it, not just resizes: the manager's "before"
      // model (its last deployed tables, or plain hash before any deploy)
      // can disagree with where a restricted fleet actually put a key, and
      // the drain is what ships such strays to their post-commit owner.
      if (auto it = plan.tables.find(poi->op); it != plan.tables.end()) {
        msg.own_table = it->second;
      }
    }
    if (auto it = plan.moves.find(poi->op); it != plan.moves.end()) {
      for (const core::KeyMove& mv : it->second) {
        // A move whose nominal sender was dormant before this wave has no
        // one to ship it — the before-model mismatch again.  The key's real
        // state (if any) sits on a live instance and reaches `to` through
        // the residual drain instead; awaiting a MIGRATE that can never be
        // sent would hang the wave.
        if (elastic_ &&
            placement_.server_of(poi->op, mv.from) >= current_n) {
          continue;
        }
        if (mv.from == poi->index) msg.send.emplace_back(mv.key, mv.to);
        if (mv.to == poi->index) msg.receive.emplace_back(mv.key, mv.from);
      }
    }
    poi->inbox.push_unbounded(Message{std::move(msg)});
  }
  for (std::size_t i = 0; i < wave_size; ++i) {
    auto reply = manager_inbox_.pop();
    LAR_CHECK(reply.has_value());
    auto* ack = std::get_if<AckReconfReply>(&*reply);
    LAR_CHECK(ack != nullptr && ack->version == plan.version);
  }
  if (options_.trace != nullptr) {
    std::uint64_t table_entries = 0;
    for (const auto& [op, table] : plan.tables) table_entries += table->size();
    options_.trace->record(
        plan.version, obs::Phase::kStage, "manager",
        /*count=*/wave_size,
        /*bytes=*/table_entries * (sizeof(Key) + sizeof(InstanceIndex)));
  }

  // 5) PROPAGATE into the participating sources; the wave does the rest.
  for (const OperatorId src : sources_) {
    for (const InstanceIndex i : shared_wave->members[src]) {
      poi_at(src, i).inbox.push_unbounded(
          Message{PropagateMsg{plan.version}});
    }
  }
  for (std::size_t i = 0; i < wave_size; ++i) {
    auto reply = manager_inbox_.pop();
    LAR_CHECK(reply.has_value());
    auto* done = std::get_if<ReconfDoneReply>(&*reply);
    LAR_CHECK(done != nullptr && done->version == plan.version);
  }

  if (scoped) {
    fleet_->mark_deployed(app_scope->id, plan);
  } else {
    manager.mark_deployed(plan);
  }
  last_plan_version_ = plan.version;
  if (ckpt_enabled_) note_deployed_plan(plan, target_n);
  LAR_INFO << "engine: reconfiguration v" << plan.version << " deployed ("
           << plan.total_moves() << " key states migrated)";
  return plan;
}

void Engine::note_deployed_plan(const core::ReconfigurationPlan& plan,
                                std::uint32_t target_servers) {
  for (const auto& [op, table] : plan.tables) {
    deployed_tables_.insert_or_assign(op, table);
  }
  // The store persists the *union* — a tenant-scoped wave deploys one
  // tenant's slice, but a cold restart must recover every tenant's tables.
  // Cursors stay empty: the epoch files carry the per-POI cursor truth.
  core::ReconfigurationPlan persisted;
  persisted.version = plan.version;
  persisted.active_servers = target_servers;
  persisted.tables = deployed_tables_;
  options_.checkpoint->store().note_plan(persisted);
}

// ---------------------------------------------------------------------------
// lar::elastic: online scale-out / scale-in.
// ---------------------------------------------------------------------------

void Engine::require_elastic_capable() const {
  // The epoch-consistency story needs the fallback domain to ride inside
  // routing tables, and activity changes only know how to restrict table
  // and shuffle routers.
  LAR_CHECK(options_.fields_mode == FieldsRouting::kTable);
  for (const EdgeSpec& edge : topology_.edges()) {
    LAR_CHECK(edge.grouping == GroupingType::kFields ||
              edge.grouping == GroupingType::kShuffle);
  }
}

void Engine::set_inject_actives(std::uint32_t num_active) {
  std::lock_guard<std::mutex> lock(source_mutex_);
  source_actives_.resize(sources_.size());
  for (std::size_t s = 0; s < sources_.size(); ++s) {
    source_actives_[s] = placement_.active_instances(sources_[s], num_active);
  }
}

void Engine::drain_fence() {
  std::uint64_t v = drains_in_flight_.load(std::memory_order_acquire);
  while (v != 0) {
    drains_in_flight_.wait(v, std::memory_order_acquire);
    v = drains_in_flight_.load(std::memory_order_acquire);
  }
}

std::pair<double, double> Engine::measured_locality_balance() const {
  std::uint64_t local = 0;
  std::uint64_t total = 0;
  for (const auto& c : edge_counters_) {
    const std::uint64_t l = c.local.load(std::memory_order_relaxed);
    const std::uint64_t r = c.remote.load(std::memory_order_relaxed);
    local += l;
    total += l + r;
  }
  const double locality =
      total == 0 ? 0.0
                 : static_cast<double>(local) / static_cast<double>(total);

  // Worst per-operator processed-load imbalance (max/avg) over live
  // non-source operators — the same max/avg shape the plan's own imbalance
  // diagnostic uses.
  double balance = 1.0;
  for (OperatorId op = 0; op < topology_.num_operators(); ++op) {
    if (topology_.op(op).is_source) continue;
    std::uint64_t sum = 0;
    std::uint64_t peak = 0;
    std::uint32_t live = 0;
    for (const std::uint32_t parallelism = topology_.op(op).parallelism;
         live < parallelism; ++live) {
      const std::uint64_t p = pois_[poi_index_[op][live]]->processed.load(
          std::memory_order_relaxed);
      sum += p;
      peak = std::max(peak, p);
    }
    if (sum == 0 || live == 0) continue;
    const double avg = static_cast<double>(sum) / static_cast<double>(live);
    balance = std::max(balance, static_cast<double>(peak) / avg);
  }
  return {locality, balance};
}

core::ReconfigurationPlan Engine::add_servers(core::Manager& manager,
                                              std::uint32_t target_servers) {
  LAR_CHECK(started_ && !shut_down_);
  LAR_CHECK(target_servers > active_servers_ &&
            target_servers <= placement_.num_servers());
  require_elastic_capable();
  elastic_ = true;
  const std::uint32_t current = active_servers_;

  // Spin up the joining fleet first: the wave stages tables on it and the
  // plan may migrate state onto it.  No data can reach these POIs yet —
  // every live router still carries the old epoch's tables/restrictions.
  for (auto& poi : pois_) {
    if (poi->server < current || poi->server >= target_servers) continue;
    LAR_CHECK(!poi->active);
    if (poi->thread.joinable()) poi->thread.join();  // a prior retirement
    poi->active = true;
    poi->thread = std::thread([this, p = poi.get()] { poi_loop(*p); });
  }

  core::ReconfigurationPlan plan =
      run_protocol(manager, current, target_servers);

  // Only after the wave committed may the injector target new source
  // instances: flipping earlier would route through the stale constructor
  // routers into the pre-switch epoch.
  set_inject_actives(target_servers);
  drain_fence();
  active_servers_ = target_servers;
  scale_out_events_.fetch_add(1, std::memory_order_relaxed);
  if (options_.trace != nullptr) {
    options_.trace->record(plan.version, obs::Phase::kScaleOut, "manager",
                           /*count=*/target_servers);
  }
  LAR_INFO << "engine: scaled out " << current << " -> " << target_servers
           << " servers (plan v" << plan.version << ")";
  // Same post-wave rule as reconfigure(): the grown fleet re-checkpoints so
  // a crash never restores across the resize.
  if (ckpt_enabled_) checkpoint();
  end_wave_span();
  return plan;
}

core::ReconfigurationPlan Engine::retire_servers(core::Manager& manager,
                                                 std::uint32_t target_servers) {
  LAR_CHECK(started_ && !shut_down_);
  LAR_CHECK(target_servers >= 1 && target_servers < active_servers_);
  require_elastic_capable();
  elastic_ = true;
  const std::uint32_t current = active_servers_;

  // Stop feeding the retiring sources first; tuples already queued on them
  // are processed before their PROPAGATE by per-link FIFO.
  set_inject_actives(target_servers);

  // Migrate-then-stop: the retirees are full wave members — they hand off
  // every owned key (planned moves plus the residual drain for keys the
  // manager never observed) before anything is stopped.
  core::ReconfigurationPlan plan =
      run_protocol(manager, current, target_servers);

  // The fence also covers chaos-delayed drain payloads: they re-queue on
  // *surviving* inboxes (drain targets are post-commit actives), so waiting
  // here guarantees none is stranded behind the shutdowns below.
  drain_fence();

  for (auto& poi : pois_) {
    if (poi->server < target_servers || poi->server >= current) continue;
    poi->inbox.push_unbounded(Message{ShutdownMsg{}});
  }
  for (auto& poi : pois_) {
    if (poi->server < target_servers || poi->server >= current) continue;
    if (poi->thread.joinable()) poi->thread.join();
    poi->active = false;
    if (options_.trace != nullptr) {
      options_.trace->record(plan.version, obs::Phase::kRetire,
                             obs::poi_entity(poi->op, poi->index),
                             /*count=*/1);
    }
  }
  active_servers_ = target_servers;
  scale_in_events_.fetch_add(1, std::memory_order_relaxed);
  if (options_.trace != nullptr) {
    options_.trace->record(plan.version, obs::Phase::kScaleIn, "manager",
                           /*count=*/target_servers);
  }
  LAR_INFO << "engine: retired to " << target_servers << " servers (plan v"
           << plan.version << ")";
  // Same post-wave rule as reconfigure(); this also re-anchors the replay
  // horizon so no recovery ever needs a replay from a retired sender.
  if (ckpt_enabled_) checkpoint();
  end_wave_span();
  return plan;
}

// ---------------------------------------------------------------------------
// lar::ckpt: aligned checkpoints + crash recovery.
// ---------------------------------------------------------------------------

void Engine::drop_data_in_flight(std::size_t n) {
  if (n == 0) return;
  if (in_flight_.fetch_sub(n, std::memory_order_acq_rel) == n) {
    in_flight_.notify_all();
  }
}

std::uint64_t Engine::checkpoint() {
  LAR_CHECK(started_ && !shut_down_);
  ckpt::CheckpointCoordinator* const coord = options_.checkpoint;
  LAR_CHECK(coord != nullptr);

  // Barrier membership: the live fleet.  Rides inside every barrier so each
  // POI derives its alignment count and forwarding fan-out from one
  // consistent snapshot, exactly like ElasticWave does for the
  // reconfiguration wave.
  auto members = std::make_shared<std::vector<std::vector<InstanceIndex>>>();
  members->resize(topology_.num_operators());
  std::size_t live = 0;
  for (OperatorId op = 0; op < topology_.num_operators(); ++op) {
    (*members)[op] = placement_.active_instances(op, active_servers_);
    live += (*members)[op].size();
  }

  const std::uint64_t epoch =
      coord->begin_epoch(active_servers_, last_plan_version_);
  // Incremental stores open chained epochs: delta-capable POIs then
  // snapshot only their dirtied keys.  The answer rides in the barrier.
  const bool full_epoch = !coord->store().epoch_is_delta(epoch);
  // One checkpoint = one control epoch.  The span nests under an open wave
  // span (the auto-checkpoint case) and encloses the coordinator's own
  // kCheckpoint commit record when both share the recorder.
  ++control_epoch_;
  const std::uint64_t ckpt_span =
      options_.trace != nullptr
          ? options_.trace->begin_span(last_plan_version_,
                                       obs::Phase::kCheckpoint, "barrier",
                                       /*count=*/epoch, /*bytes=*/0,
                                       static_cast<double>(control_epoch_))
          : 0;

  // Inject the barrier into every live source under the source mutex, so it
  // sits FIFO-after exactly the tuples inject() logged before it.
  {
    std::lock_guard<std::mutex> lock(source_mutex_);
    for (std::size_t s = 0; s < sources_.size(); ++s) {
      for (const InstanceIndex i : source_actives_[s]) {
        Poi& p = poi_at(sources_[s], i);
        // FIFO-after the injector's lane: the barrier sits behind exactly
        // the tuples inject() logged before it.
        p.inbox.push_unbounded_after(
            inject_lane_[p.flat],
            Message{BarrierMsg{epoch, BarrierMsg::kCoordinator, members,
                               full_epoch}});
      }
    }
  }

  // One ack per live POI: its barrier aligned, its slice is in the store.
  for (std::size_t i = 0; i < live; ++i) {
    auto reply = manager_inbox_.pop();
    LAR_CHECK(reply.has_value());
    auto* ack = std::get_if<CheckpointAckReply>(&*reply);
    LAR_CHECK(ack != nullptr && ack->epoch == epoch);
  }
  coord->committed(epoch);
  checkpoints_committed_.fetch_add(1, std::memory_order_relaxed);
  // Header + source slices only — copying the whole epoch under the store
  // mutex would pause every concurrent reader for the full state volume.
  // `captured` is what this epoch's barrier round actually wrote (the raw
  // delta volume on incremental epochs, the fold notwithstanding).
  const ckpt::CheckpointMeta meta = coord->store().last_committed_meta();
  ckpt_states_captured_.fetch_add(meta.captured_states,
                                  std::memory_order_relaxed);
  ckpt_state_bytes_.fetch_add(meta.captured_state_bytes,
                              std::memory_order_relaxed);

  // Commit notification: every live POI truncates its replay buffers at the
  // watermarks it recorded when snapshotting this epoch.  Per-channel FIFO
  // guarantees the commit is processed before any barrier of a later epoch.
  for (auto& poi : pois_) {
    if (!poi->active) continue;
    poi->inbox.push_unbounded(Message{CheckpointCommitMsg{epoch}});
  }

  // The inject log is the coordinator's own replay buffer; truncate it at
  // each source's snapshotted coordinator-link cursor.
  {
    const std::map<std::uint32_t, ckpt::PoiCheckpoint> slices =
        coord->store().last_committed_slices(source_flats_);
    std::lock_guard<std::mutex> lock(source_mutex_);
    for (const auto& [flat, pc] : slices) {
      std::uint64_t cut = 0;
      for (const auto& [link, seq] : pc.in_cursors) {
        if (link == BarrierMsg::kCoordinator) cut = seq;
      }
      std::vector<DataMsg>& log = inject_replay_[flat];
      const auto keep =
          std::find_if(log.begin(), log.end(),
                       [cut](const DataMsg& m) { return m.seq > cut; });
      log.erase(log.begin(), keep);
    }
  }
  if (ckpt_span != 0 && options_.trace != nullptr) {
    options_.trace->end_span(ckpt_span, static_cast<double>(control_epoch_));
  }
  // The aligned cut covers every tenant (barriers flow through all sources).
  if (fleet_ != nullptr) fleet_->note_checkpoint(epoch);
  return epoch;
}

void Engine::handle_barrier(Poi& poi, const BarrierMsg& msg) {
  if (poi.ckpt_epoch == 0) {
    // First barrier of the epoch: pin the membership and how many barriers
    // alignment needs (mirrors propagate_expected, but derived from the
    // barrier's own member list so dormant instances are never waited on).
    poi.ckpt_epoch = msg.epoch;
    poi.barrier_members = msg.members;
    poi.barriers_seen = 0;
    if (topology_.op(poi.op).is_source) {
      poi.barriers_expected = 1;  // the coordinator's injection
    } else {
      std::uint32_t expected = 0;
      for (const std::uint32_t eid : topology_.in_edges(poi.op)) {
        expected += static_cast<std::uint32_t>(
            (*msg.members)[topology_.edges()[eid].from].size());
      }
      poi.barriers_expected = expected;
    }
  }
  LAR_CHECK(poi.ckpt_epoch == msg.epoch);
  ++poi.barriers_seen;
  // Block the link: its post-barrier data waits out the alignment.  A
  // producer with several edges here sends its barriers back to back, so
  // blocking at the first one holds no pre-barrier data.
  poi.blocked_links.insert(msg.link);
  if (poi.barriers_seen < poi.barriers_expected) return;

  take_snapshot(poi, msg);

  // Forward the barrier on every out edge *before* touching the stashes, so
  // the held tuples' downstream effects land strictly after the successors'
  // own alignment points (per-producer FIFO).
  for (const std::uint32_t eid : topology_.out_edges(poi.op)) {
    const EdgeSpec& edge = topology_.edges()[eid];
    for (const InstanceIndex i : (*poi.barrier_members)[edge.to]) {
      Poi& target = poi_at(edge.to, i);
      // FIFO-after this POI's lane: the forwarded barrier publishes any
      // staged pre-barrier batch ahead of itself.
      target.inbox.push_unbounded_after(
          *poi.lane_to.find(target.flat),
          Message{BarrierMsg{msg.epoch, static_cast<std::uint32_t>(poi.flat),
                             poi.barrier_members, msg.full}});
    }
  }
  manager_inbox_.push_unbounded(ManagerReply{
      CheckpointAckReply{InstanceId{poi.op, poi.index}, msg.epoch}});

  // Release: alignment is over, the held suffixes resume in link order.
  // They already passed dedup when stashed, so they go straight to delivery
  // (the flush_delayed pattern).
  poi.ckpt_epoch = 0;
  poi.barriers_seen = 0;
  poi.barriers_expected = 0;
  poi.barrier_members.reset();
  poi.blocked_links.clear();
  std::vector<std::uint32_t> links;
  links.reserve(poi.align_stash.size());
  for (const auto& [link, held] : poi.align_stash) links.push_back(link);
  std::sort(links.begin(), links.end());
  for (const std::uint32_t link : links) {
    std::vector<DataMsg> held = std::move(poi.align_stash[link]);
    for (DataMsg& dm : held) deliver_data(poi, std::move(dm));
  }
  poi.align_stash.clear();
}

void Engine::take_snapshot(Poi& poi, const BarrierMsg& msg) {
  ckpt::PoiCheckpoint pc;
  pc.op = poi.op;
  pc.index = poi.index;
  pc.flat = static_cast<std::uint32_t>(poi.flat);
  pc.table_version = poi.applied_version;
  // Reuse the migration codec: export without dropping.  owned_keys() is
  // ascending, so the slice is canonical for the store's golden byte runs.
  // On a delta epoch a delta-capable POI exports only the keys dirtied
  // since its previous snapshot — filtering the ascending owned list keeps
  // the slice canonical; the dirty set resets at EVERY snapshot (full
  // slices re-anchor the "since last snapshot" meaning too).
  pc.delta = !msg.full && poi.delta_capable;
  const std::vector<Key> keys = poi.logic->owned_keys();
  pc.states.reserve(keys.size());
  for (const Key key : keys) {
    if (pc.delta && !poi.dirty.contains(key)) continue;
    pc.states.emplace_back(key, poi.logic->export_key_state(key));
  }
  if (poi.delta_capable) poi.dirty.clear();
  for (const auto& item : poi.last_seq.sorted_items()) {
    // The dedup cursor advances when a tuple is *stashed*, not when it is
    // applied — so a link blocked mid-alignment may have post-barrier
    // tuples inside last_seq whose effects are not in this snapshot.  The
    // cut cursor is the last APPLIED sequence number: one before the first
    // held tuple (per-link seqs are consecutive).
    std::uint64_t cursor = item.value;
    if (const auto held = poi.align_stash.find(item.key);
        held != poi.align_stash.end() && !held->second.empty()) {
      cursor = held->second.front().seq - 1;
    }
    pc.in_cursors.emplace_back(item.key, cursor);
  }
  poi.snap_out.clear();
  for (const auto& item : poi.out_seq.sorted_items()) {
    pc.out_cursors.emplace_back(item.key, item.value);
    poi.snap_out[item.key] = item.value;
  }
  options_.checkpoint->store().add(msg.epoch, std::move(pc));
}

void Engine::handle_commit(Poi& poi, const CheckpointCommitMsg& /*msg*/) {
  // Truncate each replay buffer at the watermark recorded by this epoch's
  // snapshot.  Buffers are seq-ascending per target, so the cut is a prefix
  // erase; entries appended since the snapshot survive.
  for (auto& [target, buf] : poi.replay_out) {
    std::uint64_t cut = 0;
    if (auto it = poi.snap_out.find(target); it != poi.snap_out.end()) {
      cut = it->second;
    }
    const auto keep =
        std::find_if(buf.begin(), buf.end(),
                     [cut](const DataMsg& m) { return m.seq > cut; });
    buf.erase(buf.begin(), keep);
  }
}

void Engine::handle_replay_request(Poi& poi, const ReplayRequestMsg& msg) {
  Poi& target = *pois_[msg.target];
  const std::uint32_t lane = *poi.lane_to.find(msg.target);
  std::uint64_t replayed = 0;
  if (auto it = poi.replay_out.find(msg.target); it != poi.replay_out.end()) {
    for (const DataMsg& dm : it->second) {
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      target.inbox.lane_push(lane, Message{DataMsg{dm}});
      ++replayed;
    }
  }
  tuples_replayed_.fetch_add(replayed, std::memory_order_relaxed);
  // The end marker travels the same lane, so it arrives after both the
  // replay above and every pre-request live send (including any batch still
  // staged — push_unbounded_after publishes it first).
  target.inbox.push_unbounded_after(
      lane, Message{ReplayEndMsg{static_cast<std::uint32_t>(poi.flat)}});
}

void Engine::handle_replay_end(Poi& poi, const ReplayEndMsg& msg) {
  LAR_CHECK(poi.replay_pending.erase(msg.link) == 1);
  std::vector<DataMsg> held;
  if (auto it = poi.replay_stash.find(msg.link); it != poi.replay_stash.end()) {
    held = std::move(it->second);
    poi.replay_stash.erase(it);
  }
  // The union of replayed copies and live stragglers, in whatever arrival
  // order the crash produced: sort by sequence number and apply each effect
  // exactly once past the restored cursor.
  std::sort(held.begin(), held.end(),
            [](const DataMsg& a, const DataMsg& b) { return a.seq < b.seq; });
  std::uint64_t& seen = poi.last_seq[msg.link];
  for (DataMsg& dm : held) {
    if (dm.seq <= seen) {
      drop_data_in_flight(1);
      continue;
    }
    seen = dm.seq;
    deliver_data(poi, std::move(dm));
  }
  if (poi.replay_pending.empty()) {
    manager_inbox_.push_unbounded(
        ManagerReply{RecoverDoneReply{InstanceId{poi.op, poi.index}}});
  }
}

void Engine::crash_and_recover(std::uint32_t server) {
  LAR_CHECK(started_ && !shut_down_);
  ckpt::CheckpointCoordinator* const coord = options_.checkpoint;
  LAR_CHECK(coord != nullptr);
  LAR_CHECK(server < active_servers_);

  // Recovery needs a committed checkpoint consistent with the current
  // routing epoch and fleet — guaranteed by the automatic checkpoint after
  // every wave: restoring across a wave would resurrect migrated keys under
  // their old owners (DESIGN.md §11).  The header is enough to validate;
  // the state itself is pulled below, filtered to the actual victims.
  const ckpt::CheckpointMeta meta = coord->store().last_committed_meta();
  LAR_CHECK(meta.committed && meta.epoch > 0);
  LAR_CHECK(meta.plan_version == last_plan_version_);
  LAR_CHECK(meta.active_servers == active_servers_);

  crashes_.fetch_add(1, std::memory_order_relaxed);
  // One crash+recovery = one control epoch; the coordinator's kCrash
  // recovery record and every replay-side leaf nest under this span.
  ++control_epoch_;
  const std::uint64_t crash_span =
      options_.trace != nullptr
          ? options_.trace->begin_span(last_plan_version_, obs::Phase::kCrash,
                                       "server" + std::to_string(server),
                                       /*count=*/meta.epoch, /*bytes=*/0,
                                       static_cast<double>(control_epoch_))
          : 0;
  LAR_INFO << "engine: crashing server " << server
           << " (recovering from checkpoint epoch " << meta.epoch << ")";

  // 1) Roll-back region: the crashed server's POIs plus the downstream
  // closure of their operators.  A recovered multi-input POI merges its
  // replayed links in a fresh interleaving, so its regenerated emissions
  // carry a different (sequence -> tuple) mapping than the lost originals —
  // exactly-once only holds against receivers whose state and cursors
  // rolled back to the same cut.  Receivers no rolled-back producer feeds
  // (in particular the surviving sources) keep running, and their replay
  // buffers — plus the coordinator's inject log — re-derive the region.
  std::vector<char> diverged(topology_.num_operators(), 0);
  std::vector<char> roll_all(topology_.num_operators(), 0);
  for (OperatorId op = 0; op < topology_.num_operators(); ++op) {
    for (const InstanceIndex i :
         placement_.active_instances(op, active_servers_)) {
      if (poi_at(op, i).server == server) {
        diverged[op] = 1;
        break;
      }
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const EdgeSpec& edge : topology_.edges()) {
      if (diverged[edge.from] && !roll_all[edge.to]) {
        roll_all[edge.to] = 1;
        diverged[edge.to] = 1;
        changed = true;
      }
    }
  }
  std::vector<Poi*> victims;
  std::vector<char> rolled(pois_.size(), 0);
  for (auto& poi : pois_) {
    if (!poi->active) continue;
    if (poi->server == server || roll_all[poi->op]) {
      victims.push_back(poi.get());
      rolled[poi->flat] = 1;
    }
  }
  LAR_CHECK(!victims.empty());
  // Only the victims' slices leave the store (the filtered accessor): the
  // rest of the fleet keeps its live state, so copying it would be pure
  // mutex-held waste — on a large fleet, most of the epoch.
  std::vector<std::uint32_t> victim_flats;
  victim_flats.reserve(victims.size());
  for (const Poi* p : victims) {
    victim_flats.push_back(static_cast<std::uint32_t>(p->flat));
  }
  std::sort(victim_flats.begin(), victim_flats.end());
  const std::map<std::uint32_t, ckpt::PoiCheckpoint> snap_slices =
      coord->store().last_committed_slices(victim_flats);
  // 2) Kill.  The sentinel makes each POI thread exit where it stands:
  // everything queued behind it stays unprocessed, and the thread's stashes
  // and operator state lose their owner.  A victim can be parked mid-send on
  // a bounded push into another victim's full inbox, though, and would then
  // never pop its own sentinel — so until every victim has signalled exit we
  // keep sweeping the victims' inboxes (re-arming the sentinel a sweep may
  // have swallowed) to let blocked producers run on to their own death.
  std::uint64_t lost = 0;
  for (Poi* p : victims) {
    p->crash_exited.store(false, std::memory_order_relaxed);
    p->inbox.push_unbounded(Message{CrashMsg{}});
  }
  for (bool all_dead = false; !all_dead;) {
    all_dead = true;
    for (Poi* p : victims) {
      // Sweep every victim inbox — including the already-exited ones: a
      // still-live victim may be parked on a push into a dead sibling's
      // refilled queue, and only a fresh drain can release it.
      const bool alive = !p->crash_exited.load(std::memory_order_acquire);
      if (alive) all_dead = false;
      std::size_t dropped = 0;
      for (auto& m : p->inbox.drain()) {
        if (std::holds_alternative<DataMsg>(m)) ++dropped;
      }
      if (alive) p->inbox.push_unbounded(Message{CrashMsg{}});
      if (dropped != 0) {
        drop_data_in_flight(dropped);
        lost += dropped;
      }
    }
    if (!all_dead) std::this_thread::yield();
  }
  for (Poi* p : victims) {
    if (p->thread.joinable()) p->thread.join();
  }
  // Reap each victim's staged-but-unpublished lane batches now that its
  // thread is joined (lane_abort_staged's contract).  Every staged item is
  // a DataMsg counted in in_flight_, and every victim's successors are
  // victims themselves (the rollback region is downstream-closed), so
  // nothing outside the region loses data.  Surviving producers' staged
  // batches toward victims publish later and are absorbed by the replay
  // stash's sequence sort + dedup.
  for (Poi* p : victims) {
    std::size_t aborted = 0;
    for (const Poi::OutLane& ol : p->flush_lanes) {
      aborted += ol.target->inbox.lane_abort_staged(ol.lane);
    }
    if (aborted != 0) {
      drop_data_in_flight(aborted);
      lost += aborted;
    }
  }
  std::uint64_t restored = 0;
  std::uint64_t restored_bytes = 0;
  std::vector<std::vector<std::uint32_t>> victim_links(victims.size());

  for (std::size_t v = 0; v < victims.size(); ++v) {
    Poi* const p = victims[v];
    // 3) Discard the dead inbox and every stash: all of it is covered by
    // the checkpoint + replay, and applying any of it now would double an
    // effect the replay re-delivers.
    std::size_t dropped = 0;
    for (auto& m : p->inbox.drain()) {
      if (std::holds_alternative<DataMsg>(m)) ++dropped;
    }
    for (const auto& [link, held] : p->delayed) dropped += held.size();
    for (const auto& [link, held] : p->align_stash) dropped += held.size();
    for (const auto& [link, held] : p->replay_stash) dropped += held.size();
    for (const auto& [key, held] : p->pending) dropped += held.size();
    p->delayed.clear();
    p->align_stash.clear();
    p->replay_stash.clear();
    p->pending.clear();
    p->pending_count = 0;
    p->spilled.clear();
    p->awaiting.clear();
    p->staged.reset();
    p->ckpt_epoch = 0;
    p->barriers_seen = 0;
    p->barriers_expected = 0;
    p->barrier_members.reset();
    p->blocked_links.clear();
    p->replay_pending.clear();
    p->replay_out.clear();
    p->snap_out.clear();
    p->last_seq.clear();
    p->out_seq.clear();
    // The pre-crash dirty set is scheduling-dependent (how far the thread
    // ran past the cut before dying); replay deterministically re-marks
    // exactly the post-cut effects, so recovery starts it clean.
    p->dirty.clear();
    drop_data_in_flight(dropped);
    lost += dropped;

    // 4) Restore: a fresh operator object, the checkpointed key states and
    // both cursor sets.  The restored out cursors make regenerated
    // emissions reuse their original sequence numbers, so downstream dedup
    // absorbs the overlap; replay_out refills as reprocessing re-sends, so
    // the buffer stays complete for a later crash of a successor.
    p->logic = factory_(p->op, p->index);
    LAR_CHECK(p->logic != nullptr);
    const auto pc_it = snap_slices.find(static_cast<std::uint32_t>(p->flat));
    LAR_CHECK(pc_it != snap_slices.end());
    const ckpt::PoiCheckpoint& pc = pc_it->second;
    for (const auto& [key, state] : pc.states) {
      p->logic->import_key_state(key, state);
      ++restored;
      restored_bytes += state.size();
    }
    for (const auto& [link, seq] : pc.in_cursors) p->last_seq[link] = seq;
    for (const auto& [tgt, seq] : pc.out_cursors) p->out_seq[tgt] = seq;

    // 5) Arm replay on every producer link *outside* the region (a
    // rolled-back producer instead regenerates in order from its own
    // restored cursors, which the restored last_seq accepts seamlessly).
    // Sources replay from the coordinator's inject log.
    for (const std::uint32_t eid : topology_.in_edges(p->op)) {
      const OperatorId pred = topology_.edges()[eid].from;
      for (const InstanceIndex i :
           placement_.active_instances(pred, active_servers_)) {
        const Poi& sender = poi_at(pred, i);
        if (rolled[sender.flat]) continue;
        p->replay_pending.insert(static_cast<std::uint32_t>(sender.flat));
      }
    }
    if (topology_.op(p->op).is_source) {
      p->replay_pending.insert(BarrierMsg::kCoordinator);
    }
    victim_links[v].assign(p->replay_pending.begin(),
                           p->replay_pending.end());
    std::sort(victim_links[v].begin(), victim_links[v].end());
    pois_recovered_.fetch_add(1, std::memory_order_relaxed);
  }
  states_restored_.fetch_add(restored, std::memory_order_relaxed);
  states_restored_bytes_.fetch_add(restored_bytes, std::memory_order_relaxed);
  tuples_lost_at_crash_.fetch_add(lost, std::memory_order_relaxed);

  // 6) Respawn.  replay_pending is in place, so anything a live sender has
  // pushed since the drain stashes until its link's replay completes.
  for (Poi* p : victims) {
    p->thread = std::thread([this, p] { poi_loop(*p); });
  }

  // 7) Trigger the replays on the senders' own threads (FIFO with their
  // live sends), and replay the inject log ourselves for crashed sources.
  const std::uint64_t replayed_before =
      tuples_replayed_.load(std::memory_order_relaxed);
  std::size_t recovering = 0;
  for (std::size_t v = 0; v < victims.size(); ++v) {
    Poi* const p = victims[v];
    if (!victim_links[v].empty()) ++recovering;
    for (const std::uint32_t link : victim_links[v]) {
      if (link == BarrierMsg::kCoordinator) continue;
      pois_[link]->inbox.push_unbounded(
          Message{ReplayRequestMsg{static_cast<std::uint32_t>(p->flat)}});
    }
    if (topology_.op(p->op).is_source) {
      // Replay the inject log on the injector's own lane, holding the
      // inject mutex for the whole run: the lane's producer domain is
      // source_mutex_, so log order, lane order and any racing inject()
      // stay mutually FIFO, and the end marker (which publishes the lane
      // first) lands after exactly the replayed prefix.  The respawned
      // source never takes this mutex, so the bounded pushes cannot
      // deadlock.
      std::lock_guard<std::mutex> lock(source_mutex_);
      const std::vector<DataMsg>& log = inject_replay_[p->flat];
      tuples_replayed_.fetch_add(log.size(), std::memory_order_relaxed);
      for (const DataMsg& dm : log) {
        in_flight_.fetch_add(1, std::memory_order_acq_rel);
        p->inbox.lane_push(inject_lane_[p->flat], Message{DataMsg{dm}});
      }
      p->inbox.push_unbounded_after(
          inject_lane_[p->flat],
          Message{ReplayEndMsg{BarrierMsg::kCoordinator}});
    }
  }

  // 8) Block until every recovering POI has drained all its replays.
  for (std::size_t i = 0; i < recovering; ++i) {
    auto reply = manager_inbox_.pop();
    LAR_CHECK(reply.has_value());
    auto* done = std::get_if<RecoverDoneReply>(&*reply);
    LAR_CHECK(done != nullptr);
  }

  coord->recovered(
      meta.epoch, server, victims.size(), restored, restored_bytes,
      tuples_replayed_.load(std::memory_order_relaxed) - replayed_before);
  if (crash_span != 0 && options_.trace != nullptr) {
    options_.trace->end_span(crash_span, static_cast<double>(control_epoch_));
  }
  LAR_INFO << "engine: server " << server << " recovered (" << victims.size()
           << " POIs, " << restored << " states restored)";
}

std::optional<std::uint32_t> Engine::maybe_crash() {
  chaos::Injector* const inj = options_.injector;
  if (inj == nullptr || !ckpt_enabled_) return std::nullopt;
  for (std::uint32_t s = 0; s < active_servers_; ++s) {
    if (inj->fire(chaos::FaultSite::kServerCrash, s)) {
      crash_and_recover(s);
      return s;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------------

EngineMetrics Engine::metrics() const {
  EngineMetrics out;
  out.tuples_injected = tuples_injected_.load(std::memory_order_relaxed);
  out.tuples_buffered = tuples_buffered_.load(std::memory_order_relaxed);
  out.states_migrated = states_migrated_.load(std::memory_order_relaxed);
  out.states_migrated_bytes =
      states_migrated_bytes_.load(std::memory_order_relaxed);
  out.tuples_spilled = tuples_spilled_.load(std::memory_order_relaxed);
  out.tuples_spilled_bytes =
      tuples_spilled_bytes_.load(std::memory_order_relaxed);
  out.data_dups_dropped = data_dups_dropped_.load(std::memory_order_relaxed);
  out.migrates_deduped = migrates_deduped_.load(std::memory_order_relaxed);
  out.migrate_redeliveries =
      migrate_redeliveries_.load(std::memory_order_relaxed);
  out.stats_reports_lost = stats_reports_lost_.load(std::memory_order_relaxed);
  out.stats_reports_stale =
      stats_reports_stale_.load(std::memory_order_relaxed);
  out.active_servers = active_servers_;
  out.states_drained = states_drained_.load(std::memory_order_relaxed);
  out.states_drained_bytes =
      states_drained_bytes_.load(std::memory_order_relaxed);
  out.scale_out_events = scale_out_events_.load(std::memory_order_relaxed);
  out.scale_in_events = scale_in_events_.load(std::memory_order_relaxed);
  out.checkpoints_committed =
      checkpoints_committed_.load(std::memory_order_relaxed);
  out.ckpt_states_captured =
      ckpt_states_captured_.load(std::memory_order_relaxed);
  out.ckpt_state_bytes = ckpt_state_bytes_.load(std::memory_order_relaxed);
  out.crashes = crashes_.load(std::memory_order_relaxed);
  out.pois_recovered = pois_recovered_.load(std::memory_order_relaxed);
  out.states_restored = states_restored_.load(std::memory_order_relaxed);
  out.states_restored_bytes =
      states_restored_bytes_.load(std::memory_order_relaxed);
  out.tuples_replayed = tuples_replayed_.load(std::memory_order_relaxed);
  out.tuples_lost_at_crash =
      tuples_lost_at_crash_.load(std::memory_order_relaxed);
  out.edges.reserve(edge_counters_.size());
  for (const auto& c : edge_counters_) {
    out.edges.push_back(EdgeMetricsSnapshot{
        c.local.load(std::memory_order_relaxed),
        c.remote.load(std::memory_order_relaxed),
        c.remote_bytes.load(std::memory_order_relaxed)});
  }
  out.instance_processed.resize(topology_.num_operators());
  for (const auto& poi : pois_) {
    auto& per_op = out.instance_processed[poi->op];
    if (per_op.size() < poi->index + 1) per_op.resize(poi->index + 1);
    per_op[poi->index] = poi->processed.load(std::memory_order_relaxed);
  }
  return out;
}

void Engine::publish_metrics() {
  obs::Registry* reg = options_.registry;
  if (reg == nullptr) return;

  // Process-wide counters ratchet forward from the engine's own atomics;
  // advance_to keeps repeated publishes monotonic.
  reg->counter("lar_tuples_injected_total", {},
               "Tuples fed to source POIs via inject().")
      .advance_to(tuples_injected_.load(std::memory_order_relaxed));
  reg->counter("lar_tuples_buffered_total", {},
               "Tuples parked behind an in-flight key-state migration.")
      .advance_to(tuples_buffered_.load(std::memory_order_relaxed));
  reg->counter("lar_states_migrated_total", {},
               "Key states shipped between sibling instances.")
      .advance_to(states_migrated_.load(std::memory_order_relaxed));
  reg->counter("lar_state_migrated_bytes_total", {},
               "Serialized size of all migrated key states.")
      .advance_to(states_migrated_bytes_.load(std::memory_order_relaxed));

  // Chaos / recovery families only exist when the feature is configured, so
  // a chaos-free engine's export stays byte-identical to the pre-chaos one.
  if (options_.injector != nullptr || options_.buffered_tuples_cap != 0) {
    reg->counter("lar_tuples_spilled_total", {},
                 "Buffered tuples serialized past the in-memory cap.")
        .advance_to(tuples_spilled_.load(std::memory_order_relaxed));
    reg->counter("lar_tuples_spilled_bytes_total", {},
                 "Serialized size of all spilled buffered tuples.")
        .advance_to(tuples_spilled_bytes_.load(std::memory_order_relaxed));
    reg->counter("lar_data_duplicates_dropped_total", {},
                 "Chaos-duplicated data tuples dropped by link dedup.")
        .advance_to(data_dups_dropped_.load(std::memory_order_relaxed));
    reg->counter("lar_migrates_deduped_total", {},
                 "Duplicate MIGRATE payloads dropped before import.")
        .advance_to(migrates_deduped_.load(std::memory_order_relaxed));
    reg->counter("lar_migrate_redeliveries_total", {},
                 "MIGRATE payloads re-queued by an injected delay.")
        .advance_to(migrate_redeliveries_.load(std::memory_order_relaxed));
    reg->counter("lar_stats_reports_lost_total", {},
                 "SEND_METRICS reports lost before plan computation.")
        .advance_to(stats_reports_lost_.load(std::memory_order_relaxed));
    reg->counter("lar_stats_reports_stale_total", {},
                 "SEND_METRICS reports merged one gather epoch late.")
        .advance_to(stats_reports_stale_.load(std::memory_order_relaxed));
  }

  // Elastic families only exist once the engine has been elastic, so a
  // fixed-fleet engine's export stays byte-identical to the pre-elastic one.
  if (elastic_) {
    reg->gauge("lar_elastic_active_servers", {},
               "Live-server count (the active prefix [0, n)).")
        .set(static_cast<double>(active_servers_));
    reg->counter("lar_elastic_states_drained_total", {},
                 "Key states shipped by the elastic residual drain.")
        .advance_to(states_drained_.load(std::memory_order_relaxed));
    reg->counter("lar_elastic_states_drained_bytes_total", {},
                 "Serialized size of all residual-drained key states.")
        .advance_to(states_drained_bytes_.load(std::memory_order_relaxed));
    reg->counter("lar_elastic_scale_events_total", {{"direction", "out"}},
                 "Completed scale-out / scale-in waves.")
        .advance_to(scale_out_events_.load(std::memory_order_relaxed));
    reg->counter("lar_elastic_scale_events_total", {{"direction", "in"}},
                 "Completed scale-out / scale-in waves.")
        .advance_to(scale_in_events_.load(std::memory_order_relaxed));
  }

  // lar::ckpt families only exist when a coordinator is attached, so a
  // checkpoint-free engine's export stays byte-identical to the pre-ckpt
  // one (the coordinator itself owns lar_ckpt_checkpoints_total etc.).
  if (ckpt_enabled_) {
    reg->counter("lar_ckpt_states_captured_total", {},
                 "Per-key states captured into checkpoint snapshots.")
        .advance_to(ckpt_states_captured_.load(std::memory_order_relaxed));
    reg->counter("lar_ckpt_state_bytes_total", {},
                 "Serialized size of all checkpointed key states.")
        .advance_to(ckpt_state_bytes_.load(std::memory_order_relaxed));
    reg->counter("lar_ckpt_crashes_total", {},
                 "server_crash faults taken (each recovered in place).")
        .advance_to(crashes_.load(std::memory_order_relaxed));
    reg->counter("lar_ckpt_pois_recovered_total", {},
                 "POIs killed and respawned across all crashes.")
        .advance_to(pois_recovered_.load(std::memory_order_relaxed));
    reg->counter("lar_ckpt_states_restored_total", {},
                 "Key states restored from committed checkpoints.")
        .advance_to(states_restored_.load(std::memory_order_relaxed));
    reg->counter("lar_ckpt_states_restored_bytes_total", {},
                 "Serialized size of all restored key states.")
        .advance_to(states_restored_bytes_.load(std::memory_order_relaxed));
    reg->counter("lar_ckpt_tuples_replayed_total", {},
                 "Data tuples re-pushed from replay buffers during recovery.")
        .advance_to(tuples_replayed_.load(std::memory_order_relaxed));
    reg->counter("lar_ckpt_tuples_lost_at_crash_total", {},
                 "Tuples discarded from crashed inboxes (covered by replay).")
        .advance_to(tuples_lost_at_crash_.load(std::memory_order_relaxed));
  }

  // lar::fleet: every per-tenant family below gains an `app` label (tenant
  // of the edge's producer / the instance's operator), and per-tenant
  // injected counts publish next to the engine-wide total.  All of it is
  // fleet-only, so single-tenant exports stay byte-identical.
  if (fleet_ != nullptr) {
    std::lock_guard<std::mutex> lock(source_mutex_);
    for (fleet::AppId app = 0; app < fleet_->num_apps(); ++app) {
      reg->counter("lar_tuples_injected_total",
                   {{"app", fleet_->app(app).name}},
                   "Tuples fed to source POIs via inject().")
          .advance_to(app_tuples_injected_[app]);
    }
  }

  for (std::size_t eid = 0; eid < edge_counters_.size(); ++eid) {
    const EdgeSpec& edge = topology_.edges()[eid];
    const std::string name =
        topology_.op(edge.from).name + "->" + topology_.op(edge.to).name;
    obs::Labels edge_labels = {{"edge", name}};
    if (fleet_ != nullptr) {
      edge_labels.push_back(
          {"app", fleet_->app(fleet_->app_of(edge.from)).name});
    }
    const EdgeCounters& c = edge_counters_[eid];
    const std::uint64_t local = c.local.load(std::memory_order_relaxed);
    const std::uint64_t remote = c.remote.load(std::memory_order_relaxed);
    obs::Labels local_labels = edge_labels;
    local_labels.push_back({"path", "local"});
    reg->counter("lar_edge_tuples_total", std::move(local_labels),
                 "Tuples moved over an edge, split by local/remote hop.")
        .advance_to(local);
    obs::Labels remote_labels = edge_labels;
    remote_labels.push_back({"path", "remote"});
    reg->counter("lar_edge_tuples_total", std::move(remote_labels),
                 "Tuples moved over an edge, split by local/remote hop.")
        .advance_to(remote);
    reg->counter("lar_edge_remote_bytes_total", edge_labels,
                 "Serialized bytes for cross-server hops of an edge.")
        .advance_to(c.remote_bytes.load(std::memory_order_relaxed));
    if (local + remote > 0) {
      reg->gauge("lar_edge_locality_ratio", edge_labels,
                 "Fraction of an edge's tuples delivered server-locally "
                 "(paper Figure 8).")
          .set(static_cast<double>(local) /
                static_cast<double>(local + remote));
    }
  }

  for (const auto& poi : pois_) {
    obs::Labels labels = {{"op", topology_.op(poi->op).name},
                          {"inst", std::to_string(poi->index)}};
    if (fleet_ != nullptr) {
      labels.push_back({"app", fleet_->app(fleet_->app_of(poi->op)).name});
    }
    reg->counter("lar_tuples_processed_total", labels,
                 "Tuples processed per operator instance.")
        .advance_to(poi->processed.load(std::memory_order_relaxed));
    // Scheduling-dependent: byte-stable exports filter `lar_queue_` out.
    reg->gauge("lar_queue_depth_hwm", std::move(labels),
               "Deepest a POI inbox has ever been (items).")
        .max_of(static_cast<double>(poi->inbox.high_water_mark()));
  }

  // obs v2: the ring-drop counter registers only once something actually
  // dropped (byte-identity for every run that fits the ring); the timeline
  // ticks at the publish epoch — the engine's only deterministic clock —
  // and the probe reads the tick it just appended.
  if (options_.trace != nullptr && options_.trace->dropped() > 0) {
    reg->counter("lar_trace_dropped_total", {},
                 "Trace events evicted from the bounded recorder ring.")
        .advance_to(options_.trace->dropped());
  }
  if (options_.timeline != nullptr) {
    ++publish_epoch_;
    options_.timeline->tick(*reg, static_cast<double>(publish_epoch_));
    if (options_.probe != nullptr) {
      options_.probe->evaluate(*options_.timeline, *reg);
    }
  }
}

}  // namespace lar::runtime
