#include "runtime/engine.hpp"

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.hpp"
#include "runtime/codec.hpp"

namespace lar::runtime {

// ---------------------------------------------------------------------------
// Poi: one deployed operator instance.
// ---------------------------------------------------------------------------

struct Engine::Poi {
  Poi(OperatorId op_id, InstanceIndex idx, ServerId srv,
      std::size_t queue_capacity)
      : op(op_id), index(idx), server(srv), inbox(queue_capacity) {}

  const OperatorId op;
  const InstanceIndex index;
  const ServerId server;

  std::unique_ptr<Operator> logic;
  Channel<Message> inbox;
  std::thread thread;

  // Parallel to topology.out_edges(op):
  std::vector<std::unique_ptr<Router>> routers;
  std::vector<std::optional<core::PairStats>> pair_stats;

  std::atomic<std::uint64_t> processed{0};

  // --- reconfiguration state, touched only by the POI thread --------------
  std::optional<ReconfMsg> staged;
  std::uint32_t propagate_seen = 0;
  std::uint32_t propagate_expected = 0;
  bool actions_done = true;  ///< propagate wave handled (tables installed)
  std::unordered_set<Key> awaiting;                      ///< state not here yet
  std::unordered_map<Key, std::vector<DataMsg>> pending;  ///< buffered tuples
};

// ---------------------------------------------------------------------------
// Construction / lifecycle.
// ---------------------------------------------------------------------------

Engine::Engine(const Topology& topology, const Placement& placement,
               OperatorFactory factory, EngineOptions options)
    : topology_(topology),
      placement_(placement),
      options_(options),
      factory_(std::move(factory)),
      manager_inbox_(1 << 16),
      edge_counters_(topology.edges().size()) {
  LAR_CHECK(topology.validate().is_ok());
  LAR_CHECK(factory_ != nullptr);

  anchors_ = compute_stats_anchors(topology);
  poi_index_.resize(topology.num_operators());
  for (OperatorId op = 0; op < topology.num_operators(); ++op) {
    const std::uint32_t parallelism = topology.op(op).parallelism;
    poi_index_[op].resize(parallelism);
    for (InstanceIndex i = 0; i < parallelism; ++i) {
      poi_index_[op][i] = pois_.size();
      pois_.push_back(std::make_unique<Poi>(op, i, placement.server_of(op, i),
                                            options_.queue_capacity));
      Poi& poi = *pois_.back();
      poi.logic = factory_(op, i);
      LAR_CHECK(poi.logic != nullptr);

      const auto& out = topology.out_edges(op);
      poi.routers.reserve(out.size());
      poi.pair_stats.reserve(out.size());
      for (const std::uint32_t eid : out) {
        const EdgeSpec& edge = topology.edges()[eid];
        poi.routers.push_back(make_router(
            edge, eid, topology, placement, poi.server, options_.fields_mode,
            nullptr, options_.seed * 7919 + eid * 131 + i));
        if (edge.grouping == GroupingType::kFields &&
            anchors_[edge.from].has_value()) {
          poi.pair_stats.emplace_back(
              std::in_place, options_.pair_stats_capacity);
        } else {
          poi.pair_stats.emplace_back(std::nullopt);
        }
      }

      std::uint32_t expected = 0;
      for (const std::uint32_t eid : topology.in_edges(op)) {
        expected += topology.op(topology.edges()[eid].from).parallelism;
      }
      poi.propagate_expected = topology.op(op).is_source ? 1 : expected;
    }
  }
}

Engine::~Engine() { shutdown(); }

void Engine::start() {
  LAR_CHECK(!started_);
  started_ = true;
  for (auto& poi : pois_) {
    poi->thread = std::thread([this, p = poi.get()] { poi_loop(*p); });
  }
}

void Engine::shutdown() {
  if (!started_ || shut_down_) return;
  flush();
  shut_down_ = true;
  for (auto& poi : pois_) {
    poi->inbox.push_unbounded(Message{ShutdownMsg{}});
  }
  for (auto& poi : pois_) {
    if (poi->thread.joinable()) poi->thread.join();
  }
}

Engine::Poi& Engine::poi_at(OperatorId op, InstanceIndex index) {
  return *pois_[poi_index_[op][index]];
}

Operator& Engine::operator_at(OperatorId op, InstanceIndex index) {
  return *poi_at(op, index).logic;
}

// ---------------------------------------------------------------------------
// Data plane.
// ---------------------------------------------------------------------------

void Engine::inject(Tuple tuple) {
  LAR_CHECK(started_ && !shut_down_);
  const auto sources = topology_.sources();
  LAR_CHECK(!sources.empty());
  const OperatorId src = sources[inject_seq_.load(std::memory_order_relaxed) %
                                 sources.size()];
  const std::uint32_t par = topology_.op(src).parallelism;
  InstanceIndex instance = 0;
  switch (options_.source_mode) {
    case SourceMode::kAlignedField0:
      LAR_CHECK(!tuple.fields.empty());
      instance = static_cast<InstanceIndex>(tuple.fields[0] % par);
      break;
    case SourceMode::kRoundRobin:
      instance =
          static_cast<InstanceIndex>(inject_seq_.load(std::memory_order_relaxed) % par);
      break;
  }
  inject_seq_.fetch_add(1, std::memory_order_relaxed);
  tuples_injected_.fetch_add(1, std::memory_order_relaxed);
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  poi_at(src, instance).inbox.push(
      Message{DataMsg{std::move(tuple), DataMsg::kInjected}});
}

void Engine::flush() {
  std::uint64_t v = in_flight_.load(std::memory_order_acquire);
  while (v != 0) {
    in_flight_.wait(v, std::memory_order_acquire);
    v = in_flight_.load(std::memory_order_acquire);
  }
}

void Engine::poi_loop(Poi& poi) {
  while (auto msg = poi.inbox.pop()) {
    if (std::holds_alternative<ShutdownMsg>(*msg)) return;
    std::visit(
        [&](auto&& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, DataMsg>) {
            handle_data(poi, std::move(m));
          } else if constexpr (std::is_same_v<T, GetMetricsMsg>) {
            send_metrics(poi);
          } else if constexpr (std::is_same_v<T, ReconfMsg>) {
            handle_reconf(poi, std::move(m));
          } else if constexpr (std::is_same_v<T, PropagateMsg>) {
            handle_propagate(poi, m);
          } else if constexpr (std::is_same_v<T, MigrateMsg>) {
            handle_migrate(poi, std::move(m));
          }
        },
        std::move(*msg));
  }
}

void Engine::handle_data(Poi& poi, DataMsg msg) {
  Key in_key = msg.anchor;
  if (msg.edge != DataMsg::kInjected) {
    const EdgeSpec& edge = topology_.edges()[msg.edge];
    if (edge.grouping == GroupingType::kFields) {
      LAR_CHECK(edge.key_field < msg.tuple.fields.size());
      in_key = msg.tuple.fields[edge.key_field];
      // Buffer tuples whose key state is still in flight (Section 3.4:
      // "tuples are buffered and are only processed once the state of their
      // key is received").
      if (poi.awaiting.contains(in_key)) {
        poi.pending[in_key].push_back(std::move(msg));
        tuples_buffered_.fetch_add(1, std::memory_order_relaxed);
        if (options_.trace != nullptr) {
          options_.trace->record(poi.staged->version, obs::Phase::kBuffer,
                                 obs::key_entity(in_key), /*count=*/1);
        }
        return;  // stays in flight until drained by handle_migrate()
      }
    }
  }
  process_tuple(poi, msg.tuple, in_key);
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    in_flight_.notify_all();
  }
}

void Engine::process_tuple(Poi& poi, const Tuple& tuple, Key in_key) {
  poi.processed.fetch_add(1, std::memory_order_relaxed);
  // Emitter bound to the POI currently processing a tuple; routes emissions
  // on every outbound edge and records pair statistics.  A local class so it
  // shares this member function's access to Engine internals.
  struct RoutingEmitter final : Emitter {
    Engine& engine;
    Poi& poi;
    Key in_key;

    RoutingEmitter(Engine& e, Poi& p, Key k)
        : engine(e), poi(p), in_key(k) {}

    void emit(Tuple tuple) override {
      const auto& out = engine.topology_.out_edges(poi.op);
      for (std::size_t k = 0; k < out.size(); ++k) {
        const EdgeSpec& edge = engine.topology_.edges()[out[k]];
        if (poi.pair_stats[k].has_value() && in_key != kNoKey) {
          LAR_CHECK(edge.key_field < tuple.fields.size());
          poi.pair_stats[k]->record(in_key, tuple.fields[edge.key_field]);
        }
        engine.send_data(poi, static_cast<std::uint32_t>(k), tuple, in_key);
      }
    }
  } emitter(*this, poi, in_key);
  poi.logic->process(tuple, emitter);
}

void Engine::send_data(Poi& poi, std::uint32_t out_pos, const Tuple& tuple,
                       Key in_key) {
  const std::uint32_t eid = topology_.out_edges(poi.op)[out_pos];
  const EdgeSpec& edge = topology_.edges()[eid];
  const InstanceIndex dst = poi.routers[out_pos]->route(tuple);
  Poi& target = poi_at(edge.to, dst);
  EdgeCounters& counters = edge_counters_[eid];

  // The receiver's anchor: a fields hop re-anchors at its own key, anything
  // else forwards the sender's.
  const Key anchor = edge.grouping == GroupingType::kFields
                         ? tuple.fields[edge.key_field]
                         : in_key;

  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (target.server == poi.server) {
    counters.local.fetch_add(1, std::memory_order_relaxed);
    target.inbox.push(Message{DataMsg{tuple, eid, anchor}});
  } else {
    counters.remote.fetch_add(1, std::memory_order_relaxed);
    const std::vector<std::byte> wire = encode_tuple(tuple);
    counters.remote_bytes.fetch_add(wire.size(), std::memory_order_relaxed);
    target.inbox.push(Message{DataMsg{decode_tuple(wire), eid, anchor}});
  }
}

// ---------------------------------------------------------------------------
// Control plane: the reconfiguration protocol (POI side).
// ---------------------------------------------------------------------------

void Engine::send_metrics(Poi& poi) {
  MetricsReply reply;
  reply.from = InstanceId{poi.op, poi.index};
  const auto& out = topology_.out_edges(poi.op);
  for (std::size_t k = 0; k < out.size(); ++k) {
    if (!poi.pair_stats[k].has_value()) continue;
    reply.stats.emplace_back(out[k], poi.pair_stats[k]->snapshot());
  }
  manager_inbox_.push(ManagerReply{std::move(reply)});
}

void Engine::handle_reconf(Poi& poi, ReconfMsg msg) {
  LAR_CHECK(!poi.staged.has_value());  // one reconfiguration at a time
  const std::uint64_t version = msg.version;
  poi.staged = std::move(msg);
  poi.propagate_seen = 0;
  poi.actions_done = false;
  // Buffering must start now: upstream POIs may switch to the new tables
  // (and route keys here) before this POI's own propagate arrives.
  for (const Key key : poi.staged->receive) poi.awaiting.insert(key);
  if (options_.trace != nullptr) {
    options_.trace->record(version, obs::Phase::kAck,
                           obs::poi_entity(poi.op, poi.index),
                           /*count=*/poi.staged->receive.size());
  }
  manager_inbox_.push(
      ManagerReply{AckReconfReply{InstanceId{poi.op, poi.index}, version}});
}

void Engine::handle_propagate(Poi& poi, const PropagateMsg& msg) {
  LAR_CHECK(poi.staged.has_value() && poi.staged->version == msg.version);
  ++poi.propagate_seen;
  if (poi.propagate_seen == poi.propagate_expected) {
    run_reconfig_actions(poi);
  }
}

void Engine::run_reconfig_actions(Poi& poi) {
  ReconfMsg& staged = *poi.staged;
  const auto& out = topology_.out_edges(poi.op);

  // update_routing: install the new tables on outbound fields edges and
  // restart statistics collection from a clean slate.
  for (std::size_t k = 0; k < out.size(); ++k) {
    const EdgeSpec& edge = topology_.edges()[out[k]];
    if (edge.grouping != GroupingType::kFields) continue;
    auto it = staged.tables.find(edge.to);
    if (it == staged.tables.end()) continue;
    poi.routers[k] = std::make_unique<TableFieldsRouter>(
        edge.key_field, topology_.op(edge.to).parallelism, it->second);
    if (poi.pair_stats[k].has_value()) poi.pair_stats[k]->reset();
  }

  // Export and ship the state of keys this instance no longer owns.  No
  // more tuples for them can arrive: every predecessor switched tables
  // before propagating here, and channels are FIFO.
  for (const auto& [key, dest] : staged.send) {
    std::vector<std::byte> state = poi.logic->export_key_state(key);
    poi.logic->drop_key_state(key);
    poi_at(poi.op, dest).inbox.push_unbounded(
        Message{MigrateMsg{staged.version, key, std::move(state)}});
  }

  poi.actions_done = true;
  maybe_finish_reconfig(poi);
}

void Engine::handle_migrate(Poi& poi, MigrateMsg msg) {
  states_migrated_.fetch_add(1, std::memory_order_relaxed);
  states_migrated_bytes_.fetch_add(msg.state.size(),
                                   std::memory_order_relaxed);
  if (options_.registry != nullptr) {
    // Rare path (reconfiguration only), so the by-name lookup is fine.
    options_.registry
        ->histogram("lar_state_migration_size_bytes",
                    {0, 16, 64, 256, 1024, 4096, 16384}, {},
                    "Serialized size of one migrated key state.")
        .observe(static_cast<double>(msg.state.size()));
  }
  if (options_.trace != nullptr) {
    options_.trace->record(msg.version, obs::Phase::kMigrate,
                           obs::key_entity(msg.key), /*count=*/1,
                           /*bytes=*/msg.state.size());
  }
  poi.logic->import_key_state(msg.key, msg.state);
  if (poi.awaiting.erase(msg.key) == 0) return;
  // Drain tuples that were buffered waiting for this key's state.
  if (auto it = poi.pending.find(msg.key); it != poi.pending.end()) {
    std::vector<DataMsg> buffered = std::move(it->second);
    poi.pending.erase(it);
    if (options_.trace != nullptr) {
      options_.trace->record(msg.version, obs::Phase::kDrain,
                             obs::key_entity(msg.key),
                             /*count=*/buffered.size());
    }
    for (DataMsg& dm : buffered) {
      process_tuple(poi, dm.tuple, msg.key);
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        in_flight_.notify_all();
      }
    }
  }
  maybe_finish_reconfig(poi);
}

void Engine::maybe_finish_reconfig(Poi& poi) {
  if (!poi.staged.has_value() || !poi.actions_done || !poi.awaiting.empty()) {
    return;
  }
  const std::uint64_t version = poi.staged->version;
  // Forward the wave: one PROPAGATE per successor POI per edge.
  std::uint64_t hops = 0;
  for (const std::uint32_t eid : topology_.out_edges(poi.op)) {
    const EdgeSpec& edge = topology_.edges()[eid];
    const std::uint32_t parallelism = topology_.op(edge.to).parallelism;
    for (InstanceIndex i = 0; i < parallelism; ++i) {
      poi_at(edge.to, i).inbox.push_unbounded(
          Message{PropagateMsg{version}});
      ++hops;
    }
  }
  if (options_.trace != nullptr) {
    options_.trace->record(version, obs::Phase::kPropagate,
                           obs::poi_entity(poi.op, poi.index),
                           /*count=*/hops);
  }
  poi.staged.reset();
  manager_inbox_.push(
      ManagerReply{ReconfDoneReply{InstanceId{poi.op, poi.index}, version}});
}

// ---------------------------------------------------------------------------
// Control plane: the reconfiguration protocol (manager side).
// ---------------------------------------------------------------------------

core::ReconfigurationPlan Engine::reconfigure(core::Manager& manager) {
  LAR_CHECK(started_ && !shut_down_);

  // 1) + 2) GET_METRICS -> SEND_METRICS.
  for (auto& poi : pois_) {
    poi->inbox.push_unbounded(Message{GetMetricsMsg{}});
  }
  std::unordered_map<std::uint32_t, std::vector<std::vector<core::PairCount>>>
      per_edge;
  for (std::size_t i = 0; i < pois_.size(); ++i) {
    auto reply = manager_inbox_.pop();
    LAR_CHECK(reply.has_value());
    auto* metrics = std::get_if<MetricsReply>(&*reply);
    LAR_CHECK(metrics != nullptr);
    for (auto& [eid, counts] : metrics->stats) {
      per_edge[eid].push_back(std::move(counts));
    }
  }
  std::vector<core::HopStats> hop_stats;
  std::uint64_t gathered_pairs = 0;
  for (auto& [eid, snapshots] : per_edge) {
    const EdgeSpec& edge = topology_.edges()[eid];
    hop_stats.push_back(core::HopStats{anchors_[edge.from].value(), edge.to,
                                       core::merge_pair_counts(snapshots)});
    gathered_pairs += hop_stats.back().pairs.size();
  }

  // compute_reconfiguration.
  core::ReconfigurationPlan plan = manager.compute_plan(hop_stats);
  if (options_.trace != nullptr) {
    options_.trace->record(plan.version, obs::Phase::kGather, "manager",
                           /*count=*/pois_.size(),
                           /*bytes=*/gathered_pairs * sizeof(core::PairCount));
    options_.trace->record(plan.version, obs::Phase::kCompute, "plan",
                           /*count=*/plan.graph_vertices,
                           /*bytes=*/plan.graph_edges);
  }
  if (plan.tables.empty()) {
    manager.mark_deployed(plan);
    return plan;  // nothing observed yet; stay on current routing
  }

  // 3) + 4) SEND_RECONF -> ACK_RECONF.
  for (auto& poi : pois_) {
    ReconfMsg msg;
    msg.version = plan.version;
    for (const std::uint32_t eid : topology_.out_edges(poi->op)) {
      const EdgeSpec& edge = topology_.edges()[eid];
      if (edge.grouping != GroupingType::kFields) continue;
      if (auto it = plan.tables.find(edge.to); it != plan.tables.end()) {
        msg.tables.emplace(edge.to, it->second);
      }
    }
    if (auto it = plan.moves.find(poi->op); it != plan.moves.end()) {
      for (const core::KeyMove& mv : it->second) {
        if (mv.from == poi->index) msg.send.emplace_back(mv.key, mv.to);
        if (mv.to == poi->index) msg.receive.push_back(mv.key);
      }
    }
    poi->inbox.push_unbounded(Message{std::move(msg)});
  }
  for (std::size_t i = 0; i < pois_.size(); ++i) {
    auto reply = manager_inbox_.pop();
    LAR_CHECK(reply.has_value());
    auto* ack = std::get_if<AckReconfReply>(&*reply);
    LAR_CHECK(ack != nullptr && ack->version == plan.version);
  }
  if (options_.trace != nullptr) {
    std::uint64_t table_entries = 0;
    for (const auto& [op, table] : plan.tables) table_entries += table->size();
    options_.trace->record(
        plan.version, obs::Phase::kStage, "manager",
        /*count=*/pois_.size(),
        /*bytes=*/table_entries * (sizeof(Key) + sizeof(InstanceIndex)));
  }

  // 5) PROPAGATE into the sources; the wave does the rest.
  for (const OperatorId src : topology_.sources()) {
    const std::uint32_t parallelism = topology_.op(src).parallelism;
    for (InstanceIndex i = 0; i < parallelism; ++i) {
      poi_at(src, i).inbox.push_unbounded(
          Message{PropagateMsg{plan.version}});
    }
  }
  for (std::size_t i = 0; i < pois_.size(); ++i) {
    auto reply = manager_inbox_.pop();
    LAR_CHECK(reply.has_value());
    auto* done = std::get_if<ReconfDoneReply>(&*reply);
    LAR_CHECK(done != nullptr && done->version == plan.version);
  }

  manager.mark_deployed(plan);
  LAR_INFO << "engine: reconfiguration v" << plan.version << " deployed ("
           << plan.total_moves() << " key states migrated)";
  return plan;
}

// ---------------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------------

EngineMetrics Engine::metrics() const {
  EngineMetrics out;
  out.tuples_injected = tuples_injected_.load(std::memory_order_relaxed);
  out.tuples_buffered = tuples_buffered_.load(std::memory_order_relaxed);
  out.states_migrated = states_migrated_.load(std::memory_order_relaxed);
  out.states_migrated_bytes =
      states_migrated_bytes_.load(std::memory_order_relaxed);
  out.edges.reserve(edge_counters_.size());
  for (const auto& c : edge_counters_) {
    out.edges.push_back(EdgeMetricsSnapshot{
        c.local.load(std::memory_order_relaxed),
        c.remote.load(std::memory_order_relaxed),
        c.remote_bytes.load(std::memory_order_relaxed)});
  }
  out.instance_processed.resize(topology_.num_operators());
  for (const auto& poi : pois_) {
    auto& per_op = out.instance_processed[poi->op];
    if (per_op.size() < poi->index + 1) per_op.resize(poi->index + 1);
    per_op[poi->index] = poi->processed.load(std::memory_order_relaxed);
  }
  return out;
}

void Engine::publish_metrics() {
  obs::Registry* reg = options_.registry;
  if (reg == nullptr) return;

  // Process-wide counters ratchet forward from the engine's own atomics;
  // advance_to keeps repeated publishes monotonic.
  reg->counter("lar_tuples_injected_total", {},
               "Tuples fed to source POIs via inject().")
      .advance_to(tuples_injected_.load(std::memory_order_relaxed));
  reg->counter("lar_tuples_buffered_total", {},
               "Tuples parked behind an in-flight key-state migration.")
      .advance_to(tuples_buffered_.load(std::memory_order_relaxed));
  reg->counter("lar_states_migrated_total", {},
               "Key states shipped between sibling instances.")
      .advance_to(states_migrated_.load(std::memory_order_relaxed));
  reg->counter("lar_state_migrated_bytes_total", {},
               "Serialized size of all migrated key states.")
      .advance_to(states_migrated_bytes_.load(std::memory_order_relaxed));

  for (std::size_t eid = 0; eid < edge_counters_.size(); ++eid) {
    const EdgeSpec& edge = topology_.edges()[eid];
    const std::string name =
        topology_.op(edge.from).name + "->" + topology_.op(edge.to).name;
    const EdgeCounters& c = edge_counters_[eid];
    const std::uint64_t local = c.local.load(std::memory_order_relaxed);
    const std::uint64_t remote = c.remote.load(std::memory_order_relaxed);
    reg->counter("lar_edge_tuples_total", {{"edge", name}, {"path", "local"}},
                 "Tuples moved over an edge, split by local/remote hop.")
        .advance_to(local);
    reg->counter("lar_edge_tuples_total", {{"edge", name}, {"path", "remote"}},
                 "Tuples moved over an edge, split by local/remote hop.")
        .advance_to(remote);
    reg->counter("lar_edge_remote_bytes_total", {{"edge", name}},
                 "Serialized bytes for cross-server hops of an edge.")
        .advance_to(c.remote_bytes.load(std::memory_order_relaxed));
    if (local + remote > 0) {
      reg->gauge("lar_edge_locality_ratio", {{"edge", name}},
                 "Fraction of an edge's tuples delivered server-locally "
                 "(paper Figure 8).")
          .set(static_cast<double>(local) /
                static_cast<double>(local + remote));
    }
  }

  for (const auto& poi : pois_) {
    const obs::Labels labels = {{"op", topology_.op(poi->op).name},
                                {"inst", std::to_string(poi->index)}};
    reg->counter("lar_tuples_processed_total", labels,
                 "Tuples processed per operator instance.")
        .advance_to(poi->processed.load(std::memory_order_relaxed));
    // Scheduling-dependent: byte-stable exports filter `lar_queue_` out.
    reg->gauge("lar_queue_depth_hwm", labels,
               "Deepest a POI inbox has ever been (items).")
        .max_of(static_cast<double>(poi->inbox.high_water_mark()));
  }
}

}  // namespace lar::runtime
