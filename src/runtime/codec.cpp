#include "runtime/codec.hpp"

#include <cstring>

namespace lar::runtime {

namespace {
constexpr std::size_t kHeader = 16;  // matches Tuple::serialized_size()
}

std::vector<std::byte> encode_tuple(const Tuple& tuple) {
  std::vector<std::byte> out(tuple.serialized_size());
  std::uint64_t nfields = tuple.fields.size();
  std::uint64_t padding = tuple.padding;
  std::memcpy(out.data(), &nfields, 8);
  std::memcpy(out.data() + 8, &padding, 8);
  std::memcpy(out.data() + kHeader, tuple.fields.data(),
              tuple.fields.size() * sizeof(Key));
  // The remaining `padding` bytes stay zero: the payload content does not
  // matter, its copy cost does.
  return out;
}

Tuple decode_tuple(std::span<const std::byte> bytes) {
  LAR_CHECK(bytes.size() >= kHeader);
  std::uint64_t nfields = 0;
  std::uint64_t padding = 0;
  std::memcpy(&nfields, bytes.data(), 8);
  std::memcpy(&padding, bytes.data() + 8, 8);
  Tuple t;
  t.padding = static_cast<std::uint32_t>(padding);
  t.fields.resize(nfields);
  LAR_CHECK(bytes.size() >= kHeader + nfields * sizeof(Key));
  std::memcpy(t.fields.data(), bytes.data() + kHeader,
              nfields * sizeof(Key));
  return t;
}

}  // namespace lar::runtime
