// The threaded execution engine: a miniature Storm-like runtime in one
// process.
//
// Every operator instance (POI) runs on its own thread with a bounded FIFO
// inbox carrying both data tuples and control messages.  Servers are
// *logical*: a tuple moving between POIs on the same server is handed over
// by move (the paper's "address in memory" fast path), while a tuple whose
// destination POI lives on a different server is serialized, byte-counted
// and parsed back — the full cost of a network hop minus the wire.
//
// The engine hosts the paper's online reconfiguration protocol end to end
// (Figure 6 / Algorithm 1): metric collection, plan computation via
// core::Manager, configuration staging with acks, the DAG-ordered PROPAGATE
// wave, per-key state migration between sibling instances, and buffering of
// tuples whose key state has not arrived yet — all while the data stream
// keeps flowing.
//
// This engine is the repository's *correctness* substrate (its invariants
// are what the integration tests exercise); throughput figures come from
// lar::sim, because wall-clock numbers from a thread-per-POI runtime on an
// arbitrary CI machine would measure the host, not the algorithm.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chaos/injector.hpp"
#include "ckpt/checkpoint.hpp"
#include "core/manager.hpp"
#include "core/plan.hpp"
#include "fleet/fleet.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "runtime/message.hpp"
#include "runtime/operator.hpp"
#include "runtime/queue.hpp"
#include "topology/placement.hpp"
#include "topology/routing.hpp"
#include "topology/topology.hpp"

namespace lar::runtime {

struct EngineOptions {
  /// Per-POI inbox capacity for data tuples (control messages bypass the
  /// bound so the reconfiguration wave can never deadlock against back
  /// pressure).
  std::size_t queue_capacity = 4096;

  /// Tuples staged per SPSC lane before the producer publishes them to the
  /// consumer in one atomic store (the threaded analogue of the sim's
  /// 256-tuple windows).  1 = publish every push, the degenerate unbatched
  /// mode.  Purely a hand-off granularity: batches are always flushed
  /// before any control push and before a POI blocks on an empty inbox, so
  /// ordering, liveness, and every deterministic output are independent of
  /// the value.
  std::size_t lane_batch = 32;

  /// Capacity of each POI's pair-statistics sketch (0 = exact).
  std::size_t pair_stats_capacity = 1 << 16;

  /// Router used on fields-grouped edges before the first reconfiguration.
  FieldsRouting fields_mode = FieldsRouting::kTable;

  /// How inject() picks the source instance.
  SourceMode source_mode = SourceMode::kRoundRobin;

  std::uint64_t seed = 1;

  /// Observability sinks (may be null = the no-op disabled mode; both must
  /// outlive the engine).  The per-tuple data path stays registry-free
  /// either way: counters are engine-owned atomics that publish_metrics()
  /// copies into `registry`, and `trace` only sees reconfiguration-protocol
  /// steps (ack, propagate hop, migration, buffer/drain — see obs/trace.hpp).
  obs::Registry* registry = nullptr;
  obs::TraceRecorder* trace = nullptr;

  /// Timeline store (obs v2; null = disabled, must outlive the engine).
  /// When attached — together with a registry — every publish_metrics()
  /// call appends one tick at vtime = publish epoch (a counter of publish
  /// calls, the engine's only deterministic clock).  Spans on `trace`
  /// follow the same opt-in: enable them on the recorder and every
  /// reconfiguration wave / resize / checkpoint / crash-recovery becomes
  /// one span tree (vtimes are control epochs, durations unmodeled).
  obs::Timeline* timeline = nullptr;

  /// Health probe (obs v2; null = disabled, must outlive the engine).
  /// Evaluated right after each timeline tick; requires `timeline` and
  /// `registry`.  Publishes `lar_health_*` / `lar_alerts_total` into
  /// `registry`.
  obs::Probe* probe = nullptr;

  /// Fault injector (null = chaos disabled; must outlive the engine).  The
  /// disabled mode is a structural no-op: every chaos hook sits behind one
  /// `injector == nullptr` branch, the same pattern as `registry`, so the
  /// data hot path is untouched when no faults are configured.
  chaos::Injector* injector = nullptr;

  /// Hard cap on *in-memory* tuples buffered per POI behind in-flight state
  /// migrations (Section 3.4 buffering).  0 = unlimited (the default,
  /// byte-identical to the pre-chaos engine).  Overflow tuples are not
  /// dropped: they spill, serialized, into a per-key store and drain after
  /// the in-memory ones — serialization is the spill cost, exactly-once is
  /// preserved.
  std::size_t buffered_tuples_cap = 0;

  /// Checkpoint coordinator (lar::ckpt; null = checkpointing disabled, the
  /// default; must outlive the engine).  When attached, data tuples carry
  /// link sequence stamps, senders keep bounded per-link replay buffers
  /// (truncated at every checkpoint commit), and checkpoint() /
  /// crash_and_recover() become available.  The disabled mode follows the
  /// registry/injector pattern: one null-check branch per hook, no data-path
  /// cost, no `lar_ckpt_*` metric families.
  ckpt::CheckpointCoordinator* checkpoint = nullptr;

  /// Multi-tenant fleet (lar::fleet; null = single-tenant, the default;
  /// must outlive the engine).  When attached, the engine must be deployed
  /// over fleet->combined_topology() / fleet->combined_placement();
  /// inject_app() / reconfigure_app() become available, reconfiguration
  /// waves are per-tenant and staggered (app-scoped wave control over the
  /// shared channels/lanes), and every per-op / per-edge metric family
  /// gains an `app` label.  The disabled mode is the usual structural
  /// no-op: one null-check per hook, byte-identical output.
  fleet::FleetManager* fleet = nullptr;

  /// Live-server count at startup (lar::elastic).  0 = all servers of the
  /// placement (the default, byte-identical to the fixed-fleet engine).
  /// A value in (0, num_servers) starts the engine in elastic mode with
  /// only the server prefix [0, active_servers) running: dormant POIs get
  /// no thread, sources and shuffle edges restrict to active instances,
  /// and fields edges start from fallback-domain tables.  Requires
  /// fields_mode == kTable and only kFields / kShuffle groupings.
  std::uint32_t active_servers = 0;
};

/// Copyable snapshot of one edge's traffic counters.
struct EdgeMetricsSnapshot {
  std::uint64_t local = 0;
  std::uint64_t remote = 0;
  std::uint64_t remote_bytes = 0;

  [[nodiscard]] double locality() const noexcept {
    const std::uint64_t total = local + remote;
    return total == 0 ? 0.0
                      : static_cast<double>(local) / static_cast<double>(total);
  }
};

/// Snapshot of all engine counters.
struct EngineMetrics {
  std::vector<EdgeMetricsSnapshot> edges;                    // per edge id
  std::vector<std::vector<std::uint64_t>> instance_processed;  // [op][inst]
  std::uint64_t tuples_injected = 0;

  /// Tuples that arrived for a key whose migrated state had not landed yet
  /// and were parked until it did (Section 3.4's buffering).  A measure of
  /// how much the stream overlapped with reconfigurations.
  std::uint64_t tuples_buffered = 0;

  /// Key states shipped between sibling instances across all
  /// reconfigurations.
  std::uint64_t states_migrated = 0;

  /// Serialized size of all migrated key states, in bytes.
  std::uint64_t states_migrated_bytes = 0;

  // --- chaos / recovery accounting (all zero without an injector or a
  // buffered_tuples_cap) ----------------------------------------------------

  /// Buffered tuples that overflowed the in-memory cap and were serialized
  /// into the per-key spill store (later drained; never dropped).
  std::uint64_t tuples_spilled = 0;
  std::uint64_t tuples_spilled_bytes = 0;

  /// Chaos-duplicated data tuples the receiver's link dedup dropped.
  std::uint64_t data_dups_dropped = 0;

  /// Duplicate MIGRATE payloads dropped before import (idempotence).
  std::uint64_t migrates_deduped = 0;

  /// MIGRATE payloads re-queued behind the receiver's inbox by kMigrateDelay.
  std::uint64_t migrate_redeliveries = 0;

  /// SEND_METRICS reports lost (plan computed from partial statistics) or
  /// delayed into the next gather epoch (merged stale).
  std::uint64_t stats_reports_lost = 0;
  std::uint64_t stats_reports_stale = 0;

  // --- elasticity (all zero / full fleet unless lar::elastic is used) ------

  /// Current live-server count (the active prefix [0, n)).
  std::uint32_t active_servers = 0;

  /// Key states shipped by the residual drain — owned keys the new epoch
  /// routes elsewhere that had no explicit move entry (e.g. keys the
  /// manager never observed, drained off a retiring instance).
  std::uint64_t states_drained = 0;
  std::uint64_t states_drained_bytes = 0;

  /// Completed add_servers() / retire_servers() waves.
  std::uint64_t scale_out_events = 0;
  std::uint64_t scale_in_events = 0;

  // --- lar::ckpt (all zero without a checkpoint coordinator) ---------------

  /// Committed aligned checkpoint epochs.
  std::uint64_t checkpoints_committed = 0;

  /// Per-key states captured into checkpoint snapshots (sum over epochs).
  std::uint64_t ckpt_states_captured = 0;
  std::uint64_t ckpt_state_bytes = 0;

  /// server_crash events taken (every one is recovered before the call
  /// returns).
  std::uint64_t crashes = 0;

  /// POIs rolled back and respawned across all crashes (the crashed
  /// server's POIs plus each crash's downstream-closure region).
  std::uint64_t pois_recovered = 0;

  /// Per-key states restored from the last committed checkpoint.
  std::uint64_t states_restored = 0;
  std::uint64_t states_restored_bytes = 0;

  /// Data tuples re-pushed from sender replay buffers (and the source
  /// inject log) during recovery.  Receiver-side dedup drops the subset
  /// whose effects survived, so replayed >= re-applied.
  std::uint64_t tuples_replayed = 0;

  /// Data tuples discarded from crashed inboxes/stashes (all of them are
  /// covered by replay — nothing is lost, this is the crash's blast radius).
  std::uint64_t tuples_lost_at_crash = 0;
};

/// Deploys and runs a Topology.  Lifecycle: construct -> start() ->
/// inject()* / reconfigure()* -> flush() -> shutdown().
class Engine {
 public:
  Engine(const Topology& topology, const Placement& placement,
         OperatorFactory factory, EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Spawns one thread per POI.
  void start();

  /// Feeds one tuple to a source POI (blocking under back pressure).
  /// Thread-safe with respect to itself and reconfigure().
  void inject(Tuple tuple);

  /// Blocks until every injected tuple has been fully processed (including
  /// tuples buffered behind in-flight state migrations).
  void flush();

  /// Runs one full online reconfiguration round against the live stream:
  /// GET_METRICS -> compute plan -> SEND_RECONF/ACK -> PROPAGATE wave with
  /// state migration.  Blocks until every POI reports completion.  The data
  /// stream is NOT paused.  Returns the deployed plan.
  core::ReconfigurationPlan reconfigure(core::Manager& manager);

  // --- lar::elastic: online scale-out / scale-in ---------------------------

  /// Grows the live fleet to the server prefix [0, target_servers): spawns
  /// the dormant POIs' threads, re-plans via manager.plan_for(), and runs
  /// one reconfiguration wave that swaps in epoch-consistent tables (and
  /// shuffle restrictions) plus migrates state onto the new servers.  The
  /// data stream is NOT paused.  Blocks until the wave and all residual
  /// state drains complete.  Requires fields_mode == kTable and only
  /// kFields / kShuffle groupings.
  core::ReconfigurationPlan add_servers(core::Manager& manager,
                                        std::uint32_t target_servers);

  /// Shrinks the live fleet to the prefix [0, target_servers).  Retirement
  /// is migrate-then-stop: the retiring POIs take part in the wave, ship
  /// every owned key state to the surviving instances (planned moves plus
  /// the residual drain), and only then receive their shutdown — no tuple
  /// and no state is lost.  Blocks until the retirees have joined.
  core::ReconfigurationPlan retire_servers(core::Manager& manager,
                                           std::uint32_t target_servers);

  /// Current live-server count (the active prefix).
  [[nodiscard]] std::uint32_t active_servers() const noexcept {
    return active_servers_;
  }

  // --- lar::fleet: multi-tenant serving ------------------------------------

  /// Feeds one tuple to one of tenant `app`'s source POIs (blocking under
  /// back pressure).  Per-tenant round-robin over the tenant's own sources
  /// with a per-tenant sequence; otherwise identical to inject() — same
  /// mutex, same checkpoint inject log, same lane discipline.  Requires
  /// options().fleet.
  void inject_app(fleet::AppId app, Tuple tuple);

  /// Runs one online reconfiguration round scoped to tenant `app`: gathers
  /// statistics from EVERY live POI (pair statistics are cumulative since
  /// each tenant's own last wave, so a full gather is the complete joint
  /// picture), computes the joint plan via the FleetManager, and deploys
  /// only this tenant's slice.  The wave's member lists are empty outside
  /// the tenant's operator range, so no other tenant's POI receives
  /// SEND_RECONF or PROPAGATE and no other tenant's data plane stalls —
  /// the stagger rule (DESIGN.md §15).  Never resizes: the active prefix
  /// is fleet-shared, so resizes go through resize_fleet().  Requires
  /// options().fleet.
  core::ReconfigurationPlan reconfigure_app(fleet::AppId app);

  /// Whole-fleet elastic resize: one joint wave over ALL tenants (slicing
  /// a resize would leave other tenants hashing over a stale fallback
  /// domain) via add_servers/retire_servers on the fleet's joint planner,
  /// with every tenant's plan version advanced.  Requires options().fleet.
  core::ReconfigurationPlan resize_fleet(std::uint32_t target_servers);

  // --- lar::ckpt: aligned checkpoints + crash recovery ---------------------

  /// Runs one aligned checkpoint round and returns its epoch number.
  /// Injects epoch barriers into every live source POI; each POI snapshots
  /// its per-key state and link cursors once the barrier has arrived on all
  /// input links, acks, and forwards the barrier downstream.  Blocks until
  /// every live POI has acked, commits the epoch into the coordinator's
  /// store and truncates the sender-side replay buffers.  The data stream
  /// is NOT paused.  Requires options().checkpoint.  Called from the same
  /// external driver thread as reconfigure() (the control API is externally
  /// synchronized), so a checkpoint never overlaps a reconfiguration wave.
  std::uint64_t checkpoint();

  /// Deterministically kills every live POI of `server` mid-stream —
  /// operator state, inbox contents and chaos stashes are discarded — and
  /// recovers the *region*: the victims plus the downstream closure of
  /// their operators roll back to the last committed checkpoint (a
  /// recovered multi-input POI merges its replayed links in a fresh
  /// interleaving, so its regenerated emissions are exactly-once only
  /// against receivers restored to the same cut).  Producers outside the
  /// region — in particular the surviving sources — keep running and
  /// re-derive the region from their replay buffers (and the coordinator's
  /// inject log); per-link sequence dedup absorbs every overlap.  Blocks
  /// until every recovered POI has caught up.  Requires a committed
  /// checkpoint taken at the current reconfiguration version (checkpoint()
  /// runs automatically after every wave when a coordinator is attached).
  void crash_and_recover(std::uint32_t server);

  /// Evaluates the chaos `server_crash` schedule once per live server (in
  /// server order) and, on the first decision that fires, crashes and
  /// recovers that server.  Pure function of the FaultPlan seed and how
  /// many times each server has been evaluated.  Returns the crashed server
  /// or nullopt.  No-op without both an injector and a coordinator.
  std::optional<std::uint32_t> maybe_crash();

  /// Cold-restart resume point (lar::ckpt durability): how many inject()
  /// calls the restored checkpoint chain already covers.  start() restores
  /// every POI's state and the inject sequence counters from the
  /// coordinator's store when it holds a committed epoch (a
  /// DurableCheckpointStore opened on an existing directory), so a driver
  /// replaying its source stream must skip this prefix — injecting it again
  /// would double-count, the restored state already holds its effects.
  /// Zero when nothing was restored.
  [[nodiscard]] std::uint64_t restored_inject_offset() const noexcept {
    return restored_inject_offset_;
  }

  /// Flushes, then stops and joins all POI threads.  Idempotent.
  void shutdown();

  /// Counter snapshot (consistent only when quiescent, e.g. after flush()).
  [[nodiscard]] EngineMetrics metrics() const;

  /// Publishes all engine counters into options().registry (`lar_*`
  /// families; see DESIGN.md "Observability").  No-op without a registry.
  /// Call when quiescent (after flush()) for a consistent snapshot; safe to
  /// call repeatedly — counters ratchet monotonically.
  void publish_metrics();

  /// Direct access to an operator instance for state inspection in tests
  /// and examples.  Only meaningful while quiescent.
  [[nodiscard]] Operator& operator_at(OperatorId op, InstanceIndex index);

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const Placement& placement() const noexcept {
    return placement_;
  }

 private:
  struct Poi;  // one operator instance: thread, inbox, routers, migration state

  void poi_loop(Poi& poi);
  void handle_data(Poi& poi, DataMsg msg);
  void deliver_data(Poi& poi, DataMsg msg);
  void buffer_tuple(Poi& poi, Key in_key, DataMsg msg);
  void flush_delayed(Poi& poi, std::uint32_t link);
  void flush_all_delayed(Poi& poi);
  void process_tuple(Poi& poi, const Tuple& tuple, Key in_key);
  void handle_reconf(Poi& poi, ReconfMsg msg);
  void handle_propagate(Poi& poi, const PropagateMsg& msg);
  void handle_migrate(Poi& poi, MigrateMsg msg);
  void handle_barrier(Poi& poi, const BarrierMsg& msg);
  void take_snapshot(Poi& poi, const BarrierMsg& msg);
  void handle_commit(Poi& poi, const CheckpointCommitMsg& msg);
  void handle_replay_request(Poi& poi, const ReplayRequestMsg& msg);
  void handle_replay_end(Poi& poi, const ReplayEndMsg& msg);
  void drop_data_in_flight(std::size_t n);
  void run_reconfig_actions(Poi& poi);
  void maybe_finish_reconfig(Poi& poi);
  void send_metrics(Poi& poi);

  /// One full protocol round (gather -> plan -> stage/ack -> wave) over the
  /// POIs on servers [0, max(current_n, target_n)).  current_n == target_n
  /// is the fixed-fleet round reconfigure() runs; otherwise the wave carries
  /// the elastic membership/activity change.  Calls mark_deployed on the
  /// manager iff the plan was actually pushed.  `app_scope` non-null makes
  /// the round tenant-scoped (lar::fleet): the plan comes from the
  /// FleetManager sliced to the tenant, wave membership is empty outside
  /// the tenant's operator range, and only the tenant's POIs participate in
  /// SEND_RECONF/PROPAGATE.  Scoped rounds never resize.
  core::ReconfigurationPlan run_protocol(
      core::Manager& manager, std::uint32_t current_n, std::uint32_t target_n,
      const fleet::AppContext* app_scope = nullptr);

  /// Shared tail of inject()/inject_app(): logs, counts and lane-pushes one
  /// tuple into the chosen source POI.  Caller holds source_mutex_.
  void inject_push_locked(OperatorId src, InstanceIndex instance,
                          Tuple&& tuple);

  /// LAR_CHECKs the topology/options shape elasticity supports.
  void require_elastic_capable() const;

  /// Swaps the injector-side active instance lists of every source operator
  /// to the prefix [0, num_active) (mutex-guarded against inject()).
  void set_inject_actives(std::uint32_t num_active);

  /// Blocks until every residual-drain MIGRATE has been imported.
  void drain_fence();

  /// Cold restore (start() before any thread spawns): when the checkpoint
  /// store already holds a committed epoch, restores every POI's key states,
  /// link cursors and applied plan version, re-activates the snapshotted
  /// server prefix, reinstalls the recovered routing configuration, and
  /// resumes the inject sequence counters (restored_inject_offset()).
  void restore_from_store();

  /// Folds a deployed plan's tables into deployed_tables_ and hands the
  /// resulting engine-wide routing configuration to the checkpoint store
  /// (note_plan), so the next full epoch file embeds it.
  void note_deployed_plan(const core::ReconfigurationPlan& plan,
                          std::uint32_t target_servers);

  /// Closes the wave span run_protocol() opened (no-op when spans are off
  /// or no wave is open).  Callers close after the post-wave work — drain
  /// fence, auto-checkpoint — so those nest inside the wave.
  void end_wave_span();

  [[nodiscard]] std::pair<double, double> measured_locality_balance() const;

  /// Routes `tuple` over edge at out-position `out_pos` from `poi`,
  /// serializing if cross-server; `in_key` is the emitting tuple's anchor
  /// key, forwarded to the receiver on non-fields edges.  `last` marks the
  /// final out-edge of this emission: a same-server hand-off may then move
  /// the tuple's field storage into the destination lane instead of copying
  /// (non-last local edges copy into an arena-recycled buffer).
  void send_data(Poi& poi, std::uint32_t out_pos, Tuple& tuple, Key in_key,
                 bool last);

  [[nodiscard]] Poi& poi_at(OperatorId op, InstanceIndex index);

  const Topology& topology_;
  const Placement& placement_;
  EngineOptions options_;
  OperatorFactory factory_;
  std::vector<std::optional<OperatorId>> anchors_;

  std::vector<std::unique_ptr<Poi>> pois_;           // all instances, flat
  std::vector<std::vector<std::size_t>> poi_index_;  // [op][instance] -> flat

  Channel<ManagerReply> manager_inbox_;

  // Quiescence tracking: +1 per enqueued data tuple (including injected and
  // buffered ones), -1 once fully processed.
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> tuples_injected_{0};
  std::atomic<std::uint64_t> tuples_buffered_{0};
  std::atomic<std::uint64_t> states_migrated_{0};
  std::atomic<std::uint64_t> states_migrated_bytes_{0};
  std::atomic<std::uint64_t> inject_seq_{0};

  // Elasticity state.  active_servers_ / elastic_ / poi activity flags are
  // only touched by the external driver thread (start/reconfigure/add/retire
  // are externally synchronized, like the rest of the control API); the
  // drain counter is an atomic fence between POI threads and that driver.
  std::uint32_t active_servers_ = 0;
  bool elastic_ = false;
  std::vector<OperatorId> sources_;  ///< cached topology_.sources()
  mutable std::mutex source_mutex_;  ///< guards source_actives_ vs inject()
  std::vector<std::vector<InstanceIndex>> source_actives_;  // [source pos]
  std::atomic<std::uint64_t> drains_in_flight_{0};
  std::atomic<std::uint64_t> states_drained_{0};
  std::atomic<std::uint64_t> states_drained_bytes_{0};
  std::atomic<std::uint64_t> scale_out_events_{0};
  std::atomic<std::uint64_t> scale_in_events_{0};

  // lar::ckpt state.  ckpt_enabled_ is fixed at construction; the inject
  // log (per-source-POI replay buffer + sequence counters for tuples that
  // enter via inject()) is guarded by source_mutex_ so barrier injection
  // and replay order exactly against concurrent inject() calls.  The crash
  // counters are atomics for the metrics snapshot; the driver-side recovery
  // bookkeeping is externally synchronized like the rest of the control API.
  bool ckpt_enabled_ = false;
  /// Incremental checkpointing (set when the coordinator's store asks for
  /// it): POIs track dirty keys and delta epochs snapshot only those.
  bool ckpt_delta_enabled_ = false;
  std::uint64_t last_plan_version_ = 0;  ///< last deployed wave version
  /// Flat indices of all source POIs, ascending (ckpt only: the inject-log
  /// truncation and cold restore pull exactly these slices from the store).
  std::vector<std::uint32_t> source_flats_;
  /// inject() calls already covered by the restored checkpoint chain.
  std::uint64_t restored_inject_offset_ = 0;
  /// Union of every deployed wave's routing tables (driver thread only) —
  /// the engine-wide configuration note_deployed_plan() hands the store.
  std::unordered_map<OperatorId, std::shared_ptr<const RoutingTable>>
      deployed_tables_;
  /// Injector-owned SPSC lane id on each source POI's inbox ([flat]; only
  /// source entries are meaningful).  inject(), barrier injection, and
  /// crashed-source replay all push on it under source_mutex_, which is the
  /// lane's producer serialization domain.
  std::vector<std::uint32_t> inject_lane_;
  std::vector<std::uint64_t> inject_out_seq_;          // [flat] source POIs
  std::vector<std::vector<DataMsg>> inject_replay_;    // [flat] source POIs
  std::atomic<std::uint64_t> checkpoints_committed_{0};
  std::atomic<std::uint64_t> ckpt_states_captured_{0};
  std::atomic<std::uint64_t> ckpt_state_bytes_{0};
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> pois_recovered_{0};
  std::atomic<std::uint64_t> states_restored_{0};
  std::atomic<std::uint64_t> states_restored_bytes_{0};
  std::atomic<std::uint64_t> tuples_replayed_{0};
  std::atomic<std::uint64_t> tuples_lost_at_crash_{0};

  // lar::fleet state (empty without options_.fleet).  The per-app inject
  // sequence and injected-tuple counts live under source_mutex_ like the
  // inject log; app_source_pos_ maps each tenant to its positions in
  // sources_ and is immutable after construction.
  fleet::FleetManager* fleet_ = nullptr;
  std::vector<std::vector<std::size_t>> app_source_pos_;  // [app]
  std::vector<std::uint64_t> app_inject_seq_;             // [app]
  std::vector<std::uint64_t> app_tuples_injected_;        // [app]

  // Chaos / recovery counters (stay zero in the disabled mode).
  std::atomic<std::uint64_t> tuples_spilled_{0};
  std::atomic<std::uint64_t> tuples_spilled_bytes_{0};
  std::atomic<std::uint64_t> data_dups_dropped_{0};
  std::atomic<std::uint64_t> migrates_deduped_{0};
  std::atomic<std::uint64_t> migrate_redeliveries_{0};
  std::atomic<std::uint64_t> stats_reports_lost_{0};
  std::atomic<std::uint64_t> stats_reports_stale_{0};

  // obs v2 state, touched only by the externally-synchronized control API:
  // control_epoch_ counts control-plane operations (waves, checkpoints,
  // crashes) and is the vtime of engine-side spans; publish_epoch_ counts
  // publish_metrics() calls and is the timeline tick vtime; wave_span_ is
  // the span run_protocol() opened, closed by its caller.
  std::uint64_t control_epoch_ = 0;
  std::uint64_t publish_epoch_ = 0;
  std::uint64_t wave_span_ = 0;

  // Gather-epoch state, touched only by the reconfigure() caller thread:
  // reports kStatsDelay held back, merged (stale) into the next epoch.
  std::uint64_t gather_epoch_ = 0;
  std::vector<std::pair<std::uint32_t, std::vector<core::PairCount>>>
      delayed_stats_;

  struct EdgeCounters {
    std::atomic<std::uint64_t> local{0};
    std::atomic<std::uint64_t> remote{0};
    std::atomic<std::uint64_t> remote_bytes{0};
  };
  std::vector<EdgeCounters> edge_counters_;

  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace lar::runtime
