// Wire codec for tuples crossing simulated server boundaries.
//
// The runtime engine runs every server in one process, but a tuple sent to a
// POI on a *different* server takes the "network" path: it is serialized
// into a flat byte buffer (padding bytes materialized, so the copy cost is
// real), counted against the edge's byte counters, and parsed back on the
// receiving side — the same work a real broker/transport would do, minus the
// kernel.  Same-server tuples are handed over by move, the "address in
// memory" fast path the paper describes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "topology/types.hpp"

namespace lar::runtime {

/// Serializes `tuple` (fields, then padding as zero bytes).
[[nodiscard]] std::vector<std::byte> encode_tuple(const Tuple& tuple);

/// Parses a buffer produced by encode_tuple().
[[nodiscard]] Tuple decode_tuple(std::span<const std::byte> bytes);

}  // namespace lar::runtime
