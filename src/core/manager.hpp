// The Manager (Section 3.3-3.4): turns collected pair statistics into
// optimized routing tables and migration plans.
//
// The Manager is engine-agnostic: the threaded runtime feeds it statistics
// gathered over its control-plane protocol and executes the plan with the
// full DAG-ordered migration choreography; the simulator and the offline
// analysis mode call compute_plan() directly and apply tables atomically.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/advisor.hpp"
#include "core/bipartite.hpp"
#include "core/pair_stats.hpp"
#include "core/plan.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "partition/partitioner.hpp"
#include "split/degree.hpp"
#include "topology/placement.hpp"
#include "topology/routing.hpp"
#include "topology/topology.hpp"

namespace lar::core {

/// Manager tuning.
struct ManagerOptions {
  /// Balance constraint and partitioner knobs.  num_parts is overridden with
  /// the server count of the Placement.  alpha defaults to 1.03, the Metis
  /// default the paper uses (Section 4.3).
  partition::PartitionOptions partition;

  /// Keep only the heaviest `top_edges` pairs per hop when building the key
  /// graph (0 = all).  This is the x-axis of Figure 12.
  std::size_t top_edges = 0;

  /// Hierarchical (rack-aware) key placement — the paper's Section 6 future
  /// work: when the Placement defines multiple racks, the key graph is first
  /// partitioned across racks and then, within each rack, across its
  /// servers.  Pairs that cannot be server-local (e.g. because of the
  /// balance constraint) then tend to stay rack-local, keeping traffic off
  /// the rack uplinks.  Ignored when the placement has a single rack.
  bool rack_aware = false;

  /// If non-empty, every computed plan's routing tables are saved to this
  /// file before the plan is handed to the engine — the paper's fault
  /// tolerance rule ("the manager saves all routing configurations to stable
  /// storage before starting reconfiguration", Section 3.4).  A restarted
  /// manager calls restore_from_snapshot() to recover the deployed tables.
  std::string snapshot_path;

  /// Cost/benefit model consulted by advise() (Section 6 future work).
  AdvisorOptions advisor;

  /// When set, engines gate plan deployment on advise(): a plan whose
  /// predicted benefit does not cover its migration cost is computed (and
  /// still observable in `lar_plan_*`) but never pushed.  Off by default so
  /// existing benches keep unconditional-deploy behaviour byte-identical.
  bool advise_deploys = false;

  /// lar::split hot-key splitting (DESIGN.md §14).  max_degree 1 (the
  /// default) disables splitting; plans are then bit-identical to the
  /// pre-split planner.
  split::SplitOptions split;
};

/// Merged statistics for one optimizable hop: pairs (k, k') where k routed a
/// tuple into `in_op` and k' routed the successor tuple into `out_op`.
struct HopStats {
  OperatorId in_op = 0;
  OperatorId out_op = 0;
  std::vector<PairCount> pairs;
};

/// Computes reconfiguration plans and remembers the currently deployed
/// tables (needed to derive state-migration lists).
class Manager {
 public:
  Manager(const Topology& topology, const Placement& placement,
          ManagerOptions options);

  /// The hops this topology can optimize: fields-grouped edges X -> Y where
  /// X is stateful (and therefore fields-routed itself, able to observe
  /// (input key, output key) pairs).
  [[nodiscard]] const std::vector<EdgeSpec>& optimizable_hops() const noexcept {
    return hops_;
  }

  /// Builds the key graph from `stats`, partitions it across servers, and
  /// derives routing tables plus migration lists relative to the currently
  /// deployed tables.  Does NOT deploy the plan; call mark_deployed() once
  /// the engine has applied it.
  [[nodiscard]] ReconfigurationPlan compute_plan(
      const std::vector<HopStats>& stats);

  /// Like compute_plan(), but re-plans for `active_servers` live servers
  /// (the prefix [0, active_servers) of the placement) — the elastic
  /// re-planning entry point.  Every fields-routed operator receives a
  /// table (possibly with no explicit entries) whose hash-fallback domain
  /// is the new epoch's active instance set, so unknown keys switch moduli
  /// atomically with the table swap and never split between `hash % n_old`
  /// and `hash % n_new` mid-wave.
  [[nodiscard]] ReconfigurationPlan plan_for(const std::vector<HopStats>& stats,
                                             std::uint32_t active_servers);

  /// Pure cost/benefit verdict for deploying `plan` given the currently
  /// measured locality and balance (options().advisor model).  Publishes
  /// nothing; deployment gating is the caller's decision.
  [[nodiscard]] AdvisorVerdict advise(const ReconfigurationPlan& plan,
                                      double current_locality,
                                      double current_balance) const {
    return evaluate_plan(plan, current_locality, current_balance,
                         options_.advisor);
  }

  /// Records `plan` as the deployed configuration, so the next plan's
  /// migration lists diff against it.
  void mark_deployed(const ReconfigurationPlan& plan);

  /// Recovers the deployed tables from options().snapshot_path after a
  /// manager restart.  Returns the restored plan (tables only; engines can
  /// re-apply it).  Fails if no snapshot exists.
  [[nodiscard]] Result<ReconfigurationPlan> restore_from_snapshot();

  /// Currently deployed table for `op` (nullptr = pure hash routing).
  [[nodiscard]] std::shared_ptr<const RoutingTable> current_table(
      OperatorId op) const;

  [[nodiscard]] const ManagerOptions& options() const noexcept {
    return options_;
  }
  void set_top_edges(std::size_t top_edges) noexcept {
    options_.top_edges = top_edges;
  }

  /// Attaches a metrics registry; every compute_plan() publishes its
  /// diagnostics there (`lar_plan_*`, `lar_partitioner_*`,
  /// `lar_snapshot_*` — see DESIGN.md "Observability").  Null detaches
  /// (the no-op mode).  The registry must outlive the manager.
  void set_metrics_registry(obs::Registry* registry) noexcept {
    registry_ = registry;
  }

  /// Attaches a timeline store (obs v2): every compute ticks it right
  /// after the plan diagnostics are published, at vtime = plan version —
  /// one tick per planning round.  Requires an attached registry to have
  /// any effect; null detaches.
  void set_timeline(obs::Timeline* timeline) noexcept {
    timeline_ = timeline;
  }

 private:
  [[nodiscard]] ReconfigurationPlan compute_impl(
      const std::vector<HopStats>& stats, std::uint32_t active_servers,
      bool elastic);
  void publish_plan_metrics(const ReconfigurationPlan& plan);
  const Topology& topology_;
  const Placement& placement_;
  ManagerOptions options_;
  std::vector<EdgeSpec> hops_;
  std::vector<OperatorId> fields_dest_ops_;  ///< sorted unique kFields dests
  std::uint64_t next_version_ = 1;
  std::unordered_map<OperatorId, std::shared_ptr<const RoutingTable>>
      deployed_;
  obs::Registry* registry_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
};

}  // namespace lar::core
