#include "core/pair_stats.hpp"

#include <unordered_map>

namespace lar::core {

PairStats::PairStats(std::size_t capacity)
    : capacity_(capacity), approx_(capacity == 0 ? 1 : capacity) {}

void PairStats::record(Key in, Key out) {
  if (capacity_ == 0) {
    exact_.add(KeyPair{in, out});
  } else {
    approx_.add(KeyPair{in, out});
  }
}

std::vector<PairCount> PairStats::snapshot(std::size_t top_n) const {
  std::vector<PairCount> out;
  auto convert = [&out](const auto& entries) {
    out.reserve(entries.size());
    for (const auto& e : entries) {
      out.push_back(PairCount{e.key.in, e.key.out, e.count});
    }
  };
  if (capacity_ == 0) {
    convert(top_n == 0 ? exact_.entries() : exact_.top(top_n));
  } else {
    convert(top_n == 0 ? approx_.entries() : approx_.top(top_n));
  }
  return out;
}

std::uint64_t PairStats::total() const noexcept {
  return capacity_ == 0 ? exact_.total() : approx_.total();
}

std::size_t PairStats::size() const noexcept {
  return capacity_ == 0 ? exact_.size() : approx_.size();
}

void PairStats::reset() {
  if (capacity_ == 0) {
    exact_.clear();
  } else {
    approx_.clear();
  }
}

std::vector<PairCount> merge_pair_counts(
    const std::vector<std::vector<PairCount>>& snapshots) {
  std::unordered_map<KeyPair, std::uint64_t, KeyPairHash> merged;
  for (const auto& snapshot : snapshots) {
    for (const auto& pc : snapshot) {
      merged[KeyPair{pc.in, pc.out}] += pc.count;
    }
  }
  std::vector<PairCount> out;
  out.reserve(merged.size());
  for (const auto& [pair, count] : merged) {
    out.push_back(PairCount{pair.in, pair.out, count});
  }
  return out;
}

}  // namespace lar::core
