#include "core/pair_stats.hpp"

#include <algorithm>

#include "common/flat_map.hpp"

namespace lar::core {

PairStats::PairStats(std::size_t capacity)
    : capacity_(capacity), approx_(capacity == 0 ? 1 : capacity) {}

void PairStats::record(Key in, Key out) {
  if (capacity_ == 0) {
    exact_.add(KeyPair{in, out});
  } else {
    approx_.add(KeyPair{in, out});
  }
}

std::vector<PairCount> PairStats::snapshot(std::size_t top_n) const {
  std::vector<PairCount> out;
  auto convert = [&out](const auto& entries) {
    out.reserve(entries.size());
    for (const auto& e : entries) {
      out.push_back(PairCount{e.key.in, e.key.out, e.count});
    }
  };
  if (capacity_ == 0) {
    convert(top_n == 0 ? exact_.entries() : exact_.top(top_n));
  } else {
    convert(top_n == 0 ? approx_.entries() : approx_.top(top_n));
  }
  return out;
}

std::uint64_t PairStats::total() const noexcept {
  return capacity_ == 0 ? exact_.total() : approx_.total();
}

std::size_t PairStats::size() const noexcept {
  return capacity_ == 0 ? exact_.size() : approx_.size();
}

void PairStats::reset() {
  if (capacity_ == 0) {
    exact_.clear();
  } else {
    approx_.clear();
  }
}

std::vector<PairCount> merge_pair_counts(
    const std::vector<std::vector<PairCount>>& snapshots) {
  FlatMap<KeyPair, std::uint64_t, KeyPairHash> merged;
  std::size_t upper = 0;
  for (const auto& snapshot : snapshots) upper += snapshot.size();
  merged.reserve(upper);
  for (const auto& snapshot : snapshots) {
    for (const auto& pc : snapshot) {
      merged[KeyPair{pc.in, pc.out}] += pc.count;
    }
  }
  std::vector<PairCount> out;
  out.reserve(merged.size());
  merged.for_each([&out](const KeyPair& pair, std::uint64_t count) {
    out.push_back(PairCount{pair.in, pair.out, count});
  });
  // Canonical (in, out) order: the merged list must be a pure function of the
  // pair *set*, not of any hash map's iteration order — downstream consumers
  // truncate to the top-N heaviest pairs (ManagerOptions::top_edges), and a
  // tie at that boundary would otherwise resolve differently run to run.
  std::sort(out.begin(), out.end(),
            [](const PairCount& a, const PairCount& b) {
              return a.in != b.in ? a.in < b.in : a.out < b.out;
            });
  return out;
}

}  // namespace lar::core
