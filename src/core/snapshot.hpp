// Routing-configuration persistence (fault tolerance, Section 3.4):
// "To handle fault tolerance, the manager saves all routing configurations
// to stable storage before starting reconfiguration."
//
// A snapshot stores the plan version and every routing table (key ->
// instance per destination operator).  Migration lists are deliberately NOT
// stored: they are transient choreography; after a manager restart the next
// compute_plan() re-derives moves by diffing against the restored tables.
//
// Format (v3): "LARP" magic, format version, plan version, diagnostics,
// then per table: operator id, table version, entry count, (key, instance)
// pairs, fallback-domain count + instances; finally the per-link sequence
// cursor section (count + (link, seq) pairs — lar::ckpt replay watermarks).
// v2 snapshots (no cursor section) still load, with empty link_cursors.
// Little-endian binary.
//
// The codec is split into a buffer layer (serialize_plan / parse_plan) and
// a file layer (save_plan / load_plan) so the durable checkpoint store can
// embed plan snapshots inside its epoch files without a second format.
// Tables serialize in ascending operator-id order — byte-identical output
// for a given configuration regardless of how plan.tables was populated.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/plan.hpp"

namespace lar::core {

/// Appends the snapshot byte stream for `plan` to `out` (the exact bytes
/// save_plan would write to disk).
void serialize_plan(const ReconfigurationPlan& plan,
                    std::vector<std::byte>& out);

/// Parses a snapshot byte stream produced by serialize_plan/save_plan.  The
/// returned plan carries tables and diagnostics; its `moves` are empty.
[[nodiscard]] Result<ReconfigurationPlan> parse_plan(const std::byte* data,
                                                     std::size_t size);

/// Writes `plan`'s routing tables to `path` (atomically: temp file + rename).
[[nodiscard]] Status save_plan(const ReconfigurationPlan& plan,
                               const std::string& path);

/// Reads a snapshot back.  The returned plan carries tables and diagnostics;
/// its `moves` are empty.
[[nodiscard]] Result<ReconfigurationPlan> load_plan(const std::string& path);

}  // namespace lar::core
