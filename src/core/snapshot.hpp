// Routing-configuration persistence (fault tolerance, Section 3.4):
// "To handle fault tolerance, the manager saves all routing configurations
// to stable storage before starting reconfiguration."
//
// A snapshot stores the plan version and every routing table (key ->
// instance per destination operator).  Migration lists are deliberately NOT
// stored: they are transient choreography; after a manager restart the next
// compute_plan() re-derives moves by diffing against the restored tables.
//
// Format (v3): "LARP" magic, format version, plan version, diagnostics,
// then per table: operator id, table version, entry count, (key, instance)
// pairs, fallback-domain count + instances; finally the per-link sequence
// cursor section (count + (link, seq) pairs — lar::ckpt replay watermarks).
// v2 snapshots (no cursor section) still load, with empty link_cursors.
// Little-endian binary.
#pragma once

#include <string>

#include "common/status.hpp"
#include "core/plan.hpp"

namespace lar::core {

/// Writes `plan`'s routing tables to `path` (atomically: temp file + rename).
[[nodiscard]] Status save_plan(const ReconfigurationPlan& plan,
                               const std::string& path);

/// Reads a snapshot back.  The returned plan carries tables and diagnostics;
/// its `moves` are empty.
[[nodiscard]] Result<ReconfigurationPlan> load_plan(const std::string& path);

}  // namespace lar::core
