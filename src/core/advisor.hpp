// Reconfiguration advisor — the paper's Section 6 future work:
// "we will design estimators able to predict the impact of a
// reconfiguration to provide more fine-grained information to the manager.
// When the workload is very volatile, it is important to avoid triggering
// reconfigurations for ephemeral correlations, as the cost of reconfiguring
// would not be amortized."
//
// The advisor scores a candidate plan against the currently observed
// locality and load balance: the predicted benefit is the locality gain
// (expected locality of the plan minus measured locality) plus the balance
// improvement, amortized over the reconfiguration period; the cost is the
// state migration volume.  Deploy only when benefit outweighs cost.
#pragma once

#include <algorithm>

#include "core/plan.hpp"

namespace lar::core {

struct AdvisorOptions {
  /// Tuples the application processes between two reconfiguration
  /// opportunities (the amortization horizon).
  double tuples_per_period = 1e6;

  /// Cost of migrating one key's state, expressed in tuple-equivalents
  /// (serialize + ship + import + buffering disturbance).
  double cost_per_move = 50.0;

  /// Benefit of raising locality by 1.0 for one tuple, in tuple-equivalents
  /// (a remote hop costs roughly one extra tuple's work; see the simulator
  /// calibration).
  double benefit_per_locality_point = 0.7;

  /// Weight of load-balance improvement: reducing max/avg from b to b' frees
  /// roughly (1 - b'/b) of the bottleneck server per tuple.
  double benefit_per_balance_point = 1.0;

  /// Minimum net benefit (in tuple-equivalents) to recommend deployment;
  /// > 0 adds hysteresis against ephemeral correlations.
  double min_net_benefit = 0.0;
};

/// The advisor's verdict with its reasoning, for observability.
struct AdvisorVerdict {
  bool deploy = false;
  double predicted_benefit = 0.0;  ///< tuple-equivalents per period
  double migration_cost = 0.0;     ///< tuple-equivalents
};

/// Scores `plan` against the currently measured `locality` (of the
/// optimizable hops) and `balance` (max/avg load of the most skewed
/// stateful operator).  Pure function of its inputs; stateless.
[[nodiscard]] inline AdvisorVerdict evaluate_plan(
    const ReconfigurationPlan& plan, double current_locality,
    double current_balance, const AdvisorOptions& options = {}) {
  AdvisorVerdict verdict;
  if (plan.tables.empty()) return verdict;  // nothing to deploy

  const double locality_gain =
      std::max(0.0, plan.expected_locality - current_locality);
  // Balance improvement: the plan's partition imbalance approximates the
  // post-deployment balance; improvement frees bottleneck capacity.
  const double balance_gain =
      current_balance > 0.0 && plan.imbalance < current_balance
          ? 1.0 - plan.imbalance / current_balance
          : 0.0;

  verdict.predicted_benefit =
      options.tuples_per_period *
      (options.benefit_per_locality_point * locality_gain +
       options.benefit_per_balance_point * balance_gain);
  verdict.migration_cost =
      options.cost_per_move * static_cast<double>(plan.total_moves());
  verdict.deploy = verdict.predicted_benefit - verdict.migration_cost >
                   options.min_net_benefit;
  return verdict;
}

}  // namespace lar::core
