// Bipartite key-graph construction (Section 3.3, Figure 5).
//
// Merged pair statistics become a vertex- and edge-weighted graph:
// each vertex is a key *qualified by the operator it routes into* (so "java"
// as an input of A and "java" as an input of B are distinct vertices), with
// weight = key frequency; each edge weight is the pair co-occurrence count.
// Partitioning this graph into one part per server yields the key->server
// assignment from which routing tables are generated.
//
// Chains longer than two stateful POs compose naturally: pairs recorded at
// A couple (A-key, B-key) and pairs recorded at B couple (B-key, C-key);
// shared B-key vertices stitch the per-hop bipartite graphs into one.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pair_stats.hpp"
#include "partition/graph.hpp"
#include "split/degree.hpp"
#include "topology/types.hpp"

namespace lar::core {

/// A key as routed into a specific operator.  lar::split keys with degree
/// d >= 2 appear as d distinct *replica* vertices (replica in [0, d)) so the
/// partitioner places each partial-aggregation replica independently for
/// balance; unsplit keys keep replica == 0.
struct KeyVertex {
  OperatorId op = 0;
  Key key = 0;
  std::uint32_t replica = 0;

  friend bool operator==(const KeyVertex&, const KeyVertex&) = default;
};

struct KeyVertexHash {
  [[nodiscard]] std::size_t operator()(const KeyVertex& v) const noexcept {
    return static_cast<std::size_t>(hash_pair(v.op, v.key));
  }
};

/// The built graph plus the vertex id <-> key mapping.
struct KeyGraph {
  partition::Graph graph;
  std::vector<KeyVertex> vertices;  ///< partition vertex id -> key vertex

  [[nodiscard]] std::size_t num_keys() const noexcept {
    return vertices.size();
  }
};

/// Accumulates merged pair statistics and builds the partition input.
class BipartiteGraphBuilder {
 public:
  /// Adds the merged statistics of the hop `in_op` -> `out_op`: every pair
  /// (k, k') was observed `count` times where k routed a tuple into `in_op`
  /// and k' routed its successor tuple into `out_op`.
  void add_pairs(OperatorId in_op, OperatorId out_op,
                 const std::vector<PairCount>& pairs);

  /// Keeps only the `top_edges` heaviest pairs per hop before building
  /// (0 = keep all).  Models the bounded statistics budget of Figure 12.
  void set_top_edges(std::size_t top_edges) noexcept { top_edges_ = top_edges; }

  /// Declares lar::split degrees: each listed (op, key) materializes as
  /// `degree` replica vertices, with every incident pair's weight spread
  /// across the replica cross product (equal integer shares, remainder to
  /// the lowest flat indices — deterministic and order-free).  Unlisted keys
  /// keep one vertex; an empty list (the default) reproduces the unsplit
  /// graph bit-for-bit.
  void set_split_degrees(std::vector<split::KeyDegree> degrees) {
    degrees_ = std::move(degrees);
  }

  /// Builds the graph.  Vertex weights are the sums of incident pair counts;
  /// parallel pair observations are merged.
  [[nodiscard]] KeyGraph build() const;

 private:
  struct Hop {
    OperatorId in_op;
    OperatorId out_op;
    std::vector<PairCount> pairs;
  };
  std::vector<Hop> hops_;
  std::vector<split::KeyDegree> degrees_;
  std::size_t top_edges_ = 0;
};

}  // namespace lar::core
