// Locality and load-balance measurement primitives.
//
// Engines (runtime and simulator) count, per fields-grouped edge, how many
// tuples stayed on their server versus crossed the network, and how many
// tuples each instance received.  These are the y-axes of Figures 11a/11b.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.hpp"

namespace lar::core {

/// Tuple counts of one edge split by destination locality.
struct EdgeTraffic {
  std::uint64_t local = 0;   ///< dest instance on the emitting server
  std::uint64_t remote = 0;  ///< dest instance on another server

  /// Fraction of tuples that stayed local; 0 when no traffic.
  [[nodiscard]] double locality() const noexcept {
    const std::uint64_t total = local + remote;
    return total == 0 ? 0.0 : static_cast<double>(local) /
                                  static_cast<double>(total);
  }

  EdgeTraffic& operator+=(const EdgeTraffic& other) noexcept {
    local += other.local;
    remote += other.remote;
    return *this;
  }
};

/// Load-balance factor over per-instance tuple counts: max / average
/// (1.0 = perfectly balanced), the paper's Figure 11b metric.
[[nodiscard]] inline double load_balance(
    std::span<const std::uint64_t> per_instance_load) noexcept {
  return imbalance(per_instance_load);
}

}  // namespace lar::core
