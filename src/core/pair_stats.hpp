// Key-pair instrumentation (Section 3.2, Figure 4).
//
// Every stateful POI records, for each tuple it processes, the pair
// (input key that routed the tuple to this instance,
//  output key that decides where the tuple goes next)
// in bounded memory using SpaceSaving.  The manager periodically collects
// these statistics from all instances, merges them, and partitions the
// resulting bipartite key graph.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "sketch/exact_counter.hpp"
#include "sketch/space_saving.hpp"
#include "topology/types.hpp"

namespace lar::core {

/// An (input key, output key) co-occurrence.
struct KeyPair {
  Key in = 0;
  Key out = 0;

  friend bool operator==(const KeyPair&, const KeyPair&) = default;
};

struct KeyPairHash {
  [[nodiscard]] std::size_t operator()(const KeyPair& p) const noexcept {
    return static_cast<std::size_t>(hash_pair(p.in, p.out));
  }
};

/// One observed pair with its (possibly approximate) frequency.
struct PairCount {
  Key in = 0;
  Key out = 0;
  std::uint64_t count = 0;
};

/// Per-POI pair-frequency collector.
///
/// `capacity` bounds the number of monitored pairs (the paper budgets ~1 MB
/// per POI, i.e. tens of thousands of entries); capacity 0 selects exact
/// counting, which is what the offline analysis mode uses.
class PairStats {
 public:
  explicit PairStats(std::size_t capacity);

  /// Records one tuple's (input key, output key) observation.
  void record(Key in, Key out);

  /// The monitored pairs, most frequent first, truncated to `top_n`
  /// (top_n == 0 means all).
  [[nodiscard]] std::vector<PairCount> snapshot(std::size_t top_n = 0) const;

  /// Total number of recorded observations.
  [[nodiscard]] std::uint64_t total() const noexcept;

  /// Number of distinct monitored pairs currently stored.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Forgets everything.  Called after each reconfiguration so the next one
  /// only reflects recent data (Section 3.2).
  void reset();

  [[nodiscard]] bool is_exact() const noexcept { return capacity_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  // Exactly one of these is active, chosen by capacity_ at construction.
  sketch::SpaceSaving<KeyPair, KeyPairHash> approx_;
  sketch::ExactCounter<KeyPair, KeyPairHash> exact_;
};

/// Merges snapshots from several POIs of the same PO into one pair list
/// (counts of identical pairs are summed).
[[nodiscard]] std::vector<PairCount> merge_pair_counts(
    const std::vector<std::vector<PairCount>>& snapshots);

}  // namespace lar::core
