// Reconfiguration plan: the output of the Manager's optimization round.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "topology/routing.hpp"
#include "topology/types.hpp"

namespace lar::core {

/// One key whose owning instance changes, requiring state migration.
struct KeyMove {
  Key key = 0;
  InstanceIndex from = 0;
  InstanceIndex to = 0;
};

/// Everything needed to transition the application to new routing tables
/// (Section 3.4): the tables themselves plus, per stateful operator, the
/// list of key states that must migrate between its instances.
struct ReconfigurationPlan {
  /// Monotonic plan version; also stamped on every table.
  std::uint64_t version = 0;

  /// Live-server count this plan targets (the active prefix [0, n)).
  /// 0 means the plan was computed by the fixed-fleet compute_plan() path
  /// and spans the full placement.
  std::uint32_t active_servers = 0;

  /// destination operator -> new routing table for all its inbound
  /// fields-grouped edges.  Shared and immutable once published.
  std::unordered_map<OperatorId, std::shared_ptr<const RoutingTable>> tables;

  /// operator -> key moves between its instances (old owner -> new owner).
  std::unordered_map<OperatorId, std::vector<KeyMove>> moves;

  /// Per-link sequence cursors (lar::ckpt): pairs of (flat link id, last
  /// sequence number seen) persisted alongside the routing state, so a
  /// restarted deployment can resume exactly-once replay from the same
  /// watermarks the checkpoint was committed at.  Empty for plans that
  /// never rode a checkpoint (and for v2 snapshots read back).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> link_cursors;

  // --- diagnostics -------------------------------------------------------
  /// Locality the partitioner predicts on the training data:
  /// 1 - edge_cut / total pair weight (the "Metis reports an expected
  /// locality of 75%" number of Section 4.3).
  double expected_locality = 0.0;
  std::uint64_t edge_cut = 0;        ///< cut weight of the key graph
  /// Cut weight of the same key graph under the *previously deployed*
  /// routing (hash or the last tables) — the "before" to edge_cut's
  /// "after", so every plan quantifies the locality it buys.
  std::uint64_t edge_cut_before = 0;
  double imbalance = 1.0;            ///< partition imbalance (max/avg)
  std::size_t keys_assigned = 0;     ///< explicit routing table entries
  std::size_t keys_split = 0;        ///< lar::split keys with degree >= 2
  std::uint32_t max_split_degree = 0;  ///< largest deployed candidate count
  std::size_t graph_vertices = 0;
  std::size_t graph_edges = 0;

  /// Plan-compute "duration" in deterministic algorithmic iterations (FM
  /// refinement passes / multilevel bisections summed over all partitioner
  /// invocations) — never wall-clock, per the determinism invariant.
  std::uint64_t partitioner_fm_passes = 0;
  std::uint64_t partitioner_bisections = 0;

  /// Total number of key moves across all operators.
  [[nodiscard]] std::size_t total_moves() const noexcept {
    std::size_t n = 0;
    for (const auto& [op, m] : moves) n += m.size();
    return n;
  }
};

}  // namespace lar::core
