#include "core/manager.hpp"

#include <algorithm>

#include "common/flat_map.hpp"
#include "common/logging.hpp"
#include "common/status.hpp"
#include "core/snapshot.hpp"
#include "partition/quality.hpp"

namespace lar::core {

namespace {

/// Per-operator balance repair (Section 3.1 states the α bound per PO: "the
/// number of data tuples received by a POI should not be higher than α times
/// the average number of tuples received by POIs of the same PO").  The
/// single-constraint partitioner balances the *combined* key mass of all
/// operators per server; this pass greedily moves minimum-cut-penalty keys
/// of each overloaded operator from its hottest to its coldest server until
/// the per-operator bound holds (or no safe move remains).
void repair_per_op_balance(const KeyGraph& key_graph,
                           std::vector<std::uint32_t>& assignment,
                           const std::vector<std::uint32_t>& servers,
                           double alpha) {
  const partition::Graph& g = key_graph.graph;
  const std::size_t num_parts = servers.size();
  // server id -> slot in `servers` (or -1 if outside this repair domain).
  std::unordered_map<std::uint32_t, std::size_t> slot_of;
  for (std::size_t i = 0; i < servers.size(); ++i) slot_of[servers[i]] = i;

  std::unordered_map<OperatorId, std::vector<partition::VertexId>> by_op;
  for (partition::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (slot_of.contains(assignment[v])) {
      by_op[key_graph.vertices[v].op].push_back(v);
    }
  }

  // Scratch reused across operators.  `inc` holds, for each in-domain vertex
  // of the current operator, its incident edge weight toward every repair
  // slot; `members[s]` lists the operator's vertices on slot s in ascending
  // VertexId order.  Both are maintained incrementally across moves, so each
  // round costs O(|hot slot|) instead of O(|op| + edges) — the greedy picks
  // the exact same move sequence as a fresh full scan would.
  std::vector<std::int64_t> inc;
  std::vector<std::uint64_t> wv;
  std::vector<std::vector<std::uint32_t>> members(num_parts);

  for (auto& [op, vertices] : by_op) {
    const std::size_t n = vertices.size();
    std::vector<std::uint64_t> mass(num_parts, 0);
    std::uint64_t total = 0;
    wv.assign(n, 0);
    for (auto& m : members) m.clear();
    for (std::size_t i = 0; i < n; ++i) {
      wv[i] = g.vertex_weight(vertices[i]);
      const std::size_t s = slot_of.at(assignment[vertices[i]]);
      mass[s] += wv[i];
      total += wv[i];
      members[s].push_back(static_cast<std::uint32_t>(i));
    }
    const double cap =
        alpha * static_cast<double>(total) / static_cast<double>(num_parts) +
        1.0;
    const auto peak = static_cast<std::size_t>(
        std::max_element(mass.begin(), mass.end()) - mass.begin());
    if (static_cast<double>(mass[peak]) <= cap) continue;  // already balanced

    inc.assign(n * num_parts, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto nbrs = g.neighbors(vertices[i]);
      const auto wgts = g.neighbor_weights(vertices[i]);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const auto it = slot_of.find(assignment[nbrs[k]]);
        if (it != slot_of.end()) {
          inc[i * num_parts + it->second] +=
              static_cast<std::int64_t>(wgts[k]);
        }
      }
    }

    // Bounded number of rounds; each round moves one key off the hottest
    // server, so progress is monotone in its mass.
    for (std::size_t round = 0; round < n; ++round) {
      const auto hot_slot = static_cast<std::size_t>(
          std::max_element(mass.begin(), mass.end()) - mass.begin());
      if (static_cast<double>(mass[hot_slot]) <= cap) break;
      const auto cold_slot = static_cast<std::size_t>(
          std::min_element(mass.begin(), mass.end()) - mass.begin());

      // Pick the hot-server key with the smallest cut penalty for moving to
      // the cold server; skip keys so heavy the move would just swap roles.
      // First strict minimum in ascending VertexId order, as before.
      constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);
      std::uint32_t best = kNone;
      std::int64_t best_penalty = 0;
      for (const std::uint32_t i : members[hot_slot]) {
        if (mass[cold_slot] + wv[i] >= mass[hot_slot]) continue;  // no net gain
        const std::int64_t penalty = inc[i * num_parts + hot_slot] -
                                     inc[i * num_parts + cold_slot];
        if (best == kNone || penalty < best_penalty) {
          best = i;
          best_penalty = penalty;
        }
      }
      if (best == kNone) break;
      mass[hot_slot] -= wv[best];
      mass[cold_slot] += wv[best];
      const partition::VertexId moved = vertices[best];
      assignment[moved] = servers[cold_slot];
      auto& h = members[hot_slot];
      h.erase(std::lower_bound(h.begin(), h.end(), best));
      auto& c = members[cold_slot];
      c.insert(std::lower_bound(c.begin(), c.end(), best), best);
      // In-domain same-operator neighbors (none in a bipartite key graph,
      // but kept exact regardless) see their hot/cold incidence shift.
      const auto nbrs = g.neighbors(moved);
      const auto wgts = g.neighbor_weights(moved);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const auto u = nbrs[k];
        if (key_graph.vertices[u].op != op) continue;
        const auto it =
            std::lower_bound(vertices.begin(), vertices.end(), u);
        if (it == vertices.end() || *it != u) continue;  // outside domain
        const auto j =
            static_cast<std::size_t>(it - vertices.begin());
        inc[j * num_parts + hot_slot] -= static_cast<std::int64_t>(wgts[k]);
        inc[j * num_parts + cold_slot] += static_cast<std::int64_t>(wgts[k]);
      }
    }
  }
}

/// Hierarchical key placement (Section 6 future work): partition the key
/// graph across racks first, then each rack's induced subgraph across its
/// servers.  Cut pairs preferentially land inside racks.
std::vector<std::uint32_t> hierarchical_partition(
    const partition::Graph& g, const Placement& placement,
    partition::PartitionOptions options, std::uint64_t* fm_passes,
    std::uint64_t* bisections) {
  const std::uint32_t racks = placement.num_racks();
  partition::PartitionOptions rack_options = options;
  rack_options.num_parts = racks;
  const partition::PartitionResult rack_part =
      partition::partition_graph(g, rack_options);
  *fm_passes += rack_part.fm_passes;
  *bisections += rack_part.bisections;

  std::vector<std::uint32_t> assignment(g.num_vertices(), 0);
  for (std::uint32_t r = 0; r < racks; ++r) {
    std::vector<partition::VertexId> members;
    for (partition::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (rack_part.assignment[v] == r) members.push_back(v);
    }
    const std::vector<ServerId> servers = placement.servers_in_rack(r);
    LAR_CHECK(!servers.empty());
    if (members.empty()) continue;
    const partition::Subgraph sub = partition::induced_subgraph(g, members);
    partition::PartitionOptions server_options = options;
    server_options.num_parts = static_cast<std::uint32_t>(servers.size());
    server_options.seed = options.seed + r + 1;
    const partition::PartitionResult server_part =
        partition::partition_graph(sub.graph, server_options);
    *fm_passes += server_part.fm_passes;
    *bisections += server_part.bisections;
    for (std::size_t i = 0; i < members.size(); ++i) {
      assignment[sub.to_parent[i]] = servers[server_part.assignment[i]];
    }
  }
  return assignment;
}

/// lar::split replica placement overlay (DESIGN.md §14).  The partitioner
/// runs on the *base* (unsplit) key graph, so every unsplit key — the tail —
/// lands exactly where the no-split plan puts it; this lifts that assignment
/// onto the replica-expanded graph and places the extra replica vertices:
/// replica 0 pins to the base server, and each higher replica goes to the
/// least-loaded server not yet hosting one of the key's replicas (same-rack
/// first under hierarchical partitioning, then any unused server, then pure
/// least-loaded once the degree exceeds the server count).  Deterministic:
/// ties break on the lowest server id, loads accumulate in vertex order, and
/// `degrees` arrives in the selector's sorted (op, key) order.
std::vector<std::uint32_t> overlay_split_replicas(
    const KeyGraph& key_graph, const KeyGraph& base_graph,
    const std::vector<std::uint32_t>& base_assignment,
    const std::vector<split::KeyDegree>& degrees, std::uint32_t num_parts,
    const Placement& placement, bool rack_scoped) {
  FlatMap<KeyVertex, std::uint32_t, KeyVertexHash> base_server;
  for (std::size_t v = 0; v < base_graph.vertices.size(); ++v) {
    base_server[base_graph.vertices[v]] = base_assignment[v];
  }

  std::vector<std::uint32_t> out(key_graph.vertices.size(), 0);
  // Loads are tracked per operator: the α bound is per PO (Section 3.1), so
  // a replica of an op-X key must relieve the hottest op-X instance even if
  // that server is cold in combined mass.
  std::unordered_map<OperatorId, std::vector<std::uint64_t>> load_of_op;
  FlatMap<KeyVertex, std::size_t, KeyVertexHash> replica_index;
  for (std::size_t v = 0; v < key_graph.vertices.size(); ++v) {
    const KeyVertex& kv = key_graph.vertices[v];
    if (kv.replica != 0) {
      replica_index[kv] = v;
      continue;
    }
    // Both graphs are built from the same budget-cut pair set, so every
    // base vertex of the expanded graph exists in the base graph.
    const std::uint32_t* server = base_server.find(kv);
    LAR_CHECK(server != nullptr);
    out[v] = *server;
    auto [it, inserted] = load_of_op.try_emplace(kv.op);
    if (inserted) it->second.assign(num_parts, 0);
    it->second[*server] += key_graph.graph.vertex_weight(v);
  }

  for (const split::KeyDegree& kd : degrees) {
    const std::uint32_t* anchor =
        base_server.find(KeyVertex{kd.op, kd.key, 0});
    if (anchor == nullptr) continue;  // budget-cut from the graph entirely
    auto load_it = load_of_op.find(kd.op);
    LAR_CHECK(load_it != load_of_op.end());
    std::vector<std::uint64_t>& load = load_it->second;
    std::vector<std::uint32_t> used{*anchor};
    for (std::uint32_t r = 1; r < kd.degree; ++r) {
      const std::size_t* v = replica_index.find(KeyVertex{kd.op, kd.key, r});
      if (v == nullptr) continue;
      const auto is_used = [&](std::uint32_t s) {
        return std::find(used.begin(), used.end(), s) != used.end();
      };
      std::uint32_t pick = num_parts;
      for (int pass = rack_scoped ? 0 : 1; pass < 3 && pick == num_parts;
           ++pass) {
        for (std::uint32_t s = 0; s < num_parts; ++s) {
          if (pass < 2 && is_used(s)) continue;
          if (pass == 0 &&
              placement.rack_of(s) != placement.rack_of(*anchor)) {
            continue;
          }
          if (pick == num_parts || load[s] < load[pick]) pick = s;
        }
      }
      LAR_CHECK(pick < num_parts);
      out[*v] = pick;
      load[pick] += key_graph.graph.vertex_weight(*v);
      used.push_back(pick);
    }
  }
  return out;
}

/// Degree of (op, key) in the selector's sorted output; 1 when absent.
std::uint32_t split_degree_of(const std::vector<split::KeyDegree>& degrees,
                              OperatorId op, Key key) {
  const auto it = std::lower_bound(
      degrees.begin(), degrees.end(), std::make_pair(op, key),
      [](const split::KeyDegree& d, const std::pair<OperatorId, Key>& t) {
        return d.op != t.first ? d.op < t.first : d.key < t.second;
      });
  if (it == degrees.end() || it->op != op || it->key != key) return 1;
  return it->degree;
}

}  // namespace

Manager::Manager(const Topology& topology, const Placement& placement,
                 ManagerOptions options)
    : topology_(topology), placement_(placement), options_(options) {
  LAR_CHECK(topology.validate().is_ok());
  options_.partition.num_parts = placement.num_servers();
  // Optimizable hops: fields edges whose emitter carries an upstream
  // fields-routed key ("anchor") to correlate with — the emitter itself when
  // stateful, or the nearest fields-routed ancestor when stateless relays
  // sit in between (Figure 3's B -> C -> D).
  const auto anchors = compute_stats_anchors(topology);
  for (const auto& edge : topology.edges()) {
    if (edge.grouping == GroupingType::kFields &&
        anchors[edge.from].has_value()) {
      hops_.push_back(edge);
    }
  }
  // Fields-routed destination operators (sorted, unique): the ops whose
  // hash-fallback domain an elastic plan must pin to the new epoch, whether
  // or not the hop is optimizable.
  for (const auto& edge : topology.edges()) {
    if (edge.grouping == GroupingType::kFields) {
      fields_dest_ops_.push_back(edge.to);
    }
  }
  std::sort(fields_dest_ops_.begin(), fields_dest_ops_.end());
  fields_dest_ops_.erase(
      std::unique(fields_dest_ops_.begin(), fields_dest_ops_.end()),
      fields_dest_ops_.end());
}

ReconfigurationPlan Manager::compute_plan(const std::vector<HopStats>& stats) {
  return compute_impl(stats, placement_.num_servers(), /*elastic=*/false);
}

ReconfigurationPlan Manager::plan_for(const std::vector<HopStats>& stats,
                                      std::uint32_t active_servers) {
  LAR_CHECK(active_servers >= 1 &&
            active_servers <= placement_.num_servers());
  return compute_impl(stats, active_servers, /*elastic=*/true);
}

ReconfigurationPlan Manager::compute_impl(const std::vector<HopStats>& stats,
                                          std::uint32_t active_servers,
                                          bool elastic) {
  ReconfigurationPlan plan;
  plan.version = next_version_++;
  plan.active_servers = elastic ? active_servers : 0;

  // 1. Key graph from the merged statistics.
  BipartiteGraphBuilder builder;
  builder.set_top_edges(options_.top_edges);
  for (const auto& hop : stats) {
    builder.add_pairs(hop.in_op, hop.out_op, hop.pairs);
  }

  // 1b. lar::split degree selection (DESIGN.md §14): heavy hitters whose
  //     mass exceeds the per-instance balance cap become d replica vertices.
  //     With max_degree 1 (the default) `degrees` stays empty, the builder
  //     takes its unsplit path, and everything below is byte-identical.
  std::vector<split::KeyDegree> degrees;
  if (options_.split.max_degree > 1) {
    std::vector<split::HopView> views;
    views.reserve(stats.size());
    std::vector<split::OpInstances> insts;
    for (const auto& hop : stats) {
      views.push_back(split::HopView{hop.in_op, hop.out_op, &hop.pairs});
      for (const OperatorId op : {hop.in_op, hop.out_op}) {
        const bool seen = std::any_of(
            insts.begin(), insts.end(),
            [op](const split::OpInstances& oi) { return oi.op == op; });
        if (!seen) {
          insts.push_back(split::OpInstances{
              op, static_cast<std::uint32_t>(
                      placement_.active_instances(op, active_servers).size())});
        }
      }
    }
    std::sort(insts.begin(), insts.end(),
              [](const split::OpInstances& a, const split::OpInstances& b) {
                return a.op < b.op;
              });
    degrees = split::choose_degrees(views, options_.split,
                                    options_.partition.alpha, insts);
    builder.set_split_degrees(degrees);
  }

  const KeyGraph key_graph = builder.build();
  plan.graph_vertices = key_graph.graph.num_vertices();
  plan.graph_edges = key_graph.graph.num_edges();
  if (key_graph.graph.num_vertices() == 0 && !elastic) {
    plan.expected_locality = 0.0;
    publish_plan_metrics(plan);
    return plan;  // nothing observed yet: stay on hash routing
  }

  // Keys are partitioned over the active server prefix [0, active_servers).
  // In the fixed-fleet path this equals options_.partition.num_parts, so the
  // legacy output is bit-for-bit unchanged.
  partition::PartitionOptions popt = options_.partition;
  popt.num_parts = active_servers;

  partition::PartitionResult part;
  if (key_graph.graph.num_vertices() > 0) {
    // 2. Partition keys across servers under the balance constraint, then
    //    repair per-operator balance (the α bound of Section 3.1 is per PO).
    //    With a multi-rack placement and rack_aware set, partition
    //    hierarchically (racks, then servers per rack) and keep the repair
    //    moves rack-internal so they never reintroduce uplink traffic.
    //    Hierarchical placement presumes the full fleet: with a shrunken
    //    active prefix the rack structure no longer matches, so elastic
    //    plans at reduced n use the flat partitioner.
    const bool hierarchical =
        options_.rack_aware && placement_.num_racks() > 1 &&
        active_servers == placement_.num_servers();
    // lar::split: the partitioner (and the per-op repair) runs on the *base*
    // unsplit key graph, bit-identical to the no-split path, so splitting a
    // hot key never re-shuffles the tail — the §14 tail-locality guarantee.
    // Replica vertices are overlaid afterwards by overlay_split_replicas().
    KeyGraph base_graph;
    if (!degrees.empty()) {
      BipartiteGraphBuilder base_builder;
      base_builder.set_top_edges(options_.top_edges);
      for (const auto& hop : stats) {
        base_builder.add_pairs(hop.in_op, hop.out_op, hop.pairs);
      }
      base_graph = base_builder.build();
    }
    const KeyGraph& part_graph = degrees.empty() ? key_graph : base_graph;

    if (hierarchical) {
      part.assignment = hierarchical_partition(
          part_graph.graph, placement_, popt,
          &part.fm_passes, &part.bisections);
      for (std::uint32_t r = 0; r < placement_.num_racks(); ++r) {
        repair_per_op_balance(part_graph, part.assignment,
                              placement_.servers_in_rack(r),
                              popt.alpha);
      }
    } else {
      part = partition::partition_graph(part_graph.graph, popt);
      std::vector<std::uint32_t> all_servers(popt.num_parts);
      for (std::uint32_t s = 0; s < all_servers.size(); ++s) all_servers[s] = s;
      repair_per_op_balance(part_graph, part.assignment, all_servers,
                            popt.alpha);
    }
    if (!degrees.empty()) {
      part.assignment =
          overlay_split_replicas(key_graph, base_graph, part.assignment,
                                 degrees, popt.num_parts, placement_,
                                 hierarchical);
    }
    plan.edge_cut = partition::edge_cut(key_graph.graph, part.assignment);
    plan.imbalance = partition::partition_imbalance(
        key_graph.graph, part.assignment, popt.num_parts);
    plan.partitioner_fm_passes = part.fm_passes;
    plan.partitioner_bisections = part.bisections;

    // "Before" cut: the same key graph scored under the currently deployed
    // routing (last tables, hash for unknown keys) — what every plan is
    // improving on.
    {
      std::vector<std::uint32_t> deployed_assignment(key_graph.vertices.size());
      std::unordered_map<OperatorId, std::shared_ptr<const RoutingTable>>
          old_tables;
      for (std::size_t v = 0; v < key_graph.vertices.size(); ++v) {
        const KeyVertex& kv = key_graph.vertices[v];
        auto [it, inserted] = old_tables.try_emplace(kv.op);
        if (inserted) it->second = current_table(kv.op);
        const std::uint32_t parallelism = topology_.op(kv.op).parallelism;
        const InstanceIndex inst =
            it->second != nullptr ? it->second->route(kv.key, parallelism)
                                  : hash_instance(kv.key, parallelism);
        deployed_assignment[v] = placement_.server_of(kv.op, inst);
      }
      plan.edge_cut_before =
          partition::edge_cut(key_graph.graph, deployed_assignment);
    }
    const std::uint64_t total_pair_weight = key_graph.graph.total_edge_weight();
    plan.expected_locality =
        total_pair_weight == 0
            ? 0.0
            : 1.0 - static_cast<double>(plan.edge_cut) /
                        static_cast<double>(total_pair_weight);
  }

  // 3. Routing tables: map each key to an instance of its operator hosted on
  //    the assigned server.  Several local instances -> spread keys among
  //    them by hash; no local instance -> hash fallback over all instances.
  //    Split keys collect one target per replica vertex — replica r on
  //    server s maps to locals[(mix64(key) + r) % |locals|], so replica 0
  //    reproduces the unsplit pick exactly — deduplicated in replica order
  //    into the table's candidate list.
  std::unordered_map<OperatorId, std::shared_ptr<RoutingTable>> tables;
  FlatMap<KeyVertex, std::vector<std::pair<std::uint32_t, ServerId>>,
          KeyVertexHash>
      split_assigns;
  for (std::size_t v = 0; v < key_graph.vertices.size(); ++v) {
    const KeyVertex& kv = key_graph.vertices[v];
    const ServerId server = part.assignment[v];
    auto [it, inserted] = tables.try_emplace(kv.op);
    if (inserted) it->second = std::make_shared<RoutingTable>();
    if (!degrees.empty() &&
        (kv.replica != 0 ||
         split_degree_of(degrees, kv.op, kv.key) >= 2)) {
      split_assigns[KeyVertex{kv.op, kv.key, 0}].emplace_back(kv.replica,
                                                              server);
      continue;
    }
    const auto& locals = placement_.local_instances(kv.op, server);
    if (locals.empty()) continue;  // key keeps hash routing
    const InstanceIndex target =
        locals[mix64(kv.key) % locals.size()];
    it->second->assign(kv.key, target);
    ++plan.keys_assigned;
  }
  // Split keys, in the selector's ascending (op, key) order.
  for (const split::KeyDegree& kd : degrees) {
    auto* assigns = split_assigns.find(KeyVertex{kd.op, kd.key, 0});
    if (assigns == nullptr) continue;  // budget-cut from the graph entirely
    std::sort(assigns->begin(), assigns->end());
    std::vector<InstanceIndex> targets;
    for (const auto& [replica, server] : *assigns) {
      const auto& locals = placement_.local_instances(kd.op, server);
      if (locals.empty()) continue;
      const InstanceIndex target =
          locals[(mix64(kd.key) + replica) % locals.size()];
      if (std::find(targets.begin(), targets.end(), target) == targets.end()) {
        targets.push_back(target);
      }
    }
    auto it = tables.find(kd.op);
    LAR_CHECK(it != tables.end());
    if (targets.size() >= 2) {
      it->second->assign_split(kd.key, targets);
      ++plan.keys_assigned;
      ++plan.keys_split;
      plan.max_split_degree = std::max(
          plan.max_split_degree, static_cast<std::uint32_t>(targets.size()));
    } else if (targets.size() == 1) {
      // Replicas collapsed onto one instance: an ordinary assignment.
      it->second->assign(kd.key, targets[0]);
      ++plan.keys_assigned;
    }
  }

  // 3b. Elastic epoch consistency: EVERY fields-routed operator gets a
  //     table (with explicit entries or not) whose fallback domain is the
  //     new epoch's active instance set.  The domain travels inside the
  //     table and switches atomically with the wave's table swap.
  if (elastic) {
    for (const OperatorId op : fields_dest_ops_) {
      auto [it, inserted] = tables.try_emplace(op);
      if (inserted) it->second = std::make_shared<RoutingTable>();
      it->second->set_fallback(
          placement_.active_instances(op, active_servers));
    }
  }

  // 4. Migration lists: diff the new tables against the deployed ones over
  //    the union of their explicit keys (anything else stays hash-routed on
  //    the same instance either way).  sorted_entries() keeps the union — and
  //    therefore the move list — in ascending key order by construction.
  for (auto& [op, table] : tables) {
    table->set_version(plan.version);
    const std::uint32_t parallelism = topology_.op(op).parallelism;
    const std::shared_ptr<const RoutingTable> old = current_table(op);

    std::vector<Key> keys;
    keys.reserve(table->size() + (old != nullptr ? old->size() : 0));
    for (const auto& [key, inst] : table->sorted_entries()) keys.push_back(key);
    if (old != nullptr) {
      for (const auto& [key, inst] : old->sorted_entries()) keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    // Candidate-set diff (lar::split): a key's owners are its split
    // candidates, or the single routed instance when unsplit — so both sets
    // are singletons on no-split paths and this loop degenerates to the
    // classic `before != after` diff, move for move.  Every before-owner
    // that is no longer a candidate ships its (partial) state to the new
    // primary: on a degree decrease the replicas' partials converge there
    // and merge additively; on an increase only the old owner moves and the
    // fresh replicas start empty.
    auto candidates_of = [](const RoutingTable* t, Key key,
                            std::uint32_t fanout,
                            std::vector<InstanceIndex>& out) {
      out.clear();
      if (t == nullptr) {
        out.push_back(hash_instance(key, fanout));
        return;
      }
      const auto split = t->split_candidates(key);
      if (!split.empty()) {
        out.assign(split.begin(), split.end());
        return;
      }
      out.push_back(t->route(key, fanout));
    };
    std::vector<KeyMove> moves;
    std::vector<InstanceIndex> before_set;
    std::vector<InstanceIndex> after_set;
    for (const Key key : keys) {
      candidates_of(old.get(), key, parallelism, before_set);
      candidates_of(table.get(), key, parallelism, after_set);
      for (const InstanceIndex inst : before_set) {
        const bool kept = std::find(after_set.begin(), after_set.end(),
                                    inst) != after_set.end();
        if (!kept) moves.push_back(KeyMove{key, inst, after_set.front()});
      }
    }
    if (topology_.op(op).stateful && !moves.empty()) {
      plan.moves.emplace(op, std::move(moves));
    }
    plan.tables.emplace(op, std::move(table));
  }

  // Fault tolerance: persist the configuration before any engine sees it.
  if (!options_.snapshot_path.empty()) {
    const Status saved = save_plan(plan, options_.snapshot_path);
    if (!saved.is_ok()) {
      LAR_ERROR << "manager: snapshot failed: " << saved.to_string();
      if (registry_ != nullptr) {
        registry_
            ->counter("lar_snapshot_write_failures_total", {},
                      "Failed routing-configuration snapshot writes")
            .inc();
      }
    } else if (registry_ != nullptr) {
      registry_
          ->counter("lar_snapshot_writes_total", {},
                    "Routing-configuration snapshots persisted before deploy")
          .inc();
    }
  }

  publish_plan_metrics(plan);
  LAR_INFO << "manager: plan v" << plan.version << " keys="
           << plan.keys_assigned << " cut=" << plan.edge_cut
           << " expected_locality=" << plan.expected_locality
           << " imbalance=" << plan.imbalance
           << " moves=" << plan.total_moves();
  return plan;
}

void Manager::publish_plan_metrics(const ReconfigurationPlan& plan) {
  if (registry_ == nullptr) return;
  obs::Registry& reg = *registry_;
  reg.counter("lar_plans_computed_total", {},
              "Reconfiguration plans computed by the manager")
      .inc();
  reg.gauge("lar_plan_graph_vertices", {},
            "Key-graph vertices of the last computed plan")
      .set(static_cast<double>(plan.graph_vertices));
  reg.gauge("lar_plan_graph_edges", {},
            "Key-graph edges of the last computed plan")
      .set(static_cast<double>(plan.graph_edges));
  reg.gauge("lar_plan_edge_cut", {{"when", "before"}},
            "Key-graph cut weight under the deployed (before) vs planned "
            "(after) server assignment")
      .set(static_cast<double>(plan.edge_cut_before));
  reg.gauge("lar_plan_edge_cut", {{"when", "after"}},
            "Key-graph cut weight under the deployed (before) vs planned "
            "(after) server assignment")
      .set(static_cast<double>(plan.edge_cut));
  reg.gauge("lar_plan_expected_locality_ratio", {},
            "Locality the partitioner predicts on the training pairs "
            "(paper Fig 8's 'expected locality')")
      .set(plan.expected_locality);
  reg.gauge("lar_plan_imbalance_ratio", {},
            "Partition imbalance (max/avg part weight) of the last plan")
      .set(plan.imbalance);
  reg.gauge("lar_plan_keys_assigned", {},
            "Explicit routing-table entries in the last plan")
      .set(static_cast<double>(plan.keys_assigned));
  // lar::split families register only once a plan actually splits keys, so
  // no-split exporter output stays byte-identical.
  if (plan.keys_split > 0) {
    reg.gauge("lar_plan_split_keys", {},
              "Keys the last plan split into >= 2 partial-aggregation "
              "replicas (lar::split)")
        .set(static_cast<double>(plan.keys_split));
    reg.gauge("lar_plan_split_max_degree", {},
              "Largest candidate-list length the last plan deployed")
        .set(static_cast<double>(plan.max_split_degree));
  }
  reg.gauge("lar_plan_key_moves", {},
            "Key states the last plan migrates between sibling instances")
      .set(static_cast<double>(plan.total_moves()));
  reg.counter("lar_key_moves_total", {},
              "Key-state moves across all computed plans")
      .inc(plan.total_moves());
  reg.gauge("lar_plan_partitioner_fm_passes", {},
            "Plan-compute work in FM refinement passes (deterministic "
            "duration; no wall-clock)")
      .set(static_cast<double>(plan.partitioner_fm_passes));
  reg.gauge("lar_plan_partitioner_bisections", {},
            "Plan-compute work in multilevel bisections")
      .set(static_cast<double>(plan.partitioner_bisections));
  reg.counter("lar_partitioner_fm_passes_total", {},
              "FM refinement passes across all computed plans")
      .inc(plan.partitioner_fm_passes);
  reg.counter("lar_partitioner_bisections_total", {},
              "Multilevel bisections across all computed plans")
      .inc(plan.partitioner_bisections);
  // Timeline (obs v2): one tick per planning round, at vtime = plan
  // version — the manager's only deterministic clock.
  if (timeline_ != nullptr) {
    timeline_->tick(reg, static_cast<double>(plan.version));
  }
}

void Manager::mark_deployed(const ReconfigurationPlan& plan) {
  for (const auto& [op, table] : plan.tables) {
    deployed_[op] = table;
  }
}

Result<ReconfigurationPlan> Manager::restore_from_snapshot() {
  if (options_.snapshot_path.empty()) {
    return Status(ErrorCode::kFailedPrecondition,
                  "manager has no snapshot_path configured");
  }
  Result<ReconfigurationPlan> restored = load_plan(options_.snapshot_path);
  if (!restored.is_ok()) return restored;
  mark_deployed(restored.value());
  // Future plans must get fresh versions.
  next_version_ = std::max(next_version_, restored.value().version + 1);
  return restored;
}

std::shared_ptr<const RoutingTable> Manager::current_table(
    OperatorId op) const {
  auto it = deployed_.find(op);
  return it == deployed_.end() ? nullptr : it->second;
}

}  // namespace lar::core
