// Umbrella header: the public API of the locality-aware routing library.
//
// Typical usage (see examples/):
//
//   lar::Topology topo = lar::make_two_stage_topology(6);
//   lar::Placement placement = lar::Placement::round_robin(topo, 6);
//   lar::core::Manager manager(topo, placement, {});
//   ... collect lar::core::PairStats in your stateful operators ...
//   auto plan = manager.compute_plan(stats);
//   ... deploy plan.tables / migrate plan.moves ...
#pragma once

#include "core/advisor.hpp"
#include "core/bipartite.hpp"
#include "core/locality.hpp"
#include "core/manager.hpp"
#include "core/pair_stats.hpp"
#include "core/plan.hpp"
#include "core/snapshot.hpp"
#include "topology/key_dict.hpp"
#include "topology/placement.hpp"
#include "topology/routing.hpp"
#include "topology/topology.hpp"
#include "topology/types.hpp"
