#include "core/snapshot.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace lar::core {

namespace {

constexpr char kMagic[4] = {'L', 'A', 'R', 'P'};
// v2: adds plan.active_servers plus a per-table fallback domain (the
// elastic epoch's active instance set).
// v3: appends per-link sequence cursors after the tables (lar::ckpt replay
// watermarks).  v2 snapshots are still readable — the cursor section is
// simply absent, leaving plan.link_cursors empty.
// v4: appends per-table lar::split candidate lists after the cursors.
// Plans without split keys are still written as v3, so every pre-split
// snapshot byte stream is reproduced exactly.
constexpr std::uint32_t kFormatVersion = 4;
constexpr std::uint32_t kSplitlessFormatVersion = 3;
constexpr std::uint32_t kMinFormatVersion = 2;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool write_pod(std::FILE* f, const T& value) {
  return std::fwrite(&value, sizeof(T), 1, f) == 1;
}

template <typename T>
bool read_pod(std::FILE* f, T& value) {
  return std::fread(&value, sizeof(T), 1, f) == 1;
}

}  // namespace

Status save_plan(const ReconfigurationPlan& plan, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    File file(std::fopen(tmp.c_str(), "wb"));
    if (file == nullptr) {
      return {ErrorCode::kInvalidArgument, "cannot open " + tmp};
    }
    std::FILE* f = file.get();
    bool has_splits = false;
    for (const auto& [op, table] : plan.tables) {
      if (table->has_splits()) has_splits = true;
    }
    const std::uint32_t format =
        has_splits ? kFormatVersion : kSplitlessFormatVersion;
    bool ok = std::fwrite(kMagic, 1, 4, f) == 4;
    ok = ok && write_pod(f, format);
    ok = ok && write_pod(f, plan.version);
    ok = ok && write_pod(f, plan.active_servers);
    ok = ok && write_pod(f, plan.expected_locality);
    ok = ok && write_pod(f, plan.edge_cut);
    ok = ok && write_pod(f, plan.imbalance);
    const auto num_tables = static_cast<std::uint32_t>(plan.tables.size());
    ok = ok && write_pod(f, num_tables);
    for (const auto& [op, table] : plan.tables) {
      ok = ok && write_pod(f, op);
      const std::uint64_t table_version = table->version();
      ok = ok && write_pod(f, table_version);
      const auto entries = static_cast<std::uint64_t>(table->size());
      ok = ok && write_pod(f, entries);
      // Canonical key order: two snapshots of the same configuration are
      // byte-identical regardless of how the tables were populated.
      for (const auto& [key, instance] : table->sorted_entries()) {
        ok = ok && write_pod(f, key) && write_pod(f, instance);
      }
      const auto fallback =
          static_cast<std::uint32_t>(table->fallback().size());
      ok = ok && write_pod(f, fallback);
      for (const InstanceIndex inst : table->fallback()) {
        ok = ok && write_pod(f, inst);
      }
    }
    const auto num_cursors =
        static_cast<std::uint64_t>(plan.link_cursors.size());
    ok = ok && write_pod(f, num_cursors);
    for (const auto& [link, seq] : plan.link_cursors) {
      ok = ok && write_pod(f, link) && write_pod(f, seq);
    }
    if (format >= 4) {
      // Split section: per table (same iteration order as above), the
      // canonical ascending-key candidate lists.
      for (const auto& [op, table] : plan.tables) {
        ok = ok && write_pod(f, op);
        const auto num_split =
            static_cast<std::uint64_t>(table->num_split_keys());
        ok = ok && write_pod(f, num_split);
        for (const auto& [key, candidates] : table->sorted_split_entries()) {
          ok = ok && write_pod(f, key);
          const auto len = static_cast<std::uint32_t>(candidates.size());
          ok = ok && write_pod(f, len);
          for (const InstanceIndex inst : candidates) {
            ok = ok && write_pod(f, inst);
          }
        }
      }
    }
    if (!ok) {
      std::remove(tmp.c_str());
      return {ErrorCode::kInternal, "short write to " + tmp};
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return {ErrorCode::kInternal, "cannot rename snapshot into " + path};
  }
  return Status::ok();
}

Result<ReconfigurationPlan> load_plan(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status(ErrorCode::kNotFound, "cannot open " + path);
  }
  std::FILE* f = file.get();
  char magic[4];
  std::uint32_t format = 0;
  if (std::fread(magic, 1, 4, f) != 4 || std::memcmp(magic, kMagic, 4) != 0 ||
      !read_pod(f, format) || format < kMinFormatVersion ||
      format > kFormatVersion) {
    return Status(ErrorCode::kInvalidArgument,
                  path + " is not a routing snapshot");
  }
  ReconfigurationPlan plan;
  std::uint32_t num_tables = 0;
  if (!read_pod(f, plan.version) || !read_pod(f, plan.active_servers) ||
      !read_pod(f, plan.expected_locality) ||
      !read_pod(f, plan.edge_cut) || !read_pod(f, plan.imbalance) ||
      !read_pod(f, num_tables)) {
    return Status(ErrorCode::kInvalidArgument, path + " is truncated");
  }
  for (std::uint32_t t = 0; t < num_tables; ++t) {
    OperatorId op = 0;
    std::uint64_t table_version = 0;
    std::uint64_t entries = 0;
    if (!read_pod(f, op) || !read_pod(f, table_version) ||
        !read_pod(f, entries)) {
      return Status(ErrorCode::kInvalidArgument, path + " is truncated");
    }
    auto table = std::make_shared<RoutingTable>();
    table->set_version(table_version);
    for (std::uint64_t e = 0; e < entries; ++e) {
      Key key = 0;
      InstanceIndex instance = 0;
      if (!read_pod(f, key) || !read_pod(f, instance)) {
        return Status(ErrorCode::kInvalidArgument, path + " is truncated");
      }
      table->assign(key, instance);
    }
    std::uint32_t fallback = 0;
    if (!read_pod(f, fallback)) {
      return Status(ErrorCode::kInvalidArgument, path + " is truncated");
    }
    std::vector<InstanceIndex> domain(fallback);
    for (std::uint32_t i = 0; i < fallback; ++i) {
      if (!read_pod(f, domain[i])) {
        return Status(ErrorCode::kInvalidArgument, path + " is truncated");
      }
    }
    table->set_fallback(std::move(domain));
    plan.tables.emplace(op, std::move(table));
    plan.keys_assigned += entries;
  }
  if (format >= 3) {
    std::uint64_t num_cursors = 0;
    if (!read_pod(f, num_cursors)) {
      return Status(ErrorCode::kInvalidArgument, path + " is truncated");
    }
    plan.link_cursors.reserve(num_cursors);
    for (std::uint64_t c = 0; c < num_cursors; ++c) {
      std::uint64_t link = 0;
      std::uint64_t seq = 0;
      if (!read_pod(f, link) || !read_pod(f, seq)) {
        return Status(ErrorCode::kInvalidArgument, path + " is truncated");
      }
      plan.link_cursors.emplace_back(link, seq);
    }
  }
  if (format >= 4) {
    for (std::size_t t = 0; t < plan.tables.size(); ++t) {
      OperatorId op = 0;
      std::uint64_t num_split = 0;
      if (!read_pod(f, op) || !read_pod(f, num_split)) {
        return Status(ErrorCode::kInvalidArgument, path + " is truncated");
      }
      const auto it = plan.tables.find(op);
      if (it == plan.tables.end()) {
        return Status(ErrorCode::kInvalidArgument,
                      path + " split section names an unknown operator");
      }
      // plan.tables holds const tables; the split entries are part of the
      // same load, so mutating through the just-created object is safe.
      auto* table = const_cast<RoutingTable*>(it->second.get());
      for (std::uint64_t k = 0; k < num_split; ++k) {
        Key key = 0;
        std::uint32_t len = 0;
        if (!read_pod(f, key) || !read_pod(f, len) || len < 2) {
          return Status(ErrorCode::kInvalidArgument, path + " is truncated");
        }
        std::vector<InstanceIndex> candidates(len);
        for (std::uint32_t i = 0; i < len; ++i) {
          if (!read_pod(f, candidates[i])) {
            return Status(ErrorCode::kInvalidArgument, path + " is truncated");
          }
        }
        table->assign_split(key, candidates);
      }
    }
  }
  return plan;
}

}  // namespace lar::core
