#include "core/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

namespace lar::core {

namespace {

constexpr char kMagic[4] = {'L', 'A', 'R', 'P'};
// v2: adds plan.active_servers plus a per-table fallback domain (the
// elastic epoch's active instance set).
// v3: appends per-link sequence cursors after the tables (lar::ckpt replay
// watermarks).  v2 snapshots are still readable — the cursor section is
// simply absent, leaving plan.link_cursors empty.
// v4: appends per-table lar::split candidate lists after the cursors.
// Plans without split keys are still written as v3, so every pre-split
// snapshot byte stream is reproduced exactly.
constexpr std::uint32_t kFormatVersion = 4;
constexpr std::uint32_t kSplitlessFormatVersion = 3;
constexpr std::uint32_t kMinFormatVersion = 2;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
void append_pod(std::vector<std::byte>& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* bytes = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

/// Bounds-checked sequential reader over the snapshot byte stream.
struct ByteReader {
  const std::byte* data;
  std::size_t size;
  std::size_t pos = 0;

  template <typename T>
  bool read(T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size - pos < sizeof(T)) return false;
    std::memcpy(&value, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }
};

/// Ascending operator-id iteration order: serialization must not depend on
/// the unordered_map's bucket layout.
std::vector<OperatorId> sorted_ops(const ReconfigurationPlan& plan) {
  std::vector<OperatorId> ops;
  ops.reserve(plan.tables.size());
  for (const auto& [op, table] : plan.tables) ops.push_back(op);
  std::sort(ops.begin(), ops.end());
  return ops;
}

}  // namespace

void serialize_plan(const ReconfigurationPlan& plan,
                    std::vector<std::byte>& out) {
  bool has_splits = false;
  for (const auto& [op, table] : plan.tables) {
    if (table->has_splits()) has_splits = true;
  }
  const std::uint32_t format =
      has_splits ? kFormatVersion : kSplitlessFormatVersion;
  const std::vector<OperatorId> ops = sorted_ops(plan);
  out.insert(out.end(), reinterpret_cast<const std::byte*>(kMagic),
             reinterpret_cast<const std::byte*>(kMagic) + 4);
  append_pod(out, format);
  append_pod(out, plan.version);
  append_pod(out, plan.active_servers);
  append_pod(out, plan.expected_locality);
  append_pod(out, plan.edge_cut);
  append_pod(out, plan.imbalance);
  append_pod(out, static_cast<std::uint32_t>(plan.tables.size()));
  for (const OperatorId op : ops) {
    const auto& table = plan.tables.at(op);
    append_pod(out, op);
    append_pod(out, table->version());
    append_pod(out, static_cast<std::uint64_t>(table->size()));
    // Canonical key order: two snapshots of the same configuration are
    // byte-identical regardless of how the tables were populated.
    for (const auto& [key, instance] : table->sorted_entries()) {
      append_pod(out, key);
      append_pod(out, instance);
    }
    append_pod(out, static_cast<std::uint32_t>(table->fallback().size()));
    for (const InstanceIndex inst : table->fallback()) {
      append_pod(out, inst);
    }
  }
  append_pod(out, static_cast<std::uint64_t>(plan.link_cursors.size()));
  for (const auto& [link, seq] : plan.link_cursors) {
    append_pod(out, link);
    append_pod(out, seq);
  }
  if (format >= 4) {
    // Split section: per table (same iteration order as above), the
    // canonical ascending-key candidate lists.
    for (const OperatorId op : ops) {
      const auto& table = plan.tables.at(op);
      append_pod(out, op);
      append_pod(out, static_cast<std::uint64_t>(table->num_split_keys()));
      for (const auto& [key, candidates] : table->sorted_split_entries()) {
        append_pod(out, key);
        append_pod(out, static_cast<std::uint32_t>(candidates.size()));
        for (const InstanceIndex inst : candidates) {
          append_pod(out, inst);
        }
      }
    }
  }
}

Result<ReconfigurationPlan> parse_plan(const std::byte* data,
                                       std::size_t size) {
  ByteReader in{data, size};
  std::uint32_t format = 0;
  if (size < 8 || std::memcmp(data, kMagic, 4) != 0) {
    return Status(ErrorCode::kInvalidArgument, "not a routing snapshot");
  }
  in.pos = 4;
  if (!in.read(format) || format < kMinFormatVersion ||
      format > kFormatVersion) {
    return Status(ErrorCode::kInvalidArgument, "not a routing snapshot");
  }
  ReconfigurationPlan plan;
  std::uint32_t num_tables = 0;
  if (!in.read(plan.version) || !in.read(plan.active_servers) ||
      !in.read(plan.expected_locality) || !in.read(plan.edge_cut) ||
      !in.read(plan.imbalance) || !in.read(num_tables)) {
    return Status(ErrorCode::kInvalidArgument, "snapshot is truncated");
  }
  for (std::uint32_t t = 0; t < num_tables; ++t) {
    OperatorId op = 0;
    std::uint64_t table_version = 0;
    std::uint64_t entries = 0;
    if (!in.read(op) || !in.read(table_version) || !in.read(entries)) {
      return Status(ErrorCode::kInvalidArgument, "snapshot is truncated");
    }
    auto table = std::make_shared<RoutingTable>();
    table->set_version(table_version);
    for (std::uint64_t e = 0; e < entries; ++e) {
      Key key = 0;
      InstanceIndex instance = 0;
      if (!in.read(key) || !in.read(instance)) {
        return Status(ErrorCode::kInvalidArgument, "snapshot is truncated");
      }
      table->assign(key, instance);
    }
    std::uint32_t fallback = 0;
    if (!in.read(fallback)) {
      return Status(ErrorCode::kInvalidArgument, "snapshot is truncated");
    }
    std::vector<InstanceIndex> domain(fallback);
    for (std::uint32_t i = 0; i < fallback; ++i) {
      if (!in.read(domain[i])) {
        return Status(ErrorCode::kInvalidArgument, "snapshot is truncated");
      }
    }
    table->set_fallback(std::move(domain));
    plan.tables.emplace(op, std::move(table));
    plan.keys_assigned += entries;
  }
  if (format >= 3) {
    std::uint64_t num_cursors = 0;
    if (!in.read(num_cursors)) {
      return Status(ErrorCode::kInvalidArgument, "snapshot is truncated");
    }
    plan.link_cursors.reserve(num_cursors);
    for (std::uint64_t c = 0; c < num_cursors; ++c) {
      std::uint64_t link = 0;
      std::uint64_t seq = 0;
      if (!in.read(link) || !in.read(seq)) {
        return Status(ErrorCode::kInvalidArgument, "snapshot is truncated");
      }
      plan.link_cursors.emplace_back(link, seq);
    }
  }
  if (format >= 4) {
    for (std::size_t t = 0; t < plan.tables.size(); ++t) {
      OperatorId op = 0;
      std::uint64_t num_split = 0;
      if (!in.read(op) || !in.read(num_split)) {
        return Status(ErrorCode::kInvalidArgument, "snapshot is truncated");
      }
      const auto it = plan.tables.find(op);
      if (it == plan.tables.end()) {
        return Status(ErrorCode::kInvalidArgument,
                      "split section names an unknown operator");
      }
      // plan.tables holds const tables; the split entries are part of the
      // same load, so mutating through the just-created object is safe.
      auto* table = const_cast<RoutingTable*>(it->second.get());
      for (std::uint64_t k = 0; k < num_split; ++k) {
        Key key = 0;
        std::uint32_t len = 0;
        if (!in.read(key) || !in.read(len) || len < 2) {
          return Status(ErrorCode::kInvalidArgument, "snapshot is truncated");
        }
        std::vector<InstanceIndex> candidates(len);
        for (std::uint32_t i = 0; i < len; ++i) {
          if (!in.read(candidates[i])) {
            return Status(ErrorCode::kInvalidArgument,
                          "snapshot is truncated");
          }
        }
        table->assign_split(key, candidates);
      }
    }
  }
  return plan;
}

Status save_plan(const ReconfigurationPlan& plan, const std::string& path) {
  std::vector<std::byte> buffer;
  serialize_plan(plan, buffer);
  const std::string tmp = path + ".tmp";
  {
    File file(std::fopen(tmp.c_str(), "wb"));
    if (file == nullptr) {
      return {ErrorCode::kInvalidArgument, "cannot open " + tmp};
    }
    if (!buffer.empty() &&
        std::fwrite(buffer.data(), 1, buffer.size(), file.get()) !=
            buffer.size()) {
      file.reset();
      std::remove(tmp.c_str());
      return {ErrorCode::kInternal, "short write to " + tmp};
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return {ErrorCode::kInternal, "cannot rename snapshot into " + path};
  }
  return Status::ok();
}

Result<ReconfigurationPlan> load_plan(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status(ErrorCode::kNotFound, "cannot open " + path);
  }
  std::vector<std::byte> buffer;
  std::byte chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file.get())) > 0) {
    buffer.insert(buffer.end(), chunk, chunk + got);
  }
  Result<ReconfigurationPlan> plan = parse_plan(buffer.data(), buffer.size());
  if (!plan.is_ok()) {
    return Status(plan.status().code(), path + ": " + plan.status().message());
  }
  return plan;
}

}  // namespace lar::core
