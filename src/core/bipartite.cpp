#include "core/bipartite.hpp"

#include <algorithm>

namespace lar::core {

void BipartiteGraphBuilder::add_pairs(OperatorId in_op, OperatorId out_op,
                                      const std::vector<PairCount>& pairs) {
  hops_.push_back(Hop{in_op, out_op, pairs});
}

KeyGraph BipartiteGraphBuilder::build() const {
  KeyGraph out;
  partition::GraphBuilder builder;
  std::unordered_map<KeyVertex, partition::VertexId, KeyVertexHash> ids;

  auto vertex_of = [&](OperatorId op, Key key) {
    const KeyVertex kv{op, key};
    auto it = ids.find(kv);
    if (it != ids.end()) return it->second;
    const partition::VertexId id = builder.add_vertex(0);
    ids.emplace(kv, id);
    out.vertices.push_back(kv);
    return id;
  };

  for (const auto& hop : hops_) {
    // Respect the statistics budget: keep the heaviest pairs of this hop.
    std::vector<PairCount> pairs = hop.pairs;
    if (top_edges_ != 0 && pairs.size() > top_edges_) {
      std::partial_sort(pairs.begin(),
                        pairs.begin() + static_cast<std::ptrdiff_t>(top_edges_),
                        pairs.end(), [](const PairCount& a, const PairCount& b) {
                          return a.count > b.count;
                        });
      pairs.resize(top_edges_);
    }
    // Canonical order: callers merge snapshots through hash maps, whose
    // iteration order is unspecified.  Vertex numbering (and therefore the
    // seeded partitioner's output) must depend only on the pair *set*, or
    // identical statistics could yield different plans and phantom key moves.
    std::sort(pairs.begin(), pairs.end(),
              [](const PairCount& a, const PairCount& b) {
                return a.in != b.in ? a.in < b.in : a.out < b.out;
              });
    for (const auto& pc : pairs) {
      if (pc.count == 0) continue;
      const partition::VertexId a = vertex_of(hop.in_op, pc.in);
      const partition::VertexId b = vertex_of(hop.out_op, pc.out);
      // A key pair with in == out across two *different* operators is two
      // distinct vertices, so a != b always holds here unless the caller
      // recorded a hop from an operator to itself with identical keys;
      // self-edges carry no cut information either way.
      if (a == b) {
        builder.add_vertex_weight(a, 2 * pc.count);
        continue;
      }
      builder.add_edge(a, b, pc.count);
      builder.add_vertex_weight(a, pc.count);
      builder.add_vertex_weight(b, pc.count);
    }
  }
  out.graph = builder.build();
  return out;
}

}  // namespace lar::core
