#include "core/bipartite.hpp"

#include <algorithm>

#include "common/flat_map.hpp"

namespace lar::core {

void BipartiteGraphBuilder::add_pairs(OperatorId in_op, OperatorId out_op,
                                      const std::vector<PairCount>& pairs) {
  hops_.push_back(Hop{in_op, out_op, pairs});
}

KeyGraph BipartiteGraphBuilder::build() const {
  KeyGraph out;
  partition::GraphBuilder builder;
  FlatMap<KeyVertex, partition::VertexId, KeyVertexHash> ids;

  auto vertex_of = [&](OperatorId op, Key key, std::uint32_t replica = 0) {
    const KeyVertex kv{op, key, replica};
    if (const partition::VertexId* found = ids.find(kv)) return *found;
    const partition::VertexId id = builder.add_vertex(0);
    ids[kv] = id;
    out.vertices.push_back(kv);
    return id;
  };

  // lar::split degree lookup ((op, key) -> d, absent = 1).  degrees_ is
  // empty on every no-split path, so the branch below never fires there.
  FlatMap<KeyVertex, std::uint32_t, KeyVertexHash> degree_of;
  for (const split::KeyDegree& kd : degrees_) {
    degree_of[KeyVertex{kd.op, kd.key, 0}] = kd.degree;
  }
  auto degree = [&](OperatorId op, Key key) -> std::uint32_t {
    if (degree_of.size() == 0) return 1;
    const std::uint32_t* d = degree_of.find(KeyVertex{op, key, 0});
    return d != nullptr ? *d : 1;
  };

  for (const auto& hop : hops_) {
    // Respect the statistics budget: keep the heaviest pairs of this hop.
    // Ties at the cut-off break on (in, out) so the kept subset is a pure
    // function of the pair *set* — comparing on count alone would let the
    // caller's list order decide which equal-weight pairs survive.
    std::vector<PairCount> pairs = hop.pairs;
    if (top_edges_ != 0 && pairs.size() > top_edges_) {
      std::partial_sort(pairs.begin(),
                        pairs.begin() + static_cast<std::ptrdiff_t>(top_edges_),
                        pairs.end(), [](const PairCount& a, const PairCount& b) {
                          if (a.count != b.count) return a.count > b.count;
                          return a.in != b.in ? a.in < b.in : a.out < b.out;
                        });
      pairs.resize(top_edges_);
    }
    // Canonical order: callers merge snapshots through hash maps, whose
    // iteration order is unspecified.  Vertex numbering (and therefore the
    // seeded partitioner's output) must depend only on the pair *set*, or
    // identical statistics could yield different plans and phantom key moves.
    std::sort(pairs.begin(), pairs.end(),
              [](const PairCount& a, const PairCount& b) {
                return a.in != b.in ? a.in < b.in : a.out < b.out;
              });
    for (const auto& pc : pairs) {
      if (pc.count == 0) continue;
      const std::uint32_t da = degree(hop.in_op, pc.in);
      const std::uint32_t db = degree(hop.out_op, pc.out);
      if (da == 1 && db == 1) {
        const partition::VertexId a = vertex_of(hop.in_op, pc.in);
        const partition::VertexId b = vertex_of(hop.out_op, pc.out);
        // A key pair with in == out across two *different* operators is two
        // distinct vertices, so a != b always holds here unless the caller
        // recorded a hop from an operator to itself with identical keys;
        // self-edges carry no cut information either way.
        if (a == b) {
          builder.add_vertex_weight(a, 2 * pc.count);
          continue;
        }
        builder.add_edge(a, b, pc.count);
        builder.add_vertex_weight(a, pc.count);
        builder.add_vertex_weight(b, pc.count);
        continue;
      }
      // Split endpoint(s): spread the pair's weight over the replica cross
      // product — equal integer shares, remainder (count % (da*db)) to the
      // lowest flat indices ra*db+rb.  Row sums give each source replica
      // ~count/da and column sums each destination replica ~count/db, so
      // replica vertex weights stay balanced and the partitioner can place
      // them independently.  The distribution is a pure function of
      // (count, da, db) — no RNG, no order dependence.
      const std::uint64_t combos = static_cast<std::uint64_t>(da) * db;
      const std::uint64_t base = pc.count / combos;
      const std::uint64_t rem = pc.count % combos;
      for (std::uint32_t ra = 0; ra < da; ++ra) {
        for (std::uint32_t rb = 0; rb < db; ++rb) {
          // Materialize every replica vertex even when its share is 0, so
          // the table-building stage always sees the full candidate set.
          const partition::VertexId a = vertex_of(hop.in_op, pc.in, ra);
          const partition::VertexId b = vertex_of(hop.out_op, pc.out, rb);
          const std::uint64_t flat = static_cast<std::uint64_t>(ra) * db + rb;
          const std::uint64_t w = base + (flat < rem ? 1 : 0);
          if (w == 0) continue;
          if (a == b) {
            builder.add_vertex_weight(a, 2 * w);
            continue;
          }
          builder.add_edge(a, b, w);
          builder.add_vertex_weight(a, w);
          builder.add_vertex_weight(b, w);
        }
      }
    }
  }
  out.graph = builder.build();
  return out;
}

}  // namespace lar::core
