#include "partition/quality.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace lar::partition {

std::uint64_t edge_cut(const Graph& g,
                       std::span<const std::uint32_t> assignment) {
  LAR_CHECK(assignment.size() == g.num_vertices());
  std::uint64_t cut = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] > v && assignment[nbrs[i]] != assignment[v]) cut += wgts[i];
    }
  }
  return cut;
}

std::uint64_t bisection_cut(const Graph& g,
                            std::span<const std::uint8_t> side) {
  LAR_CHECK(side.size() == g.num_vertices());
  std::uint64_t cut = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] > v && side[nbrs[i]] != side[v]) cut += wgts[i];
    }
  }
  return cut;
}

std::vector<std::uint64_t> part_weights(
    const Graph& g, std::span<const std::uint32_t> assignment,
    std::uint32_t num_parts) {
  LAR_CHECK(assignment.size() == g.num_vertices());
  std::vector<std::uint64_t> weights(num_parts, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    LAR_CHECK(assignment[v] < num_parts);
    weights[assignment[v]] += g.vertex_weight(v);
  }
  return weights;
}

double partition_imbalance(const Graph& g,
                           std::span<const std::uint32_t> assignment,
                           std::uint32_t num_parts) {
  LAR_CHECK(num_parts >= 1);
  const auto weights = part_weights(g, assignment, num_parts);
  const std::uint64_t max = *std::max_element(weights.begin(), weights.end());
  const double avg = static_cast<double>(g.total_vertex_weight()) /
                     static_cast<double>(num_parts);
  return avg == 0.0 ? 1.0 : static_cast<double>(max) / avg;
}

}  // namespace lar::partition
