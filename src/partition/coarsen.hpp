// Coarsening phase of the multilevel partitioner: heavy-edge matching (HEM).
//
// Matching pairs of vertices connected by heavy edges and collapsing them
// hides those edges inside coarse vertices, so they can never be cut by the
// initial partition — the same strategy Metis uses.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "partition/graph.hpp"

namespace lar::partition {

/// One level of the coarsening hierarchy.
struct CoarseLevel {
  Graph graph;                            ///< the coarser graph
  std::vector<VertexId> fine_to_coarse;   ///< fine vertex -> coarse vertex
};

/// Collapses a maximal heavy-edge matching of `fine` into a coarser graph.
/// Visits vertices in a random order (from `rng`) and matches each unmatched
/// vertex with its unmatched neighbor of maximum edge weight; unmatchable
/// vertices survive as singletons.  Coarse vertex weights are the sums of
/// their constituents; parallel coarse edges are merged.
[[nodiscard]] CoarseLevel coarsen_once(const Graph& fine, Rng& rng);

}  // namespace lar::partition
