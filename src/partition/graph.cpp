#include "partition/graph.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace lar::partition {

Subgraph induced_subgraph(const Graph& g,
                          const std::vector<VertexId>& vertices) {
  Subgraph sub;
  sub.to_parent = vertices;
  std::vector<VertexId> to_local(g.num_vertices(),
                                 static_cast<VertexId>(-1));
  GraphBuilder builder;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    LAR_CHECK(vertices[i] < g.num_vertices());
    to_local[vertices[i]] = static_cast<VertexId>(i);
    builder.add_vertex(g.vertex_weight(vertices[i]));
  }
  for (const VertexId v : vertices) {
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      if (u <= v || to_local[u] == static_cast<VertexId>(-1)) continue;
      builder.add_edge(to_local[v], to_local[u], wgts[i]);
    }
  }
  sub.graph = builder.build();
  return sub;
}

VertexId GraphBuilder::add_vertex(std::uint64_t weight) {
  vertex_weights_.push_back(weight);
  return static_cast<VertexId>(vertex_weights_.size() - 1);
}

void GraphBuilder::add_vertex_weight(VertexId v, std::uint64_t delta) {
  LAR_CHECK(v < vertex_weights_.size());
  vertex_weights_[v] += delta;
}

void GraphBuilder::add_edge(VertexId a, VertexId b, std::uint64_t weight) {
  LAR_CHECK(a != b);
  LAR_CHECK(a < vertex_weights_.size() && b < vertex_weights_.size());
  edges_.push_back(HalfEdge{a, b, weight});
}

Graph GraphBuilder::build() {
  Graph g;
  const std::size_t v = vertex_weights_.size();
  g.vertex_weights_ = std::move(vertex_weights_);
  vertex_weights_.clear();
  g.total_vertex_weight_ = 0;
  for (const auto w : g.vertex_weights_) g.total_vertex_weight_ += w;

  // Canonicalize (min, max) and sort so duplicates become adjacent.
  for (auto& e : edges_) {
    if (e.from > e.to) std::swap(e.from, e.to);
  }
  std::sort(edges_.begin(), edges_.end(),
            [](const HalfEdge& x, const HalfEdge& y) {
              return x.from != y.from ? x.from < y.from : x.to < y.to;
            });
  // Merge parallel edges in place.
  std::size_t out = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (out > 0 && edges_[out - 1].from == edges_[i].from &&
        edges_[out - 1].to == edges_[i].to) {
      edges_[out - 1].weight += edges_[i].weight;
    } else {
      edges_[out++] = edges_[i];
    }
  }
  edges_.resize(out);

  // Degree counting pass, then fill.
  g.offsets_.assign(v + 1, 0);
  for (const auto& e : edges_) {
    ++g.offsets_[e.from + 1];
    ++g.offsets_[e.to + 1];
  }
  for (std::size_t i = 1; i <= v; ++i) g.offsets_[i] += g.offsets_[i - 1];

  g.adj_to_.resize(edges_.size() * 2);
  g.adj_w_.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  g.total_edge_weight_ = 0;
  for (const auto& e : edges_) {
    g.adj_to_[cursor[e.from]] = e.to;
    g.adj_w_[cursor[e.from]++] = e.weight;
    g.adj_to_[cursor[e.to]] = e.from;
    g.adj_w_[cursor[e.to]++] = e.weight;
    g.total_edge_weight_ += e.weight;
  }
  edges_.clear();
  return g;
}

}  // namespace lar::partition
