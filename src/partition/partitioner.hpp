// Multilevel k-way graph partitioner (drop-in substitute for Metis in the
// paper's pipeline).
//
// Pipeline per bisection: heavy-edge-matching coarsening until the graph is
// small, greedy graph-growing initial bisection, then FM refinement at every
// uncoarsening level.  k-way partitions are produced by recursive bisection
// with proportional weight targets, exactly the structure of Metis'
// pmetis algorithm the paper relies on (reference [12]).
#pragma once

#include <cstdint>
#include <vector>

#include "partition/graph.hpp"

namespace lar::partition {

/// Tuning knobs.  The defaults reproduce the paper's setup (alpha = 1.03,
/// Metis' default imbalance bound, Section 4.3).
struct PartitionOptions {
  std::uint32_t num_parts = 2;

  /// Max allowed part weight as a multiple of the average part weight.
  /// Must be >= 1.0.  Note: with very heavy individual vertices (a single
  /// key dominating the stream) the bound may be infeasible; the partitioner
  /// then returns its best effort and reports the achieved imbalance.
  double alpha = 1.03;

  /// Seed for all randomized phases; equal seeds give identical results.
  std::uint64_t seed = 42;

  /// Stop coarsening when a graph has at most this many vertices.
  std::size_t coarsen_to = 128;

  /// Maximum FM passes per uncoarsening level.
  int refinement_passes = 8;

  /// Random seeds tried by the initial greedy growing bisection.
  int initial_trials = 4;

  /// Disables FM refinement entirely (for ablation studies).
  bool enable_refinement = true;
};

/// Result of partitioning.
struct PartitionResult {
  std::vector<std::uint32_t> assignment;  ///< vertex -> part in [0, num_parts)
  std::uint64_t edge_cut = 0;             ///< total weight of cut edges
  double achieved_imbalance = 1.0;        ///< max part weight / average

  /// Work actually performed, in algorithmic iterations — the deterministic
  /// "duration" the observability layer reports instead of wall-clock time:
  /// FM refinement passes across all levels and bisections, and the number
  /// of multilevel bisections of the recursion tree.
  std::uint64_t fm_passes = 0;
  std::uint64_t bisections = 0;
};

/// Partitions `g` into `options.num_parts` parts minimizing edge cut under
/// the balance constraint.  Deterministic for a fixed (graph, options) pair.
/// Handles edge cases: empty graphs, more parts than vertices (surplus parts
/// stay empty), and disconnected graphs.
[[nodiscard]] PartitionResult partition_graph(const Graph& g,
                                              const PartitionOptions& options);

}  // namespace lar::partition
