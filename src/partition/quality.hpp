// Partition quality metrics: edge cut and balance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "partition/graph.hpp"

namespace lar::partition {

/// Sum of weights of edges whose endpoints lie in different parts.
[[nodiscard]] std::uint64_t edge_cut(const Graph& g,
                                     std::span<const std::uint32_t> assignment);

/// Edge cut of a two-sided assignment (0/1 per vertex).
[[nodiscard]] std::uint64_t bisection_cut(const Graph& g,
                                          std::span<const std::uint8_t> side);

/// Total vertex weight per part.
[[nodiscard]] std::vector<std::uint64_t> part_weights(
    const Graph& g, std::span<const std::uint32_t> assignment,
    std::uint32_t num_parts);

/// max(part weight) / (total weight / num_parts); 1.0 = perfect balance.
[[nodiscard]] double partition_imbalance(const Graph& g,
                                         std::span<const std::uint32_t> assignment,
                                         std::uint32_t num_parts);

}  // namespace lar::partition
