// Initial bisection at the coarsest level: greedy graph growing (GGGP).
//
// Grows side 0 from a random seed vertex, always absorbing the frontier
// vertex whose inclusion decreases the prospective cut the most, until side 0
// reaches its weight target.  Several random trials are run and the best cut
// is kept, as in the Metis GGGP scheme.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "partition/graph.hpp"

namespace lar::partition {

/// Bisects `g` into sides 0/1.
///
/// `target0`  — desired total vertex weight of side 0;
/// `max_side` — hard weight caps; growth skips vertices that would push side
///              0 past max_side[0], and keeps growing past `target0` while
///              side 1 still exceeds max_side[1];
/// `trials`   — number of random seeds to try (>= 1); best cut wins.
///
/// Returns side assignment per vertex (0 or 1).
[[nodiscard]] std::vector<std::uint8_t> grow_bisection(
    const Graph& g, std::uint64_t target0,
    const std::array<std::uint64_t, 2>& max_side, Rng& rng, int trials);

}  // namespace lar::partition
