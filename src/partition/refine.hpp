// Fiduccia–Mattheyses (FM) bisection refinement.
//
// After each uncoarsening step the projected partition is locally improved by
// moving boundary vertices between the two sides.  Classic FM: one pass moves
// each vertex at most once in best-gain-first order (even through negative
// gains, which lets the pass climb out of local minima), then rolls back to
// the best prefix of the move sequence.  Passes repeat until no improvement.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "partition/graph.hpp"

namespace lar::partition {

/// Refines the 0/1 `side` assignment in place.
///
/// `max_side` — per-side weight caps enforced for every applied move (a move
///              that would overflow the destination side is skipped);
/// `max_passes` — upper bound on FM passes (each pass is O(E log V));
/// `passes_executed` — if non-null, incremented by the number of passes
///                     actually run (the partitioner's work metric).
///
/// Returns the edge cut of the final assignment.
std::uint64_t fm_refine(const Graph& g, std::vector<std::uint8_t>& side,
                        const std::array<std::uint64_t, 2>& max_side,
                        int max_passes,
                        std::uint64_t* passes_executed = nullptr);

}  // namespace lar::partition
