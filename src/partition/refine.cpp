#include "partition/refine.hpp"

#include <queue>
#include <utility>

#include "common/status.hpp"
#include "partition/quality.hpp"

namespace lar::partition {

std::uint64_t fm_refine(const Graph& g, std::vector<std::uint8_t>& side,
                        const std::array<std::uint64_t, 2>& max_side,
                        int max_passes, std::uint64_t* passes_executed) {
  LAR_CHECK(side.size() == g.num_vertices());
  const std::size_t n = g.num_vertices();
  if (n == 0) return 0;

  std::uint64_t cut = bisection_cut(g, side);
  std::array<std::uint64_t, 2> weight{0, 0};
  for (VertexId v = 0; v < n; ++v) weight[side[v]] += g.vertex_weight(v);

  std::vector<std::int64_t> gain(n);
  std::vector<std::uint8_t> locked(n);

  for (int pass = 0; pass < max_passes; ++pass) {
    if (passes_executed != nullptr) ++*passes_executed;
    // gain[v] = cut reduction if v switches sides.
    for (VertexId v = 0; v < n; ++v) {
      std::int64_t ext = 0;
      std::int64_t internal = 0;
      const auto nbrs = g.neighbors(v);
      const auto wgts = g.neighbor_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (side[nbrs[i]] != side[v]) {
          ext += static_cast<std::int64_t>(wgts[i]);
        } else {
          internal += static_cast<std::int64_t>(wgts[i]);
        }
      }
      gain[v] = ext - internal;
    }
    std::fill(locked.begin(), locked.end(), std::uint8_t{0});

    // Max-heap with lazy invalidation.
    std::priority_queue<std::pair<std::int64_t, VertexId>> pq;
    for (VertexId v = 0; v < n; ++v) pq.emplace(gain[v], v);

    std::vector<VertexId> moves;
    std::vector<std::uint64_t> cut_after;
    std::uint64_t cur = cut;
    std::array<std::uint64_t, 2> w = weight;

    while (!pq.empty()) {
      const auto [gval, v] = pq.top();
      pq.pop();
      if (locked[v] || gval != gain[v]) continue;
      const int from = side[v];
      const int to = 1 - from;
      const std::uint64_t vw = g.vertex_weight(v);
      if (w[to] + vw > max_side[to]) continue;  // would overflow destination

      side[v] = static_cast<std::uint8_t>(to);
      locked[v] = 1;
      w[from] -= vw;
      w[to] += vw;
      cur = static_cast<std::uint64_t>(static_cast<std::int64_t>(cur) - gval);
      moves.push_back(v);
      cut_after.push_back(cur);

      const auto nbrs = g.neighbors(v);
      const auto wgts = g.neighbor_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId u = nbrs[i];
        if (locked[u]) continue;
        const auto ew = static_cast<std::int64_t>(wgts[i]);
        // v arrived on u's side: the edge turned internal; otherwise it
        // turned external.
        gain[u] += (side[u] == to) ? -2 * ew : 2 * ew;
        pq.emplace(gain[u], u);
      }
    }

    // Roll back to the best prefix of the move sequence.
    std::size_t best_len = 0;
    std::uint64_t best_cut = cut;
    for (std::size_t i = 0; i < cut_after.size(); ++i) {
      if (cut_after[i] < best_cut) {
        best_cut = cut_after[i];
        best_len = i + 1;
      }
    }
    for (std::size_t i = moves.size(); i > best_len; --i) {
      side[moves[i - 1]] ^= 1;
    }
    // Recompute side weights for the kept prefix (cheap and robust).
    weight = {0, 0};
    for (VertexId v = 0; v < n; ++v) weight[side[v]] += g.vertex_weight(v);

    if (best_cut >= cut) break;  // pass produced no improvement
    cut = best_cut;
  }
  return cut;
}

}  // namespace lar::partition
