#include "partition/coarsen.hpp"

#include <algorithm>
#include <numeric>

namespace lar::partition {

CoarseLevel coarsen_once(const Graph& fine, Rng& rng) {
  const std::size_t n = fine.num_vertices();
  constexpr VertexId kUnmatched = static_cast<VertexId>(-1);
  std::vector<VertexId> match(n, kUnmatched);

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  for (std::size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  for (const VertexId v : order) {
    if (match[v] != kUnmatched) continue;
    const auto nbrs = fine.neighbors(v);
    const auto wgts = fine.neighbor_weights(v);
    VertexId best = kUnmatched;
    std::uint64_t best_w = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      if (u == v || match[u] != kUnmatched) continue;
      if (best == kUnmatched || wgts[i] > best_w) {
        best = u;
        best_w = wgts[i];
      }
    }
    if (best != kUnmatched) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // singleton
    }
  }

  // Assign coarse ids: the lower-numbered endpoint of each match owns the id.
  CoarseLevel level;
  level.fine_to_coarse.assign(n, kUnmatched);
  GraphBuilder builder;
  for (VertexId v = 0; v < n; ++v) {
    const VertexId u = match[v];
    if (u < v) continue;  // already handled when visiting u's pair owner
    const std::uint64_t w =
        fine.vertex_weight(v) + (u != v ? fine.vertex_weight(u) : 0);
    const VertexId c = builder.add_vertex(w);
    level.fine_to_coarse[v] = c;
    level.fine_to_coarse[u] = c;
  }

  // Project edges; the builder merges the resulting parallel edges.
  for (VertexId v = 0; v < n; ++v) {
    const VertexId cv = level.fine_to_coarse[v];
    const auto nbrs = fine.neighbors(v);
    const auto wgts = fine.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId cu = level.fine_to_coarse[nbrs[i]];
      // Keep each undirected fine edge once (v < neighbor) and drop edges
      // internal to a coarse vertex.
      if (nbrs[i] <= v || cu == cv) continue;
      builder.add_edge(cv, cu, wgts[i]);
    }
  }
  level.graph = builder.build();
  return level;
}

}  // namespace lar::partition
