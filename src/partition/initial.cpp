#include "partition/initial.hpp"

#include <limits>
#include <queue>
#include <tuple>

#include "common/status.hpp"
#include "partition/quality.hpp"

namespace lar::partition {

namespace {

/// One growing attempt from a random seed; returns the side vector.
std::vector<std::uint8_t> grow_once(const Graph& g, std::uint64_t target0,
                                    const std::array<std::uint64_t, 2>& max_side,
                                    Rng& rng) {
  const std::size_t n = g.num_vertices();
  std::vector<std::uint8_t> side(n, 1);
  if (n == 0) return side;

  // gain[v] = (weight of edges from v into side 0) - (weight to side 1),
  // i.e. the cut delta of absorbing v is -gain[v].
  std::vector<std::int64_t> gain(n);
  for (VertexId v = 0; v < n; ++v) {
    std::int64_t sum = 0;
    for (const auto w : g.neighbor_weights(v)) sum += static_cast<std::int64_t>(w);
    gain[v] = -sum;
  }

  // Max-heap with lazy invalidation: entries are (gain at push time, vertex).
  std::priority_queue<std::pair<std::int64_t, VertexId>> frontier;
  const std::uint64_t total = g.total_vertex_weight();
  // Side 1 must also fit under its cap: grow at least until that holds.
  const std::uint64_t lo0 = total > max_side[1] ? total - max_side[1] : 0;
  const std::uint64_t goal = std::max(target0, lo0);

  std::uint64_t w0 = 0;
  std::size_t added = 0;

  auto absorb = [&](VertexId v) {
    side[v] = 0;
    w0 += g.vertex_weight(v);
    ++added;
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      if (side[u] == 0) continue;
      gain[u] += 2 * static_cast<std::int64_t>(wgts[i]);
      frontier.emplace(gain[u], u);
    }
  };

  absorb(static_cast<VertexId>(rng.below(n)));

  while (w0 < goal && added < n) {
    VertexId pick = static_cast<VertexId>(-1);
    while (!frontier.empty()) {
      const auto [gval, v] = frontier.top();
      frontier.pop();
      if (side[v] == 0 || gval != gain[v]) continue;  // stale or absorbed
      if (w0 + g.vertex_weight(v) > max_side[0] && w0 >= lo0) continue;
      pick = v;
      break;
    }
    if (pick == static_cast<VertexId>(-1)) {
      // Disconnected graph or everything on the frontier is too heavy:
      // absorb an arbitrary leftover vertex to make progress.
      for (VertexId v = 0; v < n; ++v) {
        if (side[v] == 1 &&
            (w0 + g.vertex_weight(v) <= max_side[0] || w0 < lo0)) {
          pick = v;
          break;
        }
      }
      if (pick == static_cast<VertexId>(-1)) break;  // cannot grow further
    }
    absorb(pick);
  }
  return side;
}

}  // namespace

std::vector<std::uint8_t> grow_bisection(
    const Graph& g, std::uint64_t target0,
    const std::array<std::uint64_t, 2>& max_side, Rng& rng, int trials) {
  LAR_CHECK(trials >= 1);
  std::vector<std::uint8_t> best;
  std::uint64_t best_cut = std::numeric_limits<std::uint64_t>::max();
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint8_t> side = grow_once(g, target0, max_side, rng);
    const std::uint64_t cut = bisection_cut(g, side);
    if (cut < best_cut) {
      best_cut = cut;
      best = std::move(side);
    }
  }
  return best;
}

}  // namespace lar::partition
