// Undirected, vertex- and edge-weighted graph in CSR form.
//
// This is the input of the multilevel partitioner (lar::partition).  In the
// paper's pipeline, vertices are stream keys weighted by their frequency and
// edges are key co-occurrences weighted by pair counts (Figure 5).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lar::partition {

using VertexId = std::uint32_t;

/// Immutable CSR graph.  Construct through GraphBuilder.
class Graph {
 public:
  Graph() = default;

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return vertex_weights_.size();
  }

  /// Number of undirected edges (each stored twice internally).
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return adj_to_.size() / 2;
  }

  [[nodiscard]] std::uint64_t vertex_weight(VertexId v) const noexcept {
    return vertex_weights_[v];
  }

  [[nodiscard]] std::uint64_t total_vertex_weight() const noexcept {
    return total_vertex_weight_;
  }

  /// Sum of all undirected edge weights.
  [[nodiscard]] std::uint64_t total_edge_weight() const noexcept {
    return total_edge_weight_;
  }

  /// Neighbor vertex ids of `v` (parallel to neighbor_weights(v)).
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {adj_to_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Edge weights to each neighbor of `v`.
  [[nodiscard]] std::span<const std::uint64_t> neighbor_weights(
      VertexId v) const noexcept {
    return {adj_w_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  [[nodiscard]] std::size_t degree(VertexId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

 private:
  friend class GraphBuilder;

  std::vector<std::uint64_t> vertex_weights_;
  std::vector<std::size_t> offsets_;      // size = V + 1
  std::vector<VertexId> adj_to_;          // size = 2 * E
  std::vector<std::uint64_t> adj_w_;      // size = 2 * E
  std::uint64_t total_vertex_weight_ = 0;
  std::uint64_t total_edge_weight_ = 0;
};

/// A subgraph extracted from a larger graph, with the mapping back to the
/// original vertex ids.
struct Subgraph {
  Graph graph;
  std::vector<VertexId> to_parent;  ///< subgraph vertex -> parent vertex
};

/// The subgraph induced by `vertices` (parent-graph ids): keeps exactly the
/// edges with both endpoints in the set, preserving weights.
[[nodiscard]] Subgraph induced_subgraph(const Graph& g,
                                        const std::vector<VertexId>& vertices);

/// Incrementally collects vertices and edges, then builds a CSR Graph.
/// Parallel edges are merged by summing their weights; self-loops are
/// rejected (they carry no information for a cut objective).
class GraphBuilder {
 public:
  /// Adds a vertex with the given weight; returns its id (dense, 0-based).
  VertexId add_vertex(std::uint64_t weight);

  /// Increases the weight of an existing vertex by `delta`.
  void add_vertex_weight(VertexId v, std::uint64_t delta);

  /// Adds an undirected edge.  Precondition: a != b, both ids valid.
  /// Calling twice with the same endpoints accumulates the weights.
  void add_edge(VertexId a, VertexId b, std::uint64_t weight);

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return vertex_weights_.size();
  }

  /// Builds the CSR graph.  The builder is left empty afterwards.
  [[nodiscard]] Graph build();

 private:
  struct HalfEdge {
    VertexId from;
    VertexId to;
    std::uint64_t weight;
  };

  std::vector<std::uint64_t> vertex_weights_;
  std::vector<HalfEdge> edges_;  // stored once per undirected edge
};

}  // namespace lar::partition
