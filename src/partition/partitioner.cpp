#include "partition/partitioner.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "partition/coarsen.hpp"
#include "partition/initial.hpp"
#include "partition/quality.hpp"
#include "partition/refine.hpp"

namespace lar::partition {

namespace {

/// Algorithmic-iteration counters accumulated across the recursion (the
/// deterministic stand-in for plan-compute duration; see PartitionResult).
struct WorkCounters {
  std::uint64_t fm_passes = 0;
  std::uint64_t bisections = 0;
};

/// Bisects `g` with multilevel coarsening; side-0 target weight `target0`.
std::vector<std::uint8_t> multilevel_bisect(
    const Graph& g, std::uint64_t target0,
    const std::array<std::uint64_t, 2>& max_side,
    const PartitionOptions& options, Rng& rng, WorkCounters& work) {
  ++work.bisections;
  // Coarsening: stop when small enough or matching stops making progress.
  std::vector<CoarseLevel> levels;
  const Graph* cur = &g;
  while (cur->num_vertices() > options.coarsen_to) {
    CoarseLevel lvl = coarsen_once(*cur, rng);
    if (lvl.graph.num_vertices() >
        static_cast<std::size_t>(0.95 * static_cast<double>(cur->num_vertices()))) {
      break;  // diminishing returns (e.g. star graphs match poorly)
    }
    levels.push_back(std::move(lvl));
    cur = &levels.back().graph;
  }

  std::vector<std::uint8_t> side =
      grow_bisection(*cur, target0, max_side, rng, options.initial_trials);
  if (options.enable_refinement) {
    fm_refine(*cur, side, max_side, options.refinement_passes,
              &work.fm_passes);
  }

  // Uncoarsen: project through each level and refine on the finer graph.
  for (std::size_t i = levels.size(); i > 0; --i) {
    const Graph& finer = (i >= 2) ? levels[i - 2].graph : g;
    const auto& map = levels[i - 1].fine_to_coarse;
    std::vector<std::uint8_t> fine_side(finer.num_vertices());
    for (VertexId v = 0; v < finer.num_vertices(); ++v) {
      fine_side[v] = side[map[v]];
    }
    side = std::move(fine_side);
    if (options.enable_refinement) {
      fm_refine(finer, side, max_side, options.refinement_passes,
                &work.fm_passes);
    }
  }
  return side;
}

/// Recursively assigns parts [part_begin, part_begin + part_count) to the
/// vertices of `g` (whose global ids are `to_global`), writing into `out`.
void recurse(const Graph& g, const std::vector<VertexId>& to_global,
             std::uint32_t part_begin, std::uint32_t part_count,
             std::uint64_t max_per_part, const PartitionOptions& options,
             Rng& rng, std::vector<std::uint32_t>& out, WorkCounters& work) {
  if (part_count == 1) {
    for (const VertexId v : to_global) out[v] = part_begin;
    return;
  }
  const std::uint32_t k0 = part_count / 2;
  const std::uint32_t k1 = part_count - k0;
  const std::uint64_t total = g.total_vertex_weight();
  const std::uint64_t target0 =
      static_cast<std::uint64_t>(static_cast<double>(total) *
                                 static_cast<double>(k0) /
                                 static_cast<double>(part_count));
  // Each side must eventually fit k parts of at most max_per_part each.
  const std::array<std::uint64_t, 2> max_side{max_per_part * k0,
                                              max_per_part * k1};
  const std::vector<std::uint8_t> side =
      multilevel_bisect(g, target0, max_side, options, rng, work);

  std::vector<VertexId> left;
  std::vector<VertexId> right;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    (side[v] == 0 ? left : right).push_back(v);
  }

  auto descend = [&](const std::vector<VertexId>& local_ids,
                     std::uint32_t begin, std::uint32_t count) {
    if (local_ids.empty()) return;
    std::vector<VertexId> global_ids(local_ids.size());
    for (std::size_t i = 0; i < local_ids.size(); ++i) {
      global_ids[i] = to_global[local_ids[i]];
    }
    if (count == 1) {
      for (const VertexId v : global_ids) out[v] = begin;
      return;
    }
    Subgraph sub = induced_subgraph(g, local_ids);
    // Map subgraph-local ids to true global ids before recursing.
    for (auto& v : sub.to_parent) v = to_global[v];
    recurse(sub.graph, sub.to_parent, begin, count, max_per_part, options, rng,
            out, work);
  };
  descend(left, part_begin, k0);
  descend(right, part_begin + k0, k1);
}

}  // namespace

PartitionResult partition_graph(const Graph& g,
                                const PartitionOptions& options) {
  LAR_CHECK(options.num_parts >= 1);
  LAR_CHECK(options.alpha >= 1.0);

  PartitionResult result;
  result.assignment.assign(g.num_vertices(), 0);
  if (g.num_vertices() == 0 || options.num_parts == 1) {
    result.edge_cut = options.num_parts == 1 ? 0 : 0;
    result.achieved_imbalance =
        partition_imbalance(g, result.assignment, std::max(options.num_parts, 1u));
    return result;
  }

  Rng rng(options.seed);
  const double avg = static_cast<double>(g.total_vertex_weight()) /
                     static_cast<double>(options.num_parts);
  // +1 absorbs rounding; the alpha bound is on real-valued averages.
  const auto max_per_part =
      static_cast<std::uint64_t>(std::ceil(avg * options.alpha)) + 1;

  std::vector<VertexId> all(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
  WorkCounters work;
  recurse(g, all, 0, options.num_parts, max_per_part, options, rng,
          result.assignment, work);
  result.fm_passes = work.fm_passes;
  result.bisections = work.bisections;

  result.edge_cut = edge_cut(g, result.assignment);
  result.achieved_imbalance =
      partition_imbalance(g, result.assignment, options.num_parts);
  return result;
}

}  // namespace lar::partition
