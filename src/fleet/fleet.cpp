#include "fleet/fleet.hpp"

#include <utility>

#include "common/status.hpp"

namespace lar::fleet {

FleetManager::FleetManager(std::vector<AppSpec> apps, FleetOptions options)
    : options_(std::move(options)) {
  LAR_CHECK(!apps.empty());
  LAR_CHECK(options_.num_servers >= 1);
  apps_.reserve(apps.size());
  for (AppId id = 0; id < apps.size(); ++id) {
    AppSpec& spec = apps[id];
    LAR_CHECK(!spec.name.empty());
    LAR_CHECK(spec.topology.validate().is_ok());
    AppContext ctx;
    ctx.id = id;
    ctx.name = std::move(spec.name);
    for (const AppContext& prev : apps_) LAR_CHECK(prev.name != ctx.name);
    ctx.op_begin = static_cast<OperatorId>(combined_.num_operators());
    // Compose the tenant's DAG into the combined topology at an id offset.
    // Prefixed names keep per-op metric labels unambiguous across tenants.
    for (OperatorId op = 0; op < spec.topology.num_operators(); ++op) {
      OperatorSpec o = spec.topology.op(op);
      o.name = ctx.name + "/" + o.name;
      combined_.add_operator(std::move(o));
    }
    for (const EdgeSpec& e : spec.topology.edges()) {
      combined_.connect(ctx.op_begin + e.from, ctx.op_begin + e.to,
                        e.grouping, e.key_field);
    }
    ctx.op_end = static_cast<OperatorId>(combined_.num_operators());
    for (OperatorId s : spec.topology.sources()) {
      ctx.sources.push_back(ctx.op_begin + s);
    }
    apps_.push_back(std::move(ctx));
  }
  LAR_CHECK(combined_.validate().is_ok());
  placement_.emplace(
      Placement::round_robin(combined_, options_.num_servers));
  joint_ = std::make_unique<core::Manager>(combined_, *placement_,
                                           options_.manager);
  independent_.resize(apps_.size());
  remembered_.resize(apps_.size());
}

AppId FleetManager::app_of(OperatorId op) const {
  for (const AppContext& a : apps_) {
    if (a.contains(op)) return a.id;
  }
  LAR_CHECK(false);  // not a combined-topology operator id
  return 0;
}

void FleetManager::set_metrics_registry(obs::Registry* registry) {
  registry_ = registry;
  if (registry_ != nullptr) {
    registry_
        ->gauge("lar_fleet_apps", {},
                "Tenant applications sharing this server fleet.")
        .set(static_cast<double>(apps_.size()));
  }
}

core::ReconfigurationPlan FleetManager::plan_app(
    AppId id, const std::vector<core::HopStats>& stats,
    std::uint32_t active_servers) {
  const AppContext& ctx = app(id);
  const std::vector<core::HopStats> joint_stats = complete_stats(stats);
  core::ReconfigurationPlan joint =
      active_servers > 0 ? joint_->plan_for(joint_stats, active_servers)
                         : joint_->compute_plan(joint_stats);
  core::ReconfigurationPlan sliced = slice(ctx, joint);
  publish_app_plan(ctx, sliced);
  return sliced;
}

core::ReconfigurationPlan FleetManager::plan_app_independent(
    AppId id, const std::vector<core::HopStats>& stats,
    std::uint32_t active_servers) {
  const AppContext& ctx = app(id);
  // The isolated planner must only ever see this tenant's statistics: its
  // balance constraint then runs over one tenant's load, blind to the
  // others — the production failure mode the joint plan exists to fix.
  // (Completion still applies to the tenant's OWN statistics, so both modes
  // handle a just-waved tenant identically.)
  std::vector<core::HopStats> own;
  for (const core::HopStats& h : complete_stats(stats)) {
    if (ctx.contains(h.in_op)) own.push_back(h);
  }
  core::Manager& mgr = independent_manager(id);
  core::ReconfigurationPlan plan = active_servers > 0
                                       ? mgr.plan_for(own, active_servers)
                                       : mgr.compute_plan(own);
  core::ReconfigurationPlan sliced = slice(ctx, plan);
  publish_app_plan(ctx, sliced);
  return sliced;
}

core::ReconfigurationPlan FleetManager::plan_all(
    const std::vector<core::HopStats>& stats, std::uint32_t active_servers) {
  const std::vector<core::HopStats> joint_stats = complete_stats(stats);
  return active_servers > 0 ? joint_->plan_for(joint_stats, active_servers)
                            : joint_->compute_plan(joint_stats);
}

void FleetManager::mark_deployed(AppId id,
                                 const core::ReconfigurationPlan& sliced) {
  const AppContext& ctx = app(id);
  for (const auto& [op, table] : sliced.tables) LAR_CHECK(ctx.contains(op));
  joint_->mark_deployed(sliced);
  // The deployed slice is ground truth no matter which planner computed it;
  // advancing both diff bases keeps joint and independent move sets honest.
  if (independent_[id]) independent_[id]->mark_deployed(sliced);
  apps_[id].plan_version = sliced.version;
}

void FleetManager::mark_deployed_all(const core::ReconfigurationPlan& plan) {
  joint_->mark_deployed(plan);
  for (std::size_t id = 0; id < independent_.size(); ++id) {
    if (independent_[id]) independent_[id]->mark_deployed(plan);
  }
  for (AppContext& a : apps_) a.plan_version = plan.version;
}

void FleetManager::note_checkpoint(std::uint64_t epoch) {
  for (AppContext& a : apps_) a.checkpoint_epoch = epoch;
}

FleetManager::Arbitration FleetManager::arbitrate(
    const std::vector<elastic::Signals>& per_app) const {
  LAR_CHECK(per_app.size() == apps_.size());
  return {elastic::aggregate_signals(per_app),
          static_cast<AppId>(elastic::dominant_app(per_app))};
}

std::vector<core::HopStats> FleetManager::complete_stats(
    const std::vector<core::HopStats>& stats) {
  std::vector<std::vector<core::HopStats>> fresh(apps_.size());
  for (const core::HopStats& h : stats) {
    fresh[app_of(h.in_op)].push_back(h);
  }
  std::vector<core::HopStats> out;
  out.reserve(stats.size());
  for (AppId id = 0; id < apps_.size(); ++id) {
    bool has_pairs = false;
    for (const core::HopStats& h : fresh[id]) {
      if (!h.pairs.empty()) {
        has_pairs = true;
        break;
      }
    }
    // A gather that carries the tenant's pairs is its newest cumulative
    // view: use it and remember it.  An empty one means the tenant's own
    // wave just consumed its statistics — stand in with the remembered
    // gather so the joint balance constraint still sees this tenant's load.
    const std::vector<core::HopStats>& use =
        has_pairs ? fresh[id] : remembered_[id];
    out.insert(out.end(), use.begin(), use.end());
    if (has_pairs) remembered_[id] = std::move(fresh[id]);
  }
  return out;
}

core::ReconfigurationPlan FleetManager::slice(
    const AppContext& app, const core::ReconfigurationPlan& joint) const {
  core::ReconfigurationPlan out = joint;
  out.tables.clear();
  out.moves.clear();
  out.keys_assigned = 0;
  for (const auto& [op, table] : joint.tables) {
    if (!app.contains(op)) continue;
    out.tables.emplace(op, table);
    out.keys_assigned += table->size();
  }
  for (const auto& [op, moves] : joint.moves) {
    if (!app.contains(op) || moves.empty()) continue;
    out.moves.emplace(op, moves);
  }
  return out;
}

void FleetManager::publish_app_plan(
    const AppContext& app, const core::ReconfigurationPlan& sliced) const {
  if (registry_ == nullptr) return;
  // The Scoped view stamps app identity on the whole per-tenant surface;
  // hostile tenant names are escaped by the exporters like any label value.
  const obs::Scoped scoped(*registry_, {{"app", app.name}});
  scoped.gauge("lar_fleet_plan_version", {},
               "Plan version last computed for this tenant.")
      .set(static_cast<double>(sliced.version));
  scoped.gauge("lar_fleet_plan_tables", {},
               "Routing tables in the tenant's latest plan slice.")
      .set(static_cast<double>(sliced.tables.size()));
  scoped.gauge("lar_fleet_plan_keys_assigned", {},
               "Keys explicitly placed for this tenant by the latest plan.")
      .set(static_cast<double>(sliced.keys_assigned));
  scoped.gauge("lar_fleet_plan_key_moves", {},
               "Key migrations the tenant's latest plan slice requires.")
      .set(static_cast<double>(sliced.total_moves()));
}

core::Manager& FleetManager::independent_manager(AppId id) {
  if (!independent_[id]) {
    independent_[id] = std::make_unique<core::Manager>(
        combined_, *placement_, options_.manager);
  }
  return *independent_[id];
}

}  // namespace lar::fleet
