// lar::fleet — multi-tenant serving: many concurrent applications planned
// jointly on one shared server fleet (DESIGN.md §15).
//
// The paper plans one topology per fleet.  Production means many pipelines
// sharing the same servers, and concurrent applications must be planned
// against *shared* per-server capacity or one app's placement wrecks
// another's (Benoit et al., arXiv:0903.0710).  The FleetManager therefore
// composes every tenant's Topology into ONE combined topology over disjoint
// operator-id ranges (no cross-tenant edges; operator names prefixed
// "<app>/") and runs the unmodified locality planner on the union of all
// tenants' pair statistics:
//
//   - shared capacity: the bipartite partitioner's balance constraint runs
//     over each server's TOTAL vertex mass — the sum of all tenants'
//     instance loads — so a heavy tenant's hot keys are placed around a
//     light tenant's instead of colliding on the same server;
//   - per-tenant alpha: the planner's per-operator balance repair is per
//     OPERATOR, and tenant operator ranges are disjoint, so every tenant
//     keeps its own max/avg instance-load bound with no algorithm changes;
//   - per-tenant plans: the joint plan is *sliced* to one tenant's operator
//     range before deployment, which is what makes reconfiguration waves
//     per-tenant and staggered — deploying tenant A's slice touches none of
//     tenant B's tables, statistics or data plane.
//
// Pair statistics are cumulative since each tenant's own last deployment
// (table installation resets them per-operator).  A tenant that just waved
// therefore gathers as empty until it re-accumulates traffic — which would
// blind the NEXT tenant's joint plan to its load and re-collide the hot
// keys a wave just separated.  plan_app() closes that window by remembering
// each tenant's last non-empty gathered statistics and completing every
// joint gather with the remembered set for tenants whose fresh statistics
// were just consumed: back-to-back tenant waves all solve the same joint
// picture and their slices compose into one consistent fleet-wide plan.
//
// The engine/sim embed one FleetManager behind a null-default pointer; with
// no fleet attached every existing single-tenant code path and output is
// byte-identical (same discipline as chaos/ckpt/split).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/manager.hpp"
#include "elastic/controller.hpp"
#include "obs/metrics.hpp"
#include "topology/placement.hpp"
#include "topology/topology.hpp"

namespace lar::fleet {

using AppId = std::uint32_t;

/// One tenant application handed to the FleetManager constructor.
struct AppSpec {
  std::string name;  ///< unique; becomes the `app` metric label
  Topology topology; ///< the tenant's own DAG (validated on composition)
};

/// Per-tenant identity and bookkeeping inside the combined fleet.  The
/// heavyweight per-app state the engine threads through its wave/checkpoint
/// machinery (tables, dedup cursors, split state) stays keyed by combined
/// operator id — disjoint ranges make "per app" a range predicate, not a
/// parallel data structure.
struct AppContext {
  AppId id = 0;
  std::string name;
  OperatorId op_begin = 0;  ///< combined-id range [op_begin, op_end)
  OperatorId op_end = 0;
  std::vector<OperatorId> sources;  ///< combined ids of the tenant's sources

  std::uint64_t plan_version = 0;      ///< last plan deployed for this app
  std::uint64_t checkpoint_epoch = 0;  ///< last global epoch covering it

  [[nodiscard]] bool contains(OperatorId op) const noexcept {
    return op >= op_begin && op < op_end;
  }
  [[nodiscard]] std::uint32_t num_ops() const noexcept {
    return op_end - op_begin;
  }
};

struct FleetOptions {
  std::uint32_t num_servers = 0;  ///< shared fleet size (required, >= 1)
  core::ManagerOptions manager;   ///< planner knobs (alpha, split, ...)
};

/// Owns the combined topology/placement, the joint planner, and the tenant
/// contexts.  Must outlive any engine/sim deploying combined_topology() —
/// the Manager and the engines hold references into it.
class FleetManager {
 public:
  FleetManager(std::vector<AppSpec> apps, FleetOptions options);

  [[nodiscard]] const Topology& combined_topology() const noexcept {
    return combined_;
  }
  [[nodiscard]] const Placement& combined_placement() const noexcept {
    return *placement_;
  }
  [[nodiscard]] std::size_t num_apps() const noexcept { return apps_.size(); }
  [[nodiscard]] const AppContext& app(AppId id) const {
    LAR_CHECK(id < apps_.size());
    return apps_[id];
  }
  /// Tenant owning a combined operator id.
  [[nodiscard]] AppId app_of(OperatorId op) const;

  /// The joint planner (for whole-fleet paths: engine resize, snapshots).
  [[nodiscard]] core::Manager& manager() noexcept { return *joint_; }

  /// Attaches a registry: per-tenant plan gauges (`lar_fleet_plan_*{app}`)
  /// publish through an obs::Scoped on every plan_app(), and the
  /// `lar_fleet_apps` gauge registers immediately.  Null detaches.
  void set_metrics_registry(obs::Registry* registry);

  /// Joint plan over ALL tenants' statistics, sliced to tenant `id`:
  /// tables and moves outside [op_begin, op_end) are dropped and
  /// keys_assigned recomputed for the slice; fleet-level diagnostics
  /// (expected_locality, edge_cut, imbalance) stay joint.  `stats` is the
  /// full gather — cross-tenant hops don't exist, per-tenant filtering
  /// happens by construction; tenants whose fresh statistics are empty
  /// (their own wave just consumed them) contribute their remembered last
  /// gather instead, so the joint balance constraint never goes blind to a
  /// recently-waved neighbor.  active_servers > 0 plans for that active
  /// prefix via plan_for (elastic); 0 keeps the fixed-fleet compute_plan.
  [[nodiscard]] core::ReconfigurationPlan plan_app(
      AppId id, const std::vector<core::HopStats>& stats,
      std::uint32_t active_servers = 0);

  /// Ablation baseline: plans tenant `id` in ISOLATION — a lazily built
  /// per-tenant Manager over the same combined topology/placement is fed
  /// only this tenant's hops, so the balance constraint sees one tenant's
  /// load and tenants collide on shared servers exactly the way
  /// independent planning does in production.  Same slicing as plan_app.
  [[nodiscard]] core::ReconfigurationPlan plan_app_independent(
      AppId id, const std::vector<core::HopStats>& stats,
      std::uint32_t active_servers = 0);

  /// Whole-fleet plan, NOT sliced — the engine's resize path must deploy
  /// every tenant's fallback-domain tables in one wave (slicing a resize
  /// would leave other tenants hashing over a stale active set).
  [[nodiscard]] core::ReconfigurationPlan plan_all(
      const std::vector<core::HopStats>& stats,
      std::uint32_t active_servers = 0);

  /// Records a deployed per-tenant slice: the joint planner's (and, when it
  /// exists, the tenant's independent planner's) diff base advances for
  /// exactly the sliced operators, and the tenant's plan_version follows.
  void mark_deployed(AppId id, const core::ReconfigurationPlan& sliced);

  /// Records a deployed whole-fleet plan (resize path) for every tenant.
  void mark_deployed_all(const core::ReconfigurationPlan& plan);

  /// Records a global checkpoint epoch — the aligned cut covers every app.
  void note_checkpoint(std::uint64_t epoch);

  /// Controller arbitration across tenants: the shared controller evaluates
  /// the max-pressure/any-veto aggregate, and scale-out blame lands on the
  /// dominant (argmax-utilization) tenant.  One Signals per app, app order.
  struct Arbitration {
    elastic::Signals combined;
    AppId dominant = 0;
  };
  [[nodiscard]] Arbitration arbitrate(
      const std::vector<elastic::Signals>& per_app) const;

 private:
  /// Partitions `stats` by tenant, refreshes each tenant's remembered
  /// gather wherever the fresh portion carries pairs, and returns the
  /// fresh-or-remembered union in app-id order (plan computation is a pure
  /// function of the *set*, the order is just kept canonical).
  [[nodiscard]] std::vector<core::HopStats> complete_stats(
      const std::vector<core::HopStats>& stats);

  [[nodiscard]] core::ReconfigurationPlan slice(
      const AppContext& app, const core::ReconfigurationPlan& joint) const;
  void publish_app_plan(const AppContext& app,
                        const core::ReconfigurationPlan& sliced) const;
  [[nodiscard]] core::Manager& independent_manager(AppId id);

  Topology combined_;
  std::optional<Placement> placement_;
  FleetOptions options_;
  std::vector<AppContext> apps_;
  std::unique_ptr<core::Manager> joint_;
  std::vector<std::unique_ptr<core::Manager>> independent_;  ///< lazy, per app
  /// Per app: the last gather that carried this tenant's pairs — the
  /// neighbor-load stand-in while the tenant's fresh statistics rebuild
  /// after its own wave consumed them.
  std::vector<std::vector<core::HopStats>> remembered_;
  obs::Registry* registry_ = nullptr;
};

}  // namespace lar::fleet
