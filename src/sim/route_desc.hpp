// Devirtualized per-tuple routing for the simulator.
//
// The threaded runtime keeps the virtual lar::Router hierarchy (it is the
// correctness substrate and each POI thread owns its routers), but the
// simulator delivers every tuple of every figure sweep through the same
// decision, and an indirect call per edge per tuple is the single largest
// avoidable cost on that path.  RouterBank resolves each (edge, emitting
// instance) router once, at pipeline construction, into a POD RouteDesc —
// a tagged union over the six routing disciplines — and routes with a switch:
// no vtable load, no indirect branch, descriptors packed contiguously.
//
// RouterBank::add mirrors make_router argument-for-argument and seed-for-seed
// so that bank routing is bit-equivalent to the Router objects; the
// differential test in tests/test_sim.cpp holds the two implementations
// together.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "topology/placement.hpp"
#include "topology/routing.hpp"
#include "topology/topology.hpp"
#include "topology/types.hpp"

namespace lar::sim {

/// One resolved routing decision: the devirtualized counterpart of a
/// lar::Router subclass.  Mutable fields (`next`, partial-key counters in the
/// bank's pool) carry the same state the virtual routers carry.
struct RouteDesc {
  enum class Kind : std::uint8_t {
    kShuffle,         ///< ShuffleRouter
    kShuffleRestricted,  ///< ShuffleRouter over an elastic active set
    kLocalOrShuffle,  ///< LocalOrShuffleRouter
    kHashFields,      ///< HashFieldsRouter
    kPermutation,     ///< PermutationFieldsRouter
    kTable,           ///< TableFieldsRouter (null table = hash fallback)
    kIdentity,        ///< IdentityFieldsRouter (offset 0 or worst-case)
    kPartialKey,      ///< PartialKeyRouter
  };

  /// "No sent-counter region allocated" sentinel (region 0 is a valid pool
  /// offset, so 0 cannot mean "none").
  static constexpr std::uint32_t kNoSent = 0xffffffffU;

  Kind kind = Kind::kHashFields;
  std::uint32_t key_field = 0;
  std::uint32_t fanout = 1;
  std::uint32_t offset = 0;      ///< kIdentity rotation
  std::uint32_t next = 0;        ///< kShuffle / kLocalOrShuffle cursor
  std::uint32_t aux_begin = 0;   ///< locals / permutation range in aux pool
  std::uint32_t aux_len = 0;
  std::uint32_t sent_begin = kNoSent;  ///< kPartialKey / kTable counters
  const RoutingTable* table = nullptr;  ///< kTable; not owned
};

/// Owns the descriptors and the variable-length side state (local-instance
/// lists, permutations, partial-key load counters) for one PipelineModel.
class RouterBank {
 public:
  /// Resolves the router for `edge` as emitted by an instance on
  /// `src_server` and appends it; returns its slot id.  Takes the same
  /// arguments as make_router and must stay behaviourally identical to it.
  /// `table` may be null for FieldsRouting::kTable (hash fallback until a
  /// table is installed).
  std::uint32_t add(const EdgeSpec& edge, std::uint32_t edge_index,
                    const Topology& topology, const Placement& placement,
                    ServerId src_server, FieldsRouting fields_mode,
                    const RoutingTable* table, std::uint64_t seed);

  /// Destination instance for `tuple` through descriptor `slot`.
  /// Precondition for fields kinds: key_field < tuple.fields.size()
  /// (checked per-edge by the caller before routing).
  [[nodiscard]] InstanceIndex route(std::uint32_t slot,
                                    const Tuple& tuple) noexcept {
    RouteDesc& d = descs_[slot];
    switch (d.kind) {
      case RouteDesc::Kind::kShuffle: {
        const InstanceIndex out = d.next;
        d.next = (d.next + 1) % d.fanout;
        return out;
      }
      case RouteDesc::Kind::kShuffleRestricted: {
        const InstanceIndex out = aux_[d.aux_begin + d.next];
        d.next = (d.next + 1) % d.aux_len;
        return out;
      }
      case RouteDesc::Kind::kLocalOrShuffle: {
        if (d.aux_len != 0) {
          const InstanceIndex out = aux_[d.aux_begin + d.next % d.aux_len];
          d.next = (d.next + 1) % d.fanout;
          return out;
        }
        const InstanceIndex out = d.next;
        d.next = (d.next + 1) % d.fanout;
        return out;
      }
      case RouteDesc::Kind::kHashFields:
        return hash_instance(tuple.fields[d.key_field], d.fanout);
      case RouteDesc::Kind::kPermutation:
        return aux_[d.aux_begin + tuple.fields[d.key_field] % d.fanout];
      case RouteDesc::Kind::kTable: {
        const Key key = tuple.fields[d.key_field];
        if (d.table == nullptr) return hash_instance(key, d.fanout);
        if (d.table->has_splits()) {
          const auto candidates = d.table->split_candidates(key);
          if (!candidates.empty()) {
            // Same least-loaded-of-d, first-listed-wins-ties discipline as
            // TableFieldsRouter (bit-equivalence pinned in test_sim.cpp).
            std::uint64_t* sent = sent_.data() + d.sent_begin;
            InstanceIndex pick = candidates[0];
            for (const InstanceIndex c : candidates) {
              if (sent[c] < sent[pick]) pick = c;
            }
            ++sent[pick];
            return pick;
          }
        }
        return d.table->route(key, d.fanout);
      }
      case RouteDesc::Kind::kIdentity:
        return static_cast<InstanceIndex>(
            (tuple.fields[d.key_field] + d.offset) % d.fanout);
      case RouteDesc::Kind::kPartialKey: {
        const Key key = tuple.fields[d.key_field];
        const auto h1 = static_cast<InstanceIndex>(mix64(key) % d.fanout);
        const auto h2 = static_cast<InstanceIndex>(
            mix64(key ^ 0x9e3779b97f4a7c15ULL) % d.fanout);
        std::uint64_t* sent = sent_.data() + d.sent_begin;
        const InstanceIndex pick = sent[h1] <= sent[h2] ? h1 : h2;
        ++sent[pick];
        return pick;
      }
    }
    return 0;  // unreachable
  }

  /// Swaps descriptor `slot` to table routing through `table` (not owned) —
  /// the devirtualized TableFieldsRouter::set_table / router replacement.
  /// Like the virtual router, the slot's split sent counters reset to zero
  /// (allocating them on first use for slots born as another kind).
  void set_table(std::uint32_t slot, const RoutingTable* table);

  /// Restricts a shuffle descriptor to cycle over `instances` — the
  /// devirtualized ShuffleRouter::set_active_instances.  Appends the list to
  /// the aux pool (old ranges are never reclaimed; resizes are rare).
  void set_shuffle_actives(std::uint32_t slot,
                           const std::vector<InstanceIndex>& instances);

  [[nodiscard]] const RouteDesc& desc(std::uint32_t slot) const noexcept {
    return descs_[slot];
  }
  [[nodiscard]] std::size_t size() const noexcept { return descs_.size(); }

 private:
  std::vector<RouteDesc> descs_;
  std::vector<InstanceIndex> aux_;   ///< locals + permutations, by range
  std::vector<std::uint64_t> sent_;  ///< partial-key load estimates, by range
};

}  // namespace lar::sim
