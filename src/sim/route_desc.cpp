#include "sim/route_desc.hpp"

#include <algorithm>
#include <utility>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace lar::sim {

std::uint32_t RouterBank::add(const EdgeSpec& edge, std::uint32_t edge_index,
                              const Topology& topology,
                              const Placement& placement, ServerId src_server,
                              FieldsRouting fields_mode,
                              const RoutingTable* table, std::uint64_t seed) {
  const std::uint32_t fanout = topology.op(edge.to).parallelism;
  LAR_CHECK(fanout >= 1);
  RouteDesc d;
  d.key_field = edge.key_field;
  d.fanout = fanout;
  switch (edge.grouping) {
    case GroupingType::kShuffle:
      d.kind = RouteDesc::Kind::kShuffle;
      d.next = static_cast<std::uint32_t>(mix64(seed) % fanout);
      break;
    case GroupingType::kLocalOrShuffle: {
      d.kind = RouteDesc::Kind::kLocalOrShuffle;
      d.next = static_cast<std::uint32_t>(mix64(seed) % fanout);
      const std::vector<InstanceIndex> locals =
          placement.local_instances(edge.to, src_server);
      d.aux_begin = static_cast<std::uint32_t>(aux_.size());
      d.aux_len = static_cast<std::uint32_t>(locals.size());
      aux_.insert(aux_.end(), locals.begin(), locals.end());
      break;
    }
    case GroupingType::kFields:
      switch (fields_mode) {
        case FieldsRouting::kHash:
          d.kind = RouteDesc::Kind::kHashFields;
          break;
        case FieldsRouting::kPermutation: {
          d.kind = RouteDesc::Kind::kPermutation;
          d.aux_begin = static_cast<std::uint32_t>(aux_.size());
          d.aux_len = fanout;
          aux_.resize(aux_.size() + fanout);
          InstanceIndex* perm = aux_.data() + d.aux_begin;
          for (std::uint32_t i = 0; i < fanout; ++i) perm[i] = i;
          // Same per-edge seed and Fisher-Yates as PermutationFieldsRouter:
          // every emitter of one edge must agree on the key -> instance map.
          Rng rng(0x9d5f + edge_index * 7919);
          for (std::uint32_t i = fanout; i > 1; --i) {
            std::swap(perm[i - 1], perm[rng.below(i)]);
          }
          break;
        }
        case FieldsRouting::kTable:
          d.kind = RouteDesc::Kind::kTable;
          d.table = table;  // null = hash fallback, like an empty table
          // Split sent counters, zeroed like TableFieldsRouter's sent_.
          d.sent_begin = static_cast<std::uint32_t>(sent_.size());
          sent_.resize(sent_.size() + fanout, 0);
          break;
        case FieldsRouting::kIdentity:
          d.kind = RouteDesc::Kind::kIdentity;
          d.offset = 0;
          break;
        case FieldsRouting::kWorstCase:
          d.kind = RouteDesc::Kind::kIdentity;
          d.offset = edge_index + 1;
          break;
        case FieldsRouting::kPartialKey:
          d.kind = RouteDesc::Kind::kPartialKey;
          d.sent_begin = static_cast<std::uint32_t>(sent_.size());
          sent_.resize(sent_.size() + fanout, 0);
          break;
      }
      break;
  }
  descs_.push_back(d);
  return static_cast<std::uint32_t>(descs_.size() - 1);
}

void RouterBank::set_table(std::uint32_t slot, const RoutingTable* table) {
  RouteDesc& d = descs_[slot];
  d.kind = RouteDesc::Kind::kTable;
  d.table = table;
  if (d.sent_begin == RouteDesc::kNoSent) {
    d.sent_begin = static_cast<std::uint32_t>(sent_.size());
    sent_.resize(sent_.size() + d.fanout, 0);
  } else {
    std::fill_n(sent_.data() + d.sent_begin, d.fanout, 0);
  }
}

void RouterBank::set_shuffle_actives(
    std::uint32_t slot, const std::vector<InstanceIndex>& instances) {
  LAR_CHECK(!instances.empty());
  RouteDesc& d = descs_[slot];
  LAR_CHECK(d.kind == RouteDesc::Kind::kShuffle ||
            d.kind == RouteDesc::Kind::kShuffleRestricted);
  d.kind = RouteDesc::Kind::kShuffleRestricted;
  d.aux_begin = static_cast<std::uint32_t>(aux_.size());
  d.aux_len = static_cast<std::uint32_t>(instances.size());
  aux_.insert(aux_.end(), instances.begin(), instances.end());
  // Same cursor carry-over as ShuffleRouter::set_active_instances.
  d.next %= d.aux_len;
}

}  // namespace lar::sim
