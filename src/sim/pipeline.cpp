#include "sim/pipeline.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace lar::sim {

PipelineModel::PipelineModel(const Topology& topology,
                             const Placement& placement,
                             const SimConfig& config,
                             FieldsRouting fields_mode)
    : topology_(topology),
      placement_(placement),
      config_(config),
      fields_mode_(fields_mode) {
  LAR_CHECK(topology.validate().is_ok());
  anchors_ = compute_stats_anchors(topology);
  sources_ = topology.sources();

  const auto& edges = topology.edges();
  route_base_.resize(edges.size());
  edge_tables_.resize(edges.size());
  pair_stats_.resize(edges.size());
  work_.reserve(topology.num_operators());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const EdgeSpec& edge = edges[e];
    const std::uint32_t src_par = topology.op(edge.from).parallelism;
    route_base_[e] = static_cast<std::uint32_t>(bank_.size());
    for (InstanceIndex i = 0; i < src_par; ++i) {
      bank_.add(edge, static_cast<std::uint32_t>(e), topology, placement,
                placement.server_of(edge.from, i), fields_mode,
                /*table=*/nullptr,
                /*seed=*/config.seed * 1000003 + e * 131 + i);
    }
    // Instrument the emitting POIs of optimizable hops: fields edges whose
    // emitter carries an upstream fields-routed key (its "anchor"); for a
    // stateful emitter that is the emitter itself, for a stateless one the
    // nearest fields-routed ancestor (paper Figure 3's B -> C -> D shape).
    if (edge.grouping == GroupingType::kFields &&
        anchors_[edge.from].has_value()) {
      pair_stats_[e].reserve(src_par);
      for (InstanceIndex i = 0; i < src_par; ++i) {
        pair_stats_[e].emplace_back(config.pair_stats_capacity);
      }
    }
  }

  stats_.edge_traffic.assign(edges.size(), {});
  stats_.edge_remote_bytes.assign(edges.size(), 0);
  stats_.edge_rack_remote.assign(edges.size(), 0);
  stats_.cpu_units.assign(placement.num_servers(), 0.0);
  stats_.nic_out.assign(placement.num_servers(), 0);
  stats_.nic_in.assign(placement.num_servers(), 0);
  stats_.uplink_out.assign(placement.num_racks(), 0);
  stats_.uplink_in.assign(placement.num_racks(), 0);
  stats_.instance_load.resize(topology.num_operators());
  for (OperatorId op = 0; op < topology.num_operators(); ++op) {
    stats_.instance_load[op].assign(topology.op(op).parallelism, 0);
  }

  // Elastic restricted start (stats vectors stay max-sized; zero-work
  // servers never become the bottleneck candidate).  Fields edges begin on
  // fallback-domain tables so unknown keys hash over the active instance
  // set, never onto a dormant server.
  active_servers_ = config.active_servers == 0 ? placement.num_servers()
                                               : config.active_servers;
  LAR_CHECK(active_servers_ >= 1 &&
            active_servers_ <= placement.num_servers());
  if (active_servers_ < placement.num_servers()) {
    restricted_ = true;
    for (const EdgeSpec& edge : edges) {
      if (edge.grouping == GroupingType::kFields) {
        auto table = std::make_shared<RoutingTable>();
        table->set_fallback(
            placement.active_instances(edge.to, active_servers_));
        set_table(edge.to, std::move(table));
      }
    }
    apply_active_restriction(active_servers_);
  }
}

void PipelineModel::process(const Tuple& tuple) {
  ++stats_.tuples;
  for (std::size_t s = 0; s < sources_.size(); ++s) {
    const OperatorId src = sources_[s];
    InstanceIndex instance = 0;
    if (restricted_) {
      // Active-list pick; over a full list this is exactly the historical
      // `% parallelism` pick (act[i] == i).
      const std::vector<InstanceIndex>& act = source_actives_[s];
      switch (config_.source_mode) {
        case SourceMode::kAlignedField0:
          LAR_CHECK(!tuple.fields.empty());
          instance = act[tuple.fields[0] % act.size()];
          break;
        case SourceMode::kRoundRobin:
          instance = act[source_seq_ % act.size()];
          break;
      }
    } else {
      const std::uint32_t par = topology_.op(src).parallelism;
      switch (config_.source_mode) {
        case SourceMode::kAlignedField0:
          LAR_CHECK(!tuple.fields.empty());
          instance = static_cast<InstanceIndex>(tuple.fields[0] % par);
          break;
        case SourceMode::kRoundRobin:
          instance = static_cast<InstanceIndex>(source_seq_ % par);
          break;
      }
    }
    deliver(src, instance, /*routed_in_key=*/kNoKey, tuple);
  }
  ++source_seq_;
}

void PipelineModel::process_batch(const Tuple* tuples, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) process(tuples[i]);
}

void PipelineModel::deliver(OperatorId op, InstanceIndex instance,
                            Key routed_in_key, const Tuple& tuple) {
  // Entry accounting for the root node; children are accounted when pushed.
  {
    const ServerId server = placement_.server_of(op, instance);
    stats_.cpu_units[server] += topology_.op(op).cpu_cost_per_tuple;
    ++stats_.instance_load[op][instance];
    work_.clear();
    work_.push_back(Frame{op, instance, routed_in_key, server, 0});
  }

  // Depth-first, LIFO: pushing a child and looping processes the child's
  // out-edges before the parent's next edge — byte-for-byte the order the
  // recursive implementation produced (round-robin and partial-key routers
  // mutate state per decision, so the order is observable).
  while (!work_.empty()) {
    Frame& top = work_.back();
    const auto& out_edges = topology_.out_edges(top.op);
    if (top.cursor == out_edges.size()) {
      work_.pop_back();
      continue;
    }
    const std::uint32_t e = out_edges[top.cursor++];
    const InstanceIndex src_instance = top.instance;
    const Key in_key = top.in_key;
    const ServerId server = top.server;  // copied: push_back invalidates top

    const EdgeSpec& edge = topology_.edges()[e];
    if (edge.grouping == GroupingType::kFields) {
      LAR_CHECK(edge.key_field < tuple.fields.size());
    }
    const InstanceIndex dst = bank_.route(route_base_[e] + src_instance, tuple);
    const ServerId dst_server = placement_.server_of(edge.to, dst);

    if (!pair_stats_[e].empty() && in_key != kNoKey) {
      pair_stats_[e][src_instance].record(in_key,
                                          tuple.fields[edge.key_field]);
    }

    Key next_in_key = in_key;
    if (edge.grouping == GroupingType::kFields) {
      next_in_key = tuple.fields[edge.key_field];
    }

    if (dst_server == server) {
      ++stats_.edge_traffic[e].local;
    } else {
      ++stats_.edge_traffic[e].remote;
      const std::uint32_t bytes = tuple.serialized_size();
      stats_.edge_remote_bytes[e] += bytes;
      stats_.nic_out[server] += bytes;
      stats_.nic_in[dst_server] += bytes;
      const std::uint32_t src_rack = placement_.rack_of(server);
      const std::uint32_t dst_rack = placement_.rack_of(dst_server);
      if (src_rack != dst_rack) {
        ++stats_.edge_rack_remote[e];
        stats_.uplink_out[src_rack] += bytes;
        stats_.uplink_in[dst_rack] += bytes;
      }
      const double ser_cpu =
          config_.per_msg_cpu + config_.per_byte_cpu * bytes;
      stats_.cpu_units[server] += ser_cpu;
      stats_.cpu_units[dst_server] += ser_cpu;
    }

    stats_.cpu_units[dst_server] += topology_.op(edge.to).cpu_cost_per_tuple;
    ++stats_.instance_load[edge.to][dst];
    work_.push_back(Frame{edge.to, dst, next_in_key, dst_server, 0});
  }
}

void PipelineModel::set_table(OperatorId op,
                              std::shared_ptr<const RoutingTable> table) {
  LAR_CHECK(table != nullptr);
  const auto& edges = topology_.edges();
  for (const std::uint32_t e : topology_.in_edges(op)) {
    if (edges[e].grouping != GroupingType::kFields) continue;
    const std::uint32_t src_par = topology_.op(edges[e].from).parallelism;
    edge_tables_[e] = table;  // keep-alive for the raw pointers below
    for (InstanceIndex i = 0; i < src_par; ++i) {
      bank_.set_table(route_base_[e] + i, edge_tables_[e].get());
    }
  }
}

void PipelineModel::set_active_servers(std::uint32_t num_active) {
  LAR_CHECK(num_active >= 1 && num_active <= placement_.num_servers());
  restricted_ = true;
  active_servers_ = num_active;
  apply_active_restriction(num_active);
}

void PipelineModel::apply_active_restriction(std::uint32_t num_active) {
  // Mirror of Engine::require_elastic_capable: the epoch-consistency story
  // needs the fallback domain to ride inside routing tables, and activity
  // changes only know how to restrict table and shuffle descriptors.
  LAR_CHECK(fields_mode_ == FieldsRouting::kTable);
  const auto& edges = topology_.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    LAR_CHECK(edges[e].grouping == GroupingType::kFields ||
              edges[e].grouping == GroupingType::kShuffle);
    if (edges[e].grouping != GroupingType::kShuffle) continue;
    const std::vector<InstanceIndex> act =
        placement_.active_instances(edges[e].to, num_active);
    const std::uint32_t src_par = topology_.op(edges[e].from).parallelism;
    for (InstanceIndex i = 0; i < src_par; ++i) {
      bank_.set_shuffle_actives(route_base_[e] + i, act);
    }
  }
  source_actives_.resize(sources_.size());
  for (std::size_t s = 0; s < sources_.size(); ++s) {
    source_actives_[s] = placement_.active_instances(sources_[s], num_active);
  }
}

std::vector<core::HopStats> PipelineModel::collect_hop_stats() const {
  std::vector<core::HopStats> out;
  const auto& edges = topology_.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (pair_stats_[e].empty()) continue;
    std::vector<std::vector<core::PairCount>> snapshots;
    snapshots.reserve(pair_stats_[e].size());
    for (const auto& ps : pair_stats_[e]) snapshots.push_back(ps.snapshot());
    // The hop's input side is the emitter's anchor operator, not
    // necessarily the emitter itself (stateless relays pass keys through).
    out.push_back(core::HopStats{anchors_[edges[e].from].value(), edges[e].to,
                                 core::merge_pair_counts(snapshots)});
  }
  return out;
}

std::vector<PipelineModel::PairStatsReport>
PipelineModel::snapshot_pair_stats() const {
  std::vector<PairStatsReport> out;
  for (std::size_t e = 0; e < pair_stats_.size(); ++e) {
    for (std::size_t i = 0; i < pair_stats_[e].size(); ++i) {
      out.push_back(PairStatsReport{static_cast<std::uint32_t>(e),
                                    static_cast<InstanceIndex>(i),
                                    pair_stats_[e][i].snapshot()});
    }
  }
  return out;
}

std::vector<core::HopStats> PipelineModel::merge_reports(
    const std::vector<PairStatsReport>& reports) const {
  const auto& edges = topology_.edges();
  std::vector<std::vector<std::vector<core::PairCount>>> per_edge(
      edges.size());
  for (const PairStatsReport& r : reports) {
    per_edge[r.edge].push_back(r.counts);
  }
  std::vector<core::HopStats> out;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (per_edge[e].empty()) continue;
    out.push_back(core::HopStats{anchors_[edges[e].from].value(), edges[e].to,
                                 core::merge_pair_counts(per_edge[e])});
  }
  return out;
}

void PipelineModel::reset_pair_stats() {
  for (auto& per_edge : pair_stats_) {
    for (auto& ps : per_edge) ps.reset();
  }
}

void PipelineModel::reset_pair_stats(OperatorId op_begin, OperatorId op_end) {
  for (std::size_t eid = 0; eid < pair_stats_.size(); ++eid) {
    const EdgeSpec& edge = topology_.edges()[eid];
    if (edge.to < op_begin || edge.to >= op_end) continue;
    for (auto& ps : pair_stats_[eid]) ps.reset();
  }
}

void PipelineModel::reset_stats() {
  stats_.tuples = 0;
  std::fill(stats_.edge_traffic.begin(), stats_.edge_traffic.end(),
            core::EdgeTraffic{});
  std::fill(stats_.edge_remote_bytes.begin(), stats_.edge_remote_bytes.end(),
            0);
  std::fill(stats_.edge_rack_remote.begin(), stats_.edge_rack_remote.end(), 0);
  std::fill(stats_.cpu_units.begin(), stats_.cpu_units.end(), 0.0);
  std::fill(stats_.nic_out.begin(), stats_.nic_out.end(), 0);
  std::fill(stats_.nic_in.begin(), stats_.nic_in.end(), 0);
  std::fill(stats_.uplink_out.begin(), stats_.uplink_out.end(), 0);
  std::fill(stats_.uplink_in.begin(), stats_.uplink_in.end(), 0);
  for (auto& loads : stats_.instance_load) {
    std::fill(loads.begin(), loads.end(), 0);
  }
}

}  // namespace lar::sim
