// Cluster cost model for the performance simulator.
//
// The simulator reproduces the paper's testbed (Section 4.1: HPE DL380 Gen9
// workers, 2x10 cores, 10 Gb/s jumbo-frame network, optionally throttled to
// 1 Gb/s) as a flow-level model: every server has a CPU budget in abstract
// work units per second and a full-duplex NIC budget in bytes per second.
// Processing a tuple costs its operator's cpu_cost_per_tuple units; sending
// a tuple to another server costs serialization CPU on both ends (a fixed
// per-message part plus a per-byte part) and NIC bytes on both ends.
//
// Calibration (see EXPERIMENTS.md): cpu_capacity and the serialization costs
// are set so that the single-server throughput (~110 Ktuples/s), the 22%
// penalty of hash routing at padding 0, and the 1->2 server throughput drop
// at 20 kB padding all match the paper's reported behaviour.
#pragma once

#include <cstdint>

#include "topology/types.hpp"

namespace lar::sim {

using lar::SourceMode;

struct SimConfig {
  /// CPU work units per second per server.  1 unit ~ one trivial stateful
  /// update; 225k units/s reproduces the paper's ~110 Ktuples/s on one
  /// server for the 3-operator chain.
  double cpu_capacity = 225'000.0;

  /// NIC bandwidth in bytes per second, each direction (full duplex).
  /// 1.25e9 = 10 Gb/s (jumbo frames), 1.25e8 = the throttled 1 Gb/s setup.
  double nic_bandwidth = 1.25e9;

  /// Shared uplink bandwidth per rack, bytes per second each direction;
  /// traffic between servers of different racks consumes it on both racks.
  /// 0 disables the rack model (flat network).  Models the hierarchical
  /// networks of the paper's Section 6 future work.
  double rack_uplink_bandwidth = 0.0;

  /// Serialization/deserialization CPU per network message, per side.
  double per_msg_cpu = 0.12;

  /// Serialization/deserialization CPU per payload byte, per side
  /// (5e-5 units/byte ~ 4.5 GB/s of memcpy+syscall per core-equivalent).
  double per_byte_cpu = 5.0e-5;

  SourceMode source_mode = SourceMode::kRoundRobin;

  /// Capacity of each POI's pair-statistics sketch (0 = exact counting).
  std::size_t pair_stats_capacity = 1 << 17;

  /// Live-server count at startup (lar::elastic).  0 = all servers of the
  /// placement (the default, byte-identical to the fixed-fleet model).  A
  /// value in (0, num_servers) starts the model with only the server prefix
  /// [0, active_servers) receiving traffic: sources and shuffle edges
  /// restrict to active instances and fields edges start from
  /// fallback-domain tables.  Requires FieldsRouting::kTable and only
  /// kFields / kShuffle groupings; Simulator::resize() changes it mid-run.
  std::uint32_t active_servers = 0;

  std::uint64_t seed = 1;

  /// Virtual-time span cost model (obs v2).  Used only to stamp begin/end
  /// times on reconfiguration-wave trace spans when span recording is
  /// enabled on the simulator's trace recorder; never feeds the throughput
  /// solver, so all figure shapes are unaffected.  Units: virtual seconds
  /// per item, scaled so a fig13-size wave (~10^5 pairs, ~10^4 staged
  /// entries) completes well within one 60 s window, like the paper's
  /// sub-second reconfigurations.
  double vt_gather_per_pair = 2.0e-6;
  double vt_compute_per_vertex = 1.0e-5;
  double vt_stage_per_entry = 5.0e-7;
  double vt_ack_per_table = 1.0e-4;
  double vt_propagate_per_hop = 1.0e-3;
  double vt_migrate_per_key = 2.0e-5;
};

/// 10 Gb/s in bytes per second.
inline constexpr double kTenGbps = 1.25e9;
/// 1 Gb/s in bytes per second.
inline constexpr double kOneGbps = 1.25e8;

}  // namespace lar::sim
