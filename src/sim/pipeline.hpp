// Flow-level pipeline model: runs tuples through the *real* routing code
// paths (the same Router objects the threaded runtime uses) and accounts CPU,
// NIC bytes, per-edge locality, per-instance load and pair statistics.
//
// The model is exact with respect to routing decisions — routing tables
// produced by the Manager are installed verbatim — and statistical with
// respect to time: feeding N sample tuples yields per-tuple resource demands
// from which the throughput solver derives the sustainable rate.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/locality.hpp"
#include "core/manager.hpp"
#include "core/pair_stats.hpp"
#include "sim/config.hpp"
#include "topology/placement.hpp"
#include "topology/routing.hpp"
#include "topology/topology.hpp"

namespace lar::sim {

/// Resource demands and traffic counters accumulated over processed tuples.
struct TrafficStats {
  std::uint64_t tuples = 0;  ///< source tuples processed

  std::vector<core::EdgeTraffic> edge_traffic;  ///< per topology edge
  std::vector<std::uint64_t> edge_remote_bytes; ///< per topology edge
  /// per topology edge: tuples that crossed a rack boundary (subset of
  /// edge_traffic[e].remote).
  std::vector<std::uint64_t> edge_rack_remote;

  std::vector<double> cpu_units;      ///< per server
  std::vector<std::uint64_t> nic_out; ///< per server, bytes
  std::vector<std::uint64_t> nic_in;  ///< per server, bytes
  std::vector<std::uint64_t> uplink_out;  ///< per rack, bytes
  std::vector<std::uint64_t> uplink_in;   ///< per rack, bytes

  /// per operator, per instance: tuples received.
  std::vector<std::vector<std::uint64_t>> instance_load;
};

/// Deploys a Topology + Placement as a routing cascade.
class PipelineModel {
 public:
  /// `fields_mode` selects the router used on fields-grouped edges until a
  /// table is installed (kTable starts with empty tables = hash fallback).
  PipelineModel(const Topology& topology, const Placement& placement,
                const SimConfig& config, FieldsRouting fields_mode);

  /// Feeds one tuple through the whole DAG, updating all counters and the
  /// per-POI pair statistics.
  void process(const Tuple& tuple);

  /// Installs `table` on every inbound fields-grouped edge of `op`
  /// (replacing hash or a previous table).  Takes effect immediately.
  void set_table(OperatorId op, std::shared_ptr<const RoutingTable> table);

  /// Merged pair statistics per optimizable hop, ready for the Manager.
  [[nodiscard]] std::vector<core::HopStats> collect_hop_stats() const;

  /// Clears pair statistics (the paper resets them after reconfiguration).
  void reset_pair_stats();

  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }
  void reset_stats();

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const Placement& placement() const noexcept {
    return placement_;
  }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

 private:
  void deliver(OperatorId op, InstanceIndex instance, Key routed_in_key,
               const Tuple& tuple);

  const Topology& topology_;
  const Placement& placement_;
  SimConfig config_;
  // routers_[edge_id][src_instance]
  std::vector<std::vector<std::unique_ptr<Router>>> routers_;
  // pair_stats_[edge_id][src_instance]: stats recorded by the emitting POI
  // for optimizable hops (empty vector for other edges).
  std::vector<std::vector<core::PairStats>> pair_stats_;
  std::uint64_t source_seq_ = 0;
  /// Per operator: whose input key tuples seen here were last routed by.
  std::vector<std::optional<OperatorId>> anchors_;
  TrafficStats stats_;
};

}  // namespace lar::sim
