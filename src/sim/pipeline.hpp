// Flow-level pipeline model: runs tuples through the same routing *decisions*
// the threaded runtime makes and accounts CPU, NIC bytes, per-edge locality,
// per-instance load and pair statistics.
//
// The model is exact with respect to routing decisions — routing tables
// produced by the Manager are installed verbatim — and statistical with
// respect to time: feeding N sample tuples yields per-tuple resource demands
// from which the throughput solver derives the sustainable rate.
//
// Hot path: the runtime routes through virtual Router objects (one thread per
// POI, correctness substrate); the simulator is the performance substrate and
// instead resolves every (edge, emitting instance) router into a RouteDesc at
// construction, routing via RouterBank's switch.  Delivery walks the DAG with
// an explicit worklist rather than recursion, so chain depth is bounded by
// one reserved vector, not the C++ stack.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "core/locality.hpp"
#include "core/manager.hpp"
#include "core/pair_stats.hpp"
#include "sim/config.hpp"
#include "sim/route_desc.hpp"
#include "topology/placement.hpp"
#include "topology/routing.hpp"
#include "topology/topology.hpp"

namespace lar::sim {

/// Resource demands and traffic counters accumulated over processed tuples.
struct TrafficStats {
  std::uint64_t tuples = 0;  ///< source tuples processed

  std::vector<core::EdgeTraffic> edge_traffic;  ///< per topology edge
  std::vector<std::uint64_t> edge_remote_bytes; ///< per topology edge
  /// per topology edge: tuples that crossed a rack boundary (subset of
  /// edge_traffic[e].remote).
  std::vector<std::uint64_t> edge_rack_remote;

  std::vector<double> cpu_units;      ///< per server
  std::vector<std::uint64_t> nic_out; ///< per server, bytes
  std::vector<std::uint64_t> nic_in;  ///< per server, bytes
  std::vector<std::uint64_t> uplink_out;  ///< per rack, bytes
  std::vector<std::uint64_t> uplink_in;   ///< per rack, bytes

  /// per operator, per instance: tuples received.
  std::vector<std::vector<std::uint64_t>> instance_load;
};

/// Deploys a Topology + Placement as a routing cascade.
class PipelineModel {
 public:
  /// `fields_mode` selects the router used on fields-grouped edges until a
  /// table is installed (kTable starts with empty tables = hash fallback).
  PipelineModel(const Topology& topology, const Placement& placement,
                const SimConfig& config, FieldsRouting fields_mode);

  /// Feeds one tuple through the whole DAG, updating all counters and the
  /// per-POI pair statistics.
  void process(const Tuple& tuple);

  /// Feeds `count` tuples in order — equivalent to calling process() on each,
  /// but lets the window driver amortize the call overhead per batch.
  void process_batch(const Tuple* tuples, std::size_t count);

  /// Installs `table` on every inbound fields-grouped edge of `op`
  /// (replacing hash or a previous table).  Takes effect immediately.
  void set_table(OperatorId op, std::shared_ptr<const RoutingTable> table);

  /// Restricts traffic to the server prefix [0, num_active) (lar::elastic):
  /// sources and shuffle edges re-target the active instance sets.  Fields
  /// edges are NOT touched — the caller installs the new epoch's tables
  /// (whose hash-fallback domain is the active set) via set_table(), which
  /// the sim's atomic deploy makes a single logical instant.  Requires
  /// FieldsRouting::kTable and only kFields / kShuffle groupings.
  void set_active_servers(std::uint32_t num_active);

  /// Current live-server count (the active prefix).
  [[nodiscard]] std::uint32_t active_servers() const noexcept {
    return active_servers_;
  }

  /// Merged pair statistics per optimizable hop, ready for the Manager.
  [[nodiscard]] std::vector<core::HopStats> collect_hop_stats() const;

  /// One emitting POI's pair-statistics report for one optimizable hop —
  /// the sim analogue of the runtime's SEND_METRICS reply.  Chaos fault
  /// plans drop or delay whole reports, so the unit must match.
  struct PairStatsReport {
    std::uint32_t edge = 0;
    InstanceIndex instance = 0;
    std::vector<core::PairCount> counts;
  };

  /// All reports, in canonical (edge, instance) order.
  [[nodiscard]] std::vector<PairStatsReport> snapshot_pair_stats() const;

  /// Merges a (possibly partial or stale) report set into Manager-ready
  /// HopStats.  Grouping is by edge in edge-id order and merge_pair_counts
  /// is order-independent, so any survivor subset yields a deterministic
  /// result; merging every report reproduces collect_hop_stats() exactly.
  [[nodiscard]] std::vector<core::HopStats> merge_reports(
      const std::vector<PairStatsReport>& reports) const;

  /// Clears pair statistics (the paper resets them after reconfiguration).
  void reset_pair_stats();

  /// Clears pair statistics only for edges into operators in
  /// [op_begin, op_end) — the deploy-consumed subset of a tenant-scoped
  /// reconfiguration (lar::fleet); other tenants' statistics keep
  /// accumulating toward their own waves.
  void reset_pair_stats(OperatorId op_begin, OperatorId op_end);

  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }
  void reset_stats();

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const Placement& placement() const noexcept {
    return placement_;
  }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

 private:
  /// One node of the delivery walk; `cursor` resumes iteration over the
  /// node's out-edges so the explicit stack reproduces the recursive DFS
  /// order exactly (router state makes that order observable).
  struct Frame {
    OperatorId op;
    InstanceIndex instance;
    Key in_key;
    ServerId server;
    std::uint32_t cursor;
  };

  void deliver(OperatorId op, InstanceIndex instance, Key routed_in_key,
               const Tuple& tuple);

  /// Re-targets every shuffle descriptor and source pick list to the active
  /// instance sets of the prefix [0, num_active).
  void apply_active_restriction(std::uint32_t num_active);

  const Topology& topology_;
  const Placement& placement_;
  SimConfig config_;
  FieldsRouting fields_mode_;
  RouterBank bank_;
  // Descriptor slot of (edge e, src instance i) is route_base_[e] + i.
  std::vector<std::uint32_t> route_base_;
  // Keep installed tables alive; bank descriptors hold raw pointers.
  std::vector<std::shared_ptr<const RoutingTable>> edge_tables_;
  std::vector<Frame> work_;
  // pair_stats_[edge_id][src_instance]: stats recorded by the emitting POI
  // for optimizable hops (empty vector for other edges).
  std::vector<std::vector<core::PairStats>> pair_stats_;
  std::uint64_t source_seq_ = 0;
  /// Per operator: whose input key tuples seen here were last routed by.
  std::vector<std::optional<OperatorId>> anchors_;
  TrafficStats stats_;

  // Elasticity (lar::elastic).  restricted_ latches once the model has ever
  // had a non-full active set; the restricted source path over a full list
  // makes exactly the historical `% parallelism` picks.
  std::uint32_t active_servers_ = 0;
  bool restricted_ = false;
  std::vector<OperatorId> sources_;  ///< cached topology_.sources()
  std::vector<std::vector<InstanceIndex>> source_actives_;  // [source pos]
};

}  // namespace lar::sim
