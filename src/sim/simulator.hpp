// Simulator: windows, throughput solving and Manager integration.
//
// A "window" feeds N sample tuples through the PipelineModel and converts the
// accumulated resource demands into the maximum sustainable source rate:
//
//   R* = min over servers s of
//          min( cpu_capacity / cpu_units_per_tuple(s),
//               nic_bandwidth / bytes_out_per_tuple(s),
//               nic_bandwidth / bytes_in_per_tuple(s) )
//
// which is exactly the saturation point of the first bottleneck resource —
// the quantity the paper's throughput plots measure once Storm's back
// pressure settles.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "chaos/injector.hpp"
#include "core/advisor.hpp"
#include "core/manager.hpp"
#include "fleet/fleet.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "sim/pipeline.hpp"
#include "workload/workload.hpp"

namespace lar::sim {

/// What saturated first.
enum class Resource { kCpu, kNicOut, kNicIn, kUplinkOut, kUplinkIn };

[[nodiscard]] constexpr const char* to_string(Resource r) noexcept {
  switch (r) {
    case Resource::kCpu: return "cpu";
    case Resource::kNicOut: return "nic-out";
    case Resource::kNicIn: return "nic-in";
    case Resource::kUplinkOut: return "uplink-out";
    case Resource::kUplinkIn: return "uplink-in";
  }
  return "?";
}

/// Result of one simulation window.
struct WindowReport {
  double throughput = 0.0;  ///< sustainable source tuples/s
  Resource bottleneck = Resource::kCpu;
  ServerId bottleneck_server = 0;

  std::vector<double> edge_locality;   ///< per topology edge (0 if no traffic)
  /// Per edge: fraction of tuples that stayed within one rack (>= server
  /// locality; == 1 for single-rack placements).
  std::vector<double> edge_rack_locality;
  std::vector<double> op_load_balance; ///< per operator: max/avg instance load
  std::uint64_t window_tuples = 0;
};

/// Drives a PipelineModel window by window.
class Simulator {
 public:
  Simulator(const Topology& topology, const Placement& placement,
            const SimConfig& config, FieldsRouting fields_mode);

  /// Feeds `n` tuples from `gen` and returns the window's report.
  /// Traffic counters reset at the start of each window; pair statistics
  /// accumulate across windows until a reconfiguration consumes them.
  WindowReport run_window(workload::TupleGenerator& gen, std::uint64_t n);

  /// Runs one full optimization round: collects pair statistics, asks the
  /// manager for a plan, installs the new tables and resets the statistics.
  /// Returns the plan (with diagnostics).  When the manager was constructed
  /// with advise_deploys, a plan whose predicted benefit does not cover its
  /// migration cost (Manager::advise, scored against the current window's
  /// measured locality/balance) is computed but NOT installed — routing and
  /// statistics stay untouched so evidence keeps accumulating.
  core::ReconfigurationPlan reconfigure(core::Manager& manager);

  /// How a tenant-scoped reconfiguration plans (lar::fleet).
  enum class FleetPlanMode {
    kJoint,        ///< shared-capacity joint plan (FleetManager::plan_app)
    kIndependent,  ///< isolation baseline (plan_app_independent)
  };

  /// One optimization round scoped to tenant `app` of a multi-tenant fleet
  /// (lar::fleet): gathers the full statistics picture, plans via the
  /// FleetManager (joint shared-capacity planning, or the independent
  /// baseline for ablations), installs only the tenant's table slice and
  /// resets only the tenant's pair statistics.  The simulator must be
  /// deployed over fleet.combined_topology() / combined_placement().
  core::ReconfigurationPlan reconfigure_app(
      fleet::FleetManager& fleet, fleet::AppId app,
      FleetPlanMode mode = FleetPlanMode::kJoint);

  /// Elastic resize (lar::elastic): re-plans for `target_servers` live
  /// servers via Manager::plan_for, installs the epoch-consistent tables,
  /// restricts sources/shuffle edges to the new active prefix and records a
  /// scale_out / scale_in trace event.  The sim deploys atomically, so the
  /// whole resize is one logical instant between windows.  Requires
  /// FieldsRouting::kTable and only kFields / kShuffle groupings.
  core::ReconfigurationPlan resize(core::Manager& manager,
                                   std::uint32_t target_servers);

  /// Installs the tables of an externally computed plan (offline mode).
  void apply_plan(const core::ReconfigurationPlan& plan);

  /// Advisor-gated reconfiguration (paper Section 6 future work): computes a
  /// candidate plan, scores it against the given measured locality/balance
  /// (typically from the last WindowReport), and only deploys — migrating
  /// state and resetting statistics — when the predicted benefit outweighs
  /// the migration cost.  A rejected plan leaves routing AND statistics
  /// untouched, so evidence keeps accumulating toward the next opportunity.
  /// Returns the verdict and, when deployed, the plan.
  struct AdvisedReconfig {
    core::AdvisorVerdict verdict;
    core::ReconfigurationPlan plan;  ///< meaningful only when verdict.deploy
  };
  AdvisedReconfig reconfigure_if_beneficial(
      core::Manager& manager, double current_locality, double current_balance,
      const core::AdvisorOptions& advisor_options = {});

  /// Arms deterministic fault injection for the protocol steps the sim
  /// models: pair-statistics reports can be lost (the plan is computed from
  /// the partial set) or delayed one gather epoch (merged stale), and key
  /// migrations can be delayed or duplicated (absorbed by redelivery /
  /// dedup accounting — the sim deploys atomically, so these surface as
  /// recovery events and counters, not routing changes).  The fault
  /// schedule is a pure function of the plan's seed and the gather epoch:
  /// same seed, same faults, byte-stable exports.  The data-plane window
  /// loop takes no hooks at all — with no plan armed the sim is
  /// byte-identical to the chaos-free build.
  void set_fault_plan(const chaos::FaultPlan& plan);

  [[nodiscard]] chaos::Injector* injector() noexcept {
    return injector_ ? &*injector_ : nullptr;
  }

  [[nodiscard]] PipelineModel& model() noexcept { return model_; }
  [[nodiscard]] const SimConfig& config() const noexcept {
    return model_.config();
  }

  /// Built-in observability sinks.  Every run_window() publishes the window
  /// gauges (`lar_window_*`, `lar_edge_*`, `lar_op_*`) and every
  /// reconfigure() records the full gather -> compute -> stage -> propagate
  /// -> migrate -> drain trace; WindowReport is a view over these registry
  /// values.  Hand registry() to Manager::set_metrics_registry() to get the
  /// plan diagnostics in the same place (fig13 does this).
  [[nodiscard]] obs::Registry& registry() noexcept { return registry_; }
  [[nodiscard]] obs::TraceRecorder& trace() noexcept { return trace_; }

  /// Attaches a timeline store (obs v2): every run_window() then snapshots
  /// the registry at vtime = windows run so far, after the window gauges
  /// are published.  Null detaches; with none attached no timeline code
  /// runs at all (structural disable).
  void set_timeline(obs::Timeline* timeline) noexcept { timeline_ = timeline; }

  /// Attaches a health probe, evaluated right after each timeline tick
  /// (requires a timeline).  Its `lar_health_*` / `lar_alerts_total`
  /// families land in this registry — and therefore in the *next* tick.
  void set_probe(obs::Probe* probe) noexcept { probe_ = probe; }

 private:
  [[nodiscard]] WindowReport report_from_stats();

  /// Locality over all edges and worst per-operator imbalance of the traffic
  /// accumulated since the last reset — the advisor's "current" inputs.
  [[nodiscard]] std::pair<double, double> measured_locality_balance() const;

  /// Gather step under chaos: snapshots per-POI reports, applies loss /
  /// delay decisions, merges survivors plus the previous epoch's stale
  /// stragglers.  Falls back to collect_hop_stats() without an injector.
  [[nodiscard]] std::vector<core::HopStats> gather_hop_stats();

  /// Migration-path faults for one deployed plan (delay -> redelivery
  /// accounting, duplicate -> dedup accounting).
  void inject_migration_faults(const core::ReconfigurationPlan& plan);

  /// Records one reconfiguration trace and returns the wave's end vtime.
  /// With spans disabled: the legacy six same-instant events (vtime =
  /// windows run so far).  With spans enabled: one child span per phase
  /// (gather, compute, stage, ack, propagate, migrate, drain) whose
  /// durations follow the SimConfig vt_* cost model.
  double record_reconfig_trace(const core::ReconfigurationPlan& plan,
                               std::uint64_t gathered_hops,
                               std::uint64_t gathered_pairs);

  /// Publishes lar_trace_dropped_total (only once something dropped) and
  /// ticks the attached timeline/probe.  Runs at the end of every window.
  void observe_window();

  PipelineModel model_;
  obs::Registry registry_;
  obs::TraceRecorder trace_;
  obs::Timeline* timeline_ = nullptr;  ///< optional, see set_timeline()
  obs::Probe* probe_ = nullptr;        ///< optional, see set_probe()
  std::uint64_t windows_run_ = 0;  ///< virtual time for trace events

  std::optional<chaos::Injector> injector_;  ///< armed by set_fault_plan()
  std::uint64_t gather_epoch_ = 0;
  /// Reports kStatsDelay held back, merged (stale) into the next epoch.
  std::vector<PipelineModel::PairStatsReport> delayed_reports_;
  /// "A->B" metric labels per topology edge, built once at construction —
  /// the per-window report publishes per-edge gauges and rebuilding the
  /// strings every window showed up in the fig13 profile.
  std::vector<std::string> edge_labels_;
  std::vector<Tuple> batch_;  ///< reusable window batch buffer
};

}  // namespace lar::sim
