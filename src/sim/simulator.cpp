#include "sim/simulator.hpp"

#include <limits>

#include "common/stats.hpp"
#include "common/status.hpp"

namespace lar::sim {

Simulator::Simulator(const Topology& topology, const Placement& placement,
                     const SimConfig& config, FieldsRouting fields_mode)
    : model_(topology, placement, config, fields_mode) {}

WindowReport Simulator::run_window(workload::TupleGenerator& gen,
                                   std::uint64_t n) {
  LAR_CHECK(n > 0);
  model_.reset_stats();
  for (std::uint64_t i = 0; i < n; ++i) model_.process(gen.next());
  return report_from_stats();
}

WindowReport Simulator::report_from_stats() const {
  const TrafficStats& s = model_.stats();
  const SimConfig& cfg = model_.config();
  LAR_CHECK(s.tuples > 0);
  const auto tuples = static_cast<double>(s.tuples);

  WindowReport report;
  report.window_tuples = s.tuples;
  report.throughput = std::numeric_limits<double>::infinity();
  for (ServerId srv = 0; srv < s.cpu_units.size(); ++srv) {
    struct Candidate {
      double rate;
      Resource resource;
    };
    const Candidate candidates[] = {
        {s.cpu_units[srv] > 0.0
             ? cfg.cpu_capacity / (s.cpu_units[srv] / tuples)
             : std::numeric_limits<double>::infinity(),
         Resource::kCpu},
        {s.nic_out[srv] > 0
             ? cfg.nic_bandwidth / (static_cast<double>(s.nic_out[srv]) / tuples)
             : std::numeric_limits<double>::infinity(),
         Resource::kNicOut},
        {s.nic_in[srv] > 0
             ? cfg.nic_bandwidth / (static_cast<double>(s.nic_in[srv]) / tuples)
             : std::numeric_limits<double>::infinity(),
         Resource::kNicIn},
    };
    for (const auto& c : candidates) {
      if (c.rate < report.throughput) {
        report.throughput = c.rate;
        report.bottleneck = c.resource;
        report.bottleneck_server = srv;
      }
    }
  }

  // Shared rack uplinks (only when a rack model is configured).
  if (cfg.rack_uplink_bandwidth > 0.0) {
    for (std::uint32_t rack = 0; rack < s.uplink_out.size(); ++rack) {
      const struct {
        std::uint64_t bytes;
        Resource resource;
      } uplinks[] = {{s.uplink_out[rack], Resource::kUplinkOut},
                     {s.uplink_in[rack], Resource::kUplinkIn}};
      for (const auto& u : uplinks) {
        if (u.bytes == 0) continue;
        const double rate = cfg.rack_uplink_bandwidth /
                            (static_cast<double>(u.bytes) / tuples);
        if (rate < report.throughput) {
          report.throughput = rate;
          report.bottleneck = u.resource;
          report.bottleneck_server = rack;  // rack id in uplink context
        }
      }
    }
  }

  report.edge_locality.reserve(s.edge_traffic.size());
  for (const auto& et : s.edge_traffic) {
    report.edge_locality.push_back(et.locality());
  }
  report.edge_rack_locality.reserve(s.edge_traffic.size());
  for (std::size_t e = 0; e < s.edge_traffic.size(); ++e) {
    const std::uint64_t total =
        s.edge_traffic[e].local + s.edge_traffic[e].remote;
    report.edge_rack_locality.push_back(
        total == 0 ? 0.0
                   : 1.0 - static_cast<double>(s.edge_rack_remote[e]) /
                               static_cast<double>(total));
  }
  report.op_load_balance.reserve(s.instance_load.size());
  for (const auto& loads : s.instance_load) {
    report.op_load_balance.push_back(imbalance(loads));
  }
  return report;
}

core::ReconfigurationPlan Simulator::reconfigure(core::Manager& manager) {
  core::ReconfigurationPlan plan =
      manager.compute_plan(model_.collect_hop_stats());
  apply_plan(plan);
  manager.mark_deployed(plan);
  model_.reset_pair_stats();
  return plan;
}

void Simulator::apply_plan(const core::ReconfigurationPlan& plan) {
  for (const auto& [op, table] : plan.tables) {
    model_.set_table(op, table);
  }
}

Simulator::AdvisedReconfig Simulator::reconfigure_if_beneficial(
    core::Manager& manager, double current_locality, double current_balance,
    const core::AdvisorOptions& advisor_options) {
  AdvisedReconfig out;
  out.plan = manager.compute_plan(model_.collect_hop_stats());
  out.verdict = core::evaluate_plan(out.plan, current_locality,
                                    current_balance, advisor_options);
  if (out.verdict.deploy) {
    apply_plan(out.plan);
    manager.mark_deployed(out.plan);
    model_.reset_pair_stats();
  }
  return out;
}

}  // namespace lar::sim
