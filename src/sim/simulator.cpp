#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/stats.hpp"
#include "common/status.hpp"

namespace lar::sim {

Simulator::Simulator(const Topology& topology, const Placement& placement,
                     const SimConfig& config, FieldsRouting fields_mode)
    : model_(topology, placement, config, fields_mode) {
  edge_labels_.reserve(topology.edges().size());
  for (const EdgeSpec& edge : topology.edges()) {
    edge_labels_.push_back(topology.op(edge.from).name + "->" +
                           topology.op(edge.to).name);
  }
}

WindowReport Simulator::run_window(workload::TupleGenerator& gen,
                                   std::uint64_t n) {
  LAR_CHECK(n > 0);
  model_.reset_stats();
  constexpr std::uint64_t kBatch = 256;
  batch_.resize(std::min(n, kBatch));
  std::uint64_t fed = 0;
  while (fed < n) {
    const std::uint64_t m = std::min<std::uint64_t>(kBatch, n - fed);
    for (std::uint64_t i = 0; i < m; ++i) batch_[i] = gen.next();
    model_.process_batch(batch_.data(), m);
    fed += m;
  }
  ++windows_run_;
  WindowReport report = report_from_stats();
  observe_window();
  return report;
}

void Simulator::observe_window() {
  if (const std::uint64_t dropped = trace_.dropped(); dropped > 0) {
    // Registered only once something dropped, so bounded-but-never-full
    // runs keep their exports byte-identical.
    registry_
        .counter("lar_trace_dropped_total", {},
                 "Trace events evicted from the bounded recorder ring.")
        .advance_to(dropped);
  }
  if (timeline_ != nullptr) {
    timeline_->tick(registry_, static_cast<double>(windows_run_));
    if (probe_ != nullptr) probe_->evaluate(*timeline_, registry_);
  }
}

WindowReport Simulator::report_from_stats() {
  const TrafficStats& s = model_.stats();
  const SimConfig& cfg = model_.config();
  LAR_CHECK(s.tuples > 0);
  const auto tuples = static_cast<double>(s.tuples);

  WindowReport report;
  report.window_tuples = s.tuples;
  report.throughput = std::numeric_limits<double>::infinity();
  for (ServerId srv = 0; srv < s.cpu_units.size(); ++srv) {
    struct Candidate {
      double rate;
      Resource resource;
    };
    const Candidate candidates[] = {
        {s.cpu_units[srv] > 0.0
             ? cfg.cpu_capacity / (s.cpu_units[srv] / tuples)
             : std::numeric_limits<double>::infinity(),
         Resource::kCpu},
        {s.nic_out[srv] > 0
             ? cfg.nic_bandwidth / (static_cast<double>(s.nic_out[srv]) / tuples)
             : std::numeric_limits<double>::infinity(),
         Resource::kNicOut},
        {s.nic_in[srv] > 0
             ? cfg.nic_bandwidth / (static_cast<double>(s.nic_in[srv]) / tuples)
             : std::numeric_limits<double>::infinity(),
         Resource::kNicIn},
    };
    for (const auto& c : candidates) {
      if (c.rate < report.throughput) {
        report.throughput = c.rate;
        report.bottleneck = c.resource;
        report.bottleneck_server = srv;
      }
    }
  }

  // Shared rack uplinks (only when a rack model is configured).
  if (cfg.rack_uplink_bandwidth > 0.0) {
    for (std::uint32_t rack = 0; rack < s.uplink_out.size(); ++rack) {
      const struct {
        std::uint64_t bytes;
        Resource resource;
      } uplinks[] = {{s.uplink_out[rack], Resource::kUplinkOut},
                     {s.uplink_in[rack], Resource::kUplinkIn}};
      for (const auto& u : uplinks) {
        if (u.bytes == 0) continue;
        const double rate = cfg.rack_uplink_bandwidth /
                            (static_cast<double>(u.bytes) / tuples);
        if (rate < report.throughput) {
          report.throughput = rate;
          report.bottleneck = u.resource;
          report.bottleneck_server = rack;  // rack id in uplink context
        }
      }
    }
  }

  // Publish the window into the registry, then read the per-edge and
  // per-operator figures back out of it: WindowReport is a *view* over
  // registry values, so the exporters and the report can never disagree.
  const Topology& topo = model_.topology();
  registry_.counter("lar_windows_total", {}, "Simulation windows completed.")
      .inc();
  registry_
      .gauge("lar_window_tuples", {}, "Sample tuples fed to the last window.")
      .set(tuples);
  registry_
      .gauge("lar_window_throughput_tps", {},
             "Sustainable source rate solved for the last window "
             "(paper Figures 7/11/13).")
      .set(report.throughput);
  registry_
      .gauge("lar_window_bottleneck_server", {},
             "Server (or rack, for uplink resources) that saturates first.")
      .set(static_cast<double>(report.bottleneck_server));
  for (const Resource r : {Resource::kCpu, Resource::kNicOut, Resource::kNicIn,
                           Resource::kUplinkOut, Resource::kUplinkIn}) {
    registry_
        .gauge("lar_window_bottleneck", {{"resource", to_string(r)}},
               "1 on the resource that limits throughput, 0 elsewhere.")
        .set(r == report.bottleneck ? 1.0 : 0.0);
  }
  for (std::size_t e = 0; e < s.edge_traffic.size(); ++e) {
    const std::string& name = edge_labels_[e];
    const std::uint64_t total =
        s.edge_traffic[e].local + s.edge_traffic[e].remote;
    registry_
        .gauge("lar_edge_locality_ratio", {{"edge", name}},
               "Fraction of an edge's tuples delivered server-locally "
               "(paper Figure 8).")
        .set(s.edge_traffic[e].locality());
    registry_
        .gauge("lar_edge_rack_locality_ratio", {{"edge", name}},
               "Fraction of an edge's tuples that stayed within one rack.")
        .set(total == 0 ? 0.0
                        : 1.0 - static_cast<double>(s.edge_rack_remote[e]) /
                                    static_cast<double>(total));
  }
  for (std::size_t op = 0; op < s.instance_load.size(); ++op) {
    registry_
        .gauge("lar_op_load_balance_ratio",
               {{"op", topo.op(static_cast<OperatorId>(op)).name}},
               "Max/avg instance load of an operator (1 = perfectly even).")
        .set(imbalance(s.instance_load[op]));
  }

  report.edge_locality.reserve(s.edge_traffic.size());
  report.edge_rack_locality.reserve(s.edge_traffic.size());
  for (std::size_t e = 0; e < s.edge_traffic.size(); ++e) {
    const std::string& name = edge_labels_[e];
    report.edge_locality.push_back(
        registry_.gauge("lar_edge_locality_ratio", {{"edge", name}}).value());
    report.edge_rack_locality.push_back(
        registry_.gauge("lar_edge_rack_locality_ratio", {{"edge", name}})
            .value());
  }
  report.op_load_balance.reserve(s.instance_load.size());
  for (std::size_t op = 0; op < s.instance_load.size(); ++op) {
    report.op_load_balance.push_back(
        registry_
            .gauge("lar_op_load_balance_ratio",
                   {{"op", topo.op(static_cast<OperatorId>(op)).name}})
            .value());
  }
  return report;
}

void Simulator::set_fault_plan(const chaos::FaultPlan& plan) {
  injector_.emplace(plan, &registry_, &trace_);
}

std::vector<core::HopStats> Simulator::gather_hop_stats() {
  if (!injector_) return model_.collect_hop_stats();
  ++gather_epoch_;
  const auto vt = static_cast<double>(windows_run_);
  std::vector<PipelineModel::PairStatsReport> kept;
  // Stragglers the previous epoch's gather deadline missed merge now, one
  // epoch stale — their counts predate the last statistics reset, which is
  // exactly the staleness the recovery path must tolerate.
  const std::uint64_t stale = delayed_reports_.size();
  if (stale > 0) {
    kept = std::move(delayed_reports_);
    delayed_reports_.clear();
    injector_->recovery("stale_merge", "manager", stale, /*bytes=*/0,
                        gather_epoch_, vt);
  }
  std::uint64_t lost = 0;
  for (auto& report : model_.snapshot_pair_stats()) {
    // One decision per report per epoch, keyed by the reporting
    // (edge, instance): reproducible no matter when reconfigure() is
    // called relative to windows.
    const std::uint64_t entity =
        (static_cast<std::uint64_t>(report.edge) << 32) | report.instance;
    if (injector_->fire(chaos::FaultSite::kStatsLoss, entity, gather_epoch_,
                        vt)) {
      ++lost;
      injector_->recovery("partial_gather",
                          std::to_string(report.edge) + "/" +
                              std::to_string(report.instance),
                          /*count=*/1, /*bytes=*/0, gather_epoch_, vt);
      continue;
    }
    if (injector_->fire(chaos::FaultSite::kStatsDelay, entity, gather_epoch_,
                        vt)) {
      injector_->recovery("stats_deferred",
                          std::to_string(report.edge) + "/" +
                              std::to_string(report.instance),
                          /*count=*/1, /*bytes=*/0, gather_epoch_, vt);
      delayed_reports_.push_back(std::move(report));
      continue;
    }
    kept.push_back(std::move(report));
  }
  registry_
      .gauge("lar_chaos_gather_lost_reports", {},
             "Pair-statistics reports lost in the latest gather epoch.")
      .set(static_cast<double>(lost));
  registry_
      .gauge("lar_chaos_gather_stale_reports", {},
             "Late reports merged one epoch stale in the latest gather.")
      .set(static_cast<double>(stale));
  return model_.merge_reports(kept);
}

void Simulator::inject_migration_faults(const core::ReconfigurationPlan& plan) {
  if (!injector_) return;
  const auto vt = static_cast<double>(windows_run_);
  const std::uint32_t budget =
      injector_->magnitude(chaos::FaultSite::kMigrateDelay);
  for (const auto& [op, moves] : plan.moves) {
    for (const core::KeyMove& mv : moves) {
      // The sim deploys atomically, so a delayed payload cannot reorder
      // anything — it surfaces as bounded redelivery accounting, the same
      // recovery the threaded runtime performs for real.
      std::uint32_t redeliveries = 0;
      while (redeliveries < budget &&
             injector_->fire(chaos::FaultSite::kMigrateDelay, mv.key,
                             plan.version, vt)) {
        ++redeliveries;
      }
      if (redeliveries > 0) {
        injector_->recovery("migrate_redelivery", obs::key_entity(mv.key),
                            redeliveries, /*bytes=*/0, plan.version, vt);
      }
      if (injector_->fire(chaos::FaultSite::kMigrateDuplicate, mv.key,
                          plan.version, vt)) {
        injector_->recovery("migrate_dedup", obs::key_entity(mv.key),
                            /*count=*/1, /*bytes=*/0, plan.version, vt);
      }
    }
  }
}

std::pair<double, double> Simulator::measured_locality_balance() const {
  const TrafficStats& s = model_.stats();
  std::uint64_t local = 0;
  std::uint64_t total = 0;
  for (const core::EdgeTraffic& t : s.edge_traffic) {
    local += t.local;
    total += t.local + t.remote;
  }
  const double locality =
      total == 0 ? 0.0
                 : static_cast<double>(local) / static_cast<double>(total);
  double balance = 1.0;
  for (const auto& loads : s.instance_load) {
    balance = std::max(balance, imbalance(loads));
  }
  return {locality, balance};
}

core::ReconfigurationPlan Simulator::reconfigure(core::Manager& manager) {
  const std::vector<core::HopStats> stats = gather_hop_stats();
  std::uint64_t pairs = 0;
  for (const auto& h : stats) pairs += h.pairs.size();
  core::ReconfigurationPlan plan = manager.compute_plan(stats);
  if (manager.options().advise_deploys) {
    const auto [locality, balance] = measured_locality_balance();
    if (!manager.advise(plan, locality, balance).deploy) {
      return plan;  // computed, observable in lar_plan_*, NOT deployed
    }
  }
  // Span mode: the whole wave — phase spans, injected faults and their
  // recoveries — nests under one kWave root (begin_span returns 0 and the
  // trace is unchanged when spans are off).
  const std::uint64_t wave =
      trace_.begin_span(plan.version, obs::Phase::kWave, "wave",
                        /*count=*/0, /*bytes=*/0,
                        static_cast<double>(windows_run_));
  const double wave_end = record_reconfig_trace(plan, stats.size(), pairs);
  inject_migration_faults(plan);
  apply_plan(plan);
  manager.mark_deployed(plan);
  model_.reset_pair_stats();
  trace_.end_span(wave, wave_end);
  return plan;
}

core::ReconfigurationPlan Simulator::reconfigure_app(fleet::FleetManager& fleet,
                                                     fleet::AppId app,
                                                     FleetPlanMode mode) {
  LAR_CHECK(&model_.topology() == &fleet.combined_topology());
  const fleet::AppContext& ctx = fleet.app(app);
  const std::vector<core::HopStats> stats = gather_hop_stats();
  std::uint64_t pairs = 0;
  for (const auto& h : stats) pairs += h.pairs.size();
  core::ReconfigurationPlan plan =
      mode == FleetPlanMode::kJoint ? fleet.plan_app(app, stats)
                                    : fleet.plan_app_independent(app, stats);
  const std::uint64_t wave =
      trace_.begin_span(plan.version, obs::Phase::kWave, "wave",
                        /*count=*/0, /*bytes=*/0,
                        static_cast<double>(windows_run_));
  const double wave_end = record_reconfig_trace(plan, stats.size(), pairs);
  inject_migration_faults(plan);
  // The plan is already sliced: installing it and resetting only the
  // tenant's statistics leaves every other tenant's routing and evidence
  // untouched — the sim analogue of the engine's staggered wave.
  apply_plan(plan);
  fleet.mark_deployed(app, plan);
  model_.reset_pair_stats(ctx.op_begin, ctx.op_end);
  trace_.end_span(wave, wave_end);
  return plan;
}

core::ReconfigurationPlan Simulator::resize(core::Manager& manager,
                                            std::uint32_t target_servers) {
  const std::uint32_t current = model_.active_servers();
  LAR_CHECK(target_servers >= 1 && target_servers != current &&
            target_servers <= model_.placement().num_servers());
  const std::vector<core::HopStats> stats = gather_hop_stats();
  std::uint64_t pairs = 0;
  for (const auto& h : stats) pairs += h.pairs.size();
  core::ReconfigurationPlan plan = manager.plan_for(stats, target_servers);
  const std::uint64_t wave =
      trace_.begin_span(plan.version, obs::Phase::kWave, "wave",
                        /*count=*/0, /*bytes=*/0,
                        static_cast<double>(windows_run_));
  const double wave_end = record_reconfig_trace(plan, stats.size(), pairs);
  const bool out = target_servers > current;
  trace_.record(plan.version,
                out ? obs::Phase::kScaleOut : obs::Phase::kScaleIn, "manager",
                /*count=*/target_servers, /*bytes=*/0, windows_run_);
  inject_migration_faults(plan);
  // Atomic deploy: the new epoch's tables (fallback domain = active set) and
  // the shuffle/source restriction land in the same inter-window instant, so
  // unknown keys never split between `hash % n_old` and `hash % n_new`.
  apply_plan(plan);
  model_.set_active_servers(target_servers);
  manager.mark_deployed(plan);
  model_.reset_pair_stats();
  registry_
      .gauge("lar_elastic_active_servers", {},
             "Live-server count (the active prefix [0, n)).")
      .set(static_cast<double>(target_servers));
  registry_
      .counter("lar_elastic_scale_events_total",
               {{"direction", out ? "out" : "in"}},
               "Completed scale-out / scale-in waves.")
      .inc();
  trace_.end_span(wave, wave_end);
  return plan;
}

double Simulator::record_reconfig_trace(const core::ReconfigurationPlan& plan,
                                        std::uint64_t gathered_hops,
                                        std::uint64_t gathered_pairs) {
  const std::uint64_t vt = windows_run_;
  const std::uint64_t gather_bytes =
      gathered_pairs * sizeof(core::PairCount);
  std::uint64_t table_entries = 0;
  for (const auto& [op, table] : plan.tables) table_entries += table->size();
  const std::uint64_t stage_bytes =
      table_entries * (sizeof(Key) + sizeof(InstanceIndex));
  if (!trace_.spans_enabled()) {
    // The simulator deploys atomically, so the six protocol phases collapse
    // into one logical instant; the trace still records each of them (with
    // the same virtual time = windows run) so fig13's timeline covers the
    // full gather -> compute -> stage -> propagate -> migrate -> drain
    // sequence.
    trace_.record(plan.version, obs::Phase::kGather, "manager", gathered_hops,
                  gather_bytes, vt);
    trace_.record(plan.version, obs::Phase::kCompute, "plan",
                  plan.graph_vertices, plan.graph_edges, vt);
    trace_.record(plan.version, obs::Phase::kStage, "manager",
                  plan.tables.size(), stage_bytes, vt);
    trace_.record(plan.version, obs::Phase::kPropagate, "wave",
                  plan.tables.size(), 0, vt);
    // Sim does not model per-key state bytes; the engine's trace carries
    // them.
    trace_.record(plan.version, obs::Phase::kMigrate, "keys",
                  plan.total_moves(), 0, vt);
    trace_.record(plan.version, obs::Phase::kDrain, "keys", 0, 0, vt);
    return static_cast<double>(vt);
  }
  // Span mode (obs v2): each phase becomes a child span of the enclosing
  // wave with a modeled virtual-time duration (SimConfig vt_* constants).
  // The durations exist only in the trace — the throughput solver never
  // sees them — but they make the critical path of a wave quantitative:
  // which phase dominated, how long the wave took in virtual seconds.
  const SimConfig& cfg = model_.config();
  const std::uint64_t tables = plan.tables.size();
  double t = static_cast<double>(vt);
  const auto span_phase = [&](obs::Phase phase, const char* entity,
                              std::uint64_t count, std::uint64_t bytes,
                              double duration) {
    const std::uint64_t span =
        trace_.begin_span(plan.version, phase, entity, count, bytes, t);
    t += duration;
    trace_.end_span(span, t);
  };
  span_phase(obs::Phase::kGather, "manager", gathered_hops, gather_bytes,
             static_cast<double>(gathered_pairs) * cfg.vt_gather_per_pair);
  span_phase(obs::Phase::kCompute, "plan", plan.graph_vertices,
             plan.graph_edges,
             static_cast<double>(plan.graph_vertices) *
                 cfg.vt_compute_per_vertex);
  span_phase(obs::Phase::kStage, "manager", tables, stage_bytes,
             static_cast<double>(table_entries) * cfg.vt_stage_per_entry);
  span_phase(obs::Phase::kAck, "manager", tables, 0,
             static_cast<double>(tables) * cfg.vt_ack_per_table);
  span_phase(obs::Phase::kPropagate, "wave", tables, 0,
             static_cast<double>(tables) * cfg.vt_propagate_per_hop);
  span_phase(obs::Phase::kMigrate, "keys", plan.total_moves(), 0,
             static_cast<double>(plan.total_moves()) * cfg.vt_migrate_per_key);
  span_phase(obs::Phase::kDrain, "keys", 0, 0, 0.0);
  return t;
}

void Simulator::apply_plan(const core::ReconfigurationPlan& plan) {
  for (const auto& [op, table] : plan.tables) {
    model_.set_table(op, table);
  }
}

Simulator::AdvisedReconfig Simulator::reconfigure_if_beneficial(
    core::Manager& manager, double current_locality, double current_balance,
    const core::AdvisorOptions& advisor_options) {
  AdvisedReconfig out;
  const std::vector<core::HopStats> stats = model_.collect_hop_stats();
  std::uint64_t pairs = 0;
  for (const auto& h : stats) pairs += h.pairs.size();
  out.plan = manager.compute_plan(stats);
  out.verdict = core::evaluate_plan(out.plan, current_locality,
                                    current_balance, advisor_options);
  if (out.verdict.deploy) {
    const std::uint64_t wave =
        trace_.begin_span(out.plan.version, obs::Phase::kWave, "wave",
                          /*count=*/0, /*bytes=*/0,
                          static_cast<double>(windows_run_));
    const double wave_end = record_reconfig_trace(out.plan, stats.size(), pairs);
    apply_plan(out.plan);
    manager.mark_deployed(out.plan);
    model_.reset_pair_stats();
    trace_.end_span(wave, wave_end);
  }
  return out;
}

}  // namespace lar::sim
