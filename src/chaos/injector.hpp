// lar::chaos — the runtime face of a FaultPlan.
//
// An Injector owns the per-(site, entity) event counters that turn the
// plan's pure decision function into a live fault stream, and reports every
// decision and recovery to lar::obs: `lar_chaos_*` counter families and
// Phase::kFault / Phase::kRecover trace events.  It is thread-safe (POI
// threads fire concurrently) and is only ever consulted behind a null-check
// — a component without an injector pays one predictable branch, exactly
// the structural no-op pattern obs::Registry uses, so the disabled mode
// costs nothing on the hot path.
//
// Determinism: fire() advances one counter per (site, entity) and feeds it
// to FaultPlan::should_inject, so the decision stream per entity depends
// only on how many events that entity has seen — not on thread
// interleaving across entities.  Single-threaded callers (the simulator,
// the manager's gather loop) therefore get byte-stable fault schedules.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "chaos/fault_plan.hpp"
#include "common/flat_map.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lar::chaos {

/// Thread-safe fault-decision engine bound to one FaultPlan.
class Injector {
 public:
  /// `registry` and `trace` may be null (no-op observability); when given
  /// they must outlive the injector.
  explicit Injector(FaultPlan plan, obs::Registry* registry = nullptr,
                    obs::TraceRecorder* trace = nullptr);

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Advances `entity`'s event counter at `site` and returns the plan's
  /// decision for that event.  On a fired fault, bumps
  /// `lar_chaos_faults_total{site}` and records a kFault trace event whose
  /// entity is "<site>/<entity>"; `version` is the reconfiguration version
  /// (or gather epoch) the fault belongs to, `vtime` the caller's virtual
  /// time (0 in the threaded runtime).
  bool fire(FaultSite site, std::uint64_t entity, std::uint64_t version = 0,
            double vtime = 0.0);

  /// Records one recovery action (dedup drop, migration redelivery, partial
  /// gather, stale merge, buffer spill): bumps
  /// `lar_chaos_recovery_total{action}` and records a kRecover trace event.
  void recovery(std::string_view action, std::string entity,
                std::uint64_t count = 1, std::uint64_t bytes = 0,
                std::uint64_t version = 0, double vtime = 0.0);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  [[nodiscard]] std::uint32_t magnitude(FaultSite site) const noexcept {
    return plan_.magnitude(site);
  }

  /// Total faults fired at `site` so far.
  [[nodiscard]] std::uint64_t fired(FaultSite site) const;

 private:
  const FaultPlan plan_;
  obs::Registry* registry_;
  obs::TraceRecorder* trace_;

  mutable std::mutex mutex_;
  /// Per-site: entity -> events seen (the seq fed to should_inject).
  std::array<FlatMap<std::uint64_t, std::uint64_t>, kNumFaultSites> seq_;
  std::array<std::uint64_t, kNumFaultSites> fired_{};
};

}  // namespace lar::chaos
