// lar::chaos — deterministic fault plans for the reconfiguration protocol.
//
// A FaultPlan is pure data: per injection site, a fault rate and a
// site-specific magnitude, plus per-site salts expanded from one seed via
// lar::Rng.  Whether a given event suffers a fault is a *pure function* of
// (plan, site, entity, event sequence number) — no wall clock, no global
// RNG state — so a fixed seed reproduces the exact same fault schedule no
// matter how threads interleave, as long as each (site, entity) observes a
// deterministic event sequence.  That is what makes chaos runs replayable:
// the simulator (single-threaded) is byte-stable, and the threaded runtime
// gets identical fault *decisions* at every point whose per-entity event
// order is deterministic (e.g. the manager's gather, which sees one report
// per POI per epoch).
//
// The plan only schedules faults the protocol can survive by design:
//   * data-plane faults preserve per-producer FIFO order by construction
//     (a delay holds a link's whole suffix back, never reorders within it),
//   * control messages are never dropped (the wave invariant in CLAUDE.md
//     depends on their delivery), only delayed or duplicated,
// so every injected fault has a defined recovery, exercised in test_chaos.
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.hpp"

namespace lar::chaos {

/// Named injection points.  Each value is both a schedule dimension of the
/// FaultPlan and the label the injector uses for counters / trace events.
enum class FaultSite : std::uint8_t {
  kChannelDelay = 0,   ///< hold a link's data suffix back (FIFO-preserving)
  kChannelDuplicate,   ///< deliver one data tuple twice on a link
  kWorkerStall,        ///< POI yields the CPU before handling a message
  kStatsLoss,          ///< a SEND_METRICS report never reaches the manager
  kStatsDelay,         ///< a report arrives one gather epoch late (stale)
  kMigrateDelay,       ///< a MIGRATE payload is redelivered after a backoff
  kMigrateDuplicate,   ///< a MIGRATE payload is delivered twice
  kServerCrash,        ///< kill every POI of one server (lar::ckpt recovers)
  kCkptIoError,        ///< one durable epoch-file write fails (chain intact)
};

// Sites are only ever appended (salts expand from the seed in array order,
// so existing sites' decisions are stable across additions).
inline constexpr std::size_t kNumFaultSites = 9;

[[nodiscard]] constexpr const char* to_string(FaultSite s) noexcept {
  switch (s) {
    case FaultSite::kChannelDelay: return "channel_delay";
    case FaultSite::kChannelDuplicate: return "channel_duplicate";
    case FaultSite::kWorkerStall: return "worker_stall";
    case FaultSite::kStatsLoss: return "stats_loss";
    case FaultSite::kStatsDelay: return "stats_delay";
    case FaultSite::kMigrateDelay: return "migrate_delay";
    case FaultSite::kMigrateDuplicate: return "migrate_duplicate";
    case FaultSite::kServerCrash: return "server_crash";
    case FaultSite::kCkptIoError: return "ckpt_io_error";
  }
  return "?";
}

/// One site's schedule: how often it fires and how hard.
struct FaultSpec {
  /// Probability that one event at the site suffers the fault, in [0, 1].
  double rate = 0.0;

  /// Site-specific severity: scheduler yields for kWorkerStall, maximum
  /// redeliveries for kMigrateDelay; ignored by the other sites (their
  /// delay is one logical unit — a queue drain or a gather epoch).
  std::uint32_t magnitude = 1;
};

/// Seeded, immutable-after-construction fault schedule.  Cheap to copy.
class FaultPlan {
 public:
  /// An all-zero-rate plan: never fires (the healthy schedule).
  FaultPlan() : FaultPlan(0) {}

  /// Expands `seed` into independent per-site salts via lar::Rng; all rates
  /// start at zero — call set() to arm sites.
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {
    Rng rng(seed);
    for (auto& salt : salts_) salt = rng.next();
  }

  /// Arms every site with the same rate (magnitudes keep their defaults).
  static FaultPlan uniform(std::uint64_t seed, double rate) {
    FaultPlan plan(seed);
    for (std::size_t s = 0; s < kNumFaultSites; ++s) {
      plan.specs_[s].rate = rate;
    }
    return plan;
  }

  void set(FaultSite site, FaultSpec spec) {
    specs_[static_cast<std::size_t>(site)] = spec;
  }

  [[nodiscard]] const FaultSpec& spec(FaultSite site) const noexcept {
    return specs_[static_cast<std::size_t>(site)];
  }

  [[nodiscard]] std::uint32_t magnitude(FaultSite site) const noexcept {
    return spec(site).magnitude;
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// True iff any site has a nonzero rate.
  [[nodiscard]] bool armed() const noexcept {
    for (const FaultSpec& s : specs_) {
      if (s.rate > 0.0) return true;
    }
    return false;
  }

  /// Pure deterministic decision: does event number `seq` of `entity` at
  /// `site` suffer the fault?  Entities are caller-defined stable ids (a
  /// link, a POI, a key); seq is the per-(site, entity) event counter the
  /// Injector maintains.
  [[nodiscard]] bool should_inject(FaultSite site, std::uint64_t entity,
                                   std::uint64_t seq) const noexcept {
    const auto s = static_cast<std::size_t>(site);
    const double rate = specs_[s].rate;
    if (rate <= 0.0) return false;
    if (rate >= 1.0) return true;
    // mix64 of the salted (entity, seq) pair gives an i.i.d.-quality uniform
    // 64-bit draw; compare against the rate scaled to 2^64.
    const std::uint64_t draw =
        mix64(salts_[s] ^ mix64(entity * 0x9e3779b97f4a7c15ULL + seq));
    const auto threshold = static_cast<std::uint64_t>(
        rate * 18446744073709551616.0 /* 2^64 */);
    return draw < threshold;
  }

 private:
  std::uint64_t seed_ = 0;
  std::array<std::uint64_t, kNumFaultSites> salts_{};
  std::array<FaultSpec, kNumFaultSites> specs_{};
};

}  // namespace lar::chaos
