#include "chaos/injector.hpp"

namespace lar::chaos {

namespace {

/// Canonical trace entity for a fault decision: "<site>/<entity id>".
std::string fault_entity(FaultSite site, std::uint64_t entity) {
  return std::string(to_string(site)) + "/" + std::to_string(entity);
}

}  // namespace

Injector::Injector(FaultPlan plan, obs::Registry* registry,
                   obs::TraceRecorder* trace)
    : plan_(plan), registry_(registry), trace_(trace) {}

bool Injector::fire(FaultSite site, std::uint64_t entity,
                    std::uint64_t version, double vtime) {
  const auto s = static_cast<std::size_t>(site);
  std::uint64_t seq = 0;
  bool hit = false;
  {
    std::lock_guard lock(mutex_);
    seq = seq_[s][entity]++;
    hit = plan_.should_inject(site, entity, seq);
    if (hit) ++fired_[s];
  }
  if (!hit) return false;
  // Fired faults are rare (rate-bounded), so by-name registry lookup and the
  // entity-string allocation stay off the common decision path.
  if (registry_ != nullptr) {
    registry_
        ->counter("lar_chaos_faults_total", {{"site", to_string(site)}},
                  "Faults injected by the active FaultPlan, per site.")
        .inc();
  }
  if (trace_ != nullptr) {
    trace_->record(version, obs::Phase::kFault, fault_entity(site, entity),
                   /*count=*/1, /*bytes=*/0, vtime);
  }
  return true;
}

void Injector::recovery(std::string_view action, std::string entity,
                        std::uint64_t count, std::uint64_t bytes,
                        std::uint64_t version, double vtime) {
  if (registry_ != nullptr) {
    registry_
        ->counter("lar_chaos_recovery_total",
                  {{"action", std::string(action)}},
                  "Recovery actions that absorbed injected faults.")
        .inc(count);
  }
  if (trace_ != nullptr) {
    trace_->record(version, obs::Phase::kRecover,
                   std::string(action) + "/" + std::move(entity), count, bytes,
                   vtime);
  }
}

std::uint64_t Injector::fired(FaultSite site) const {
  std::lock_guard lock(mutex_);
  return fired_[static_cast<std::size_t>(site)];
}

}  // namespace lar::chaos
