#include "split/degree.hpp"

#include <algorithm>
#include <cmath>

#include "common/flat_map.hpp"
#include "common/hash.hpp"

namespace lar::split {

namespace {

struct OpKey {
  OperatorId op = 0;
  Key key = 0;

  friend bool operator==(const OpKey&, const OpKey&) = default;
};

struct OpKeyHash {
  [[nodiscard]] std::size_t operator()(const OpKey& v) const noexcept {
    return static_cast<std::size_t>(hash_pair(v.op, v.key));
  }
};

}  // namespace

std::vector<KeyDegree> choose_degrees(
    const std::vector<HopView>& hops, const SplitOptions& options,
    double alpha, const std::vector<OpInstances>& instances_by_op) {
  std::vector<KeyDegree> out;
  if (options.max_degree <= 1) return out;

  // Key mass = sum of incident pair counts, exactly the bipartite builder's
  // vertex weight.  Integer sums are order-independent, so the masses — and
  // everything below — depend only on the pair *set*.
  FlatMap<OpKey, std::uint64_t, OpKeyHash> mass;
  FlatMap<OperatorId, std::uint64_t> totals;
  for (const HopView& hop : hops) {
    if (hop.pairs == nullptr) continue;
    for (const core::PairCount& pc : *hop.pairs) {
      if (pc.count == 0) continue;
      mass[OpKey{hop.in_op, pc.in}] += pc.count;
      mass[OpKey{hop.out_op, pc.out}] += pc.count;
      totals[hop.in_op] += pc.count;
      totals[hop.out_op] += pc.count;
    }
  }

  auto instances_of = [&instances_by_op](OperatorId op) -> std::uint32_t {
    for (const OpInstances& oi : instances_by_op) {
      if (oi.op == op) return oi.instances;
    }
    return 1;  // unknown op: never split
  };

  mass.for_each([&](const OpKey& ok, std::uint64_t f) {
    const std::uint32_t parts = instances_of(ok.op);
    if (parts < 2) return;
    const std::uint64_t* total = totals.find(ok.op);
    if (total == nullptr || *total == 0) return;
    // Same shape as the planner's per-op repair cap: alpha times the average
    // per-instance mass, +1.0 so integer masses at the bound never split.
    const double cap = alpha * static_cast<double>(*total) /
                           static_cast<double>(parts) +
                       1.0;
    if (static_cast<double>(f) <= cap) return;
    const auto needed = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(f) / cap));
    const std::uint32_t degree = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        {needed, options.max_degree, parts}));
    if (degree >= 2) out.push_back(KeyDegree{ok.op, ok.key, degree});
  });

  // FlatMap iteration order is an implementation detail; the contract is
  // ascending (op, key).
  std::sort(out.begin(), out.end(), [](const KeyDegree& a, const KeyDegree& b) {
    return a.op != b.op ? a.op < b.op : a.key < b.key;
  });
  return out;
}

}  // namespace lar::split
