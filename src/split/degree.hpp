// lar::split — hot-key split-degree selection (DESIGN.md §14).
//
// Pure fields grouping caps per-key throughput at one instance; under Zipf
// skew the head key saturates its POI long before the fleet does.  Partial
// Key Grouping (Nasir et al., arXiv:1510.07623) and its W-choices extension
// (arXiv:1510.05714) restore balance by splitting only the heavy hitters.
// This module fuses that idea with the locality planner: the Manager assigns
// each key a split degree d — 1 keeps today's explicit single-instance
// mapping, 2 is PKG's two choices, d up to max_degree for the heaviest
// hitters — chosen deterministically from the merged pair statistics it
// already gathers.  Split keys run as d partial-aggregation replicas placed
// by the bipartite partitioner; the unsplit tail stays locality-routed.
//
// Determinism contract: choose_degrees is a pure function of the pair
// statistics *set* (counts are accumulated by order-independent integer
// sums and the result is emitted in ascending (op, key) order), the options,
// and the instance counts — identical statistics always yield identical
// degrees, no matter how the caller ordered the pair lists.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pair_stats.hpp"
#include "topology/types.hpp"

namespace lar::split {

/// Split tuning carried in core::ManagerOptions.
struct SplitOptions {
  /// Maximum replicas per key.  1 (the default) disables splitting entirely:
  /// choose_degrees returns nothing, the planner builds the exact graph it
  /// builds today, and every no-split code path stays byte-identical.
  std::uint32_t max_degree = 1;
};

/// One hop's merged statistics, viewed without depending on core::HopStats
/// (which lives in manager.hpp, which includes this header for SplitOptions).
struct HopView {
  OperatorId in_op = 0;
  OperatorId out_op = 0;
  const std::vector<core::PairCount>* pairs = nullptr;
};

/// The chosen degree of one (operator, key); only degrees >= 2 are emitted.
struct KeyDegree {
  OperatorId op = 0;
  Key key = 0;
  std::uint32_t degree = 1;

  friend bool operator==(const KeyDegree&, const KeyDegree&) = default;
};

/// Per-op active instance count, ascending by op — the fleet each op's keys
/// could split across in this epoch.
struct OpInstances {
  OperatorId op = 0;
  std::uint32_t instances = 1;
};

/// Selects split degrees from merged pair statistics.
///
/// A key's mass is the sum of the counts of its incident pairs (the same
/// quantity the bipartite builder uses as vertex weight).  With P active
/// instances of the key's operator and `alpha` the planner's balance bound,
/// any key whose mass f exceeds cap = alpha * total / P + 1.0 cannot fit on
/// one POI without violating the per-PO bound, so it splits into
/// d = min(max_degree, P, ceil(f / cap)) replicas.  Keys at or under the cap
/// keep degree 1 (not emitted).  Ops absent from `instances_by_op` or with
/// fewer than two instances never split.
[[nodiscard]] std::vector<KeyDegree> choose_degrees(
    const std::vector<HopView>& hops, const SplitOptions& options,
    double alpha, const std::vector<OpInstances>& instances_by_op);

}  // namespace lar::split
