// lar::FlatMap — deterministic open-addressing hash map for the data plane.
//
// The per-tuple path (RoutingTable::route, SpaceSaving::add, ExactCounter,
// pair-count merging, KeyDict interning) used to probe node-based
// std::unordered_map buckets: one cache miss to find the bucket, another to
// chase the node pointer, plus an implementation-defined std::hash.  FlatMap
// stores key/value slots contiguously and probes linearly, so a lookup is one
// mix64-style hash, one indexed load and (almost always) zero pointer chases.
//
// Determinism contract — the properties the routing invariants rely on:
//   * hashing goes through an explicit deterministic functor (DetHash by
//     default: mix64 for integers, FNV-1a for strings); std::hash is never
//     consulted, so the slot layout is identical across standard libraries;
//   * the layout is a pure function of the (hash functor, insert/erase
//     sequence): capacities are powers of two grown at a fixed load factor,
//     and erase uses backward-shift deletion (no tombstones), so no hidden
//     state survives an erase;
//   * iteration (begin/end, for_each) walks slots in index order, which is
//     deterministic but *arbitrary* — callers that feed ordered consumers use
//     sorted_items(), the canonical key-ordered accessor.
//
// Not thread-safe; single-writer like every other data-plane structure here.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/status.hpp"

namespace lar {

template <typename K, typename V, typename Hash = DetHash<K>,
          typename Eq = std::equal_to<>>
class FlatMap {
 public:
  struct Item {
    K key;
    V value;
  };

  FlatMap() = default;

  /// Pre-sizes the table for `n` items without rehashing on the way there.
  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    // Grow until n fits under the load-factor ceiling (5/8 of capacity).
    while (want / 8 * 5 < n) want *= 2;
    if (want > slots_.size()) rehash(want);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Pointer to the value for `key`, or nullptr.  Accepts any type the hash
  /// functor and equality are transparent over (e.g. string_view lookups in a
  /// FlatMap keyed by std::string).
  template <typename Q>
  [[nodiscard]] const V* find(const Q& key) const noexcept {
    if (size_ == 0) return nullptr;
    std::size_t i = Hash{}(key)&mask_;
    while (used_[i]) {
      if (Eq{}(slots_[i].key, key)) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  template <typename Q>
  [[nodiscard]] V* find(const Q& key) noexcept {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  [[nodiscard]] bool contains(const K& key) const noexcept {
    return find(key) != nullptr;
  }

  /// Inserts `key` default-constructed if absent; returns the value slot.
  V& operator[](const K& key) { return *emplace_slot(key); }

  /// Inserts or overwrites; returns true when the key was newly inserted.
  bool insert_or_assign(const K& key, V value) {
    const std::size_t before = size_;
    V* slot = emplace_slot(key);
    *slot = std::move(value);
    return size_ != before;
  }

  /// Removes `key` with backward-shift deletion (no tombstones), so probe
  /// chains stay dense and the layout remains a pure function of the
  /// operation sequence.  Returns true when the key was present.
  template <typename Q>
  bool erase(const Q& key) {
    if (size_ == 0) return false;
    std::size_t i = Hash{}(key)&mask_;
    while (used_[i]) {
      if (Eq{}(slots_[i].key, key)) {
        shift_out(i);
        --size_;
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  void clear() noexcept {
    if (size_ != 0) {
      if constexpr (std::is_trivially_destructible_v<Item>) {
        std::fill(used_.begin(), used_.end(), std::uint8_t{0});
      } else {
        // Release slot payloads (strings, vectors) instead of keeping them
        // alive invisibly inside "empty" slots.
        for (std::size_t i = 0; i < slots_.size(); ++i) {
          if (used_[i]) {
            slots_[i] = Item{};
            used_[i] = 0;
          }
        }
      }
    }
    size_ = 0;
  }

  /// Applies `fn(key, value)` to every item in slot order (deterministic,
  /// arbitrary).  Use sorted_items() when the consumer needs canonical order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i].key, slots_[i].value);
    }
  }

  /// All items sorted by key — the canonical accessor for any caller whose
  /// output ordering matters (serialization, exporters, table diffs).
  [[nodiscard]] std::vector<Item> sorted_items() const
    requires std::totally_ordered<K>
  {
    std::vector<Item> out;
    out.reserve(size_);
    for_each([&out](const K& k, const V& v) { out.push_back(Item{k, v}); });
    std::sort(out.begin(), out.end(),
              [](const Item& a, const Item& b) { return a.key < b.key; });
    return out;
  }

  // Minimal forward iteration over occupied slots (slot order).
  class const_iterator {
   public:
    const_iterator(const FlatMap* m, std::size_t i) noexcept : map_(m), i_(i) {
      skip();
    }
    const Item& operator*() const noexcept { return map_->slots_[i_]; }
    const Item* operator->() const noexcept { return &map_->slots_[i_]; }
    const_iterator& operator++() noexcept {
      ++i_;
      skip();
      return *this;
    }
    friend bool operator==(const const_iterator& a,
                           const const_iterator& b) noexcept {
      return a.i_ == b.i_;
    }

   private:
    void skip() noexcept {
      while (i_ < map_->slots_.size() && !map_->used_[i_]) ++i_;
    }
    const FlatMap* map_;
    std::size_t i_;
  };
  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator(this, slots_.size());
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  /// Finds `key`'s value slot, inserting a default-constructed value (and
  /// growing at the 5/8 load ceiling) when absent.  Plain (non-SIMD) linear
  /// probing degrades sharply past ~3/4 load — unsuccessful probes average
  /// O(1/(1-a)^2) slots — and the data plane's table lookups miss often
  /// (un-planned keys fall back to hashing), so the ceiling trades a little
  /// memory for short chains on both hit and miss paths.
  V* emplace_slot(const K& key) {
    if (!slots_.empty()) {
      std::size_t i = Hash{}(key)&mask_;
      while (used_[i]) {
        if (Eq{}(slots_[i].key, key)) return &slots_[i].value;
        i = (i + 1) & mask_;
      }
    }
    // Not present: grow first if the insert would cross the load ceiling,
    // then probe again (the rehash moved everything).
    if (slots_.empty()) {
      rehash(kMinCapacity);
    } else if (size_ + 1 > slots_.size() / 8 * 5) {
      rehash(slots_.size() * 2);
    }
    std::size_t i = Hash{}(key)&mask_;
    while (used_[i]) i = (i + 1) & mask_;
    used_[i] = 1;
    slots_[i].key = key;
    slots_[i].value = V{};
    ++size_;
    return &slots_[i].value;
  }

  void rehash(std::size_t new_capacity) {
    LAR_CHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Item> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.assign(new_capacity, Item{});
    used_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      std::size_t j = Hash{}(old_slots[i].key) & mask_;
      while (used_[j]) j = (j + 1) & mask_;
      used_[j] = 1;
      slots_[j] = std::move(old_slots[i]);
    }
  }

  /// Backward-shift deletion starting at occupied slot `pos`.
  void shift_out(std::size_t pos) {
    std::size_t hole = pos;
    std::size_t i = (pos + 1) & mask_;
    while (used_[i]) {
      const std::size_t home = Hash{}(slots_[i].key) & mask_;
      // Move slots_[i] into the hole unless it already sits in its probe
      // window [home, i]: the wrap-aware test "hole is outside (home..i]".
      const bool movable = ((i - home) & mask_) >= ((i - hole) & mask_);
      if (movable) {
        slots_[hole] = std::move(slots_[i]);
        hole = i;
      }
      i = (i + 1) & mask_;
    }
    used_[hole] = 0;
    slots_[hole] = Item{};
  }

  std::vector<Item> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;

  friend class const_iterator;
};

}  // namespace lar
