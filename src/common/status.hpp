// Lightweight Status / Result types for recoverable errors.
//
// Following the Core Guidelines we use exceptions for *programming* errors
// (violated preconditions -> LAR_CHECK aborts in debug) but plain value
// returns for *expected* failures (a queue that is closed, a key that has no
// state yet).  Result<T> is a minimal std::expected stand-in (we target
// C++20, std::expected is C++23).
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace lar {

/// Error codes used across the library.
enum class ErrorCode {
  kOk = 0,
  kNotFound,        ///< Key / id not present.
  kClosed,          ///< Channel or engine already shut down.
  kInvalidArgument, ///< Caller passed a value outside the documented domain.
  kExhausted,       ///< Bounded resource (queue, sketch) is full.
  kTimeout,         ///< Blocking call exceeded its deadline.
  kFailedPrecondition, ///< Operation not legal in the current state.
  kInternal,        ///< Bug; should never surface in a correct build.
};

/// Human-readable name of an error code.
[[nodiscard]] constexpr const char* to_string(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kClosed: return "closed";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kExhausted: return "exhausted";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// A status: either OK or an error code with a message.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs an error status.  `code` must not be kOk.
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk);
  }

  static Status ok() noexcept { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "ok" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "ok";
    return std::string(lar::to_string(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or a Status error.  Minimal expected<T, Status>.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value (success).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from error status.  `status.is_ok()` is a precondition failure.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).is_ok());
  }

  [[nodiscard]] bool is_ok() const noexcept {
    return std::holds_alternative<T>(data_);
  }

  /// The error status; precondition: !is_ok().
  [[nodiscard]] const Status& status() const {
    assert(!is_ok());
    return std::get<Status>(data_);
  }

  /// The value; precondition: is_ok().
  [[nodiscard]] T& value() & {
    assert(is_ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(data_));
  }

  /// Value if present, otherwise `fallback`.
  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "LAR_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace detail

/// Precondition/invariant check that stays on in release builds.  Used for
/// conditions whose violation means a bug, never for data-dependent errors.
#define LAR_CHECK(expr)                                       \
  do {                                                        \
    if (!(expr)) {                                            \
      ::lar::detail::check_failed(#expr, __FILE__, __LINE__); \
    }                                                         \
  } while (0)

}  // namespace lar
