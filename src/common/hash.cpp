#include "common/hash.hpp"

namespace lar {

std::uint64_t fnv1a64(const void* data, std::size_t len) noexcept {
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = kOffset;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= kPrime;
  }
  return h;
}

}  // namespace lar
