// Small statistics helpers: running aggregates and load-balance metrics.
//
// The paper reports "load balance" as the ratio between the most loaded
// operator instance and the average load (Fig 11b); `imbalance()` computes
// exactly that.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <vector>

namespace lar {

/// Incremental mean / min / max / variance (Welford).
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Population variance; 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Folds another aggregate into this one (parallel Welford / Chan et al.),
  /// as if every sample of `other` had been add()ed here.  Lets per-shard
  /// stats collected independently be combined into one aggregate.
  void merge(const RunningStat& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double n = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    mean_ += delta * nb / n;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// max(load) / mean(load) over per-instance loads; 1.0 = perfectly balanced.
/// Returns 1.0 for empty or all-zero input (a vacuously balanced system).
[[nodiscard]] inline double imbalance(std::span<const std::uint64_t> loads) noexcept {
  if (loads.empty()) return 1.0;
  const std::uint64_t total = std::accumulate(loads.begin(), loads.end(),
                                              std::uint64_t{0});
  if (total == 0) return 1.0;
  const std::uint64_t max = *std::max_element(loads.begin(), loads.end());
  const double mean = static_cast<double>(total) / static_cast<double>(loads.size());
  return static_cast<double>(max) / mean;
}

}  // namespace lar
