// Small string helpers shared by examples, benches and trace I/O.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lar {

/// Splits `s` on `sep`, keeping empty fields.  "a,,b" -> {"a","","b"}.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Formats a double with `digits` decimal places (locale-independent).
[[nodiscard]] std::string format_double(double v, int digits = 2);

/// Formats a byte count as a human-readable string ("12.0 kB", "3.4 MB").
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

}  // namespace lar
