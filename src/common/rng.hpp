// Deterministic pseudo-random number generation.
//
// Every stochastic component in this repository (workload generators, shuffle
// groupings, synthetic experiments) takes an explicit seed so that tests and
// benchmark figures are exactly reproducible.  We use SplitMix64 for seeding
// and xoshiro256** as the workhorse generator — both tiny, fast and
// well-studied.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "common/hash.hpp"

namespace lar {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    return mix64_variant(state_);
  }

 private:
  static constexpr std::uint64_t mix64_variant(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_;
};

/// xoshiro256**: fast general-purpose PRNG with 256-bit state.
/// Satisfies (most of) UniformRandomBitGenerator so it can be plugged into
/// <random> distributions, though we provide the helpers we need directly.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single value via SplitMix64.
  explicit constexpr Rng(std::uint64_t seed = 0x5eed0f1a5eedULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // 128-bit multiply; __uint128_t is available on all GCC/Clang targets.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace lar
