// Minimal leveled logger.
//
// The control-plane protocol (manager <-> operator instances) logs its
// message flow at kDebug; experiments run with kWarn to keep benchmark output
// clean.  Thread-safe: each log line is formatted into one string and written
// with a single fwrite.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace lar {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded cheaply.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& msg);
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

/// Builds one log line via operator<< and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define LAR_LOG(level)                         \
  if (!::lar::detail::log_enabled(level)) {    \
  } else                                       \
    ::lar::detail::LogMessage(level)

#define LAR_DEBUG LAR_LOG(::lar::LogLevel::kDebug)
#define LAR_INFO LAR_LOG(::lar::LogLevel::kInfo)
#define LAR_WARN LAR_LOG(::lar::LogLevel::kWarn)
#define LAR_ERROR LAR_LOG(::lar::LogLevel::kError)

}  // namespace lar
