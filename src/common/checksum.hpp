// Seeded checksums for on-disk framing.
//
// The durable checkpoint store frames every epoch file with a checksum so a
// torn or corrupted write is detected at open time (lar::ckpt falls back to
// the previous committed epoch).  Like everything else that ends up in a
// byte-compared artifact, the checksum must be implementation-defined-free:
// plain uint64 arithmetic over the byte stream, identical on every platform
// and standard library.  The seed folds a caller-chosen domain (e.g. the
// epoch number) into the state so two files with identical payloads in
// different positions of a chain still carry distinct checksums.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lar {

/// Seeded 64-bit FNV-1a over a byte range, finalized through mix64.  The
/// empty range with seed 0 returns the finalized offset basis (a fixed,
/// documented vector — see tests/test_common.cpp).
[[nodiscard]] std::uint64_t checksum64(std::uint64_t seed, const void* data,
                                       std::size_t len) noexcept;

/// Convenience overload for string views (test vectors, manifests).
[[nodiscard]] inline std::uint64_t checksum64(std::uint64_t seed,
                                              std::string_view s) noexcept {
  return checksum64(seed, s.data(), s.size());
}

}  // namespace lar
