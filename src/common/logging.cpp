#include "common/logging.hpp"

#include <chrono>
#include <cstdio>

namespace lar {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

namespace detail {

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         static_cast<int>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& msg) {
  using namespace std::chrono;
  const auto now = duration_cast<milliseconds>(
                       steady_clock::now().time_since_epoch())
                       .count();
  char prefix[64];
  const int n = std::snprintf(prefix, sizeof prefix, "[%s %10lld.%03lld] ",
                              level_tag(level),
                              static_cast<long long>(now / 1000),
                              static_cast<long long>(now % 1000));
  std::string line;
  line.reserve(static_cast<std::size_t>(n) + msg.size() + 1);
  line.append(prefix, static_cast<std::size_t>(n));
  line += msg;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace detail
}  // namespace lar
