#include "common/logging.hpp"

#include <cstdint>
#include <cstdio>

namespace lar {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Per-process line number instead of a wall-clock timestamp: log output
// stays deterministic for single-threaded runs (and the sequence orders
// lines causally either way), in line with the repository-wide "no
// wall-clock" rule.
std::atomic<std::uint64_t> g_log_seq{0};

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

namespace detail {

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         static_cast<int>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& msg) {
  const std::uint64_t seq =
      g_log_seq.fetch_add(1, std::memory_order_relaxed);
  char prefix[64];
  const int n = std::snprintf(prefix, sizeof prefix, "[%s #%06llu] ",
                              level_tag(level),
                              static_cast<unsigned long long>(seq));
  std::string line;
  line.reserve(static_cast<std::size_t>(n) + msg.size() + 1);
  line.append(prefix, static_cast<std::size_t>(n));
  line += msg;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace detail
}  // namespace lar
