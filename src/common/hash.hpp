// Hashing primitives used across the library.
//
// Stream routing must be *deterministic across processes and runs*, so we do
// not rely on std::hash (which is implementation-defined and may be identity
// for integers).  We provide FNV-1a for strings/bytes and a Murmur3-style
// finalizer for integers, plus a boost-style combiner.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <string_view>
#include <type_traits>

namespace lar {

/// 64-bit FNV-1a over an arbitrary byte range.  Deterministic, portable,
/// good avalanche behaviour for short keys (words, hashtags, country codes).
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t len) noexcept;

/// Convenience overload for string views.
[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view s) noexcept {
  return fnv1a64(s.data(), s.size());
}

/// Murmur3/SplitMix-style 64-bit integer finalizer.  Bijective; turns
/// low-entropy integers (sequential ids) into well-distributed hashes.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines two hashes (order-dependent).  Boost-style with a 64-bit
/// golden-ratio constant.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t value) noexcept {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// Hash of a (key, key) pair; used by the pair-frequency sketches.
[[nodiscard]] constexpr std::uint64_t hash_pair(std::uint64_t a,
                                                std::uint64_t b) noexcept {
  return hash_combine(mix64(a), mix64(b));
}

/// Deterministic hash functor: the drop-in replacement for std::hash wherever
/// a container's memory layout (and therefore iteration order) must be
/// identical across standard libraries, processes and runs.  Integers go
/// through mix64, strings through FNV-1a; other key types provide their own
/// functor (e.g. core::KeyPairHash).
template <typename T>
struct DetHash;

template <typename T>
  requires std::is_integral_v<T> || std::is_enum_v<T>
struct DetHash<T> {
  [[nodiscard]] constexpr std::uint64_t operator()(T v) const noexcept {
    return mix64(static_cast<std::uint64_t>(v));
  }
};

template <>
struct DetHash<std::string> {
  using is_transparent = void;  ///< enables string_view lookups without copies
  [[nodiscard]] std::uint64_t operator()(std::string_view s) const noexcept {
    return fnv1a64(s);
  }
};

template <>
struct DetHash<std::string_view> : DetHash<std::string> {};

}  // namespace lar
