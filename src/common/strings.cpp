#include "common/strings.hpp"

#include <cctype>
#include <cstdio>

namespace lar {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string format_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "kB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1000.0 && u < 4) {
    v /= 1000.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f %s", v, units[u]);
  return buf;
}

}  // namespace lar
