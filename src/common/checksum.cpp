#include "common/checksum.hpp"

#include "common/hash.hpp"

namespace lar {

std::uint64_t checksum64(std::uint64_t seed, const void* data,
                         std::size_t len) noexcept {
  // FNV-1a with the seed mixed into the offset basis.  The byte loop is the
  // textbook xor-then-multiply; the final mix64 gives avalanche over the
  // high bits so truncations near the end of long buffers flip the whole
  // word, not just the low byte's worth of state.
  constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t state = kOffsetBasis ^ mix64(seed);
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    state ^= static_cast<std::uint64_t>(bytes[i]);
    state *= kPrime;
  }
  return mix64(state);
}

}  // namespace lar
