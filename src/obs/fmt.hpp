// lar::obs — shared deterministic formatting helpers for the exporters.
//
// Fixed-precision, locale-independent; no wall-clock input anywhere.  Used
// by export.cpp (Prometheus/JSON/trace) and timeline.cpp (timeline JSON) so
// every artifact formats numbers identically.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace lar::obs::detail {

/// Integral values print without a fractional part ("42", not "42.000000")
/// so counters and integer-valued gauges read naturally in both formats.
inline std::string fmt_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.10g", v);
  }
  return buf;
}

/// JSON has no Inf/NaN literals; those degrade to null.
inline std::string fmt_json_number(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  return fmt_double(v);
}

inline std::string fmt_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

inline void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace lar::obs::detail
