// lar::obs — structured trace recorder for the reconfiguration protocol.
//
// One event per protocol step (Figure 6 / Algorithm 1): statistics gather,
// plan compute, table stage, per-POI ack, PROPAGATE wave hop, per-key state
// migration, tuple buffering and buffered-tuple drain.  Events carry a
// logical sequence number (recorder-assignment order) and a virtual-time
// stamp (simulated time where the caller models one; 0 in the threaded
// runtime, which has no virtual clock) — never wall-clock time, per the
// determinism invariant in CLAUDE.md.
//
// Sequence numbers order events *as recorded*: within one thread they are
// monotone, across racing POI threads their interleaving is
// scheduling-dependent.  The deterministic JSON exporter therefore sorts
// events canonically by (version, phase, entity) and omits the raw sequence
// number unless asked for it; post-hoc debugging reads events() in seq
// order instead.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace lar::obs {

/// Protocol steps, in wave order.  kGather..kDrain is also the canonical
/// phase sort order used by the exporter; the chaos phases sort after the
/// protocol proper (they annotate it, they are not part of the wave).
enum class Phase : std::uint8_t {
  kGather = 0,    ///< GET_METRICS / SEND_METRICS round (pair statistics)
  kCompute = 1,   ///< Manager plan computation (graph build + partition)
  kStage = 2,     ///< SEND_RECONF: new tables staged on every POI
  kAck = 3,       ///< per-POI ACK_RECONF
  kPropagate = 4, ///< one PROPAGATE wave hop handled by a POI
  kMigrate = 5,   ///< one key's state shipped between sibling instances
  kBuffer = 6,    ///< a tuple parked waiting for its key's state
  kDrain = 7,     ///< buffered tuples released after state arrival
  kFault = 8,     ///< lar::chaos injected a fault at this point
  kRecover = 9,   ///< a recovery action absorbed an injected fault
  kScaleOut = 10, ///< lar::elastic grew the active server prefix
  kScaleIn = 11,  ///< lar::elastic shrank the active server prefix
  kRetire = 12,   ///< one retiring POI drained its state and stopped
  kCheckpoint = 13, ///< lar::ckpt committed one aligned checkpoint epoch
  kCrash = 14,      ///< a server_crash fault killed one server's POIs
};

[[nodiscard]] constexpr const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::kGather: return "gather";
    case Phase::kCompute: return "compute";
    case Phase::kStage: return "stage";
    case Phase::kAck: return "ack";
    case Phase::kPropagate: return "propagate";
    case Phase::kMigrate: return "migrate";
    case Phase::kBuffer: return "buffer";
    case Phase::kDrain: return "drain";
    case Phase::kFault: return "fault";
    case Phase::kRecover: return "recover";
    case Phase::kScaleOut: return "scale_out";
    case Phase::kScaleIn: return "scale_in";
    case Phase::kRetire: return "retire";
    case Phase::kCheckpoint: return "checkpoint";
    case Phase::kCrash: return "crash";
  }
  return "?";
}

/// One protocol step.  `entity` identifies the actor or object in canonical
/// text form ("op1/i0" for a POI, "key42" for a key, "plan" for
/// manager-side steps); `count` and `bytes` are the step's tuple/key count
/// and payload size where meaningful.
struct TraceEvent {
  std::uint64_t seq = 0;      ///< logical sequence number (recording order)
  std::uint64_t version = 0;  ///< reconfiguration plan version
  Phase phase = Phase::kGather;
  std::string entity;
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  double vtime = 0.0;  ///< virtual/simulated time; 0 when not modeled
};

/// Formats a POI identity as a canonical entity string ("op1/i03").
/// Zero-padded instance so lexicographic entity order == numeric order for
/// parallelism up to 1000.
[[nodiscard]] std::string poi_entity(std::uint32_t op, std::uint32_t instance);

/// Formats a key identity as a canonical entity string ("key00000042").
[[nodiscard]] std::string key_entity(std::uint64_t key);

/// Thread-safe append-only event log.
class TraceRecorder {
 public:
  /// Records one event and returns its sequence number.
  std::uint64_t record(std::uint64_t version, Phase phase, std::string entity,
                       std::uint64_t count = 0, std::uint64_t bytes = 0,
                       double vtime = 0.0);

  /// Events in recording (seq) order.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Events in canonical (version, phase, entity, seq) order — the order
  /// the deterministic exporter emits.
  [[nodiscard]] std::vector<TraceEvent> canonical_events() const;

  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace lar::obs
