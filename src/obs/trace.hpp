// lar::obs — structured trace recorder for the reconfiguration protocol.
//
// One event per protocol step (Figure 6 / Algorithm 1): statistics gather,
// plan compute, table stage, per-POI ack, PROPAGATE wave hop, per-key state
// migration, tuple buffering and buffered-tuple drain.  Events carry a
// logical sequence number (recorder-assignment order) and a virtual-time
// stamp (simulated time where the caller models one; 0 in the threaded
// runtime, which has no virtual clock) — never wall-clock time, per the
// determinism invariant in CLAUDE.md.
//
// Sequence numbers order events *as recorded*: within one thread they are
// monotone, across racing POI threads their interleaving is
// scheduling-dependent.  The deterministic JSON exporter therefore sorts
// events canonically by (version, phase, entity) and omits the raw sequence
// number unless asked for it; post-hoc debugging reads events() in seq
// order instead.
//
// Causal spans (obs v2).  When span recording is enabled, driver-side code
// opens spans (begin_span/end_span) around compound protocol actions — a
// reconfiguration wave, a checkpoint, a crash recovery — and every event
// recorded while a span is open inherits it as `parent`.  Span ids are
// allocated from their own counter, incremented only by begin_span; because
// spans are opened and closed by one externally-synchronized driver thread,
// span ids (and hence the span *tree*) are deterministic even though raw
// seq numbers of racing leaf events are not.  With spans disabled (the
// default) begin_span records nothing and returns 0, so all pre-existing
// trace output stays byte-identical.
//
// The event log is a bounded ring: beyond `capacity` events the oldest are
// dropped and counted (dropped()), so long chaos/elastic runs cannot grow
// memory without bound.  The default capacity is far above what any bench
// or test records, so nothing drops unless a caller opts into a small cap.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace lar::obs {

/// Protocol steps, in wave order.  kGather..kDrain is also the canonical
/// phase sort order used by the exporter; the chaos phases sort after the
/// protocol proper (they annotate it, they are not part of the wave).
enum class Phase : std::uint8_t {
  kGather = 0,    ///< GET_METRICS / SEND_METRICS round (pair statistics)
  kCompute = 1,   ///< Manager plan computation (graph build + partition)
  kStage = 2,     ///< SEND_RECONF: new tables staged on every POI
  kAck = 3,       ///< per-POI ACK_RECONF
  kPropagate = 4, ///< one PROPAGATE wave hop handled by a POI
  kMigrate = 5,   ///< one key's state shipped between sibling instances
  kBuffer = 6,    ///< a tuple parked waiting for its key's state
  kDrain = 7,     ///< buffered tuples released after state arrival
  kFault = 8,     ///< lar::chaos injected a fault at this point
  kRecover = 9,   ///< a recovery action absorbed an injected fault
  kScaleOut = 10, ///< lar::elastic grew the active server prefix
  kScaleIn = 11,  ///< lar::elastic shrank the active server prefix
  kRetire = 12,   ///< one retiring POI drained its state and stopped
  kCheckpoint = 13, ///< lar::ckpt committed one aligned checkpoint epoch
  kCrash = 14,      ///< a server_crash fault killed one server's POIs
  kWave = 15,       ///< span root covering one whole reconfiguration wave
};

[[nodiscard]] constexpr const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::kGather: return "gather";
    case Phase::kCompute: return "compute";
    case Phase::kStage: return "stage";
    case Phase::kAck: return "ack";
    case Phase::kPropagate: return "propagate";
    case Phase::kMigrate: return "migrate";
    case Phase::kBuffer: return "buffer";
    case Phase::kDrain: return "drain";
    case Phase::kFault: return "fault";
    case Phase::kRecover: return "recover";
    case Phase::kScaleOut: return "scale_out";
    case Phase::kScaleIn: return "scale_in";
    case Phase::kRetire: return "retire";
    case Phase::kCheckpoint: return "checkpoint";
    case Phase::kCrash: return "crash";
    case Phase::kWave: return "wave";
  }
  return "?";
}

/// One protocol step.  `entity` identifies the actor or object in canonical
/// text form ("op1/i0" for a POI, "key42" for a key, "plan" for
/// manager-side steps); `count` and `bytes` are the step's tuple/key count
/// and payload size where meaningful.  `span` is nonzero iff this event
/// opens a span; `parent` is the id of the span enclosing the event (0 =
/// none); `vtime_end` is the span's close time and equals `vtime` for
/// instantaneous (leaf) events.
struct TraceEvent {
  std::uint64_t seq = 0;      ///< logical sequence number (recording order)
  std::uint64_t version = 0;  ///< reconfiguration plan version
  Phase phase = Phase::kGather;
  std::string entity;
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  double vtime = 0.0;  ///< virtual/simulated time; 0 when not modeled
  std::uint64_t span = 0;    ///< span id this event opens (0 = leaf event)
  std::uint64_t parent = 0;  ///< enclosing span id (0 = root / no span)
  double vtime_end = 0.0;    ///< span close time; == vtime for leaf events
};

/// Formats a POI identity as a canonical entity string ("op1/i03").
/// Zero-padded instance so lexicographic entity order == numeric order for
/// parallelism up to 1000.
[[nodiscard]] std::string poi_entity(std::uint32_t op, std::uint32_t instance);

/// Formats a key identity as a canonical entity string ("key00000042").
[[nodiscard]] std::string key_entity(std::uint64_t key);

/// Thread-safe bounded event log with optional causal spans.
class TraceRecorder {
 public:
  /// Default ring capacity: large enough that no existing bench or test
  /// ever drops an event (byte-identity), small enough to bound week-long
  /// chaos/elastic runs.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  /// Records one event and returns its sequence number.  The event's
  /// `parent` is the innermost currently-open span (0 if none).
  std::uint64_t record(std::uint64_t version, Phase phase, std::string entity,
                       std::uint64_t count = 0, std::uint64_t bytes = 0,
                       double vtime = 0.0);

  /// Enables/disables span recording.  Off by default: begin_span records
  /// nothing and returns 0, end_span is a no-op, record() leaves parent 0 —
  /// output is byte-identical to the pre-span recorder.
  void set_spans_enabled(bool enabled);
  [[nodiscard]] bool spans_enabled() const;

  /// Opens a span: records an event carrying a fresh span id (parented to
  /// the innermost open span) and makes it current, so every subsequent
  /// record() — from any thread — inherits it until end_span.  Only call
  /// from externally-synchronized driver code (the thread that runs the
  /// wave / checkpoint / recovery); span ids stay deterministic because
  /// they are allocated in driver order.  Returns 0 when spans are off.
  std::uint64_t begin_span(std::uint64_t version, Phase phase,
                           std::string entity, std::uint64_t count = 0,
                           std::uint64_t bytes = 0, double vtime = 0.0);

  /// Closes a span: stamps its event's vtime_end and pops it from the open
  /// stack.  No-op for span == 0 or if the opening event was evicted.
  void end_span(std::uint64_t span, double vtime_end);

  /// Innermost currently-open span id (0 if none).
  [[nodiscard]] std::uint64_t current_span() const;

  /// Ring capacity (0 = unbounded).  Shrinking evicts oldest events.
  void set_capacity(std::size_t capacity);

  /// Events evicted from the ring since construction/clear().
  [[nodiscard]] std::uint64_t dropped() const;

  /// Events in recording (seq) order.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Events in canonical (version, phase, entity, seq) order — the order
  /// the deterministic exporter emits.
  [[nodiscard]] std::vector<TraceEvent> canonical_events() const;

  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  /// Pointer to the retained event with sequence number `seq`, or nullptr
  /// if it was evicted.  Caller holds mutex_.
  TraceEvent* find_locked(std::uint64_t seq);
  void evict_locked();

  mutable std::mutex mutex_;
  std::deque<TraceEvent> events_;
  std::uint64_t next_seq_ = 0;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  bool spans_enabled_ = false;
  std::uint64_t next_span_ = 1;
  std::vector<std::uint64_t> span_stack_;        ///< open spans, innermost last
  std::vector<std::uint64_t> span_event_seqs_;   ///< seq of each open span's event
};

}  // namespace lar::obs
