#include "obs/export.hpp"

#include <cmath>
#include <cstdio>

#include "obs/fmt.hpp"

namespace lar::obs {

namespace {

using detail::append_json_escaped;
using detail::fmt_double;
using detail::fmt_json_number;
using detail::fmt_u64;

/// Prometheus label values escape `\`, `"` and newline per the exposition
/// format (HELP text escapes `\` and newline only).
void append_prom_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_prom_help_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

/// `{k="v",k2="v2"}` — empty string for no labels.
std::string prom_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].key;
    out += "=\"";
    append_prom_escaped(out, labels[i].value);
    out += '"';
  }
  out += '}';
  return out;
}

/// Same but with one extra label appended (histogram `le`).
std::string prom_labels_with(const Labels& labels, std::string_view key,
                             std::string_view value) {
  std::string out = "{";
  for (const Label& l : labels) {
    out += l.key;
    out += "=\"";
    append_prom_escaped(out, l.value);
    out += "\",";
  }
  out += key;
  out += "=\"";
  out += value;
  out += "\"}";
  return out;
}

std::string json_labels(const Labels& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    append_json_escaped(out, labels[i].key);
    out += "\":\"";
    append_json_escaped(out, labels[i].value);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string to_prometheus(const Registry& registry, const MetricFilter& keep) {
  std::string out;
  for (const Registry::FamilyView& fam : registry.families()) {
    if (keep && !keep(fam.name)) continue;
    if (!fam.help.empty()) {
      out += "# HELP ";
      out += fam.name;
      out += ' ';
      append_prom_help_escaped(out, fam.help);
      out += '\n';
    }
    out += "# TYPE ";
    out += fam.name;
    out += ' ';
    out += to_string(fam.kind);
    out += '\n';
    for (const Registry::Sample& s : fam.samples) {
      switch (fam.kind) {
        case MetricKind::kCounter:
          out += fam.name;
          out += prom_labels(*s.labels);
          out += ' ';
          out += fmt_u64(s.counter->value());
          out += '\n';
          break;
        case MetricKind::kGauge:
          out += fam.name;
          out += prom_labels(*s.labels);
          out += ' ';
          out += fmt_double(s.gauge->value());
          out += '\n';
          break;
        case MetricKind::kHistogram: {
          const auto counts = s.histogram->bucket_counts();
          const auto& bounds = s.histogram->upper_bounds();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < counts.size(); ++i) {
            cumulative += counts[i];
            out += fam.name;
            out += "_bucket";
            out += prom_labels_with(
                *s.labels, "le",
                i < bounds.size() ? fmt_double(bounds[i]) : "+Inf");
            out += ' ';
            out += fmt_u64(cumulative);
            out += '\n';
          }
          out += fam.name;
          out += "_sum";
          out += prom_labels(*s.labels);
          out += ' ';
          out += fmt_double(s.histogram->sum());
          out += '\n';
          out += fam.name;
          out += "_count";
          out += prom_labels(*s.labels);
          out += ' ';
          out += fmt_u64(s.histogram->count());
          out += '\n';
          break;
        }
      }
    }
  }
  return out;
}

namespace {

void append_metrics_json(std::string& out, const Registry& registry,
                         const MetricFilter& keep) {
  out += "[";
  bool first_family = true;
  for (const Registry::FamilyView& fam : registry.families()) {
    if (keep && !keep(fam.name)) continue;
    if (!first_family) out += ',';
    first_family = false;
    out += "{\"name\":\"";
    append_json_escaped(out, fam.name);
    out += "\",\"kind\":\"";
    out += to_string(fam.kind);
    out += "\",\"help\":\"";
    append_json_escaped(out, fam.help);
    out += "\",\"samples\":[";
    for (std::size_t i = 0; i < fam.samples.size(); ++i) {
      const Registry::Sample& s = fam.samples[i];
      if (i > 0) out += ',';
      out += "{\"labels\":";
      out += json_labels(*s.labels);
      switch (fam.kind) {
        case MetricKind::kCounter:
          out += ",\"value\":";
          out += fmt_u64(s.counter->value());
          break;
        case MetricKind::kGauge:
          out += ",\"value\":";
          out += fmt_json_number(s.gauge->value());
          break;
        case MetricKind::kHistogram: {
          const auto counts = s.histogram->bucket_counts();
          const auto& bounds = s.histogram->upper_bounds();
          out += ",\"buckets\":[";
          std::uint64_t cumulative = 0;
          for (std::size_t b = 0; b < counts.size(); ++b) {
            cumulative += counts[b];
            if (b > 0) out += ',';
            out += "{\"le\":";
            out += b < bounds.size() ? fmt_json_number(bounds[b]) : "null";
            out += ",\"count\":";
            out += fmt_u64(cumulative);
            out += '}';
          }
          out += "],\"sum\":";
          out += fmt_json_number(s.histogram->sum());
          out += ",\"count\":";
          out += fmt_u64(s.histogram->count());
          break;
        }
      }
      out += '}';
    }
    out += "]}";
  }
  out += "]";
}

void append_trace_json(std::string& out, const TraceRecorder& trace,
                       bool include_seq) {
  out += "[";
  const std::vector<TraceEvent> events = trace.canonical_events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ',';
    out += "{\"version\":";
    out += fmt_u64(e.version);
    out += ",\"phase\":\"";
    out += to_string(e.phase);
    out += "\",\"entity\":\"";
    append_json_escaped(out, e.entity);
    out += "\",\"count\":";
    out += fmt_u64(e.count);
    out += ",\"bytes\":";
    out += fmt_u64(e.bytes);
    out += ",\"vtime\":";
    out += fmt_json_number(e.vtime);
    // Span fields (obs v2) appear only on traces recorded with spans
    // enabled, keeping legacy trace JSON byte-identical.
    if (e.span != 0) {
      out += ",\"span\":";
      out += fmt_u64(e.span);
    }
    if (e.parent != 0) {
      out += ",\"parent\":";
      out += fmt_u64(e.parent);
    }
    if (e.vtime_end != e.vtime) {
      out += ",\"vtime_end\":";
      out += fmt_json_number(e.vtime_end);
    }
    if (include_seq) {
      out += ",\"seq\":";
      out += fmt_u64(e.seq);
    }
    out += '}';
  }
  out += "]";
}

}  // namespace

std::string to_json(const Registry& registry, const MetricFilter& keep) {
  std::string out = "{\"metrics\":";
  append_metrics_json(out, registry, keep);
  out += "}";
  return out;
}

std::string trace_to_json(const TraceRecorder& trace, bool include_seq) {
  std::string out;
  append_trace_json(out, trace, include_seq);
  return out;
}

std::string report_json(const Registry& registry, const TraceRecorder* trace,
                        const MetricFilter& keep, bool include_seq) {
  std::string out = "{\"metrics\":";
  append_metrics_json(out, registry, keep);
  out += ",\"trace\":";
  if (trace != nullptr) {
    append_trace_json(out, *trace, include_seq);
  } else {
    out += "[]";
  }
  out += "}";
  return out;
}

}  // namespace lar::obs
