// lar::obs — deterministic exporters: Prometheus text format and JSON.
//
// Output is byte-stable for a fixed registry/trace content: families,
// instruments and trace events are emitted in canonical order (the registry
// and recorder already intern canonically), doubles are formatted with a
// fixed locale-independent "%.10g", and nothing wall-clock-derived is ever
// emitted.  Two runs with the same seed therefore produce identical bytes —
// the property the golden tests in tests/test_obs.cpp enforce.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lar::obs {

// MetricFilter (return true to keep a family) lives in obs/metrics.hpp so
// the timeline store can use it without depending on the exporters.

/// Prometheus text exposition format (HELP/TYPE headers, histogram
/// `_bucket`/`_sum`/`_count` expansion, `le` labels with `+Inf`).
[[nodiscard]] std::string to_prometheus(const Registry& registry,
                                        const MetricFilter& keep = nullptr);

/// JSON: {"metrics":[{"name","kind","help","samples":[{"labels","value"}]}]}.
/// Histogram samples carry "buckets" (cumulative), "sum" and "count".
[[nodiscard]] std::string to_json(const Registry& registry,
                                  const MetricFilter& keep = nullptr);

/// JSON array of trace events in canonical (version, phase, entity) order.
/// `include_seq` additionally emits each event's logical sequence number;
/// leave it off for byte-stable output when events were recorded from
/// concurrently racing threads (see trace.hpp).
[[nodiscard]] std::string trace_to_json(const TraceRecorder& trace,
                                        bool include_seq = false);

/// Combined report: {"metrics":[...],"trace":[...]} — the stable schema the
/// benches write as BENCH_<name>.json.
[[nodiscard]] std::string report_json(const Registry& registry,
                                      const TraceRecorder* trace = nullptr,
                                      const MetricFilter& keep = nullptr,
                                      bool include_seq = false);

}  // namespace lar::obs
