// lar::obs — span-tree analysis for traces recorded with spans enabled
// (obs v2).  Rebuilds the causal tree from a trace's events, validates its
// well-formedness (every referenced parent span exists), and computes the
// per-phase virtual-time critical path of each reconfiguration wave:
// gather → compute → stage → slowest ack → propagate depth → last drain.
//
// Everything here is a pure function of the canonical event list, so the
// rendered report is byte-identical across same-seed runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace lar::obs {

/// One span with its child spans and the leaf events recorded under it.
struct SpanNode {
  TraceEvent event;  ///< the span-opening event (event.span != 0)
  std::vector<TraceEvent> leaves;   ///< leaf events parented to this span
  std::vector<SpanNode> children;   ///< child spans, in span-id order
};

struct SpanTree {
  std::vector<SpanNode> roots;      ///< spans with no (retained) parent span
  std::vector<TraceEvent> toplevel; ///< leaf events outside any span
  /// Events referencing a parent span id that no span event carries —
  /// empty iff the trace is well-formed (nothing dropped mid-span).
  std::vector<TraceEvent> orphans;
};

/// Builds the span tree from canonical events (see
/// TraceRecorder::canonical_events); deterministic for a deterministic
/// event set.  Children and leaves keep canonical order.
[[nodiscard]] SpanTree build_span_tree(const std::vector<TraceEvent>& events);

/// Aggregate of one wave phase across a wave span's child spans and leaves.
struct PhaseStat {
  Phase phase = Phase::kGather;
  std::uint64_t events = 0;
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  double begin = 0.0;  ///< min vtime over the phase's events
  double end = 0.0;    ///< max vtime_end over the phase's events
  /// The phase's slowest single event: longest (vtime_end - vtime), ties
  /// broken by count then entity — "which POI's ack was the straggler?".
  std::string slowest_entity;
  double slowest_duration = 0.0;
};

/// Per-phase critical path of one wave span (a SpanNode whose event.phase
/// is Phase::kWave).  Phases appear in wave order; absent phases are
/// skipped.
struct WaveCriticalPath {
  std::uint64_t version = 0;
  double begin = 0.0;
  double end = 0.0;
  std::vector<PhaseStat> phases;
  [[nodiscard]] double duration() const { return end - begin; }
};

[[nodiscard]] WaveCriticalPath wave_critical_path(const SpanNode& wave);

/// Deterministic text report: the span tree, then one critical-path block
/// per wave span.
[[nodiscard]] std::string render_span_report(const SpanTree& tree);

}  // namespace lar::obs
