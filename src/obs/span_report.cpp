#include "obs/span_report.hpp"

#include <array>
#include <cstdio>
#include <map>

#include "obs/fmt.hpp"

namespace lar::obs {

namespace {

/// Fixed-width virtual-time formatting (deterministic, locale-free).
std::string fmt_vt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

constexpr std::size_t kNumPhases = 16;  // Phase::kGather..Phase::kWave

}  // namespace

SpanTree build_span_tree(const std::vector<TraceEvent>& events) {
  std::map<std::uint64_t, SpanNode> nodes;
  for (const TraceEvent& e : events) {
    if (e.span != 0) nodes[e.span].event = e;
  }

  SpanTree tree;
  std::map<std::uint64_t, std::vector<std::uint64_t>> child_ids;
  std::vector<std::uint64_t> root_ids;
  for (const auto& [id, node] : nodes) {
    const std::uint64_t parent = node.event.parent;
    if (parent == 0) {
      root_ids.push_back(id);
    } else if (nodes.count(parent) != 0) {
      child_ids[parent].push_back(id);
    } else {
      tree.orphans.push_back(node.event);
    }
  }
  for (const TraceEvent& e : events) {
    if (e.span != 0) continue;
    if (e.parent == 0) {
      tree.toplevel.push_back(e);
    } else if (const auto it = nodes.find(e.parent); it != nodes.end()) {
      it->second.leaves.push_back(e);
    } else {
      tree.orphans.push_back(e);
    }
  }

  // Materialize bottom-up; child id vectors are in span-id order because
  // `nodes` iterates in id order.
  struct Builder {
    std::map<std::uint64_t, SpanNode>& nodes;
    std::map<std::uint64_t, std::vector<std::uint64_t>>& child_ids;
    SpanNode build(std::uint64_t id) {
      SpanNode out = std::move(nodes[id]);
      if (const auto it = child_ids.find(id); it != child_ids.end()) {
        out.children.reserve(it->second.size());
        for (const std::uint64_t child : it->second) {
          out.children.push_back(build(child));
        }
      }
      return out;
    }
  } builder{nodes, child_ids};
  tree.roots.reserve(root_ids.size());
  for (const std::uint64_t id : root_ids) {
    tree.roots.push_back(builder.build(id));
  }
  return tree;
}

namespace {

void fold_event(std::array<PhaseStat, kNumPhases>& stats,
                std::array<bool, kNumPhases>& present, const TraceEvent& e) {
  const auto idx = static_cast<std::size_t>(e.phase);
  if (idx >= kNumPhases) return;
  PhaseStat& s = stats[idx];
  if (!present[idx]) {
    present[idx] = true;
    s.phase = e.phase;
    s.begin = e.vtime;
    s.end = e.vtime_end;
  } else {
    s.begin = std::min(s.begin, e.vtime);
    s.end = std::max(s.end, e.vtime_end);
  }
  ++s.events;
  s.count += e.count;
  s.bytes += e.bytes;
  const double duration = e.vtime_end - e.vtime;
  const bool slower = s.events == 1 || duration > s.slowest_duration ||
                      (duration == s.slowest_duration &&
                       e.entity < s.slowest_entity);
  if (slower) {
    s.slowest_duration = duration;
    s.slowest_entity = e.entity;
  }
}

}  // namespace

WaveCriticalPath wave_critical_path(const SpanNode& wave) {
  WaveCriticalPath cp;
  cp.version = wave.event.version;
  cp.begin = wave.event.vtime;
  cp.end = wave.event.vtime_end;
  std::array<PhaseStat, kNumPhases> stats{};
  std::array<bool, kNumPhases> present{};
  for (const SpanNode& child : wave.children) {
    fold_event(stats, present, child.event);
  }
  for (const TraceEvent& leaf : wave.leaves) {
    fold_event(stats, present, leaf);
  }
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    if (present[i]) cp.phases.push_back(stats[i]);
  }
  return cp;
}

namespace {

void append_phase_stat(std::string& out, const PhaseStat& s,
                       std::string_view indent) {
  out += indent;
  out += to_string(s.phase);
  out += " [";
  out += fmt_vt(s.begin);
  out += ',';
  out += fmt_vt(s.end);
  out += "] d=";
  out += fmt_vt(s.end - s.begin);
  out += " events=";
  out += detail::fmt_u64(s.events);
  out += " count=";
  out += detail::fmt_u64(s.count);
  out += " bytes=";
  out += detail::fmt_u64(s.bytes);
  if (!s.slowest_entity.empty()) {
    out += " slowest=";
    out += s.slowest_entity;
    out += " d=";
    out += fmt_vt(s.slowest_duration);
  }
  out += '\n';
}

void append_node(std::string& out, const SpanNode& node, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  out += indent;
  out += to_string(node.event.phase);
  out += " v";
  out += detail::fmt_u64(node.event.version);
  out += ' ';
  out += node.event.entity;
  out += " [";
  out += fmt_vt(node.event.vtime);
  out += ',';
  out += fmt_vt(node.event.vtime_end);
  out += "] d=";
  out += fmt_vt(node.event.vtime_end - node.event.vtime);
  if (node.event.count != 0) {
    out += " count=";
    out += detail::fmt_u64(node.event.count);
  }
  if (node.event.bytes != 0) {
    out += " bytes=";
    out += detail::fmt_u64(node.event.bytes);
  }
  out += '\n';
  for (const SpanNode& child : node.children) {
    append_node(out, child, depth + 1);
  }
  // Leaves are summarized per phase — a wave can carry thousands of
  // per-key migrate leaves.
  std::array<PhaseStat, kNumPhases> stats{};
  std::array<bool, kNumPhases> present{};
  for (const TraceEvent& leaf : node.leaves) {
    fold_event(stats, present, leaf);
  }
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    if (present[i]) append_phase_stat(out, stats[i], indent + "  * ");
  }
}

}  // namespace

std::string render_span_report(const SpanTree& tree) {
  std::string out = "== span tree ==\n";
  for (const SpanNode& root : tree.roots) {
    append_node(out, root, 0);
  }
  if (!tree.toplevel.empty()) {
    out += "toplevel leaves: ";
    out += detail::fmt_u64(tree.toplevel.size());
    out += '\n';
  }
  if (!tree.orphans.empty()) {
    out += "ORPHANS: ";
    out += detail::fmt_u64(tree.orphans.size());
    out += '\n';
  }
  for (const SpanNode& root : tree.roots) {
    if (root.event.phase != Phase::kWave) continue;
    const WaveCriticalPath cp = wave_critical_path(root);
    out += "== critical path v";
    out += detail::fmt_u64(cp.version);
    out += " ==\n";
    for (const PhaseStat& s : cp.phases) {
      append_phase_stat(out, s, "  ");
    }
    out += "  total d=";
    out += fmt_vt(cp.duration());
    out += '\n';
  }
  return out;
}

}  // namespace lar::obs
