// lar::obs — health probe over the timeline (obs v2).
//
// A Probe turns the timeline's last two ticks into health verdicts.  The
// assessment itself (`assess`) is a pure function of those two snapshots,
// the rule thresholds, and the prior recovery streak — no hidden state, no
// wall clock — so probe output is byte-identical across same-seed runs.
// `evaluate` additionally publishes the verdict into a registry as
// `lar_health_*` gauges and `lar_alerts_total{rule}` counters; those
// families exist only once a probe has evaluated (structural disable), so
// runs without a probe keep their exports byte-identical.
//
// The two boolean outputs feed the elastic controller (see
// elastic/controller.hpp):
//  - `pressure` (imbalance / locality drop / queue growth) counts as an
//    overload observation, letting alerts trigger scale-out;
//  - `veto` (migration or recovery activity this tick) pins the fleet like
//    a migration backlog does, because signals measured mid-migration or
//    mid-replay are not steady-state.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace lar::obs {

/// Alert thresholds.  Every rule compares the latest tick (or its delta
/// against the previous tick) to one threshold; crossing it fires the
/// alert counter and raises the matching health gauge.
struct ProbeRules {
  /// Fire "imbalance" when the worst per-operator load-balance ratio
  /// (`lar_op_load_balance_ratio`, max instance load / mean) exceeds this
  /// α — the balance criterion of the partitioner.
  double imbalance_alpha = 1.5;
  /// Fire "locality_drop" when mean `lar_edge_locality_ratio` falls by
  /// more than this much in one tick.
  double locality_drop = 0.15;
  /// Fire "queue_growth" when any `lar_queue_depth_hwm` sample grows by
  /// more than this many tuples in one tick.
  double queue_growth = 1024.0;
  /// Fire "migration" when more than this many key/state moves (planned
  /// moves, migrated states, elastic drains) land in one tick.
  double migration_delta = 0.0;
  /// Fire "recovery" when more than this many recovery actions (chaos
  /// recoveries, crash replays) land in one tick.
  double recovery_delta = 0.0;
};

/// One tick's verdict.
struct Health {
  double imbalance = 0.0;       ///< max lar_op_load_balance_ratio
  double locality = 0.0;        ///< mean lar_edge_locality_ratio
  double locality_drop = 0.0;   ///< previous locality - locality, floored at 0
  double queue_growth = 0.0;    ///< max per-sample lar_queue_depth_hwm delta
  double migration_delta = 0.0; ///< key/state moves this tick
  double recovery_delta = 0.0;  ///< recovery actions this tick
  std::uint64_t recovery_ticks = 0;  ///< consecutive ticks with recovery
  bool pressure = false;  ///< imbalance / locality_drop / queue_growth fired
  bool veto = false;      ///< migration / recovery fired
};

class Probe {
 public:
  explicit Probe(ProbeRules rules = {});

  /// Pure assessment of two timeline snapshots.  `prior_recovery_ticks` is
  /// the streak before this tick (the probe's only cross-tick state).
  [[nodiscard]] static Health assess(const Timeline::Snapshot& latest,
                                     const Timeline::Snapshot& previous,
                                     const ProbeRules& rules,
                                     std::uint64_t prior_recovery_ticks);

  /// Assesses the timeline's latest/previous ticks, updates the recovery
  /// streak, and publishes `lar_health_*` gauges plus `lar_alerts_total`
  /// counters (all rule labels interned up front so export shape is
  /// deterministic).  Call once per tick, after Timeline::tick.
  Health evaluate(const Timeline& timeline, Registry& registry);

  [[nodiscard]] const ProbeRules& rules() const { return rules_; }

 private:
  ProbeRules rules_;
  std::uint64_t recovery_ticks_ = 0;
};

}  // namespace lar::obs
