#include "obs/timeline.hpp"

#include "obs/fmt.hpp"

namespace lar::obs {

namespace {

/// Canonical sample id: `name` for label-less samples, `name{k="v",...}`
/// otherwise (labels are already interned in canonical key order).
std::string sample_id(std::string_view name, const Labels& labels,
                      std::string_view suffix = "") {
  std::string id(name);
  id += suffix;
  if (labels.empty()) return id;
  id += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) id += ',';
    id += labels[i].key;
    id += "=\"";
    id += labels[i].value;
    id += '"';
  }
  id += '}';
  return id;
}

}  // namespace

Timeline::Timeline() : Timeline(Options{}) {}

Timeline::Timeline(Options options) : options_(std::move(options)) {}

Timeline::Values Timeline::flatten(const Registry& registry,
                                   const MetricFilter& keep) {
  Values out;
  for (const Registry::FamilyView& fam : registry.families()) {
    if (keep && !keep(fam.name)) continue;
    for (const Registry::Sample& s : fam.samples) {
      switch (fam.kind) {
        case MetricKind::kCounter:
          out.emplace(sample_id(fam.name, *s.labels),
                      static_cast<double>(s.counter->value()));
          break;
        case MetricKind::kGauge:
          out.emplace(sample_id(fam.name, *s.labels), s.gauge->value());
          break;
        case MetricKind::kHistogram:
          out.emplace(sample_id(fam.name, *s.labels, "_sum"),
                      s.histogram->sum());
          out.emplace(sample_id(fam.name, *s.labels, "_count"),
                      static_cast<double>(s.histogram->count()));
          break;
      }
    }
  }
  return out;
}

void Timeline::tick(const Registry& registry, double vtime) {
  Values full = flatten(registry, options_.keep);
  std::lock_guard lock(mutex_);
  TickDelta delta;
  delta.index = next_index_++;
  delta.vtime = vtime;
  for (const auto& [id, value] : full) {
    const auto it = latest_.values.find(id);
    if (it == latest_.values.end() || it->second != value) {
      delta.delta.emplace(id, value);
    }
  }
  previous_ = latest_.valid ? std::move(latest_) : Snapshot{};
  latest_ = Snapshot{std::move(full), vtime, true};
  ticks_.push_back(std::move(delta));
  if (options_.capacity != 0) {
    while (ticks_.size() > options_.capacity) {
      for (auto& [id, value] : ticks_.front().delta) {
        base_[id] = value;
      }
      ticks_.pop_front();
      ++dropped_;
    }
  }
}

Timeline::Snapshot Timeline::latest() const {
  std::lock_guard lock(mutex_);
  return latest_;
}

Timeline::Snapshot Timeline::previous() const {
  std::lock_guard lock(mutex_);
  return previous_;
}

Timeline::Values Timeline::base() const {
  std::lock_guard lock(mutex_);
  return base_;
}

std::vector<Timeline::TickDelta> Timeline::ticks() const {
  std::lock_guard lock(mutex_);
  return std::vector<TickDelta>(ticks_.begin(), ticks_.end());
}

std::size_t Timeline::size() const {
  std::lock_guard lock(mutex_);
  return ticks_.size();
}

std::uint64_t Timeline::ticks_total() const {
  std::lock_guard lock(mutex_);
  return next_index_;
}

std::uint64_t Timeline::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void Timeline::clear() {
  std::lock_guard lock(mutex_);
  base_.clear();
  latest_ = Snapshot{};
  previous_ = Snapshot{};
  ticks_.clear();
  next_index_ = 0;
  dropped_ = 0;
}

namespace {

void append_values_json(std::string& out, const Timeline::Values& values) {
  out += '{';
  bool first = true;
  for (const auto& [id, value] : values) {
    if (!first) out += ',';
    first = false;
    out += '"';
    detail::append_json_escaped(out, id);
    out += "\":";
    out += detail::fmt_json_number(value);
  }
  out += '}';
}

}  // namespace

std::string timeline_to_json(const Timeline& timeline) {
  std::string out = "{\"ticks_total\":";
  out += detail::fmt_u64(timeline.ticks_total());
  out += ",\"dropped\":";
  out += detail::fmt_u64(timeline.dropped());
  out += ",\"base\":";
  append_values_json(out, timeline.base());
  out += ",\"ticks\":[";
  const auto ticks = timeline.ticks();
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"i\":";
    out += detail::fmt_u64(ticks[i].index);
    out += ",\"vtime\":";
    out += detail::fmt_json_number(ticks[i].vtime);
    out += ",\"delta\":";
    append_values_json(out, ticks[i].delta);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace lar::obs
