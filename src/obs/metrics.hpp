// lar::obs — thread-safe, allocation-light metrics registry.
//
// The registry holds labeled families of monotonic counters, gauges and
// fixed-bucket histograms.  Instruments are created (or found) by name +
// label set under a mutex, but the returned references are stable for the
// registry's lifetime, so hot paths resolve a handle once and then touch
// only lock-free atomics.  Metric identity is canonical: label keys are
// sorted on intern, and families live in ordered maps, which is what makes
// the exporters in obs/export.hpp byte-stable without a sort pass.
//
// Naming convention (see DESIGN.md "Observability"): `lar_<noun>[_<unit>]`,
// `_total` suffix for counters, `_bytes` / `_tps` / `_ratio` unit suffixes,
// label keys from the fixed vocabulary {op, inst, srv, edge, rack, phase,
// resource, when}.  No metric ever carries a wall-clock value: everything is
// a count, a size, or a logical/virtual-time quantity (determinism
// invariant, CLAUDE.md).
//
// The no-op "disabled" mode is structural, not a flag: instrumented
// components hold an `obs::Registry*` that may be null, and every
// instrumentation site is guarded.  A null registry costs one predictable
// branch on the rare paths that are instrumented at all; the per-tuple data
// path is kept registry-free by design (counters are published into the
// registry at snapshot points, not per tuple).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lar::obs {

/// Optional metric filter: return true to keep the family.  Used e.g. to
/// drop scheduling-dependent gauges (queue high-water marks) from exports
/// and timelines that must be byte-identical across runs of the threaded
/// runtime.
using MetricFilter = std::function<bool(std::string_view name)>;

/// One label dimension, e.g. {"edge", "3"}.
struct Label {
  std::string key;
  std::string value;

  friend bool operator==(const Label&, const Label&) = default;
};

/// Label set; interned in canonical (key-sorted) order.
using Labels = std::vector<Label>;

namespace detail {
/// Lock-free add for atomic<double> (portable CAS loop; fetch_add on
/// floating atomics is C++20 but not universally lowered well).
inline void atomic_add(std::atomic<double>& a, double d) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonic counter.  inc() from any thread; advance_to() ratchets the
/// value up to an externally accumulated total (used to publish counters
/// that components maintain as their own atomics).
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Monotonic set: raises the value to `v` if higher, never lowers it.
  void advance_to(std::uint64_t v) noexcept {
    std::uint64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value gauge with add/max combinators.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept { detail::atomic_add(v_, d); }

  /// Raises the gauge to `v` if higher (high-water marks).
  void max_of(double v) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: cumulative-on-export buckets over caller-chosen
/// upper bounds (an implicit +Inf bucket is always present).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket (non-cumulative) counts; size = upper_bounds().size() + 1.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;  // strictly increasing upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] constexpr const char* to_string(MetricKind k) noexcept {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// The registry.  Thread-safe; see file comment for the usage pattern.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates the instrument.  `help` is attached to the family on
  /// first creation and ignored afterwards.  References stay valid for the
  /// registry's lifetime.
  Counter& counter(std::string_view name, Labels labels = {},
                   std::string_view help = "");
  Gauge& gauge(std::string_view name, Labels labels = {},
               std::string_view help = "");
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds,
                       Labels labels = {}, std::string_view help = "");

  /// One instrument with its resolved identity (canonical label order).
  struct Sample {
    const Labels* labels;
    const Counter* counter = nullptr;      // kind == kCounter
    const Gauge* gauge = nullptr;          // kind == kGauge
    const Histogram* histogram = nullptr;  // kind == kHistogram
  };

  /// One family in canonical order with its instruments in canonical order.
  struct FamilyView {
    std::string_view name;
    std::string_view help;
    MetricKind kind;
    std::vector<Sample> samples;
  };

  /// Snapshot of the registry structure in canonical (name, label) order.
  /// The views point into registry-owned storage; instrument values are
  /// read by the caller (exporters) at its leisure.
  [[nodiscard]] std::vector<FamilyView> families() const;

 private:
  struct Instrument {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    MetricKind kind;
    std::string help;
    std::map<std::string, Instrument> by_labels;  // key: canonical label text
  };

  Instrument& intern(std::string_view name, Labels labels,
                     std::string_view help, MetricKind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Family, std::less<>> families_;
};

/// A constant-label view over a Registry: every instrument resolved through
/// a Scoped carries the view's labels in addition to the call-site ones —
/// the first-class way to scope a component's whole metric surface to one
/// entity (e.g. `app="twitter"` for a fleet tenant), replacing ad-hoc label
/// concatenation at every site.  Values pass through the normal intern path,
/// so canonical ordering and exporter escaping (hostile label values — see
/// export.hpp) apply unchanged.  Copyable handle; the Registry must outlive
/// it.  Call-site labels must not reuse a constant key (checked).
class Scoped {
 public:
  Scoped(Registry& registry, Labels constant)
      : registry_(&registry), constant_(std::move(constant)) {}

  Counter& counter(std::string_view name, Labels labels = {},
                   std::string_view help = "") const {
    return registry_->counter(name, merged(std::move(labels)), help);
  }
  Gauge& gauge(std::string_view name, Labels labels = {},
               std::string_view help = "") const {
    return registry_->gauge(name, merged(std::move(labels)), help);
  }
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds,
                       Labels labels = {}, std::string_view help = "") const {
    return registry_->histogram(name, std::move(upper_bounds),
                                merged(std::move(labels)), help);
  }

  [[nodiscard]] Registry& registry() const noexcept { return *registry_; }
  [[nodiscard]] const Labels& constant_labels() const noexcept {
    return constant_;
  }

 private:
  [[nodiscard]] Labels merged(Labels labels) const;

  Registry* registry_;
  Labels constant_;
};

}  // namespace lar::obs
