#include "obs/metrics.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace lar::obs {

namespace {

/// Canonical text form of a label set: keys sorted, `k="v"` joined by ','.
/// Doubles as the map key, so families iterate instruments canonically.
std::string canonical_label_key(const Labels& labels) {
  std::string out;
  for (const Label& l : labels) {
    if (!out.empty()) out += ',';
    out += l.key;
    out += "=\"";
    out += l.value;
    out += '"';
  }
  return out;
}

}  // namespace

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  LAR_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

// --- Registry ----------------------------------------------------------------

Registry::Instrument& Registry::intern(std::string_view name, Labels labels,
                                       std::string_view help,
                                       MetricKind kind) {
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string label_key = canonical_label_key(labels);

  std::lock_guard lock(mutex_);
  auto fam_it = families_.find(name);
  if (fam_it == families_.end()) {
    fam_it = families_
                 .emplace(std::string(name),
                          Family{kind, std::string(help), {}})
                 .first;
  }
  Family& family = fam_it->second;
  LAR_CHECK(family.kind == kind);  // one kind per family name
  auto [it, inserted] = family.by_labels.try_emplace(std::move(label_key));
  if (inserted) it->second.labels = std::move(labels);
  return it->second;
}

Counter& Registry::counter(std::string_view name, Labels labels,
                           std::string_view help) {
  Instrument& ins =
      intern(name, std::move(labels), help, MetricKind::kCounter);
  std::lock_guard lock(mutex_);
  if (!ins.counter) ins.counter = std::make_unique<Counter>();
  return *ins.counter;
}

Gauge& Registry::gauge(std::string_view name, Labels labels,
                       std::string_view help) {
  Instrument& ins = intern(name, std::move(labels), help, MetricKind::kGauge);
  std::lock_guard lock(mutex_);
  if (!ins.gauge) ins.gauge = std::make_unique<Gauge>();
  return *ins.gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds, Labels labels,
                               std::string_view help) {
  Instrument& ins =
      intern(name, std::move(labels), help, MetricKind::kHistogram);
  std::lock_guard lock(mutex_);
  if (!ins.histogram) {
    ins.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *ins.histogram;
}

std::vector<Registry::FamilyView> Registry::families() const {
  std::lock_guard lock(mutex_);
  std::vector<FamilyView> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilyView view{name, family.help, family.kind, {}};
    view.samples.reserve(family.by_labels.size());
    for (const auto& [label_key, ins] : family.by_labels) {
      view.samples.push_back(Sample{&ins.labels, ins.counter.get(),
                                    ins.gauge.get(), ins.histogram.get()});
    }
    out.push_back(std::move(view));
  }
  return out;
}

// --- Scoped ------------------------------------------------------------------

Labels Scoped::merged(Labels labels) const {
  for (const Label& c : constant_) {
    for (const Label& l : labels) {
      LAR_CHECK(l.key != c.key);  // call sites must not shadow a constant key
    }
    labels.push_back(c);
  }
  return labels;
}

}  // namespace lar::obs
