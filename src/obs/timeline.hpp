// lar::obs — per-window timeline store (obs v2).
//
// A Timeline snapshots a Registry's `lar_*` families at deterministic ticks
// — one per sim window, per runtime publish epoch, or per manager plan —
// into a bounded, delta-compressed series.  Each tick flattens the registry
// to a canonical map from sample id (`name{k="v",...}`; histograms expand
// to `_sum`/`_count`) to value, and stores only the samples that changed
// since the previous tick.  Beyond `capacity` ticks the oldest deltas are
// folded into a base snapshot and counted as dropped, so week-long runs
// stay bounded while the retained window remains exactly reconstructible
// (base + retained deltas).
//
// Tick times are virtual (window index, publish epoch, plan version) —
// never wall clock — so `timeline_to_json` output is byte-identical across
// same-seed runs, like every other obs exporter.  Attachment follows the
// structural-disable pattern: components hold a nullable `obs::Timeline*`
// and with none attached no timeline code runs at all.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace lar::obs {

class Timeline {
 public:
  /// Flattened registry snapshot: canonical sample id -> value.
  using Values = std::map<std::string, double>;

  /// One retained tick: the samples whose value changed since the previous
  /// tick (the first tick carries the full set).
  struct TickDelta {
    std::uint64_t index = 0;  ///< 0-based tick number since construction
    double vtime = 0.0;       ///< caller-supplied virtual time of the tick
    Values delta;
  };

  struct Options {
    /// Retained ticks; older deltas fold into the base snapshot.
    /// 0 = unbounded.
    std::size_t capacity = 1024;
    /// Optional family filter (same contract as the exporters'
    /// MetricFilter): return true to keep.  Used e.g. to drop
    /// scheduling-dependent `lar_queue_*` gauges from byte-stable
    /// timelines of the threaded runtime.
    MetricFilter keep = nullptr;
  };

  Timeline();
  explicit Timeline(Options options);

  /// Snapshots the registry at virtual time `vtime` and appends one tick.
  void tick(const Registry& registry, double vtime);

  /// Values at a tick, as {values, vtime}; `valid` is false before the
  /// first (`latest`) / second (`previous`) tick.
  struct Snapshot {
    Values values;
    double vtime = 0.0;
    bool valid = false;
  };
  [[nodiscard]] Snapshot latest() const;
  [[nodiscard]] Snapshot previous() const;

  /// Values folded out of the retained window (empty until eviction).
  [[nodiscard]] Values base() const;
  /// Retained ticks, oldest first.
  [[nodiscard]] std::vector<TickDelta> ticks() const;

  [[nodiscard]] std::size_t size() const;          ///< retained ticks
  [[nodiscard]] std::uint64_t ticks_total() const; ///< ticks ever taken
  [[nodiscard]] std::uint64_t dropped() const;     ///< ticks folded into base
  void clear();

 private:
  static Values flatten(const Registry& registry, const MetricFilter& keep);

  mutable std::mutex mutex_;
  Options options_;
  Values base_;
  Snapshot latest_;
  Snapshot previous_;
  std::deque<TickDelta> ticks_;
  std::uint64_t next_index_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Byte-stable JSON:
/// {"ticks_total":N,"dropped":D,"base":{...},
///  "ticks":[{"i":I,"vtime":V,"delta":{"id":value,...}},...]}.
[[nodiscard]] std::string timeline_to_json(const Timeline& timeline);

}  // namespace lar::obs
