#include "obs/probe.hpp"

#include <algorithm>
#include <string_view>

namespace lar::obs {

namespace {

/// True when flat sample id `id` belongs to family `family` — exact match
/// or `family{...}` (a longer family name sharing the prefix does not
/// match: the next char must be '{').
bool in_family(const std::string& id, std::string_view family) {
  if (id.size() < family.size() ||
      id.compare(0, family.size(), family) != 0) {
    return false;
  }
  return id.size() == family.size() || id[family.size()] == '{';
}

double family_max(const Timeline::Values& values, std::string_view family) {
  double out = 0.0;
  for (const auto& [id, value] : values) {
    if (in_family(id, family)) out = std::max(out, value);
  }
  return out;
}

double family_mean(const Timeline::Values& values, std::string_view family) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [id, value] : values) {
    if (in_family(id, family)) {
      sum += value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double family_sum(const Timeline::Values& values, std::string_view family) {
  double sum = 0.0;
  for (const auto& [id, value] : values) {
    if (in_family(id, family)) sum += value;
  }
  return sum;
}

double value_at(const Timeline::Values& values, const std::string& id) {
  const auto it = values.find(id);
  return it == values.end() ? 0.0 : it->second;
}

/// Counter families whose per-tick delta means key/state movement.
constexpr std::string_view kMigrationFamilies[] = {
    "lar_key_moves_total",
    "lar_states_migrated_total",
    "lar_elastic_states_drained_total",
};

/// Counter families whose per-tick delta means recovery work.
constexpr std::string_view kRecoveryFamilies[] = {
    "lar_chaos_recovery_total",
    "lar_ckpt_crashes_recovered_total",
};

}  // namespace

Probe::Probe(ProbeRules rules) : rules_(rules) {}

Health Probe::assess(const Timeline::Snapshot& latest,
                     const Timeline::Snapshot& previous,
                     const ProbeRules& rules,
                     std::uint64_t prior_recovery_ticks) {
  Health h;
  if (!latest.valid) return h;
  h.imbalance = family_max(latest.values, "lar_op_load_balance_ratio");
  h.locality = family_mean(latest.values, "lar_edge_locality_ratio");
  if (previous.valid) {
    const double prev_locality =
        family_mean(previous.values, "lar_edge_locality_ratio");
    h.locality_drop = std::max(0.0, prev_locality - h.locality);
    for (const auto& [id, value] : latest.values) {
      if (!in_family(id, "lar_queue_depth_hwm")) continue;
      h.queue_growth =
          std::max(h.queue_growth, value - value_at(previous.values, id));
    }
  }
  // Counter deltas; on the first tick the full counter value counts (a run
  // that starts mid-migration is not steady-state either).
  for (const std::string_view family : kMigrationFamilies) {
    h.migration_delta +=
        family_sum(latest.values, family) -
        (previous.valid ? family_sum(previous.values, family) : 0.0);
  }
  for (const std::string_view family : kRecoveryFamilies) {
    h.recovery_delta +=
        family_sum(latest.values, family) -
        (previous.valid ? family_sum(previous.values, family) : 0.0);
  }
  h.recovery_ticks =
      h.recovery_delta > 0.0 ? prior_recovery_ticks + 1 : 0;
  h.pressure = h.imbalance > rules.imbalance_alpha ||
               h.locality_drop > rules.locality_drop ||
               h.queue_growth > rules.queue_growth;
  h.veto = h.migration_delta > rules.migration_delta ||
           h.recovery_delta > rules.recovery_delta;
  return h;
}

Health Probe::evaluate(const Timeline& timeline, Registry& registry) {
  const Health h =
      assess(timeline.latest(), timeline.previous(), rules_, recovery_ticks_);
  recovery_ticks_ = h.recovery_ticks;

  registry
      .gauge("lar_health_imbalance_ratio", {},
             "Worst per-operator load-balance ratio at the latest tick")
      .set(h.imbalance);
  registry
      .gauge("lar_health_locality_ratio", {},
             "Mean per-edge locality ratio at the latest tick")
      .set(h.locality);
  registry
      .gauge("lar_health_locality_drop_ratio", {},
             "One-tick drop of the mean locality ratio (floored at 0)")
      .set(h.locality_drop);
  registry
      .gauge("lar_health_queue_growth", {},
             "Largest one-tick growth of any queue high-water mark")
      .set(h.queue_growth);
  registry
      .gauge("lar_health_migration_delta", {},
             "Key/state moves observed in the latest tick")
      .set(h.migration_delta);
  registry
      .gauge("lar_health_recovery_ticks", {},
             "Consecutive ticks with recovery activity")
      .set(static_cast<double>(h.recovery_ticks));
  registry
      .gauge("lar_health_pressure", {},
             "1 when a pressure rule (imbalance/locality_drop/queue_growth) "
             "fired at the latest tick")
      .set(h.pressure ? 1.0 : 0.0);
  registry
      .gauge("lar_health_veto", {},
             "1 when a veto rule (migration/recovery) fired at the latest "
             "tick")
      .set(h.veto ? 1.0 : 0.0);

  const char* const help = "Health alerts fired, by rule";
  Counter& imbalance =
      registry.counter("lar_alerts_total", {{"rule", "imbalance"}}, help);
  Counter& locality_drop =
      registry.counter("lar_alerts_total", {{"rule", "locality_drop"}}, help);
  Counter& queue_growth =
      registry.counter("lar_alerts_total", {{"rule", "queue_growth"}}, help);
  Counter& migration =
      registry.counter("lar_alerts_total", {{"rule", "migration"}}, help);
  Counter& recovery =
      registry.counter("lar_alerts_total", {{"rule", "recovery"}}, help);
  if (h.imbalance > rules_.imbalance_alpha) imbalance.inc();
  if (h.locality_drop > rules_.locality_drop) locality_drop.inc();
  if (h.queue_growth > rules_.queue_growth) queue_growth.inc();
  if (h.migration_delta > rules_.migration_delta) migration.inc();
  if (h.recovery_delta > rules_.recovery_delta) recovery.inc();
  return h;
}

}  // namespace lar::obs
