#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <tuple>

namespace lar::obs {

std::string poi_entity(std::uint32_t op, std::uint32_t instance) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "op%u/i%03u", op, instance);
  return buf;
}

std::string key_entity(std::uint64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "key%08llu",
                static_cast<unsigned long long>(key));
  return buf;
}

std::uint64_t TraceRecorder::record(std::uint64_t version, Phase phase,
                                    std::string entity, std::uint64_t count,
                                    std::uint64_t bytes, double vtime) {
  std::lock_guard lock(mutex_);
  const std::uint64_t seq = next_seq_++;
  events_.push_back(
      TraceEvent{seq, version, phase, std::move(entity), count, bytes, vtime});
  return seq;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::vector<TraceEvent> TraceRecorder::canonical_events() const {
  std::vector<TraceEvent> out = events();
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.version, a.phase, a.entity, a.seq) <
                     std::tie(b.version, b.phase, b.entity, b.seq);
            });
  return out;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  next_seq_ = 0;
}

}  // namespace lar::obs
