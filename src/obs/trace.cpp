#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <tuple>

namespace lar::obs {

std::string poi_entity(std::uint32_t op, std::uint32_t instance) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "op%u/i%03u", op, instance);
  return buf;
}

std::string key_entity(std::uint64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "key%08llu",
                static_cast<unsigned long long>(key));
  return buf;
}

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {}

TraceEvent* TraceRecorder::find_locked(std::uint64_t seq) {
  if (events_.empty()) return nullptr;
  const std::uint64_t front_seq = events_.front().seq;
  if (seq < front_seq) return nullptr;  // evicted
  const std::uint64_t pos = seq - front_seq;
  if (pos >= events_.size()) return nullptr;
  return &events_[pos];
}

void TraceRecorder::evict_locked() {
  if (capacity_ == 0) return;
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

std::uint64_t TraceRecorder::record(std::uint64_t version, Phase phase,
                                    std::string entity, std::uint64_t count,
                                    std::uint64_t bytes, double vtime) {
  std::lock_guard lock(mutex_);
  const std::uint64_t seq = next_seq_++;
  const std::uint64_t parent = span_stack_.empty() ? 0 : span_stack_.back();
  events_.push_back(TraceEvent{seq, version, phase, std::move(entity), count,
                               bytes, vtime, /*span=*/0, parent,
                               /*vtime_end=*/vtime});
  evict_locked();
  return seq;
}

void TraceRecorder::set_spans_enabled(bool enabled) {
  std::lock_guard lock(mutex_);
  spans_enabled_ = enabled;
}

bool TraceRecorder::spans_enabled() const {
  std::lock_guard lock(mutex_);
  return spans_enabled_;
}

std::uint64_t TraceRecorder::begin_span(std::uint64_t version, Phase phase,
                                        std::string entity,
                                        std::uint64_t count,
                                        std::uint64_t bytes, double vtime) {
  std::lock_guard lock(mutex_);
  if (!spans_enabled_) return 0;
  const std::uint64_t seq = next_seq_++;
  const std::uint64_t parent = span_stack_.empty() ? 0 : span_stack_.back();
  const std::uint64_t span = next_span_++;
  events_.push_back(TraceEvent{seq, version, phase, std::move(entity), count,
                               bytes, vtime, span, parent,
                               /*vtime_end=*/vtime});
  span_stack_.push_back(span);
  span_event_seqs_.push_back(seq);
  evict_locked();
  return span;
}

void TraceRecorder::end_span(std::uint64_t span, double vtime_end) {
  if (span == 0) return;
  std::lock_guard lock(mutex_);
  for (std::size_t i = span_stack_.size(); i-- > 0;) {
    if (span_stack_[i] != span) continue;
    if (TraceEvent* ev = find_locked(span_event_seqs_[i])) {
      ev->vtime_end = vtime_end;
    }
    span_stack_.erase(span_stack_.begin() + static_cast<std::ptrdiff_t>(i));
    span_event_seqs_.erase(span_event_seqs_.begin() +
                           static_cast<std::ptrdiff_t>(i));
    return;
  }
}

std::uint64_t TraceRecorder::current_span() const {
  std::lock_guard lock(mutex_);
  return span_stack_.empty() ? 0 : span_stack_.back();
}

void TraceRecorder::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity;
  evict_locked();
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard lock(mutex_);
  return std::vector<TraceEvent>(events_.begin(), events_.end());
}

std::vector<TraceEvent> TraceRecorder::canonical_events() const {
  std::vector<TraceEvent> out = events();
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.version, a.phase, a.entity, a.seq) <
                     std::tie(b.version, b.phase, b.entity, b.seq);
            });
  return out;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  next_seq_ = 0;
  dropped_ = 0;
  next_span_ = 1;
  span_stack_.clear();
  span_event_seqs_.clear();
}

}  // namespace lar::obs

