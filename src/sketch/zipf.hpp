// Zipfian sampling.
//
// The paper argues (Section 3.2) that real streams follow Zipfian key
// distributions, which is why bounded top-k statistics capture most of the
// optimization potential.  Both synthetic workload generators use this
// sampler for key popularity.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace lar::sketch {

/// Samples ranks in [0, n) with P(rank = i) proportional to 1/(i+1)^s.
/// Precomputes the CDF once (O(n) memory) and samples in O(log n).
class ZipfSampler {
 public:
  /// `n` >= 1 items, exponent `s` >= 0 (s = 0 is uniform).
  ZipfSampler(std::size_t n, double s);

  /// Draws one rank using the caller's RNG stream.
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  /// Probability mass of rank `i`.
  [[nodiscard]] double pmf(std::size_t i) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double exponent() const noexcept { return s_; }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i); cdf_.back() == 1.
  double s_;
};

}  // namespace lar::sketch
