#include "sketch/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "common/status.hpp"

namespace lar::sketch {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  LAR_CHECK(n >= 1);
  LAR_CHECK(s >= 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding drift
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t i) const noexcept {
  if (i >= cdf_.size()) return 0.0;
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace lar::sketch
