// Exact frequency counter with the same interface shape as SpaceSaving.
//
// Used (a) as ground truth in property tests of the sketch, and (b) by the
// *offline* analysis mode of the paper (Section 3.2), where a large data
// sample is counted exactly before computing routing tables once.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace lar::sketch {

/// Unbounded exact counter.  Not thread-safe.
template <typename Key, typename Hash = std::hash<Key>>
class ExactCounter {
 public:
  struct Entry {
    Key key;
    std::uint64_t count = 0;
    std::uint64_t error = 0;  ///< always 0; mirrors SpaceSaving::Entry.
  };

  void add(const Key& key, std::uint64_t weight = 1) {
    counts_[key] += weight;
    total_ += weight;
  }

  /// Exact count of `key` (0 if never seen).
  [[nodiscard]] std::uint64_t count(const Key& key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  /// All entries, sorted by decreasing count.
  [[nodiscard]] std::vector<Entry> entries() const {
    std::vector<Entry> out;
    out.reserve(counts_.size());
    for (const auto& [k, c] : counts_) out.push_back(Entry{k, c, 0});
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return a.count > b.count;
    });
    return out;
  }

  /// The `k` most frequent entries.
  [[nodiscard]] std::vector<Entry> top(std::size_t k) const {
    std::vector<Entry> out = entries();
    if (out.size() > k) out.resize(k);
    return out;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }

  void clear() noexcept {
    counts_.clear();
    total_ = 0;
  }

 private:
  std::unordered_map<Key, std::uint64_t, Hash> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace lar::sketch
