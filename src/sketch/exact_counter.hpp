// Exact frequency counter with the same interface shape as SpaceSaving.
//
// Used (a) as ground truth in property tests of the sketch, and (b) by the
// *offline* analysis mode of the paper (Section 3.2), where a large data
// sample is counted exactly before computing routing tables once.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/flat_map.hpp"
#include "common/hash.hpp"

namespace lar::sketch {

/// Unbounded exact counter.  Not thread-safe.
///
/// Hash defaults to lar::DetHash (mix64 / FNV-1a), so the counter's memory
/// layout — and therefore the tie order of equal-count entries() — is
/// identical across standard libraries.
template <typename Key, typename Hash = DetHash<Key>>
class ExactCounter {
 public:
  struct Entry {
    Key key;
    std::uint64_t count = 0;
    std::uint64_t error = 0;  ///< always 0; mirrors SpaceSaving::Entry.
  };

  void add(const Key& key, std::uint64_t weight = 1) {
    counts_[key] += weight;
    total_ += weight;
  }

  /// Exact count of `key` (0 if never seen).
  [[nodiscard]] std::uint64_t count(const Key& key) const {
    const std::uint64_t* c = counts_.find(key);
    return c == nullptr ? 0 : *c;
  }

  /// All entries, sorted by decreasing count.  Ties keep the FlatMap's slot
  /// order, which is deterministic for a given insertion sequence.
  [[nodiscard]] std::vector<Entry> entries() const {
    std::vector<Entry> out;
    out.reserve(counts_.size());
    counts_.for_each([&out](const Key& k, std::uint64_t c) {
      out.push_back(Entry{k, c, 0});
    });
    std::stable_sort(out.begin(), out.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.count > b.count;
                     });
    return out;
  }

  /// The `k` most frequent entries.
  [[nodiscard]] std::vector<Entry> top(std::size_t k) const {
    std::vector<Entry> out = entries();
    if (out.size() > k) out.resize(k);
    return out;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }

  void clear() noexcept {
    counts_.clear();
    total_ = 0;
  }

 private:
  FlatMap<Key, std::uint64_t, Hash> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace lar::sketch
