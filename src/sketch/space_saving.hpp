// SpaceSaving: approximate top-k frequency estimation in bounded memory.
//
// Metwally, Agrawal, El Abbadi — "Efficient computation of frequent and top-k
// elements in data streams" (ICDT'05).  This is the sketch the paper uses in
// every stateful operator instance to count (input key, output key) pairs
// with a fixed memory budget (Section 3.2), and the same algorithm used by
// the related systems it cites (partial key grouping, DKG, E-store).
//
// Guarantees (N = total weight added, m = capacity):
//   * every stored count overestimates the true frequency by at most the
//     smallest stored count (tracked per entry as `error`);
//   * any item with true frequency > N/m is guaranteed to be stored.
//
// Implementation: hash map (key -> slot) + indexed binary min-heap over the
// counts, giving O(log m) updates and O(1) min lookup for eviction.  The
// textbook Stream-Summary structure gives O(1) updates but its linked bucket
// list is cache-hostile; for the capacities used here (10^2..10^6) the heap
// is both simpler and faster in practice.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_map.hpp"
#include "common/hash.hpp"
#include "common/status.hpp"

namespace lar::sketch {

/// Bounded-memory top-k counter.  Key must be hashable (via Hash) and
/// equality-comparable.  Not thread-safe; each operator instance owns one.
///
/// Hash defaults to lar::DetHash, never std::hash: the key->slot index is a
/// FlatMap whose layout (and probe cost) is then identical across standard
/// libraries — determinism by construction rather than by downstream sorting.
template <typename Key, typename Hash = DetHash<Key>>
class SpaceSaving {
 public:
  /// One monitored item.  `count` overestimates the true frequency by at
  /// most `error` (error == 0 means the count is exact).
  struct Entry {
    Key key;
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  /// `capacity` = maximum number of monitored items; must be >= 1.
  explicit SpaceSaving(std::size_t capacity) : capacity_(capacity) {
    LAR_CHECK(capacity >= 1);
    entries_.reserve(capacity);
    heap_.reserve(capacity);
    pos_.reserve(capacity);
    // index_ grows lazily: materializing capacity-sized flat storage up front
    // would cost megabytes per POI at paper budgets (the key universe is
    // usually far smaller than the capacity), and growth is amortized O(1).
  }

  /// Adds `weight` occurrences of `key`.
  void add(const Key& key, std::uint64_t weight = 1) {
    total_ += weight;
    if (const std::size_t* slot = index_.find(key)) {
      entries_[*slot].count += weight;
      sift_down(pos_[*slot]);
      return;
    }
    if (entries_.size() < capacity_) {
      const std::size_t slot = entries_.size();
      entries_.push_back(Entry{key, weight, 0});
      heap_.push_back(slot);
      pos_.push_back(slot);
      index_[key] = slot;
      sift_up(heap_.size() - 1);
      return;
    }
    // Evict the current minimum: the new key inherits its count as error.
    const std::size_t slot = heap_[0];
    Entry& e = entries_[slot];
    index_.erase(e.key);
    e.error = e.count;
    e.count += weight;
    e.key = key;
    index_[key] = slot;
    sift_down(0);
  }

  /// Estimated count of `key`, or nullopt if the key is not monitored.
  /// The true count is in [count - error, count].
  [[nodiscard]] std::optional<Entry> estimate(const Key& key) const {
    const std::size_t* slot = index_.find(key);
    if (slot == nullptr) return std::nullopt;
    return entries_[*slot];
  }

  /// All monitored entries, sorted by decreasing count.
  [[nodiscard]] std::vector<Entry> entries() const {
    std::vector<Entry> out = entries_;
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return a.count > b.count;
    });
    return out;
  }

  /// The `k` entries with the highest counts (fewer if not enough items).
  [[nodiscard]] std::vector<Entry> top(std::size_t k) const {
    std::vector<Entry> out = entries();
    if (out.size() > k) out.resize(k);
    return out;
  }

  /// Total weight added since construction / last clear.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Number of monitored items (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Smallest monitored count — the worst-case overestimation of any entry,
  /// and the threshold new keys must beat.  0 while not yet full.
  [[nodiscard]] std::uint64_t min_count() const noexcept {
    return entries_.size() < capacity_ ? 0 : entries_[heap_[0]].count;
  }

  /// Drops all state.  The paper resets statistics after each
  /// reconfiguration so that only recent data drives the next one.
  void clear() noexcept {
    entries_.clear();
    heap_.clear();
    pos_.clear();
    index_.clear();
    total_ = 0;
  }

 private:
  // Indexed min-heap over entries_[...].count.
  // heap_[h] = slot, pos_[slot] = h.
  [[nodiscard]] bool less(std::size_t h1, std::size_t h2) const noexcept {
    return entries_[heap_[h1]].count < entries_[heap_[h2]].count;
  }

  void swap_heap(std::size_t h1, std::size_t h2) noexcept {
    std::swap(heap_[h1], heap_[h2]);
    pos_[heap_[h1]] = h1;
    pos_[heap_[h2]] = h2;
  }

  void sift_up(std::size_t h) noexcept {
    while (h > 0) {
      const std::size_t parent = (h - 1) / 2;
      if (!less(h, parent)) break;
      swap_heap(h, parent);
      h = parent;
    }
  }

  void sift_down(std::size_t h) noexcept {
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t smallest = h;
      const std::size_t l = 2 * h + 1;
      const std::size_t r = 2 * h + 2;
      if (l < n && less(l, smallest)) smallest = l;
      if (r < n && less(r, smallest)) smallest = r;
      if (smallest == h) return;
      swap_heap(h, smallest);
      h = smallest;
    }
  }

  std::size_t capacity_;
  std::vector<Entry> entries_;
  std::vector<std::size_t> heap_;
  std::vector<std::size_t> pos_;
  FlatMap<Key, std::size_t, Hash> index_;
  std::uint64_t total_ = 0;
};

}  // namespace lar::sketch
