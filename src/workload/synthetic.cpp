#include "workload/synthetic.hpp"

#include "common/status.hpp"

namespace lar::workload {

SyntheticGenerator::SyntheticGenerator(const SyntheticConfig& config)
    : config_(config), rng_(config.seed) {
  LAR_CHECK(config.num_values >= 1);
  LAR_CHECK(config.locality >= 0.0 && config.locality <= 1.0);
  LAR_CHECK(config.num_fields >= 1);
}

Tuple SyntheticGenerator::next() {
  Tuple t;
  t.padding = config_.padding;
  t.fields.reserve(config_.num_fields);
  std::uint64_t index = rng_.below(config_.num_values);
  for (std::uint32_t f = 0; f < config_.num_fields; ++f) {
    if (f > 0 && config_.num_values > 1 && !rng_.chance(config_.locality)) {
      // Uniform among the other n-1 indices so per-hop locality is exact.
      std::uint64_t other = rng_.below(config_.num_values - 1);
      if (other >= index) ++other;
      index = other;
    }
    // Field f lives in a disjoint key space (offset f * num_values), like
    // the paper's distinct tuple fields: consecutive hops must not hash
    // identically or hash routing would trivially co-locate equal indices.
    // Identity routing still lands instance `index` when num_values is a
    // multiple of the parallelism, since (f*n + j) % par == j % par.
    t.fields.push_back(static_cast<Key>(f) * config_.num_values + index);
  }
  return t;
}

}  // namespace lar::workload
