// Synthetic workload of Section 4.2.
//
// Tuples are (integer, integer, padding) with both integers in [0, n).
// The `locality` parameter is the exact fraction of tuples whose two integers
// are equal; the rest draw the second integer uniformly among the other
// values.  With the identity routing oracle, an equal pair stays on one
// server and an unequal pair crosses the network.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "workload/workload.hpp"

namespace lar::workload {

struct SyntheticConfig {
  std::uint32_t num_values = 6;   ///< n: each field's index ranges over [0, n)
  double locality = 0.6;          ///< fraction of hops with equal indices
  std::uint32_t padding = 0;      ///< payload bytes per tuple
  std::uint64_t seed = 1;

  /// Number of key fields (= consecutive fields-grouped hops + 1 routing
  /// key).  The paper's workload is 2; longer chains correlate each field's
  /// index with its predecessor's independently with probability `locality`.
  std::uint32_t num_fields = 2;
};

/// Generator for the synthetic correlated-pairs workload.
class SyntheticGenerator final : public TupleGenerator {
 public:
  explicit SyntheticGenerator(const SyntheticConfig& config);

  [[nodiscard]] Tuple next() override;

  [[nodiscard]] const SyntheticConfig& config() const noexcept {
    return config_;
  }

 private:
  SyntheticConfig config_;
  Rng rng_;
};

}  // namespace lar::workload
