// Twitter-like fluctuating workload (Section 4.3, Figures 10-12).
//
// The paper's dataset is a 173M-pair crawl of geo-tagged tweets; we cannot
// redistribute it, so this generator synthesizes a stream with the
// statistical properties the evaluation actually exercises:
//
//  1. Zipfian marginals for both locations and hashtags (Section 3.2 argues
//     real streams are Zipfian; this is what makes bounded top-k statistics
//     sufficient).
//  2. Location<->hashtag correlation that is part *stable* (a hashtag's home
//     location never changes) and part *transient*.  Transient homes drift
//     GRADUALLY: each epoch (== week) re-rolls only a fraction of them
//     (`transient_churn`), mirroring Figure 10 where a hashtag's dominant
//     state moves over days but associations persist for a while.  A single
//     offline configuration therefore decays as cumulative churn grows,
//     while weekly online reconfiguration keeps tracking — the exact gap
//     Figure 11a measures.
//  3. Vocabulary growth: each epoch introduces a block of brand-new hashtags
//     ("data of the next week contains a significant proportion of new
//     hashtags", Section 4.3).  New keys carry a significant share of
//     traffic while fresh (`new_key_fraction`) and stay in circulation for
//     `recent_window` further epochs (`recent_fraction`), like real trending
//     tags.  A week-one offline table can never know them; online tables
//     learn each block one week after it appears.
//
// Tuples are (location, hashtag, padding), routed first by location, then by
// hashtag — the same application as the paper's.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sketch/zipf.hpp"
#include "workload/workload.hpp"

namespace lar::workload {

struct TwitterLikeConfig {
  std::uint32_t num_locations = 300;
  std::uint32_t num_hashtags = 20'000;
  double zipf_locations = 1.0;   ///< skew of location popularity
  double zipf_hashtags = 0.9;    ///< skew of hashtag popularity

  /// Fraction of hashtags whose popularity rank is re-shuffled per epoch.
  /// Trending topics rise and fall: a routing table balanced for one week's
  /// key frequencies slowly unbalances as the frequencies move underneath
  /// it — the drift Figure 11b shows for the offline configuration.
  double popularity_churn = 0.05;

  /// P(location = stable home of the hashtag) for base-vocabulary tags.
  double stable_correlation = 0.45;
  /// P(location = current transient home of the hashtag).
  double transient_correlation = 0.20;
  /// Fraction of transient homes re-rolled at each epoch boundary.
  double transient_churn = 0.30;

  /// Fraction of tuples whose hashtag comes from THIS epoch's fresh block.
  double new_key_fraction = 0.08;
  /// Fraction of tuples whose hashtag comes from the previous
  /// `recent_window` epochs' blocks (uniformly among them).
  double recent_fraction = 0.12;
  /// How many past epochs' fresh blocks stay in circulation.
  std::uint32_t recent_window = 3;
  /// Number of distinct fresh hashtags introduced per epoch.
  std::uint32_t new_keys_per_epoch = 2'000;
  /// P(location = birth home) for fresh/recent hashtags: trending tags are
  /// strongly geo-correlated.
  double fresh_correlation = 0.8;

  std::uint32_t padding = 64;  ///< tweets are small
  std::uint64_t seed = 7;
};

/// Hashtag keys are offset by this constant so they never collide with
/// location keys (both PO stages share one key space in the optimizer).
inline constexpr Key kHashtagKeyBase = 1u << 20;

/// Generator of the drifting geo-tagged stream.
class TwitterLikeGenerator final : public TupleGenerator {
 public:
  explicit TwitterLikeGenerator(const TwitterLikeConfig& config);

  /// Next (location, hashtag) tuple of the current epoch.
  [[nodiscard]] Tuple next() override;

  /// Moves to the next week: churns transient homes and opens a fresh
  /// hashtag block.
  void advance_epoch() override;

  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const TwitterLikeConfig& config() const noexcept {
    return config_;
  }

  /// Ground truth for tests: the stable / current transient home of base
  /// hashtag rank `h` (as a location key).
  [[nodiscard]] Key stable_home(std::uint32_t h) const;
  [[nodiscard]] Key transient_home(std::uint32_t h) const;

  /// Key range [first, last) of the fresh block opened at `epoch`.
  [[nodiscard]] std::pair<Key, Key> block_key_range(std::uint32_t epoch) const;

 private:
  [[nodiscard]] Key location_key(std::uint32_t rank) const noexcept {
    return rank;
  }
  [[nodiscard]] Key hashtag_key(std::uint64_t rank) const noexcept {
    return kHashtagKeyBase + rank;
  }

  /// Draws one tuple whose hashtag is index `idx` of fresh block `block`.
  [[nodiscard]] Tuple fresh_tuple(std::uint32_t block, std::uint32_t idx);

  TwitterLikeConfig config_;
  Rng rng_;
  sketch::ZipfSampler location_zipf_;
  sketch::ZipfSampler hashtag_zipf_;
  std::vector<std::uint32_t> stable_home_;     // base hashtag -> location rank
  std::vector<std::uint32_t> transient_home_;  // churned per epoch
  std::vector<std::uint32_t> tag_at_rank_;     // popularity rank -> hashtag
  // block_homes_[e][i] = birth home of fresh key i of epoch e.
  std::vector<std::vector<std::uint32_t>> block_homes_;
  std::uint32_t epoch_ = 0;
};

}  // namespace lar::workload
