#include "workload/twitter_like.hpp"

#include "common/status.hpp"

namespace lar::workload {

TwitterLikeGenerator::TwitterLikeGenerator(const TwitterLikeConfig& config)
    : config_(config),
      rng_(config.seed),
      location_zipf_(config.num_locations, config.zipf_locations),
      hashtag_zipf_(config.num_hashtags, config.zipf_hashtags) {
  LAR_CHECK(config.num_locations >= 1);
  LAR_CHECK(config.num_hashtags >= 1);
  LAR_CHECK(config.stable_correlation >= 0.0);
  LAR_CHECK(config.transient_correlation >= 0.0);
  LAR_CHECK(config.stable_correlation + config.transient_correlation <= 1.0);
  LAR_CHECK(config.transient_churn >= 0.0 && config.transient_churn <= 1.0);
  LAR_CHECK(config.new_key_fraction >= 0.0);
  LAR_CHECK(config.recent_fraction >= 0.0);
  LAR_CHECK(config.new_key_fraction + config.recent_fraction < 1.0);
  LAR_CHECK(config.new_keys_per_epoch >= 1);
  LAR_CHECK(config.fresh_correlation >= 0.0 && config.fresh_correlation <= 1.0);

  stable_home_.resize(config.num_hashtags);
  transient_home_.resize(config.num_hashtags);
  // Homes are Zipf-drawn so popular hashtags cluster on popular locations,
  // as in the real data.
  for (auto& home : stable_home_) {
    home = static_cast<std::uint32_t>(location_zipf_.sample(rng_));
  }
  for (auto& home : transient_home_) {
    home = static_cast<std::uint32_t>(location_zipf_.sample(rng_));
  }
  tag_at_rank_.resize(config.num_hashtags);
  for (std::uint32_t i = 0; i < config.num_hashtags; ++i) tag_at_rank_[i] = i;

  // Fresh block of epoch 0.
  block_homes_.emplace_back();
  block_homes_.back().resize(config.new_keys_per_epoch);
  for (auto& home : block_homes_.back()) {
    home = static_cast<std::uint32_t>(location_zipf_.sample(rng_));
  }
}

void TwitterLikeGenerator::advance_epoch() {
  ++epoch_;
  // Gradual drift: only a fraction of transient associations move per week.
  for (auto& home : transient_home_) {
    if (rng_.chance(config_.transient_churn)) {
      home = static_cast<std::uint32_t>(location_zipf_.sample(rng_));
    }
  }
  // Popularity drift: swap a fraction of rank positions so key frequencies
  // move underneath any fixed routing table.
  const auto swaps = static_cast<std::uint64_t>(
      config_.popularity_churn * static_cast<double>(config_.num_hashtags));
  for (std::uint64_t s = 0; s < swaps; ++s) {
    const std::uint64_t a = rng_.below(config_.num_hashtags);
    const std::uint64_t b = rng_.below(config_.num_hashtags);
    std::swap(tag_at_rank_[a], tag_at_rank_[b]);
  }
  block_homes_.emplace_back();
  block_homes_.back().resize(config_.new_keys_per_epoch);
  for (auto& home : block_homes_.back()) {
    home = static_cast<std::uint32_t>(location_zipf_.sample(rng_));
  }
}

Key TwitterLikeGenerator::stable_home(std::uint32_t h) const {
  LAR_CHECK(h < stable_home_.size());
  return location_key(stable_home_[h]);
}

Key TwitterLikeGenerator::transient_home(std::uint32_t h) const {
  LAR_CHECK(h < transient_home_.size());
  return location_key(transient_home_[h]);
}

std::pair<Key, Key> TwitterLikeGenerator::block_key_range(
    std::uint32_t epoch) const {
  const std::uint64_t first =
      config_.num_hashtags +
      static_cast<std::uint64_t>(epoch) * config_.new_keys_per_epoch;
  return {hashtag_key(first), hashtag_key(first + config_.new_keys_per_epoch)};
}

Tuple TwitterLikeGenerator::fresh_tuple(std::uint32_t block,
                                        std::uint32_t idx) {
  std::uint32_t loc_rank;
  if (rng_.chance(config_.fresh_correlation)) {
    loc_rank = block_homes_[block][idx];
  } else {
    loc_rank = static_cast<std::uint32_t>(location_zipf_.sample(rng_));
  }
  const std::uint64_t rank =
      config_.num_hashtags +
      static_cast<std::uint64_t>(block) * config_.new_keys_per_epoch + idx;
  return Tuple{.fields = {location_key(loc_rank), hashtag_key(rank)},
               .padding = config_.padding};
}

Tuple TwitterLikeGenerator::next() {
  const double bucket = rng_.uniform();
  if (bucket < config_.new_key_fraction) {
    // This epoch's fresh block.
    const auto idx =
        static_cast<std::uint32_t>(rng_.below(config_.new_keys_per_epoch));
    return fresh_tuple(epoch_, idx);
  }
  if (bucket < config_.new_key_fraction + config_.recent_fraction &&
      epoch_ > 0) {
    // A still-circulating block from the last `recent_window` epochs.
    const std::uint32_t window =
        std::min(epoch_, std::max(config_.recent_window, 1u));
    const auto block =
        static_cast<std::uint32_t>(epoch_ - 1 - rng_.below(window));
    const auto idx =
        static_cast<std::uint32_t>(rng_.below(config_.new_keys_per_epoch));
    return fresh_tuple(block, idx);
  }

  // Base vocabulary: Zipf over popularity ranks, then the (drifting)
  // rank -> hashtag mapping.
  const auto tag_rank =
      tag_at_rank_[static_cast<std::uint32_t>(hashtag_zipf_.sample(rng_))];
  std::uint32_t loc_rank;
  const double u = rng_.uniform();
  if (u < config_.stable_correlation) {
    loc_rank = stable_home_[tag_rank];
  } else if (u < config_.stable_correlation + config_.transient_correlation) {
    loc_rank = transient_home_[tag_rank];
  } else {
    loc_rank = static_cast<std::uint32_t>(location_zipf_.sample(rng_));
  }
  return Tuple{.fields = {location_key(loc_rank), hashtag_key(tag_rank)},
               .padding = config_.padding};
}

}  // namespace lar::workload
