// Tuple trace recording and replay.
//
// The paper's offline mode analyses "a large sample of the data" before the
// application starts; a recorded trace is that sample.  Traces also make
// experiments repeatable across engines (record once from a generator, replay
// into both the runtime and the simulator).
//
// Format: a small binary header ("LART", version, tuple count) followed by
// one record per tuple: u16 field count, u32 padding, then u64 fields.
// Little-endian, as every platform we target is.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "topology/types.hpp"
#include "workload/workload.hpp"

namespace lar::workload {

/// Writes tuples to a trace file.
class TraceWriter {
 public:
  /// Opens (truncates) `path`.  Check `status()` before writing.
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  [[nodiscard]] const Status& status() const noexcept { return status_; }

  /// Appends one tuple.
  void write(const Tuple& tuple);

  /// Flushes and finalizes the header.  Called by the destructor if omitted.
  void close();

  [[nodiscard]] std::uint64_t tuples_written() const noexcept { return count_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t count_ = 0;
  Status status_;
};

/// Reads tuples back from a trace file.
class TraceReader final : public TupleGenerator {
 public:
  /// Opens `path` and validates the header.  Check `status()`.
  explicit TraceReader(const std::string& path);
  ~TraceReader() override;
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  [[nodiscard]] const Status& status() const noexcept { return status_; }
  [[nodiscard]] std::uint64_t num_tuples() const noexcept { return count_; }
  [[nodiscard]] bool exhausted() const noexcept { return read_ >= count_; }

  /// Next tuple; wraps around to the beginning when exhausted (streams are
  /// unbounded, traces are not).  Precondition: num_tuples() > 0.
  [[nodiscard]] Tuple next() override;

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t count_ = 0;
  std::uint64_t read_ = 0;
  Status status_;
};

/// Records `n` tuples from `gen` into `path`.  Returns the writer status.
[[nodiscard]] Status record_trace(TupleGenerator& gen, std::uint64_t n,
                                  const std::string& path);

}  // namespace lar::workload
