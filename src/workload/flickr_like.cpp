#include "workload/flickr_like.hpp"

#include "common/status.hpp"

namespace lar::workload {

FlickrLikeGenerator::FlickrLikeGenerator(const FlickrLikeConfig& config)
    : config_(config),
      rng_(config.seed),
      tag_zipf_(config.num_tags, config.zipf_tags),
      country_zipf_(config.num_countries, config.zipf_countries) {
  LAR_CHECK(config.num_tags >= 1);
  LAR_CHECK(config.num_countries >= 1);
  LAR_CHECK(config.correlation >= 0.0 && config.correlation <= 1.0);
  home_.resize(config.num_tags);
  for (auto& h : home_) {
    h = static_cast<std::uint32_t>(country_zipf_.sample(rng_));
  }
}

Key FlickrLikeGenerator::home_country(std::uint32_t t) const {
  LAR_CHECK(t < home_.size());
  return kCountryKeyBase + home_[t];
}

Tuple FlickrLikeGenerator::next() {
  const auto tag = static_cast<std::uint32_t>(tag_zipf_.sample(rng_));
  std::uint32_t country;
  if (rng_.chance(config_.correlation)) {
    country = home_[tag];
  } else {
    country = static_cast<std::uint32_t>(country_zipf_.sample(rng_));
  }
  return Tuple{.fields = {tag, kCountryKeyBase + country},
               .padding = config_.padding};
}

}  // namespace lar::workload
