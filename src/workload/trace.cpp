#include "workload/trace.hpp"

#include <cstdio>
#include <cstring>

namespace lar::workload {

namespace {
constexpr char kMagic[4] = {'L', 'A', 'R', 'T'};
constexpr std::uint32_t kVersion = 1;
constexpr long kCountOffset = 8;  // magic + version
}  // namespace

TraceWriter::TraceWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status(ErrorCode::kInvalidArgument, "cannot open " + path);
    return;
  }
  std::fwrite(kMagic, 1, 4, file_);
  std::fwrite(&kVersion, sizeof kVersion, 1, file_);
  const std::uint64_t placeholder = 0;
  std::fwrite(&placeholder, sizeof placeholder, 1, file_);
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::write(const Tuple& tuple) {
  if (file_ == nullptr) return;
  const auto nfields = static_cast<std::uint16_t>(tuple.fields.size());
  std::fwrite(&nfields, sizeof nfields, 1, file_);
  std::fwrite(&tuple.padding, sizeof tuple.padding, 1, file_);
  std::fwrite(tuple.fields.data(), sizeof(Key), tuple.fields.size(), file_);
  ++count_;
}

void TraceWriter::close() {
  if (file_ == nullptr) return;
  std::fseek(file_, kCountOffset, SEEK_SET);
  std::fwrite(&count_, sizeof count_, 1, file_);
  std::fclose(file_);
  file_ = nullptr;
}

TraceReader::TraceReader(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    status_ = Status(ErrorCode::kNotFound, "cannot open " + path);
    return;
  }
  char magic[4];
  std::uint32_t version = 0;
  if (std::fread(magic, 1, 4, file_) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0 ||
      std::fread(&version, sizeof version, 1, file_) != 1 ||
      version != kVersion ||
      std::fread(&count_, sizeof count_, 1, file_) != 1) {
    status_ = Status(ErrorCode::kInvalidArgument, path + " is not a trace");
    std::fclose(file_);
    file_ = nullptr;
  }
}

TraceReader::~TraceReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Tuple TraceReader::next() {
  LAR_CHECK(file_ != nullptr && count_ > 0);
  if (read_ >= count_) {
    std::fseek(file_, kCountOffset + static_cast<long>(sizeof count_),
               SEEK_SET);
    read_ = 0;
  }
  Tuple t;
  std::uint16_t nfields = 0;
  LAR_CHECK(std::fread(&nfields, sizeof nfields, 1, file_) == 1);
  LAR_CHECK(std::fread(&t.padding, sizeof t.padding, 1, file_) == 1);
  t.fields.resize(nfields);
  LAR_CHECK(std::fread(t.fields.data(), sizeof(Key), nfields, file_) ==
            nfields);
  ++read_;
  return t;
}

Status record_trace(TupleGenerator& gen, std::uint64_t n,
                    const std::string& path) {
  TraceWriter writer(path);
  if (!writer.status().is_ok()) return writer.status();
  for (std::uint64_t i = 0; i < n; ++i) writer.write(gen.next());
  writer.close();
  return Status::ok();
}

}  // namespace lar::workload
