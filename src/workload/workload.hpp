// Workload generator interface.
//
// All generators are deterministic under a fixed seed and produce tuples of
// the two-key shape used throughout the paper's evaluation:
// fields = {first routing key, second routing key}, plus payload padding.
#pragma once

#include "topology/types.hpp"

namespace lar::workload {

/// Produces an unbounded stream of tuples.
class TupleGenerator {
 public:
  virtual ~TupleGenerator() = default;

  /// Next tuple of the stream.
  [[nodiscard]] virtual Tuple next() = 0;

  /// Advances generator-internal time (e.g. one "week" for the Twitter-like
  /// workload).  Default: no temporal structure.
  virtual void advance_epoch() {}
};

}  // namespace lar::workload
