// Flickr-like stable workload (Section 4.4, Figures 13-14).
//
// The paper replays the YFCC100M metadata dump — (user tag, country) pairs
// with no temporal ordering, i.e. a *stable* correlated stream.  This
// generator reproduces that: Zipfian tags, each with a fixed home country
// drawn from a Zipfian country popularity, correlation that never drifts and
// no fresh-key injection.  Tuples are (tag, country, padding), matching the
// paper's application which routes first by tag, then by country.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sketch/zipf.hpp"
#include "workload/workload.hpp"

namespace lar::workload {

struct FlickrLikeConfig {
  std::uint32_t num_tags = 50'000;
  std::uint32_t num_countries = 180;
  double zipf_tags = 0.7;
  double zipf_countries = 0.7;

  /// P(country = home country of the tag): the strength of the real-life
  /// correlation the paper found "sufficient to enhance performance".
  double correlation = 0.65;

  std::uint32_t padding = 4096;
  std::uint64_t seed = 11;
};

/// Country keys are offset so they never collide with tag keys.
inline constexpr Key kCountryKeyBase = 1u << 21;

/// Generator of the stable photo-metadata stream.
class FlickrLikeGenerator final : public TupleGenerator {
 public:
  explicit FlickrLikeGenerator(const FlickrLikeConfig& config);

  [[nodiscard]] Tuple next() override;

  [[nodiscard]] const FlickrLikeConfig& config() const noexcept {
    return config_;
  }

  /// Ground truth for tests: home country key of tag rank `t`.
  [[nodiscard]] Key home_country(std::uint32_t t) const;

 private:
  FlickrLikeConfig config_;
  Rng rng_;
  sketch::ZipfSampler tag_zipf_;
  sketch::ZipfSampler country_zipf_;
  std::vector<std::uint32_t> home_;  // tag rank -> country rank
};

}  // namespace lar::workload
