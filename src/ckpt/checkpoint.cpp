#include "ckpt/checkpoint.hpp"

#include "common/status.hpp"

namespace lar::ckpt {

// ---------------------------------------------------------------------------
// CheckpointStore.
// ---------------------------------------------------------------------------

void CheckpointStore::begin(std::uint64_t epoch, std::uint32_t active_servers,
                            std::uint64_t plan_version) {
  std::lock_guard lock(mutex_);
  LAR_CHECK(epoch > last_committed_);
  Checkpoint& ck = epochs_[epoch];
  ck.epoch = epoch;
  ck.active_servers = active_servers;
  ck.plan_version = plan_version;
}

void CheckpointStore::add(std::uint64_t epoch, PoiCheckpoint poi) {
  std::lock_guard lock(mutex_);
  auto it = epochs_.find(epoch);
  LAR_CHECK(it != epochs_.end() && !it->second.committed);
  const std::uint32_t flat = poi.flat;
  it->second.pois.insert_or_assign(flat, std::move(poi));
}

void CheckpointStore::commit(std::uint64_t epoch) {
  std::lock_guard lock(mutex_);
  auto it = epochs_.find(epoch);
  LAR_CHECK(it != epochs_.end());
  it->second.committed = true;
  captured_states_ = it->second.total_states();
  captured_state_bytes_ = it->second.total_state_bytes();
  last_committed_ = epoch;
  // Older epochs can never be restored to again: the replay buffers are
  // about to be truncated to this epoch's watermarks.
  epochs_.erase(epochs_.begin(), it);
}

std::uint64_t CheckpointStore::last_committed_epoch() const {
  std::lock_guard lock(mutex_);
  return last_committed_;
}

Checkpoint CheckpointStore::last_committed() const {
  std::lock_guard lock(mutex_);
  if (auto it = epochs_.find(last_committed_); it != epochs_.end()) {
    return it->second;
  }
  return {};
}

CheckpointMeta CheckpointStore::last_committed_meta() const {
  std::lock_guard lock(mutex_);
  CheckpointMeta meta;
  if (auto it = epochs_.find(last_committed_); it != epochs_.end()) {
    const Checkpoint& ck = it->second;
    meta.epoch = ck.epoch;
    meta.committed = ck.committed;
    meta.active_servers = ck.active_servers;
    meta.plan_version = ck.plan_version;
    meta.pois = ck.pois.size();
    meta.total_states = ck.total_states();
    meta.total_state_bytes = ck.total_state_bytes();
    meta.captured_states = captured_states_;
    meta.captured_state_bytes = captured_state_bytes_;
  }
  return meta;
}

std::map<std::uint32_t, PoiCheckpoint> CheckpointStore::last_committed_slices(
    const std::vector<std::uint32_t>& flats) const {
  std::lock_guard lock(mutex_);
  std::map<std::uint32_t, PoiCheckpoint> slices;
  const auto it = epochs_.find(last_committed_);
  if (it == epochs_.end()) return slices;
  for (const std::uint32_t flat : flats) {
    if (const auto pc = it->second.pois.find(flat);
        pc != it->second.pois.end()) {
      slices.emplace(flat, pc->second);
    }
  }
  return slices;
}

std::size_t CheckpointStore::num_epochs_held() const {
  std::lock_guard lock(mutex_);
  return epochs_.size();
}

// ---------------------------------------------------------------------------
// CheckpointCoordinator.
// ---------------------------------------------------------------------------

CheckpointCoordinator::CheckpointCoordinator(obs::Registry* registry,
                                             obs::TraceRecorder* trace)
    : CheckpointCoordinator(std::make_unique<CheckpointStore>(), registry,
                            trace) {}

CheckpointCoordinator::CheckpointCoordinator(
    std::unique_ptr<CheckpointStore> store, obs::Registry* registry,
    obs::TraceRecorder* trace)
    : store_(std::move(store)), registry_(registry), trace_(trace) {
  LAR_CHECK(store_ != nullptr);
  // A durable store may already hold a recovered chain: continue its epoch
  // numbering so a cold restart never re-commits an existing epoch.
  next_epoch_ = store_->last_committed_epoch();
}

std::uint64_t CheckpointCoordinator::begin_epoch(std::uint32_t active_servers,
                                                 std::uint64_t plan_version) {
  const std::uint64_t epoch = ++next_epoch_;
  store_->begin(epoch, active_servers, plan_version);
  return epoch;
}

void CheckpointCoordinator::committed(std::uint64_t epoch) {
  store_->commit(epoch);
  ++commits_;
  const CheckpointMeta meta = store_->last_committed_meta();
  if (registry_ != nullptr) {
    registry_
        ->counter("lar_ckpt_checkpoints_total", {},
                  "Aligned checkpoint epochs committed.")
        .advance_to(commits_);
    registry_
        ->gauge("lar_ckpt_last_committed_epoch", {},
                "Epoch number of the last committed checkpoint.")
        .set(static_cast<double>(epoch));
  }
  if (trace_ != nullptr) {
    trace_->record(epoch, obs::Phase::kCheckpoint, "manager",
                   /*count=*/meta.pois,
                   /*bytes=*/meta.total_state_bytes);
  }
}

void CheckpointCoordinator::recovered(std::uint64_t epoch,
                                      std::uint32_t server,
                                      std::uint64_t pois,
                                      std::uint64_t states,
                                      std::uint64_t bytes,
                                      std::uint64_t replayed) {
  ++recoveries_;
  const std::string entity = "server" + std::to_string(server);
  if (registry_ != nullptr) {
    registry_
        ->counter("lar_ckpt_crashes_recovered_total", {},
                  "server_crash faults recovered from a checkpoint.")
        .advance_to(recoveries_);
  }
  if (trace_ != nullptr) {
    trace_->record(epoch, obs::Phase::kCrash, entity, /*count=*/pois);
    trace_->record(epoch, obs::Phase::kRecover, entity, /*count=*/states,
                   /*bytes=*/bytes);
    trace_->record(epoch, obs::Phase::kRecover, entity + "/replay",
                   /*count=*/replayed);
  }
}

}  // namespace lar::ckpt
