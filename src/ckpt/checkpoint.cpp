#include "ckpt/checkpoint.hpp"

#include "common/status.hpp"

namespace lar::ckpt {

// ---------------------------------------------------------------------------
// CheckpointStore.
// ---------------------------------------------------------------------------

void CheckpointStore::begin(std::uint64_t epoch, std::uint32_t active_servers,
                            std::uint64_t plan_version) {
  std::lock_guard lock(mutex_);
  LAR_CHECK(epoch > last_committed_);
  Checkpoint& ck = epochs_[epoch];
  ck.epoch = epoch;
  ck.active_servers = active_servers;
  ck.plan_version = plan_version;
}

void CheckpointStore::add(std::uint64_t epoch, PoiCheckpoint poi) {
  std::lock_guard lock(mutex_);
  auto it = epochs_.find(epoch);
  LAR_CHECK(it != epochs_.end() && !it->second.committed);
  const std::uint32_t flat = poi.flat;
  it->second.pois.insert_or_assign(flat, std::move(poi));
}

void CheckpointStore::commit(std::uint64_t epoch) {
  std::lock_guard lock(mutex_);
  auto it = epochs_.find(epoch);
  LAR_CHECK(it != epochs_.end());
  it->second.committed = true;
  last_committed_ = epoch;
  // Older epochs can never be restored to again: the replay buffers are
  // about to be truncated to this epoch's watermarks.
  epochs_.erase(epochs_.begin(), it);
}

std::uint64_t CheckpointStore::last_committed_epoch() const {
  std::lock_guard lock(mutex_);
  return last_committed_;
}

Checkpoint CheckpointStore::last_committed() const {
  std::lock_guard lock(mutex_);
  if (auto it = epochs_.find(last_committed_); it != epochs_.end()) {
    return it->second;
  }
  return {};
}

std::size_t CheckpointStore::num_epochs_held() const {
  std::lock_guard lock(mutex_);
  return epochs_.size();
}

// ---------------------------------------------------------------------------
// CheckpointCoordinator.
// ---------------------------------------------------------------------------

CheckpointCoordinator::CheckpointCoordinator(obs::Registry* registry,
                                             obs::TraceRecorder* trace)
    : registry_(registry), trace_(trace) {}

std::uint64_t CheckpointCoordinator::begin_epoch(std::uint32_t active_servers,
                                                 std::uint64_t plan_version) {
  const std::uint64_t epoch = ++next_epoch_;
  store_.begin(epoch, active_servers, plan_version);
  return epoch;
}

void CheckpointCoordinator::committed(std::uint64_t epoch) {
  store_.commit(epoch);
  ++commits_;
  const Checkpoint ck = store_.last_committed();
  if (registry_ != nullptr) {
    registry_
        ->counter("lar_ckpt_checkpoints_total", {},
                  "Aligned checkpoint epochs committed.")
        .advance_to(commits_);
    registry_
        ->gauge("lar_ckpt_last_committed_epoch", {},
                "Epoch number of the last committed checkpoint.")
        .set(static_cast<double>(epoch));
  }
  if (trace_ != nullptr) {
    trace_->record(epoch, obs::Phase::kCheckpoint, "manager",
                   /*count=*/ck.pois.size(),
                   /*bytes=*/ck.total_state_bytes());
  }
}

void CheckpointCoordinator::recovered(std::uint64_t epoch,
                                      std::uint32_t server,
                                      std::uint64_t pois,
                                      std::uint64_t states,
                                      std::uint64_t bytes,
                                      std::uint64_t replayed) {
  ++recoveries_;
  const std::string entity = "server" + std::to_string(server);
  if (registry_ != nullptr) {
    registry_
        ->counter("lar_ckpt_crashes_recovered_total", {},
                  "server_crash faults recovered from a checkpoint.")
        .advance_to(recoveries_);
  }
  if (trace_ != nullptr) {
    trace_->record(epoch, obs::Phase::kCrash, entity, /*count=*/pois);
    trace_->record(epoch, obs::Phase::kRecover, entity, /*count=*/states,
                   /*bytes=*/bytes);
    trace_->record(epoch, obs::Phase::kRecover, entity + "/replay",
                   /*count=*/replayed);
  }
}

}  // namespace lar::ckpt
