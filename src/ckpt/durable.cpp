#include "ckpt/durable.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <utility>

#include "common/checksum.hpp"
#include "common/status.hpp"
#include "core/snapshot.hpp"

namespace lar::ckpt {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[4] = {'L', 'A', 'R', 'C'};
constexpr std::uint32_t kFormatVersion = 1;
// magic + format + epoch + total_len; the epoch seeds the checksum, the
// length frames the record (a truncated rename target can never validate).
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;
constexpr std::size_t kTotalLenOffset = 4 + 4 + 8;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
void append_pod(std::vector<std::byte>& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* bytes = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

struct ByteReader {
  const std::byte* data;
  std::size_t size;
  std::size_t pos = 0;

  template <typename T>
  bool read(T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size - pos < sizeof(T)) return false;
    std::memcpy(&value, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }
  bool read_bytes(std::vector<std::byte>& out, std::size_t len) {
    if (size - pos < len) return false;
    out.assign(data + pos, data + pos + len);
    pos += len;
    return true;
  }
};

std::string epoch_file_name(std::uint64_t epoch, bool delta) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "epoch-%020llu.%s",
                static_cast<unsigned long long>(epoch),
                delta ? "delta" : "base");
  return buf;
}

/// Parses "epoch-<20 digits>.(base|delta)"; returns false for anything else
/// (including leftover ".tmp" files from a crashed writer).
bool parse_epoch_file_name(const std::string& name, std::uint64_t& epoch,
                           bool& delta) {
  constexpr std::string_view kPrefix = "epoch-";
  constexpr std::size_t kDigits = 20;
  if (name.size() < kPrefix.size() + kDigits + 2 ||
      name.compare(0, kPrefix.size(), kPrefix) != 0) {
    return false;
  }
  epoch = 0;
  for (std::size_t i = 0; i < kDigits; ++i) {
    const char c = name[kPrefix.size() + i];
    if (c < '0' || c > '9') return false;
    epoch = epoch * 10 + static_cast<std::uint64_t>(c - '0');
  }
  const std::string ext = name.substr(kPrefix.size() + kDigits);
  if (ext == ".base") {
    delta = false;
    return true;
  }
  if (ext == ".delta") {
    delta = true;
    return true;
  }
  return false;
}

/// One decoded epoch file.
struct LoadedEpoch {
  Checkpoint ck;
  bool delta = false;
  std::uint64_t base_epoch = 0;
  std::vector<std::byte> plan_bytes;
};

void encode_slice(std::vector<std::byte>& out, const PoiCheckpoint& pc) {
  append_pod(out, pc.flat);
  append_pod(out, pc.op);
  append_pod(out, pc.index);
  append_pod(out, static_cast<std::uint8_t>(pc.delta ? 1 : 0));
  append_pod(out, pc.table_version);
  append_pod(out, static_cast<std::uint64_t>(pc.states.size()));
  for (const auto& [key, state] : pc.states) {
    append_pod(out, key);
    append_pod(out, static_cast<std::uint32_t>(state.size()));
    out.insert(out.end(), state.begin(), state.end());
  }
  append_pod(out, static_cast<std::uint64_t>(pc.in_cursors.size()));
  for (const auto& [link, seq] : pc.in_cursors) {
    append_pod(out, link);
    append_pod(out, seq);
  }
  append_pod(out, static_cast<std::uint64_t>(pc.out_cursors.size()));
  for (const auto& [link, seq] : pc.out_cursors) {
    append_pod(out, link);
    append_pod(out, seq);
  }
}

bool decode_slice(ByteReader& in, PoiCheckpoint& pc) {
  std::uint8_t delta = 0;
  if (!in.read(pc.flat) || !in.read(pc.op) || !in.read(pc.index) ||
      !in.read(delta) || !in.read(pc.table_version)) {
    return false;
  }
  pc.delta = delta != 0;
  std::uint64_t n = 0;
  if (!in.read(n)) return false;
  pc.states.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Key key = 0;
    std::uint32_t len = 0;
    std::vector<std::byte> state;
    if (!in.read(key) || !in.read(len) || !in.read_bytes(state, len)) {
      return false;
    }
    pc.states.emplace_back(key, std::move(state));
  }
  if (!in.read(n)) return false;
  pc.in_cursors.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t link = 0;
    std::uint64_t seq = 0;
    if (!in.read(link) || !in.read(seq)) return false;
    pc.in_cursors.emplace_back(link, seq);
  }
  if (!in.read(n)) return false;
  pc.out_cursors.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t link = 0;
    std::uint64_t seq = 0;
    if (!in.read(link) || !in.read(seq)) return false;
    pc.out_cursors.emplace_back(link, seq);
  }
  return true;
}

std::vector<std::byte> encode_epoch(const Checkpoint& ck, bool delta,
                                    std::uint64_t base_epoch,
                                    const std::vector<std::byte>& plan_bytes) {
  std::vector<std::byte> out;
  out.insert(out.end(), reinterpret_cast<const std::byte*>(kMagic),
             reinterpret_cast<const std::byte*>(kMagic) + 4);
  append_pod(out, kFormatVersion);
  append_pod(out, ck.epoch);
  append_pod(out, std::uint64_t{0});  // total_len, patched below
  append_pod(out, static_cast<std::uint8_t>(delta ? 1 : 0));
  append_pod(out, base_epoch);
  append_pod(out, ck.active_servers);
  append_pod(out, ck.plan_version);
  append_pod(out, static_cast<std::uint64_t>(plan_bytes.size()));
  out.insert(out.end(), plan_bytes.begin(), plan_bytes.end());
  append_pod(out, static_cast<std::uint32_t>(ck.pois.size()));
  for (const auto& [flat, pc] : ck.pois) encode_slice(out, pc);
  const std::uint64_t total = out.size() + sizeof(std::uint64_t);
  std::memcpy(out.data() + kTotalLenOffset, &total, sizeof(total));
  append_pod(out, checksum64(ck.epoch, out.data(), out.size()));
  return out;
}

/// Reads and validates one epoch file; nullopt for torn/corrupt/foreign
/// files (the caller falls back to an earlier epoch).
std::optional<LoadedEpoch> decode_epoch_file(const fs::path& path) {
  File file(std::fopen(path.string().c_str(), "rb"));
  if (file == nullptr) return std::nullopt;
  std::vector<std::byte> buf;
  std::byte chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file.get())) > 0) {
    buf.insert(buf.end(), chunk, chunk + got);
  }
  if (buf.size() < kHeaderBytes + sizeof(std::uint64_t) ||
      std::memcmp(buf.data(), kMagic, 4) != 0) {
    return std::nullopt;
  }
  ByteReader in{buf.data(), buf.size() - sizeof(std::uint64_t), 4};
  std::uint32_t format = 0;
  std::uint64_t epoch = 0;
  std::uint64_t total = 0;
  if (!in.read(format) || format != kFormatVersion || !in.read(epoch) ||
      !in.read(total) || total != buf.size()) {
    return std::nullopt;
  }
  std::uint64_t expected = 0;
  std::memcpy(&expected, buf.data() + buf.size() - sizeof(expected),
              sizeof(expected));
  if (checksum64(epoch, buf.data(), buf.size() - sizeof(expected)) !=
      expected) {
    return std::nullopt;
  }
  LoadedEpoch loaded;
  loaded.ck.epoch = epoch;
  loaded.ck.committed = true;
  std::uint8_t delta = 0;
  std::uint64_t plan_len = 0;
  std::uint32_t num_pois = 0;
  if (!in.read(delta) || !in.read(loaded.base_epoch) ||
      !in.read(loaded.ck.active_servers) || !in.read(loaded.ck.plan_version) ||
      !in.read(plan_len) || !in.read_bytes(loaded.plan_bytes, plan_len) ||
      !in.read(num_pois)) {
    return std::nullopt;
  }
  loaded.delta = delta != 0;
  for (std::uint32_t i = 0; i < num_pois; ++i) {
    PoiCheckpoint pc;
    if (!decode_slice(in, pc)) return std::nullopt;
    loaded.ck.pois.insert_or_assign(pc.flat, std::move(pc));
  }
  return loaded;
}

/// Overwrite-merge of two ascending (key, state) lists: `src` wins ties.
void merge_states(std::vector<std::pair<Key, std::vector<std::byte>>>& dst,
                  std::vector<std::pair<Key, std::vector<std::byte>>>&& src) {
  std::vector<std::pair<Key, std::vector<std::byte>>> merged;
  merged.reserve(dst.size() + src.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < dst.size() && b < src.size()) {
    if (dst[a].first < src[b].first) {
      merged.push_back(std::move(dst[a++]));
    } else if (src[b].first < dst[a].first) {
      merged.push_back(std::move(src[b++]));
    } else {
      merged.push_back(std::move(src[b++]));
      ++a;
    }
  }
  while (a < dst.size()) merged.push_back(std::move(dst[a++]));
  while (b < src.size()) merged.push_back(std::move(src[b++]));
  dst = std::move(merged);
}

/// Folds a committed delta epoch onto the chain's folded base, exactly like
/// the Timeline folds its oldest delta into the base tick: full slices
/// replace, delta slices overwrite the dirtied keys and refresh cursors.
/// POIs absent from the delta keep their base state — between two epochs of
/// one plan version no key ever changes owner, so nothing can go stale.
void fold_into(Checkpoint& base, Checkpoint&& delta) {
  for (auto& [flat, pc] : delta.pois) {
    if (!pc.delta) {
      base.pois.insert_or_assign(flat, std::move(pc));
      continue;
    }
    PoiCheckpoint& dst = base.pois[flat];
    dst.op = pc.op;
    dst.index = pc.index;
    dst.flat = flat;
    dst.table_version = pc.table_version;
    dst.in_cursors = std::move(pc.in_cursors);
    dst.out_cursors = std::move(pc.out_cursors);
    dst.delta = false;
    merge_states(dst.states, std::move(pc.states));
  }
  base.epoch = delta.epoch;
  base.active_servers = delta.active_servers;
  base.plan_version = delta.plan_version;
  base.committed = true;
}

}  // namespace

DurableCheckpointStore::DurableCheckpointStore(DurableStoreOptions options)
    : options_(std::move(options)) {
  LAR_CHECK(!options_.dir.empty());
  LAR_CHECK(options_.compact_every >= 1);
  open_chain();
}

void DurableCheckpointStore::open_chain() {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  std::vector<std::pair<std::uint64_t, fs::path>> bases;
  std::vector<std::pair<std::uint64_t, fs::path>> deltas;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    std::uint64_t epoch = 0;
    bool delta = false;
    if (!parse_epoch_file_name(entry.path().filename().string(), epoch,
                               delta)) {
      continue;
    }
    (delta ? deltas : bases).emplace_back(epoch, entry.path());
  }
  std::sort(bases.begin(), bases.end());
  std::sort(deltas.begin(), deltas.end());

  // Newest valid base wins; a torn tail falls back to the one before it.
  Checkpoint chain;
  bool found = false;
  for (auto it = bases.rbegin(); it != bases.rend(); ++it) {
    auto loaded = decode_epoch_file(it->second);
    if (!loaded || loaded->delta || loaded->ck.epoch != it->first) continue;
    chain = std::move(loaded->ck);
    plan_bytes_ = std::move(loaded->plan_bytes);
    found = true;
    break;
  }
  if (!found) return;  // fresh directory (or nothing intact): empty store

  // Apply the contiguous run of valid deltas chained onto the base; the
  // first gap, checksum failure, or dangling back-reference ends the chain
  // — everything after it predates a failed write and is unreachable.
  std::uint32_t depth = 0;
  for (const auto& [epoch, path] : deltas) {
    if (epoch <= chain.epoch) continue;
    auto loaded = decode_epoch_file(path);
    if (!loaded || !loaded->delta || loaded->ck.epoch != epoch ||
        loaded->base_epoch != chain.epoch) {
      break;
    }
    fold_into(chain, std::move(loaded->ck));
    ++depth;
  }

  chain_plan_version_ = chain.plan_version;
  captured_states_ = chain.total_states();
  captured_state_bytes_ = chain.total_state_bytes();
  delta_depth_ = depth;
  need_full_ = false;
  last_committed_ = chain.epoch;
  if (!plan_bytes_.empty()) {
    auto plan = core::parse_plan(plan_bytes_.data(), plan_bytes_.size());
    if (plan.is_ok()) restored_plan_ = std::move(plan).value();
  }
  epochs_.emplace(chain.epoch, std::move(chain));
}

void DurableCheckpointStore::begin(std::uint64_t epoch,
                                   std::uint32_t active_servers,
                                   std::uint64_t plan_version) {
  std::lock_guard lock(mutex_);
  LAR_CHECK(epoch > last_committed_);
  Checkpoint& ck = epochs_[epoch];
  ck.epoch = epoch;
  ck.active_servers = active_servers;
  ck.plan_version = plan_version;
  open_epoch_ = epoch;
  // Full when: first epoch of a fresh chain, re-anchoring after a failed
  // write, or a plan-version change (keys may have migrated — folding a
  // delta across a wave could resurrect a key on its old owner).
  pending_delta_ = options_.incremental && !need_full_ &&
                   last_committed_ != 0 &&
                   plan_version == chain_plan_version_;
}

bool DurableCheckpointStore::epoch_is_delta(std::uint64_t epoch) const {
  std::lock_guard lock(mutex_);
  return pending_delta_ && epoch == open_epoch_;
}

void DurableCheckpointStore::note_plan(const core::ReconfigurationPlan& plan) {
  std::lock_guard lock(mutex_);
  plan_bytes_.clear();
  core::serialize_plan(plan, plan_bytes_);
  restored_plan_.reset();  // superseded: the live engine owns the tables now
}

void DurableCheckpointStore::commit(std::uint64_t epoch) {
  std::lock_guard lock(mutex_);
  auto it = epochs_.find(epoch);
  LAR_CHECK(it != epochs_.end());
  Checkpoint raw = std::move(it->second);
  raw.committed = true;
  captured_states_ = raw.total_states();
  captured_state_bytes_ = raw.total_state_bytes();
  const bool is_delta = pending_delta_ && epoch == open_epoch_;
  Checkpoint result;
  if (is_delta) {
    auto prev = epochs_.find(last_committed_);
    LAR_CHECK(prev != epochs_.end());
    const bool compact = delta_depth_ + 1 >= options_.compact_every;
    bool wrote_delta = false;
    if (!compact) {
      wrote_delta =
          write_epoch_file(raw, /*delta=*/true, last_committed_,
                           /*with_plan=*/false);
    }
    result = std::move(prev->second);
    fold_into(result, std::move(raw));
    if (compact) {
      // Every K-th delta commit writes the folded state as a new base
      // instead of another delta (the Timeline eviction move) and drops
      // the superseded files.
      if (write_epoch_file(result, /*delta=*/false, 0, /*with_plan=*/true)) {
        ++compactions_;
        delta_depth_ = 0;
        need_full_ = false;
        remove_superseded(epoch);
      }
    } else if (wrote_delta) {
      ++delta_depth_;
    }
  } else {
    if (write_epoch_file(raw, /*delta=*/false, 0, /*with_plan=*/true)) {
      delta_depth_ = 0;
      need_full_ = false;
      remove_superseded(epoch);
    }
    result = std::move(raw);
  }
  result.committed = true;
  it->second = std::move(result);
  last_committed_ = epoch;
  epochs_.erase(epochs_.begin(), it);
  chain_plan_version_ = it->second.plan_version;
  pending_delta_ = false;
  open_epoch_ = 0;
  publish_metrics();
}

bool DurableCheckpointStore::write_epoch_file(const Checkpoint& ck, bool delta,
                                              std::uint64_t base_epoch,
                                              bool with_plan) {
  static const std::vector<std::byte> kNoPlan;
  const std::vector<std::byte> buffer =
      encode_epoch(ck, delta, base_epoch, with_plan ? plan_bytes_ : kNoPlan);
  const fs::path path =
      fs::path(options_.dir) / epoch_file_name(ck.epoch, delta);
  const std::string tmp = path.string() + ".tmp";
  bool ok = options_.injector == nullptr ||
            !options_.injector->fire(chaos::FaultSite::kCkptIoError, ck.epoch);
  if (ok) {
    File file(std::fopen(tmp.c_str(), "wb"));
    ok = file != nullptr &&
         std::fwrite(buffer.data(), 1, buffer.size(), file.get()) ==
             buffer.size();
    file.reset();
    ok = ok && std::rename(tmp.c_str(), path.string().c_str()) == 0;
  }
  if (!ok) {
    std::remove(tmp.c_str());
    ++io_errors_;
    need_full_ = true;  // the on-disk chain stays a valid (shorter) prefix
    return false;
  }
  bytes_written_ += buffer.size();
  return true;
}

void DurableCheckpointStore::remove_superseded(std::uint64_t epoch) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    std::uint64_t e = 0;
    bool delta = false;
    if (!parse_epoch_file_name(entry.path().filename().string(), e, delta)) {
      continue;
    }
    if (e < epoch || (e == epoch && delta)) {
      std::error_code rm;
      fs::remove(entry.path(), rm);
    }
  }
}

void DurableCheckpointStore::publish_metrics() {
  if (options_.registry == nullptr) return;
  options_.registry
      ->counter("lar_ckpt_bytes_written_total", {},
                "Bytes written to durable epoch files.")
      .advance_to(bytes_written_);
  options_.registry
      ->counter("lar_ckpt_compactions_total", {},
                "Delta chains folded into a new durable base file.")
      .advance_to(compactions_);
  options_.registry
      ->gauge("lar_ckpt_delta_depth", {},
              "Delta files chained onto the current durable base.")
      .set(static_cast<double>(delta_depth_));
  if (io_errors_ > 0) {
    options_.registry
        ->counter("lar_ckpt_io_errors_total", {},
                  "Durable epoch writes that failed (chain re-anchored).")
        .advance_to(io_errors_);
  }
}

std::uint64_t DurableCheckpointStore::bytes_written() const {
  std::lock_guard lock(mutex_);
  return bytes_written_;
}
std::uint64_t DurableCheckpointStore::compactions() const {
  std::lock_guard lock(mutex_);
  return compactions_;
}
std::uint64_t DurableCheckpointStore::io_errors() const {
  std::lock_guard lock(mutex_);
  return io_errors_;
}
std::uint32_t DurableCheckpointStore::delta_depth() const {
  std::lock_guard lock(mutex_);
  return delta_depth_;
}

}  // namespace lar::ckpt
