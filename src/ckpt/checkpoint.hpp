// lar::ckpt — aligned checkpoints and exactly-once crash recovery.
//
// A checkpoint is one epoch-numbered *aligned barrier* round over the
// threaded runtime (the Chandy-Lamport discipline specialized to FIFO
// channels): the coordinator injects a barrier into every live source POI,
// each POI that has seen the barrier on ALL of its input links snapshots its
// per-key operator state plus its per-link sequence cursors into the
// CheckpointStore, forwards the barrier downstream and acknowledges.  Data
// arriving on a link whose barrier is already in (but whose siblings' are
// not) is held back until alignment completes, so the snapshot is a
// consistent cut: no tuple's effect is half in, half out.  The epoch commits
// only when every live POI has acknowledged; commit truncates the bounded
// per-link replay buffers kept at the senders.
//
// Recovery of a crashed server restores its POIs from the last *committed*
// checkpoint and replays from the surviving senders' replay buffers; the
// receivers' restored link cursors make the replay exactly-once (seq <=
// cursor is dropped, everything newer is applied in link order).
//
// The store surface is virtual: the in-memory CheckpointStore here is the
// default, and ckpt/durable.hpp derives a file-backed store that spills
// committed epochs to disk (incremental dirty-key deltas folded onto a full
// base, cold-restart recovery).  The engine only talks to the base surface.
//
// Everything here is deterministic and wall-clock-free: epochs are logical,
// the store keeps canonical (flat-index, key-ascending) order, and the
// crash schedule comes from a chaos::FaultPlan seed.  With no coordinator
// attached the whole subsystem is a structural no-op behind single
// null-checks (the registry/injector pattern).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/plan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topology/types.hpp"

namespace lar::ckpt {

/// One POI's slice of a checkpoint epoch: its serialized per-key state and
/// the link cursors that anchor replay.  All vectors are canonically sorted
/// (keys, link ids ascending) so two same-seed runs store identical bytes.
struct PoiCheckpoint {
  OperatorId op = 0;
  InstanceIndex index = 0;
  std::uint32_t flat = 0;  ///< engine flat POI index (store key)

  /// (key, opaque state bytes) for every key the instance owned at the
  /// barrier, ascending by key.  Reuses the MigrateMsg state codec: what
  /// export_key_state produced, import_key_state restores.
  std::vector<std::pair<Key, std::vector<std::byte>>> states;

  /// Inbound cursors: (producer link id, last sequence number applied
  /// before the barrier), ascending by link.  Restored into the receiver's
  /// dedup map so replayed tuples with seq <= cursor are dropped.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> in_cursors;

  /// Outbound cursors: (target link id, last sequence number sent before
  /// the barrier), ascending by target.  Doubles as the replay-buffer
  /// truncation watermark at commit and as the restored sender cursor, so a
  /// recovered POI's regenerated emissions reuse the original sequence
  /// numbers and downstream dedup absorbs them.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out_cursors;

  /// Reconfiguration version the POI had applied when it snapshotted (its
  /// routing-table epoch).  Recovery asserts this matches the engine's
  /// current version: a checkpoint predating a wave is never restored.
  std::uint64_t table_version = 0;

  /// True when `states` holds only the keys dirtied since this POI's
  /// previous snapshot (an incremental slice of a delta epoch); cursors are
  /// always complete.  The durable store folds delta slices onto the
  /// chain's base at commit; full slices replace the base's entry.
  bool delta = false;

  [[nodiscard]] std::uint64_t state_bytes() const noexcept {
    std::uint64_t b = 0;
    for (const auto& [key, state] : states) b += state.size();
    return b;
  }
};

/// One committed (or in-flight) checkpoint epoch.
struct Checkpoint {
  std::uint64_t epoch = 0;
  bool committed = false;

  /// Engine-level consistency anchors at barrier injection time.
  std::uint32_t active_servers = 0;
  std::uint64_t plan_version = 0;  ///< last deployed reconfiguration version

  /// flat POI index -> that POI's slice (ordered map: canonical iteration).
  std::map<std::uint32_t, PoiCheckpoint> pois;

  [[nodiscard]] std::uint64_t total_states() const noexcept {
    std::uint64_t n = 0;
    for (const auto& [flat, pc] : pois) n += pc.states.size();
    return n;
  }
  [[nodiscard]] std::uint64_t total_state_bytes() const noexcept {
    std::uint64_t b = 0;
    for (const auto& [flat, pc] : pois) b += pc.state_bytes();
    return b;
  }
};

/// Cheap header view of the last committed epoch: everything recovery has
/// to validate (and the stats the engine publishes) without copying any
/// state under the store mutex.
struct CheckpointMeta {
  std::uint64_t epoch = 0;
  bool committed = false;
  std::uint32_t active_servers = 0;
  std::uint64_t plan_version = 0;
  std::uint64_t pois = 0;
  std::uint64_t total_states = 0;
  std::uint64_t total_state_bytes = 0;

  /// What the epoch's barrier round actually captured, before any delta
  /// folding: equals the totals for the in-memory store, the raw delta
  /// volume for the durable store's incremental epochs.
  std::uint64_t captured_states = 0;
  std::uint64_t captured_state_bytes = 0;
};

/// Deterministic in-memory checkpoint store.  Thread-safe: POI threads add
/// their slices concurrently during alignment; the coordinator thread
/// begins/commits epochs and recovery reads committed ones.  Keeps the last
/// committed epoch plus the one in flight (earlier epochs are dropped at
/// commit — the replay buffers are truncated to the same horizon, so older
/// checkpoints could never be replayed to anyway).
class CheckpointStore {
 public:
  CheckpointStore() = default;
  virtual ~CheckpointStore() = default;
  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// Opens `epoch` for POI slices.  Called by the coordinator before the
  /// barriers go out.
  virtual void begin(std::uint64_t epoch, std::uint32_t active_servers,
                     std::uint64_t plan_version);

  /// Adds one POI's slice to the open epoch (POI threads, concurrent).
  virtual void add(std::uint64_t epoch, PoiCheckpoint poi);

  /// Marks `epoch` committed and drops every older epoch.
  virtual void commit(std::uint64_t epoch);

  /// True when the engine should track dirty keys and snapshot only deltas
  /// on delta epochs.  The in-memory store snapshots everything, always.
  [[nodiscard]] virtual bool incremental() const noexcept { return false; }

  /// True when the epoch just opened by begin() wants delta slices from
  /// delta-capable POIs.  The engine stamps the answer onto the barrier.
  [[nodiscard]] virtual bool epoch_is_delta(std::uint64_t /*epoch*/) const {
    return false;
  }

  /// Hands the store the engine's current deployed routing configuration
  /// (called after every wave deploy).  The durable store serializes it
  /// into the next full epoch file so a cold restart can restore tables.
  virtual void note_plan(const core::ReconfigurationPlan& /*plan*/) {}

  /// The routing configuration recovered from disk at open, if any.  Valid
  /// until the next note_plan(); null for the in-memory store.
  [[nodiscard]] virtual const core::ReconfigurationPlan* restored_plan()
      const noexcept {
    return nullptr;
  }

  /// Epoch number of the last committed checkpoint (0 = none yet).
  [[nodiscard]] std::uint64_t last_committed_epoch() const;

  /// Copy of the last committed checkpoint (empty-epoch 0 if none).  Cold
  /// restart uses this; crash recovery wants last_committed_slices().
  [[nodiscard]] Checkpoint last_committed() const;

  /// Header of the last committed checkpoint without copying any state.
  [[nodiscard]] CheckpointMeta last_committed_meta() const;

  /// Only the slices of `flats` (ascending) from the last committed epoch —
  /// what crash recovery copies instead of the whole fleet's state.
  [[nodiscard]] std::map<std::uint32_t, PoiCheckpoint> last_committed_slices(
      const std::vector<std::uint32_t>& flats) const;

  [[nodiscard]] std::size_t num_epochs_held() const;

 protected:
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Checkpoint> epochs_;
  std::uint64_t last_committed_ = 0;

  /// Raw capture volume of the last committed epoch (set by commit, before
  /// any folding).
  std::uint64_t captured_states_ = 0;
  std::uint64_t captured_state_bytes_ = 0;
};

/// Drives checkpoint epochs for one engine: owns the store and the epoch
/// counter, and publishes `lar_ckpt_*` metric families (only when attached
/// — a registry never sees them otherwise, keeping chaos-free exports
/// byte-identical).  The engine calls begin_epoch()/committed() from its
/// driver thread, exactly like the gather loop drives GET_METRICS.
class CheckpointCoordinator {
 public:
  /// In-memory store.  `registry` / `trace` may be null; when given they
  /// must outlive the coordinator.
  explicit CheckpointCoordinator(obs::Registry* registry = nullptr,
                                 obs::TraceRecorder* trace = nullptr);

  /// Custom (e.g. durable) store.  Epoch numbering continues from the
  /// store's last committed epoch, so a cold restart never reuses one.
  explicit CheckpointCoordinator(std::unique_ptr<CheckpointStore> store,
                                 obs::Registry* registry = nullptr,
                                 obs::TraceRecorder* trace = nullptr);

  CheckpointCoordinator(const CheckpointCoordinator&) = delete;
  CheckpointCoordinator& operator=(const CheckpointCoordinator&) = delete;

  [[nodiscard]] CheckpointStore& store() noexcept { return *store_; }
  [[nodiscard]] const CheckpointStore& store() const noexcept {
    return *store_;
  }

  /// Allocates the next epoch number and opens it in the store.
  std::uint64_t begin_epoch(std::uint32_t active_servers,
                            std::uint64_t plan_version);

  /// Commits `epoch`: seals the store, bumps the commit counters and
  /// records a kCheckpoint trace event (count = POIs, bytes = state bytes).
  void committed(std::uint64_t epoch);

  /// Records one recovery round (kCrash + kRecover trace events plus the
  /// crash/recovery counters).  `server` is the crashed server id,
  /// `pois` how many POIs were restored, `states`/`bytes` what the restore
  /// imported, `replayed` how many tuples the senders replayed.
  void recovered(std::uint64_t epoch, std::uint32_t server,
                 std::uint64_t pois, std::uint64_t states,
                 std::uint64_t bytes, std::uint64_t replayed);

  [[nodiscard]] std::uint64_t checkpoints_committed() const noexcept {
    return commits_;
  }
  [[nodiscard]] std::uint64_t crashes_recovered() const noexcept {
    return recoveries_;
  }

 private:
  std::unique_ptr<CheckpointStore> store_;
  obs::Registry* registry_;
  obs::TraceRecorder* trace_;
  std::uint64_t next_epoch_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace lar::ckpt
