// lar::ckpt durability — a file-backed CheckpointStore.
//
// DurableCheckpointStore keeps the exact in-memory semantics of the base
// store (the engine and crash recovery never see a delta: the committed
// view is always the folded full state) and additionally spills every
// committed epoch to one file in a store directory:
//
//   epoch-<epoch, 20-digit>.base    full epoch: every POI's complete state,
//                                   plus the engine's deployed routing
//                                   configuration (core/snapshot codec), so
//                                   one base file is a self-contained cut
//   epoch-<epoch, 20-digit>.delta   incremental epoch: only the keys each
//                                   delta-capable POI dirtied since its
//                                   previous snapshot; cursors complete;
//                                   chains onto the previous epoch
//
// Every file is framed with a total length and a seeded checksum
// (common/checksum.hpp) and written via write-to-temp + atomic rename, so a
// torn write is detected at open and recovery falls back to the previous
// committed epoch: open scans for the newest valid base, then applies the
// contiguous run of valid deltas chained onto it and stops at the first
// gap.  A failed write (real I/O error or an injected chaos `ckpt_io_error`)
// never touches existing files — it marks the chain broken so the *next*
// epoch is taken full and re-anchors it.
//
// Compaction mirrors the Timeline's delta eviction (DESIGN.md §12): every
// K-th delta commit writes the folded full state as a new base instead of
// another delta, then drops the superseded files; wave auto-checkpoints
// compact for free because a plan-version change forces a full epoch (keys
// migrate between plan versions, and delta folding must never resurrect a
// key on its old owner).
//
// Determinism: epoch files are byte-identical across same-seed runs — the
// payload iterates the canonical (flat, key-ascending) store order, the
// plan section uses core::serialize_plan's sorted-table order, and the
// checksum is seeded arithmetic, never std::hash.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chaos/injector.hpp"
#include "ckpt/checkpoint.hpp"
#include "core/plan.hpp"
#include "obs/metrics.hpp"

namespace lar::ckpt {

/// Configuration for a DurableCheckpointStore.
struct DurableStoreOptions {
  /// Store directory; created if absent.  One engine per directory.
  std::string dir;

  /// Fold the chain into a new base every K delta commits ("compact").
  std::uint32_t compact_every = 8;

  /// When false, every epoch is taken and written full — the ablation
  /// baseline.  When true (default), the engine tracks dirty keys and
  /// delta-capable POIs snapshot only the delta on chained epochs.
  bool incremental = true;

  /// Optional observability: lar_ckpt_bytes_written_total /
  /// lar_ckpt_compactions_total / lar_ckpt_delta_depth register only when a
  /// durable store commits (plus lar_ckpt_io_errors_total once a write has
  /// failed).  Must outlive the store when given.
  obs::Registry* registry = nullptr;

  /// Optional chaos: each epoch-file write consults FaultSite::kCkptIoError
  /// (entity = epoch).  Must outlive the store when given.
  chaos::Injector* injector = nullptr;
};

/// File-backed checkpoint store; see the file comment for the protocol.
class DurableCheckpointStore final : public CheckpointStore {
 public:
  /// Opens `options.dir`, recovering the newest valid epoch chain into the
  /// in-memory committed view (so a fresh Engine restores from it before
  /// admitting traffic).  Torn or corrupt tail files are skipped.
  explicit DurableCheckpointStore(DurableStoreOptions options);

  void begin(std::uint64_t epoch, std::uint32_t active_servers,
             std::uint64_t plan_version) override;
  void commit(std::uint64_t epoch) override;

  [[nodiscard]] bool incremental() const noexcept override {
    return options_.incremental;
  }
  [[nodiscard]] bool epoch_is_delta(std::uint64_t epoch) const override;
  void note_plan(const core::ReconfigurationPlan& plan) override;
  [[nodiscard]] const core::ReconfigurationPlan* restored_plan()
      const noexcept override {
    return restored_plan_ ? &*restored_plan_ : nullptr;
  }

  /// Stats (driver-thread reads; also published as lar_ckpt_* metrics).
  [[nodiscard]] std::uint64_t bytes_written() const;
  [[nodiscard]] std::uint64_t compactions() const;
  [[nodiscard]] std::uint64_t io_errors() const;
  [[nodiscard]] std::uint32_t delta_depth() const;

 private:
  /// Reads the chain back from disk (constructor body).
  void open_chain();

  /// Serializes `ck` and writes epoch file `epoch-<epoch>.<kind>`; returns
  /// false (and marks the chain broken) on injected or real write failure.
  bool write_epoch_file(const Checkpoint& ck, bool delta,
                        std::uint64_t base_epoch, bool with_plan);

  /// Drops every epoch file superseded by the new base `epoch`.
  void remove_superseded(std::uint64_t epoch);

  void publish_metrics();

  DurableStoreOptions options_;

  /// Epoch currently open (begin() ran, commit() pending) and whether it
  /// was opened as a delta.
  std::uint64_t open_epoch_ = 0;
  bool pending_delta_ = false;

  /// Plan version anchored by the chain's tip; a differing begin() forces a
  /// full epoch (keys may have migrated).
  std::uint64_t chain_plan_version_ = 0;

  /// True after a failed write: the on-disk chain is a valid prefix only,
  /// so the next epoch must be full to re-anchor it.
  bool need_full_ = true;  ///< first epoch of a fresh chain is always full

  std::uint32_t delta_depth_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t io_errors_ = 0;

  /// Serialized current routing configuration (core::serialize_plan),
  /// embedded in every base file; refreshed by note_plan().
  std::vector<std::byte> plan_bytes_;

  /// Routing configuration recovered from the chain's base file at open.
  std::optional<core::ReconfigurationPlan> restored_plan_;
};

}  // namespace lar::ckpt
