#!/usr/bin/env bash
# One-command verification gate (referenced from CLAUDE.md):
#
#   scripts/check.sh            # configure + build (zero warnings), full
#                               # ctest, TSan obs+chaos+elastic+ckpt+queue+
#                               # split, ASan ckpt+queue+split, perf smoke,
#                               # runtime throughput floor + batch
#                               # equivalence, obs v2 byte-identity,
#                               # elasticity + checkpoint + split ablation
#                               # self-checks
#
# Exits nonzero on the first failure.  Build trees: build/ (release-ish,
# whatever CMakeLists defaults to), build-tsan/ (-DLAR_SANITIZE=thread) and
# build-asan/ (-DLAR_SANITIZE=address, which expands to ASan+UBSan).
set -euo pipefail
cd "$(dirname "$0")/.."

log() { printf '\n== %s ==\n' "$*"; }

log "configure + build (zero warnings expected)"
cmake -B build -G Ninja >/dev/null
build_log=$(cmake --build build 2>&1) || { printf '%s\n' "$build_log"; exit 1; }
if printf '%s\n' "$build_log" | grep -E 'warning|Warning' >&2; then
  echo "FAIL: build produced warnings" >&2
  exit 1
fi

log "full test suite"
ctest --test-dir build -j "$(nproc)" --output-on-failure

log "split label (degree selection, split routing, exactly-once merge)"
ctest --test-dir build -L split --output-on-failure

log "ThreadSanitizer: obs + chaos + elastic + ckpt + queue + split (registry, wave, injector, scale, recovery, lane, replica races)"
cmake -B build-tsan -G Ninja -DLAR_SANITIZE=thread >/dev/null
cmake --build build-tsan >/dev/null
ctest --test-dir build-tsan -L 'obs|chaos|elastic|ckpt|queue|split' --output-on-failure

log "AddressSanitizer+UBSan: ckpt + queue + split (crash recovery frees/respawns state under load; lane slot reuse; replica partials)"
cmake -B build-asan -G Ninja -DLAR_SANITIZE=address >/dev/null
cmake --build build-asan >/dev/null
ctest --test-dir build-asan -L 'ckpt|queue|split' --output-on-failure

log "perf smoke (devirtualized-routing + channel hand-off differential checks)"
./build/bench/micro_hotpath --ops 20000 >/dev/null

log "runtime throughput floor + lane_batch degenerate-batch equivalence"
# micro_engine replays the same stream with lane_batch 1 and fails on any
# per-key count divergence — the batched hand-off must be semantics-free.
# (fig13 cannot host that check: it is simulator-only and never touches the
# runtime's lanes, so the batch-equivalence gate lives here.)  The floor is
# deliberately loose — an order of magnitude under a healthy run — so it
# catches a structurally broken fast path, not machine noise.
./build/bench/micro_engine --tuples 200000 --min-tps 100000 >/dev/null

log "obs v2 byte-identity (fig13 with spans+timeline+probe attached, twice same-seed)"
obs_a=$(mktemp -d); obs_b=$(mktemp -d)
(cd "$obs_a" && "$OLDPWD"/build/bench/fig13_reconfig_timeline >/dev/null)
(cd "$obs_b" && "$OLDPWD"/build/bench/fig13_reconfig_timeline >/dev/null)
diff "$obs_a"/BENCH_fig13_reconfig_timeline.json \
     "$obs_b"/BENCH_fig13_reconfig_timeline.json
diff "$obs_a"/TIMELINE_fig13_reconfig_timeline.json \
     "$obs_b"/TIMELINE_fig13_reconfig_timeline.json
rm -rf "$obs_a" "$obs_b"

log "elasticity ablation (self-checking: byte-identity, conservation, locality)"
elastic_dir=$(mktemp -d)
(cd "$elastic_dir" && "$OLDPWD"/build/bench/ablate_elastic >/dev/null)
rm -rf "$elastic_dir"

log "checkpoint ablation (self-checking: same-seed byte-identity)"
ckpt_dir=$(mktemp -d)
(cd "$ckpt_dir" && "$OLDPWD"/build/bench/ablate_ckpt >/dev/null)
rm -rf "$ckpt_dir"

log "split ablation (self-checking: byte-identity, balance held, tail locality within 5%)"
split_dir=$(mktemp -d)
(cd "$split_dir" && "$OLDPWD"/build/bench/ablate_split >/dev/null)
rm -rf "$split_dir"

echo
echo "OK: build clean, all tests green, TSan + ASan clean, perf + runtime-floor + elastic + ckpt + split smoke passed"
