#!/usr/bin/env bash
# One-command verification gate (referenced from CLAUDE.md):
#
#   scripts/check.sh            # configure + build (zero warnings), full
#                               # ctest, TSan obs+chaos+elastic+ckpt+queue+
#                               # split+fleet, ASan ckpt+queue+split+fleet,
#                               # perf smoke, runtime throughput floor +
#                               # batch equivalence, obs v2 byte-identity,
#                               # elasticity + checkpoint + split + fleet
#                               # ablation self-checks, single-tenant
#                               # byte-identity
#
# Exits nonzero on the first failure.  Build trees: build/ (release-ish,
# whatever CMakeLists defaults to), build-tsan/ (-DLAR_SANITIZE=thread) and
# build-asan/ (-DLAR_SANITIZE=address, which expands to ASan+UBSan).
set -euo pipefail
cd "$(dirname "$0")/.."

log() { printf '\n== %s ==\n' "$*"; }

log "configure + build (zero warnings expected)"
cmake -B build -G Ninja >/dev/null
build_log=$(cmake --build build 2>&1) || { printf '%s\n' "$build_log"; exit 1; }
if printf '%s\n' "$build_log" | grep -E 'warning|Warning' >&2; then
  echo "FAIL: build produced warnings" >&2
  exit 1
fi

log "full test suite"
ctest --test-dir build -j "$(nproc)" --output-on-failure

log "split label (degree selection, split routing, exactly-once merge)"
ctest --test-dir build -L split --output-on-failure

log "ThreadSanitizer: obs + chaos + elastic + ckpt + queue + split + fleet (registry, wave, injector, scale, recovery, lane, replica, staggered-wave races)"
cmake -B build-tsan -G Ninja -DLAR_SANITIZE=thread >/dev/null
cmake --build build-tsan >/dev/null
ctest --test-dir build-tsan -L 'obs|chaos|elastic|ckpt|queue|split|fleet' --output-on-failure

log "AddressSanitizer+UBSan: ckpt + queue + split + fleet (crash recovery frees/respawns state under load; lane slot reuse; replica partials; tenant slices)"
cmake -B build-asan -G Ninja -DLAR_SANITIZE=address >/dev/null
cmake --build build-asan >/dev/null
ctest --test-dir build-asan -L 'ckpt|queue|split|fleet' --output-on-failure

log "perf smoke (devirtualized-routing + channel hand-off differential checks)"
./build/bench/micro_hotpath --ops 20000 >/dev/null

log "runtime throughput floor + lane_batch degenerate-batch equivalence"
# micro_engine replays the same stream with lane_batch 1 and fails on any
# per-key count divergence — the batched hand-off must be semantics-free.
# (fig13 cannot host that check: it is simulator-only and never touches the
# runtime's lanes, so the batch-equivalence gate lives here.)  The floor is
# deliberately loose — an order of magnitude under a healthy run — so it
# catches a structurally broken fast path, not machine noise.
./build/bench/micro_engine --tuples 200000 --min-tps 100000 >/dev/null

log "obs v2 byte-identity (fig13 with spans+timeline+probe attached, twice same-seed)"
obs_a=$(mktemp -d); obs_b=$(mktemp -d)
(cd "$obs_a" && "$OLDPWD"/build/bench/fig13_reconfig_timeline >/dev/null)
(cd "$obs_b" && "$OLDPWD"/build/bench/fig13_reconfig_timeline >/dev/null)
diff "$obs_a"/BENCH_fig13_reconfig_timeline.json \
     "$obs_b"/BENCH_fig13_reconfig_timeline.json
diff "$obs_a"/TIMELINE_fig13_reconfig_timeline.json \
     "$obs_b"/TIMELINE_fig13_reconfig_timeline.json
rm -rf "$obs_a" "$obs_b"

log "elasticity ablation (self-checking: byte-identity, conservation, locality)"
elastic_dir=$(mktemp -d)
(cd "$elastic_dir" && "$OLDPWD"/build/bench/ablate_elastic >/dev/null)
rm -rf "$elastic_dir"

log "checkpoint + durability ablation (twice: BENCH json AND durable store files byte-identical across processes)"
# ablate_ckpt already self-checks within one process (reports + store dirs
# per cell); running the whole bench twice and diffing the working trees —
# epoch-*.base / epoch-*.delta files included — pins the durable format's
# cross-process same-seed byte-identity.
ckpt_a=$(mktemp -d); ckpt_b=$(mktemp -d)
(cd "$ckpt_a" && "$OLDPWD"/build/bench/ablate_ckpt >/dev/null)
(cd "$ckpt_b" && "$OLDPWD"/build/bench/ablate_ckpt >/dev/null)
diff -r "$ckpt_a" "$ckpt_b"
rm -rf "$ckpt_a" "$ckpt_b"

log "split ablation (self-checking: byte-identity, balance held, tail locality within 5%)"
split_dir=$(mktemp -d)
(cd "$split_dir" && "$OLDPWD"/build/bench/ablate_split >/dev/null)
rm -rf "$split_dir"

log "fleet ablation (self-checking: byte-identity, conservation, joint beats independent on shared-server imbalance)"
fleet_dir=$(mktemp -d)
(cd "$fleet_dir" && "$OLDPWD"/build/bench/ablate_fleet >/dev/null)
rm -rf "$fleet_dir"

log "single-tenant full-suite byte-identity (every fig bench, twice, stdout + artifacts)"
# lar::fleet (like chaos/ckpt/elastic/split before it) must be a structural
# no-op when no FleetManager is attached: every paper-figure bench runs the
# single-tenant path end to end, so any byte-level shift — stdout tables or
# emitted BENCH_/TIMELINE_ artifacts — across two same-build runs is the
# canary for fleet (or any) state leaking into the deterministic outputs.
single_a=$(mktemp -d); single_b=$(mktemp -d)
for b in build/bench/fig*; do
  name=$(basename "$b")
  (cd "$single_a" && "$OLDPWD/$b" > "$name.out")
  (cd "$single_b" && "$OLDPWD/$b" > "$name.out")
done
diff -r "$single_a" "$single_b"
rm -rf "$single_a" "$single_b"

echo
echo "OK: build clean, all tests green, TSan + ASan clean, perf + runtime-floor + elastic + ckpt + split + fleet smoke passed"
