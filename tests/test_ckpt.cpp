// Tests for lar::ckpt: the deterministic checkpoint store, aligned barrier
// checkpoints over the threaded runtime, exactly-once crash recovery under
// the chaos `server_crash` site, recovery ordering against reconfiguration
// and elastic resizes, and the disabled mode's byte-identity.
//
// The exactly-once harness mirrors test_chaos.cpp: ground-truth per-key
// counts recorded at inject time must equal the summed per-instance counts
// after the stream drains — killing a server mid-stream may not lose or
// duplicate a single tuple's effect.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "ckpt/checkpoint.hpp"
#include "core/manager.hpp"
#include "obs/export.hpp"
#include "runtime/engine.hpp"
#include "sim/simulator.hpp"
#include "sketch/exact_counter.hpp"
#include "workload/synthetic.hpp"

namespace lar {
namespace {

using chaos::FaultPlan;
using chaos::FaultSite;

// --- CheckpointStore ---------------------------------------------------------

ckpt::PoiCheckpoint sample_slice(std::uint32_t flat, Key key,
                                 std::uint64_t count) {
  ckpt::PoiCheckpoint pc;
  pc.op = 1;
  pc.index = flat;
  pc.flat = flat;
  std::vector<std::byte> state(sizeof count);
  std::memcpy(state.data(), &count, sizeof count);
  pc.states.emplace_back(key, std::move(state));
  pc.in_cursors.emplace_back(0, 10 * flat);
  pc.out_cursors.emplace_back(1, 20 * flat);
  return pc;
}

TEST(CheckpointStore, CommitSealsAndDropsOlderEpochs) {
  ckpt::CheckpointStore store;
  store.begin(1, /*active_servers=*/3, /*plan_version=*/0);
  store.add(1, sample_slice(0, 7, 42));
  store.add(1, sample_slice(1, 9, 17));
  EXPECT_EQ(store.last_committed_epoch(), 0u);
  store.commit(1);
  EXPECT_EQ(store.last_committed_epoch(), 1u);
  const ckpt::Checkpoint c1 = store.last_committed();
  EXPECT_TRUE(c1.committed);
  EXPECT_EQ(c1.pois.size(), 2u);
  EXPECT_EQ(c1.total_states(), 2u);
  EXPECT_EQ(c1.total_state_bytes(), 16u);
  EXPECT_EQ(c1.pois.at(0).states[0].first, 7u);

  // A later epoch commits: the older one is dropped (its replay horizon is
  // gone), only the newest is held.
  store.begin(2, 3, 0);
  store.add(2, sample_slice(0, 7, 50));
  store.commit(2);
  EXPECT_EQ(store.num_epochs_held(), 1u);
  EXPECT_EQ(store.last_committed().epoch, 2u);
}

TEST(CheckpointCoordinator, EpochsAreMonotonicAndObservable) {
  obs::Registry registry;
  obs::TraceRecorder trace;
  ckpt::CheckpointCoordinator coord(&registry, &trace);
  EXPECT_EQ(coord.begin_epoch(4, 0), 1u);
  coord.store().add(1, sample_slice(2, 3, 5));
  coord.committed(1);
  EXPECT_EQ(coord.begin_epoch(4, 0), 2u);
  coord.committed(2);
  EXPECT_EQ(coord.checkpoints_committed(), 2u);
  EXPECT_EQ(registry.counter("lar_ckpt_checkpoints_total", {}).value(), 2u);
  int checkpoints = 0;
  for (const obs::TraceEvent& ev : trace.events()) {
    checkpoints += ev.phase == obs::Phase::kCheckpoint;
  }
  EXPECT_EQ(checkpoints, 2);
  coord.recovered(/*epoch=*/2, /*server=*/1, /*pois=*/3, /*states=*/10,
                  /*bytes=*/80, /*replayed=*/25);
  EXPECT_EQ(coord.crashes_recovered(), 1u);
  EXPECT_EQ(registry.counter("lar_ckpt_crashes_recovered_total", {}).value(),
            1u);
}

// --- FaultPlan: the server_crash site -----------------------------------------

TEST(FaultPlanCkpt, ServerCrashDecisionIsPureAndIndependent) {
  const FaultPlan a = FaultPlan::uniform(42, 0.3);
  const FaultPlan b = FaultPlan::uniform(42, 0.3);
  int fired = 0;
  int disagreements = 0;
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    const bool hit = a.should_inject(FaultSite::kServerCrash, 1, seq);
    EXPECT_EQ(hit, b.should_inject(FaultSite::kServerCrash, 1, seq));
    fired += hit;
    disagreements +=
        hit != a.should_inject(FaultSite::kChannelDelay, 1, seq);
  }
  // The new site draws from its own salted stream: correlated with nothing.
  EXPECT_GT(fired, 80);
  EXPECT_LT(fired, 220);
  EXPECT_GT(disagreements, 100);
  EXPECT_EQ(chaos::to_string(FaultSite::kServerCrash),
            std::string("server_crash"));
}

// --- engine fixtures (mirrors test_chaos.cpp) --------------------------------

runtime::OperatorFactory counting_factory() {
  return [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
    if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
    return std::make_unique<runtime::CountingOperator>(op == 1 ? 0 : 1);
  };
}

runtime::CountingOperator& counter_at(runtime::Engine& engine, OperatorId op,
                                      InstanceIndex i) {
  return static_cast<runtime::CountingOperator&>(engine.operator_at(op, i));
}

struct GroundTruth {
  sketch::ExactCounter<Key> field0;
  sketch::ExactCounter<Key> field1;
};

void pump(runtime::Engine& engine, workload::TupleGenerator& gen, int n,
          GroundTruth* truth = nullptr) {
  for (int i = 0; i < n; ++i) {
    Tuple t = gen.next();
    if (truth != nullptr) {
      truth->field0.add(t.fields[0]);
      truth->field1.add(t.fields[1]);
    }
    engine.inject(std::move(t));
  }
}

/// Exactly-once: per key, summed counts across instances equal ground truth
/// and exactly one instance holds the key.  `live_below` restricts the
/// holder check to the active prefix (elastic tests).
void expect_counts_match(runtime::Engine& engine, OperatorId op,
                         std::uint32_t par,
                         const sketch::ExactCounter<Key>& truth) {
  for (const auto& entry : truth.entries()) {
    std::uint64_t sum = 0;
    int holders = 0;
    for (InstanceIndex i = 0; i < par; ++i) {
      const std::uint64_t c = counter_at(engine, op, i).count(entry.key);
      sum += c;
      holders += (c > 0);
    }
    ASSERT_EQ(sum, entry.count) << "op " << op << " key " << entry.key;
    ASSERT_EQ(holders, 1) << "op " << op << " key " << entry.key
                          << " split across instances";
  }
}

class Feeder {
 public:
  Feeder(runtime::Engine& engine, GroundTruth& truth,
         workload::TupleGenerator& gen)
      : thread_([this, &engine, &truth, &gen] {
          while (!stop_.load()) {
            Tuple t = gen.next();
            truth.field0.add(t.fields[0]);
            truth.field1.add(t.fields[1]);
            engine.inject(std::move(t));
          }
        }) {}

  void stop() {
    stop_ = true;
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// --- disabled mode -----------------------------------------------------------

// With lar_ckpt linked but no coordinator attached the runtime must behave
// exactly as before: zero ckpt counters and no lar_ckpt_* metric families in
// the export (so pre-ckpt golden outputs stay byte-identical).
TEST(CkptDisabled, NoCoordinatorMeansNoCkptFamilies) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  obs::Registry registry;
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .registry = &registry});
  engine.start();
  core::Manager mgr(topo, place, {});
  GroundTruth truth;
  workload::SyntheticGenerator gen(
      {.num_values = 60, .locality = 0.8, .padding = 0, .seed = 51});
  pump(engine, gen, 10'000, &truth);
  engine.flush();
  engine.reconfigure(mgr);
  engine.flush();
  engine.publish_metrics();
  expect_counts_match(engine, 1, n, truth.field0);
  const auto m = engine.metrics();
  EXPECT_EQ(m.checkpoints_committed, 0u);
  EXPECT_EQ(m.crashes, 0u);
  EXPECT_EQ(m.tuples_replayed, 0u);
  EXPECT_EQ(obs::to_prometheus(registry).find("lar_ckpt_"),
            std::string::npos);
  engine.shutdown();
}

// fig13-style simulator run, twice: lar::ckpt must not perturb the
// performance substrate at all — the sim takes no ckpt hooks, so its full
// report stays byte-identical and free of lar_ckpt_* families.
TEST(CkptDisabled, SimReportStaysByteIdentical) {
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  auto run = [&]() -> std::string {
    sim::SimConfig cfg;
    cfg.source_mode = SourceMode::kRoundRobin;
    cfg.seed = 3;
    sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
    core::Manager mgr(topo, place, {});
    workload::SyntheticGenerator gen(
        {.num_values = 60, .locality = 0.8, .padding = 16, .seed = 52});
    for (int cycle = 0; cycle < 3; ++cycle) {
      simulator.run_window(gen, 4000);
      simulator.reconfigure(mgr);
    }
    return obs::report_json(simulator.registry(), &simulator.trace());
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_EQ(first.find("lar_ckpt_"), std::string::npos);
}

// --- aligned checkpoints -----------------------------------------------------

TEST(Ckpt, AlignedCheckpointCommitsAndTruncates) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  obs::Registry registry;
  ckpt::CheckpointCoordinator coord(&registry);
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .registry = &registry,
                          .checkpoint = &coord});
  engine.start();
  GroundTruth truth;
  workload::SyntheticGenerator gen(
      {.num_values = 60, .locality = 0.8, .padding = 0, .seed = 53});
  pump(engine, gen, 10'000, &truth);
  engine.flush();

  EXPECT_EQ(engine.checkpoint(), 1u);
  const ckpt::Checkpoint c1 = coord.store().last_committed();
  EXPECT_TRUE(c1.committed);
  // Every live POI contributed a slice (3 ops x n instances).
  EXPECT_EQ(c1.pois.size(), 3u * n);
  EXPECT_GT(c1.total_states(), 0u);
  EXPECT_GT(c1.total_state_bytes(), 0u);
  // The quiescent stream is fully inside the cut: the snapshotted counts
  // sum to the injected tuple count for the field-0 counting stage.
  std::uint64_t snapshotted = 0;
  for (const auto& [flat, pc] : c1.pois) {
    if (pc.op != 1) continue;
    for (const auto& [key, state] : pc.states) {
      std::uint64_t count = 0;
      ASSERT_EQ(state.size(), sizeof count);
      std::memcpy(&count, state.data(), sizeof count);
      snapshotted += count;
    }
  }
  EXPECT_EQ(snapshotted, 10'000u);

  pump(engine, gen, 2'000, &truth);
  engine.flush();
  EXPECT_EQ(engine.checkpoint(), 2u);
  // Only the newest committed epoch is held.
  EXPECT_EQ(coord.store().num_epochs_held(), 1u);
  EXPECT_EQ(coord.store().last_committed_epoch(), 2u);
  const auto m = engine.metrics();
  EXPECT_EQ(m.checkpoints_committed, 2u);
  EXPECT_GT(m.ckpt_states_captured, 0u);
  engine.publish_metrics();
  const std::string prom = obs::to_prometheus(registry);
  EXPECT_NE(prom.find("lar_ckpt_checkpoints_total"), std::string::npos);
  EXPECT_NE(prom.find("lar_ckpt_states_captured_total"), std::string::npos);
  expect_counts_match(engine, 1, n, truth.field0);
  engine.shutdown();
}

TEST(Ckpt, BarriersAlignAgainstALiveStream) {
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  ckpt::CheckpointCoordinator coord;
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .checkpoint = &coord});
  engine.start();
  GroundTruth truth;
  workload::SyntheticGenerator gen(
      {.num_values = 90, .locality = 0.8, .padding = 0, .seed = 54});
  Feeder feeder(engine, truth, gen);
  for (int round = 0; round < 5; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    engine.checkpoint();
  }
  feeder.stop();
  engine.flush();
  EXPECT_EQ(coord.checkpoints_committed(), 5u);
  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  engine.shutdown();
}

// --- crash + recovery --------------------------------------------------------

TEST(Ckpt, CrashRecoveryIsExactlyOnceAgainstALiveStream) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  obs::Registry registry;
  obs::TraceRecorder trace;
  ckpt::CheckpointCoordinator coord(&registry, &trace);
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .registry = &registry,
                          .trace = &trace,
                          .checkpoint = &coord});
  engine.start();
  GroundTruth truth;
  workload::SyntheticGenerator gen(
      {.num_values = 90, .locality = 0.8, .padding = 0, .seed = 55});
  Feeder feeder(engine, truth, gen);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  engine.checkpoint();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  engine.crash_and_recover(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  engine.checkpoint();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  engine.crash_and_recover(2);
  feeder.stop();
  engine.flush();

  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  const auto m = engine.metrics();
  EXPECT_EQ(m.crashes, 2u);
  // Each crash rolls back the server's 3 POIs plus the downstream closure:
  // all n counting instances of both stages (the server's own two are
  // already counted), while the surviving sources keep running.
  EXPECT_EQ(m.pois_recovered, 2u * (3u + 2u * (n - 1)));
  EXPECT_GT(m.states_restored, 0u);
  EXPECT_GT(m.tuples_replayed, 0u);
  EXPECT_EQ(coord.crashes_recovered(), 2u);
  int crash_events = 0;
  for (const obs::TraceEvent& ev : trace.events()) {
    crash_events += ev.phase == obs::Phase::kCrash;
  }
  EXPECT_EQ(crash_events, 2);
  engine.shutdown();
}

// Server 0 hosts source POIs: recovering it replays from the inject log
// (the coordinator pseudo-link), not from an upstream POI.
TEST(Ckpt, SourceServerCrashReplaysTheInjectLog) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  ckpt::CheckpointCoordinator coord;
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .checkpoint = &coord});
  engine.start();
  GroundTruth truth;
  workload::SyntheticGenerator gen(
      {.num_values = 60, .locality = 0.8, .padding = 0, .seed = 56});
  pump(engine, gen, 8'000, &truth);
  engine.flush();
  engine.checkpoint();
  pump(engine, gen, 3'000, &truth);
  engine.flush();
  engine.crash_and_recover(0);
  pump(engine, gen, 2'000, &truth);
  engine.flush();
  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  const auto m = engine.metrics();
  EXPECT_EQ(m.crashes, 1u);
  EXPECT_GT(m.tuples_replayed, 0u);
  engine.shutdown();
}

// Recovery restores the LAST COMMITTED checkpoint: state the second epoch
// captured survives a crash even though the first epoch also exists.
TEST(Ckpt, RecoveryRestoresFromLastCommittedEpoch) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  ckpt::CheckpointCoordinator coord;
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .checkpoint = &coord});
  engine.start();
  GroundTruth truth;
  workload::SyntheticGenerator gen(
      {.num_values = 60, .locality = 0.8, .padding = 0, .seed = 57});
  pump(engine, gen, 5'000, &truth);
  engine.flush();
  EXPECT_EQ(engine.checkpoint(), 1u);
  pump(engine, gen, 5'000, &truth);
  engine.flush();
  EXPECT_EQ(engine.checkpoint(), 2u);
  const std::uint64_t restored_before = engine.metrics().states_restored;
  engine.crash_and_recover(1);
  // Quiescent crash right after a commit: everything comes back from the
  // epoch-2 snapshot, nothing needs replay dedup to fix it up.
  EXPECT_GT(engine.metrics().states_restored, restored_before);
  EXPECT_EQ(coord.store().last_committed_epoch(), 2u);
  engine.flush();
  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  engine.shutdown();
}

// Two same-seed runs with the same crash script agree on every recovery
// counter and on the final per-key state (byte-level determinism).
TEST(Ckpt, SameSeedCrashRunsAreDeterministic) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  auto run = [&](runtime::EngineMetrics* out) {
    ckpt::CheckpointCoordinator coord;
    runtime::Engine engine(topo, place, counting_factory(),
                           {.fields_mode = FieldsRouting::kTable,
                            .checkpoint = &coord});
    engine.start();
    GroundTruth truth;
    workload::SyntheticGenerator gen(
        {.num_values = 60, .locality = 0.8, .padding = 0, .seed = 58});
    pump(engine, gen, 6'000, &truth);
    engine.flush();
    engine.checkpoint();
    pump(engine, gen, 3'000, &truth);
    engine.flush();
    engine.crash_and_recover(2);
    engine.flush();
    expect_counts_match(engine, 1, n, truth.field0);
    *out = engine.metrics();
    engine.shutdown();
  };
  runtime::EngineMetrics a;
  runtime::EngineMetrics b;
  run(&a);
  run(&b);
  EXPECT_EQ(a.states_restored, b.states_restored);
  EXPECT_EQ(a.states_restored_bytes, b.states_restored_bytes);
  EXPECT_EQ(a.tuples_replayed, b.tuples_replayed);
  EXPECT_EQ(a.tuples_lost_at_crash, b.tuples_lost_at_crash);
  EXPECT_EQ(a.ckpt_state_bytes, b.ckpt_state_bytes);
  EXPECT_GT(a.tuples_replayed, 0u);
}

// --- crash x reconfiguration / elasticity ------------------------------------

// Pinned ordering: every wave auto-checkpoints when a coordinator is
// attached, so a crash right after a reconfiguration restores a snapshot
// taken AT the new plan version — never one that predates the wave.
TEST(Ckpt, WavesAutoCheckpointSoCrashAfterReconfigureRecovers) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  ckpt::CheckpointCoordinator coord;
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .checkpoint = &coord});
  engine.start();
  core::Manager mgr(topo, place, {});
  GroundTruth truth;
  workload::SyntheticGenerator gen(
      {.num_values = 90, .locality = 0.8, .padding = 0, .seed = 59});
  Feeder feeder(engine, truth, gen);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  const auto plan = engine.reconfigure(mgr);
  // The wave committed a checkpoint stamped with its own plan version.
  EXPECT_GE(coord.checkpoints_committed(), 1u);
  EXPECT_EQ(coord.store().last_committed().plan_version, plan.version);
  // Crash immediately: recovery must come from that post-wave snapshot.
  engine.crash_and_recover(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  engine.crash_and_recover(1);
  feeder.stop();
  engine.flush();
  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  engine.shutdown();
}

TEST(Ckpt, CrashesInterleaveWithElasticResizes) {
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  ckpt::CheckpointCoordinator coord;
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .checkpoint = &coord,
                          .active_servers = 2});
  engine.start();
  core::Manager mgr(topo, place, {});
  GroundTruth truth;
  workload::SyntheticGenerator gen(
      {.num_values = 90, .locality = 0.8, .padding = 0, .seed = 60});
  Feeder feeder(engine, truth, gen);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Scale out (auto-checkpoint), then kill one of the freshly spawned
  // servers: its state must come back from the post-scale snapshot.
  engine.add_servers(mgr, 4);
  engine.crash_and_recover(3);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Scale in (auto-checkpoint covers the shrunken fleet), then kill a
  // survivor: no replay may be needed from the retired server.
  engine.retire_servers(mgr, 3);
  engine.crash_and_recover(0);
  feeder.stop();
  engine.flush();
  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  const auto m = engine.metrics();
  EXPECT_EQ(m.crashes, 2u);
  EXPECT_EQ(m.active_servers, 3u);
  engine.shutdown();
}

// --- the chaos schedule ------------------------------------------------------

TEST(Ckpt, MaybeCrashFollowsTheFaultPlanDeterministically) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  FaultPlan plan(707);
  plan.set(FaultSite::kServerCrash, {.rate = 0.5});
  auto run = [&]() -> std::vector<std::uint32_t> {
    chaos::Injector inj(plan);
    ckpt::CheckpointCoordinator coord;
    runtime::Engine engine(topo, place, counting_factory(),
                           {.fields_mode = FieldsRouting::kTable,
                            .injector = &inj,
                            .checkpoint = &coord});
    engine.start();
    GroundTruth truth;
    workload::SyntheticGenerator gen(
        {.num_values = 60, .locality = 0.8, .padding = 0, .seed = 61});
    std::vector<std::uint32_t> crashed;
    for (int round = 0; round < 6; ++round) {
      pump(engine, gen, 2'000, &truth);
      engine.flush();
      engine.checkpoint();
      if (const auto server = engine.maybe_crash()) {
        crashed.push_back(*server);
      }
    }
    engine.flush();
    expect_counts_match(engine, 1, n, truth.field0);
    engine.shutdown();
    return crashed;
  };
  const auto first = run();
  EXPECT_EQ(first, run());
  EXPECT_FALSE(first.empty());
}

TEST(Ckpt, MaybeCrashIsANoOpWithoutInjectorOrCoordinator) {
  const std::uint32_t n = 2;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable});
  engine.start();
  EXPECT_EQ(engine.maybe_crash(), std::nullopt);
  engine.shutdown();
}

// --- everything at once, many threads (TSan target) --------------------------

TEST(Ckpt, CheckpointsAndCrashesStressManyThreads) {
  // 12 POI threads + 2 feeders + the driver = 14 busy threads; `ctest -L
  // ckpt` under -DLAR_SANITIZE=thread (and address) must come back clean.
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  FaultPlan plan(808);
  plan.set(FaultSite::kServerCrash, {.rate = 0.6});
  plan.set(FaultSite::kChannelDelay, {.rate = 0.005});
  plan.set(FaultSite::kChannelDuplicate, {.rate = 0.005});
  obs::Registry registry;
  obs::TraceRecorder trace;
  chaos::Injector inj(plan, &registry, &trace);
  ckpt::CheckpointCoordinator coord(&registry, &trace);
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .registry = &registry,
                          .trace = &trace,
                          .injector = &inj,
                          .checkpoint = &coord});
  engine.start();
  core::Manager mgr(topo, place, {});

  GroundTruth truth1;
  GroundTruth truth2;
  workload::SyntheticGenerator gen1(
      {.num_values = 120, .locality = 0.8, .padding = 0, .seed = 62});
  workload::SyntheticGenerator gen2(
      {.num_values = 120, .locality = 0.8, .padding = 0, .seed = 63});
  Feeder feeder1(engine, truth1, gen1);
  Feeder feeder2(engine, truth2, gen2);
  for (int round = 0; round < 4; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    engine.checkpoint();
    engine.maybe_crash();
    if (round == 1) engine.reconfigure(mgr);
  }
  feeder1.stop();
  feeder2.stop();
  engine.flush();

  GroundTruth truth;
  for (GroundTruth* t : {&truth1, &truth2}) {
    for (const auto& e : t->field0.entries()) truth.field0.add(e.key, e.count);
    for (const auto& e : t->field1.entries()) truth.field1.add(e.key, e.count);
  }
  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  const auto m = engine.metrics();
  EXPECT_GT(m.crashes, 0u);
  engine.publish_metrics();
  const std::string prom = obs::to_prometheus(registry);
  EXPECT_NE(prom.find("lar_ckpt_checkpoints_total"), std::string::npos);
  EXPECT_NE(prom.find("lar_ckpt_crashes_total"), std::string::npos);
  engine.shutdown();
}

}  // namespace
}  // namespace lar
