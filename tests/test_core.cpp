// Tests for the paper's core contribution: pair statistics, bipartite key
// graph, Manager plans and migration diffs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <unordered_map>

#include "core/bipartite.hpp"
#include "core/locality.hpp"
#include "core/manager.hpp"
#include "core/pair_stats.hpp"
#include "core/snapshot.hpp"
#include "workload/synthetic.hpp"

namespace lar::core {
namespace {

// --- PairStats ---------------------------------------------------------------

TEST(PairStats, ExactModeCountsExactly) {
  PairStats ps(0);  // capacity 0 = exact
  EXPECT_TRUE(ps.is_exact());
  ps.record(1, 10);
  ps.record(1, 10);
  ps.record(2, 20);
  EXPECT_EQ(ps.total(), 3u);
  EXPECT_EQ(ps.size(), 2u);
  const auto snap = ps.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].in, 1u);
  EXPECT_EQ(snap[0].out, 10u);
  EXPECT_EQ(snap[0].count, 2u);
}

TEST(PairStats, SketchModeBoundsMemory) {
  PairStats ps(16);
  EXPECT_FALSE(ps.is_exact());
  for (std::uint64_t i = 0; i < 10'000; ++i) ps.record(i % 100, i % 77);
  EXPECT_LE(ps.size(), 16u);
  EXPECT_EQ(ps.total(), 10'000u);
}

TEST(PairStats, SnapshotTopNTruncates) {
  PairStats ps(0);
  for (std::uint64_t i = 0; i < 10; ++i) ps.record(i, i);
  EXPECT_EQ(ps.snapshot(3).size(), 3u);
  EXPECT_EQ(ps.snapshot(0).size(), 10u);
}

TEST(PairStats, ResetClears) {
  PairStats ps(8);
  ps.record(1, 2);
  ps.reset();
  EXPECT_EQ(ps.total(), 0u);
  EXPECT_EQ(ps.size(), 0u);
}

TEST(PairStats, OrderedPairsAreDistinct) {
  PairStats ps(0);
  ps.record(1, 2);
  ps.record(2, 1);
  EXPECT_EQ(ps.size(), 2u);
}

TEST(MergePairCounts, SumsAcrossSnapshots) {
  std::vector<std::vector<PairCount>> snaps{
      {{1, 2, 10}, {3, 4, 5}},
      {{1, 2, 7}},
  };
  const auto merged = merge_pair_counts(snaps);
  std::unordered_map<std::uint64_t, std::uint64_t> by_in;
  for (const auto& pc : merged) by_in[pc.in] = pc.count;
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_EQ(by_in[1], 17u);
  EXPECT_EQ(by_in[3], 5u);
}

// --- BipartiteGraphBuilder -----------------------------------------------------

TEST(Bipartite, BuildsFigure5StyleGraph) {
  // The paper's Figure 4/5 example: two locations, three hashtags.
  BipartiteGraphBuilder b;
  b.add_pairs(1, 2,
              {{0, 100, 3463},   // (Asia, #java)
               {0, 101, 3011},   // (Asia, #ruby)
               {0, 102, 969},    // (Asia, #python)
               {1, 100, 1201},   // (Oceania, #java)
               {1, 101, 881},    // (Oceania, #ruby)
               {1, 102, 3108}}); // (Oceania, #python)
  const KeyGraph kg = b.build();
  EXPECT_EQ(kg.graph.num_vertices(), 5u);
  EXPECT_EQ(kg.graph.num_edges(), 6u);
  // Vertex weights are the key frequencies (Figure 5).
  std::unordered_map<Key, std::uint64_t> weight_by_key;
  for (std::size_t v = 0; v < kg.vertices.size(); ++v) {
    weight_by_key[kg.vertices[v].key] = kg.graph.vertex_weight(
        static_cast<partition::VertexId>(v));
  }
  EXPECT_EQ(weight_by_key[0], 3463u + 3011u + 969u);   // Asia
  EXPECT_EQ(weight_by_key[1], 1201u + 881u + 3108u);   // Oceania
  EXPECT_EQ(weight_by_key[100], 3463u + 1201u);        // #java
}

TEST(Bipartite, SameKeyDifferentOpsAreDistinctVertices) {
  BipartiteGraphBuilder b;
  b.add_pairs(1, 2, {{7, 7, 10}});
  const KeyGraph kg = b.build();
  EXPECT_EQ(kg.graph.num_vertices(), 2u);
  EXPECT_EQ(kg.graph.num_edges(), 1u);
}

TEST(Bipartite, SharedKeysStitchChainedHops) {
  // A->B pairs and B->C pairs sharing B-keys give one connected graph.
  BipartiteGraphBuilder b;
  b.add_pairs(1, 2, {{1, 10, 5}});
  b.add_pairs(2, 3, {{10, 20, 6}});
  const KeyGraph kg = b.build();
  EXPECT_EQ(kg.graph.num_vertices(), 3u);  // (1,1), (2,10), (3,20)
  EXPECT_EQ(kg.graph.num_edges(), 2u);
  // The shared vertex (2,10) accumulates weight from both hops.
  for (std::size_t v = 0; v < kg.vertices.size(); ++v) {
    if (kg.vertices[v].op == 2) {
      EXPECT_EQ(kg.graph.vertex_weight(static_cast<partition::VertexId>(v)),
                11u);
    }
  }
}

TEST(Bipartite, TopEdgesBudgetKeepsHeaviest) {
  BipartiteGraphBuilder b;
  b.set_top_edges(2);
  b.add_pairs(1, 2, {{1, 10, 100}, {2, 11, 50}, {3, 12, 1}, {4, 13, 2}});
  const KeyGraph kg = b.build();
  EXPECT_EQ(kg.graph.num_edges(), 2u);
  EXPECT_EQ(kg.graph.total_edge_weight(), 150u);
}

TEST(Bipartite, ZeroCountPairsIgnored) {
  BipartiteGraphBuilder b;
  b.add_pairs(1, 2, {{1, 10, 0}});
  const KeyGraph kg = b.build();
  EXPECT_EQ(kg.graph.num_vertices(), 0u);
}

TEST(Bipartite, DuplicatePairObservationsMerge) {
  BipartiteGraphBuilder b;
  b.add_pairs(1, 2, {{1, 10, 5}, {1, 10, 7}});
  const KeyGraph kg = b.build();
  EXPECT_EQ(kg.graph.num_edges(), 1u);
  EXPECT_EQ(kg.graph.total_edge_weight(), 12u);
}

// --- Manager ----------------------------------------------------------------------

/// Stats describing a perfectly block-correlated workload: key i of op A
/// co-occurs only with key base+i of op B.
std::vector<HopStats> diagonal_stats(std::uint32_t n, std::uint64_t weight,
                                     Key b_base) {
  std::vector<PairCount> pairs;
  for (std::uint32_t i = 0; i < n; ++i) {
    pairs.push_back(PairCount{i, b_base + i, weight});
  }
  return {HopStats{1, 2, pairs}};
}

TEST(Manager, FindsOptimizableHops) {
  const Topology topo = make_two_stage_topology(4);
  const Placement place = Placement::round_robin(topo, 4);
  Manager mgr(topo, place, {});
  // Only A->B qualifies: S is stateless so S->A pairs are unobservable.
  ASSERT_EQ(mgr.optimizable_hops().size(), 1u);
  EXPECT_EQ(mgr.optimizable_hops()[0].from, 1u);
  EXPECT_EQ(mgr.optimizable_hops()[0].to, 2u);
}

TEST(Manager, DiagonalWorkloadGetsPerfectPlan) {
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  Manager mgr(topo, place, {});
  const auto plan = mgr.compute_plan(diagonal_stats(12, 100, 1000));
  EXPECT_EQ(plan.version, 1u);
  EXPECT_DOUBLE_EQ(plan.expected_locality, 1.0);  // nothing must be cut
  EXPECT_EQ(plan.edge_cut, 0u);
  EXPECT_LE(plan.imbalance, 1.04);
  ASSERT_TRUE(plan.tables.contains(1));
  ASSERT_TRUE(plan.tables.contains(2));
  // Correlated keys land on the same instance index (parallelism == servers).
  for (std::uint32_t i = 0; i < 12; ++i) {
    const auto a = plan.tables.at(1)->lookup(i);
    const auto b = plan.tables.at(2)->lookup(1000 + i);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(place.server_of(1, *a), place.server_of(2, *b));
  }
  EXPECT_EQ(plan.keys_assigned, 24u);
}

TEST(Manager, EmptyStatsYieldEmptyPlan) {
  const Topology topo = make_two_stage_topology(2);
  const Placement place = Placement::round_robin(topo, 2);
  Manager mgr(topo, place, {});
  const auto plan = mgr.compute_plan({});
  EXPECT_TRUE(plan.tables.empty());
  EXPECT_EQ(plan.keys_assigned, 0u);
  EXPECT_EQ(plan.total_moves(), 0u);
}

TEST(Manager, MovesDiffAgainstHashBeforeFirstDeployment) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  Manager mgr(topo, place, {});
  const auto plan = mgr.compute_plan(diagonal_stats(9, 50, 500));
  ASSERT_TRUE(plan.moves.contains(1));
  for (const auto& [op, moves] : plan.moves) {
    const auto& table = plan.tables.at(op);
    for (const KeyMove& mv : moves) {
      EXPECT_EQ(mv.from, hash_instance(mv.key, n));          // old = hash
      EXPECT_EQ(mv.to, table->route(mv.key, n));             // new = table
      EXPECT_NE(mv.from, mv.to);
    }
  }
}

TEST(Manager, MovesDiffAgainstDeployedTables) {
  const std::uint32_t n = 2;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  Manager mgr(topo, place, {});
  const auto plan1 = mgr.compute_plan(diagonal_stats(6, 50, 100));
  mgr.mark_deployed(plan1);
  EXPECT_EQ(mgr.current_table(1), plan1.tables.at(1));
  // Identical statistics: the second plan maps keys identically, so no key
  // may move (determinism of the partitioner matters here).
  const auto plan2 = mgr.compute_plan(diagonal_stats(6, 50, 100));
  EXPECT_EQ(plan2.version, 2u);
  EXPECT_EQ(plan2.total_moves(), 0u);
}

TEST(Manager, RespectsTopEdgesBudget) {
  const std::uint32_t n = 2;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  ManagerOptions opts;
  opts.top_edges = 3;
  Manager mgr(topo, place, opts);
  const auto plan = mgr.compute_plan(diagonal_stats(10, 50, 100));
  EXPECT_EQ(plan.graph_edges, 3u);
  mgr.set_top_edges(0);
  const auto plan2 = mgr.compute_plan(diagonal_stats(10, 50, 100));
  EXPECT_EQ(plan2.graph_edges, 10u);
}

TEST(Manager, BalanceConstraintLimitsGreed) {
  // All B-keys correlate with ONE A-key: locality would want everything on
  // one server, alpha forbids it.
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  Manager mgr(topo, place, {});
  std::vector<PairCount> pairs;
  for (std::uint32_t i = 0; i < 32; ++i) {
    pairs.push_back(PairCount{0, 1000 + i, 10});
  }
  const auto plan = mgr.compute_plan({HopStats{1, 2, pairs}});
  // A star graph cannot be partitioned without cutting: expected locality
  // must honestly reflect that.
  EXPECT_LT(plan.expected_locality, 0.5);
  // The hub key is indivisible, so combined imbalance stays high — but the
  // per-operator balance repair must spread B's keys over (almost) all
  // servers instead of piling them next to the hub.
  std::set<InstanceIndex> b_servers;
  for (const auto& [key, inst] : plan.tables.at(2)->sorted_entries()) {
    b_servers.insert(inst);
  }
  EXPECT_GE(b_servers.size(), 3u);
}

TEST(Manager, KeysOnServerWithoutInstanceFallBack) {
  // Operator B has instances only on servers 0 and 1, but 3 servers exist:
  // keys assigned to server 2 must stay hash-routed, not crash.
  Topology topo;
  const auto s = topo.add_operator(
      {.name = "s", .parallelism = 1, .is_source = true, .cpu_cost_per_tuple = 0.05});
  const auto a = topo.add_operator({.name = "a", .parallelism = 3, .stateful = true});
  const auto b = topo.add_operator({.name = "b", .parallelism = 2, .stateful = true});
  topo.connect(s, a, GroupingType::kFields, 0);
  topo.connect(a, b, GroupingType::kFields, 1);
  ASSERT_TRUE(topo.validate().is_ok());
  const Placement place = Placement::round_robin(topo, 3);  // b on servers 0,1
  Manager mgr(topo, place, {});
  std::vector<PairCount> pairs;
  for (std::uint32_t i = 0; i < 30; ++i) {
    pairs.push_back(PairCount{i, 1000 + i, 10});
  }
  const auto plan = mgr.compute_plan({HopStats{a, b, pairs}});
  ASSERT_TRUE(plan.tables.contains(b));
  // Every explicit entry of b's table points at a real instance.
  for (const auto& [key, inst] : plan.tables.at(b)->sorted_entries()) {
    EXPECT_LT(inst, 2u);
  }
}

// --- EdgeTraffic ------------------------------------------------------------------

TEST(EdgeTraffic, LocalityMath) {
  EdgeTraffic t;
  EXPECT_EQ(t.locality(), 0.0);
  t.local = 30;
  t.remote = 70;
  EXPECT_DOUBLE_EQ(t.locality(), 0.3);
  EdgeTraffic u{10, 0};
  u += t;
  EXPECT_EQ(u.local, 40u);
  EXPECT_EQ(u.remote, 70u);
}

// --- Snapshot format v3 (per-link sequence cursors, lar::ckpt) ---------------

// v3 round-trip: tables AND link cursors survive save/load unchanged.
TEST(SnapshotV3, RoundTripPreservesLinkCursors) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "lar_snapshot_v3.larp")
          .string();
  ReconfigurationPlan plan;
  plan.version = 7;
  plan.active_servers = 4;
  auto table = std::make_shared<RoutingTable>();
  table->set_version(7);
  for (Key k = 0; k < 50; ++k) {
    table->assign(k * 3, static_cast<InstanceIndex>(k % 4));
  }
  table->set_fallback({0, 1, 2, 3});
  plan.tables.emplace(2, std::move(table));
  plan.link_cursors = {{0, 120}, {1, 0}, {5, 999'999}, {17, 42}};

  ASSERT_TRUE(save_plan(plan, path).is_ok());
  auto restored = load_plan(path);
  ASSERT_TRUE(restored.is_ok());
  const auto& r = restored.value();
  EXPECT_EQ(r.version, 7u);
  EXPECT_EQ(r.active_servers, 4u);
  ASSERT_TRUE(r.tables.contains(2));
  EXPECT_EQ(r.tables.at(2)->size(), 50u);
  EXPECT_EQ(r.link_cursors, plan.link_cursors);
  std::filesystem::remove(path);
}

// Backward read: a v2 snapshot (no cursor section) still loads, with empty
// link_cursors.  The v2 bytes are written by hand so this test keeps failing
// loudly if someone drops v2 support from load_plan.
TEST(SnapshotV3, ReadsV2SnapshotWithEmptyCursors) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "lar_snapshot_v2_compat.larp")
          .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    auto put = [&](const auto& v) {
      ASSERT_EQ(std::fwrite(&v, sizeof v, 1, f), 1u);
    };
    std::fwrite("LARP", 1, 4, f);
    put(std::uint32_t{2});      // format v2: ends after the tables
    put(std::uint64_t{5});      // plan version
    put(std::uint32_t{3});      // active servers
    put(double{0.75});          // expected locality
    put(std::uint64_t{1234});   // edge cut
    put(double{1.05});          // imbalance
    put(std::uint32_t{1});      // one table
    put(OperatorId{1});
    put(std::uint64_t{5});      // table version
    put(std::uint64_t{2});      // two entries
    put(Key{10});
    put(InstanceIndex{0});
    put(Key{20});
    put(InstanceIndex{2});
    put(std::uint32_t{3});      // fallback domain {0,1,2}
    put(InstanceIndex{0});
    put(InstanceIndex{1});
    put(InstanceIndex{2});
    std::fclose(f);
  }
  auto restored = load_plan(path);
  ASSERT_TRUE(restored.is_ok());
  const auto& r = restored.value();
  EXPECT_EQ(r.version, 5u);
  EXPECT_EQ(r.active_servers, 3u);
  ASSERT_TRUE(r.tables.contains(1));
  EXPECT_EQ(r.tables.at(1)->lookup(20).value(), 2u);
  EXPECT_EQ(r.tables.at(1)->fallback().size(), 3u);
  EXPECT_TRUE(r.link_cursors.empty());
  std::filesystem::remove(path);
}

// Unknown future formats are rejected, not misparsed.
TEST(SnapshotV3, RejectsUnknownFormatVersion) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "lar_snapshot_v9.larp")
          .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("LARP", 1, 4, f);
    const std::uint32_t format = 9;
    ASSERT_EQ(std::fwrite(&format, sizeof format, 1, f), 1u);
    std::fclose(f);
  }
  const auto r = load_plan(path);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
  std::filesystem::remove(path);
}

// --- Snapshot format v4 (split candidate lists, lar::fleet multi-table) ------

// v4 round-trip with TWO tables carrying different fallback domains and
// different split degrees — the shape a multi-tenant fleet snapshot takes
// when each tenant's operators route over its own slice of the server
// prefix.  Everything must restore losslessly: explicit entries, fallback
// domains, and per-key candidate lists with their order.
TEST(SnapshotV4, MultiTableRoundTripPreservesFallbacksAndSplits) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "lar_snapshot_v4_multi.larp")
          .string();
  ReconfigurationPlan plan;
  plan.version = 11;
  plan.active_servers = 6;

  // Table for operator 2: fallback over {0..3}, one degree-2 split key.
  auto t2 = std::make_shared<RoutingTable>();
  t2->set_version(11);
  for (Key k = 0; k < 20; ++k) {
    t2->assign(k * 7, static_cast<InstanceIndex>(k % 4));
  }
  const std::vector<InstanceIndex> cand2{3, 1};
  t2->assign_split(1'000, cand2);
  t2->set_fallback({0, 1, 2, 3});

  // Table for operator 5: different fallback domain {2..5} and a
  // degree-4 split key plus a degree-3 one.
  auto t5 = std::make_shared<RoutingTable>();
  t5->set_version(11);
  for (Key k = 0; k < 10; ++k) {
    t5->assign(k * 13 + 1, static_cast<InstanceIndex>(2 + k % 4));
  }
  const std::vector<InstanceIndex> cand5a{5, 2, 4, 3};
  const std::vector<InstanceIndex> cand5b{4, 5, 2};
  t5->assign_split(2'000, cand5a);
  t5->assign_split(2'001, cand5b);
  t5->set_fallback({2, 3, 4, 5});

  plan.tables.emplace(2, t2);
  plan.tables.emplace(5, t5);
  plan.link_cursors = {{3, 77}, {9, 0}};

  ASSERT_TRUE(save_plan(plan, path).is_ok());
  auto restored = load_plan(path);
  ASSERT_TRUE(restored.is_ok());
  const auto& r = restored.value();
  EXPECT_EQ(r.version, 11u);
  EXPECT_EQ(r.active_servers, 6u);
  EXPECT_EQ(r.link_cursors, plan.link_cursors);
  ASSERT_TRUE(r.tables.contains(2));
  ASSERT_TRUE(r.tables.contains(5));

  const RoutingTable& r2 = *r.tables.at(2);
  EXPECT_EQ(r2.sorted_entries(), t2->sorted_entries());
  EXPECT_EQ(r2.fallback(), t2->fallback());
  ASSERT_EQ(r2.num_split_keys(), 1u);
  const auto s2 = r2.split_candidates(1'000);
  EXPECT_TRUE(std::equal(s2.begin(), s2.end(), cand2.begin(), cand2.end()));

  const RoutingTable& r5 = *r.tables.at(5);
  EXPECT_EQ(r5.sorted_entries(), t5->sorted_entries());
  EXPECT_EQ(r5.fallback(), t5->fallback());
  ASSERT_EQ(r5.num_split_keys(), 2u);
  const auto s5a = r5.split_candidates(2'000);
  EXPECT_TRUE(std::equal(s5a.begin(), s5a.end(), cand5a.begin(), cand5a.end()));
  const auto s5b = r5.split_candidates(2'001);
  EXPECT_TRUE(std::equal(s5b.begin(), s5b.end(), cand5b.begin(), cand5b.end()));
  // A split key's primary owner is its first candidate.
  EXPECT_EQ(r5.lookup(2'000).value(), 5u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace lar::core
