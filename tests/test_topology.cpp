// Unit tests for the application model: topology, placement, routing.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "topology/key_dict.hpp"
#include "topology/placement.hpp"
#include "topology/routing.hpp"
#include "topology/topology.hpp"

namespace lar {
namespace {

Topology chain3(std::uint32_t parallelism) {
  return make_two_stage_topology(parallelism);
}

// --- Tuple ---------------------------------------------------------------------

TEST(Tuple, SerializedSizeFormula) {
  Tuple t{.fields = {1, 2}, .padding = 100};
  EXPECT_EQ(t.serialized_size(), 16u + 16u + 100u);
  Tuple empty;
  EXPECT_EQ(empty.serialized_size(), 16u);
}

// --- KeyDict --------------------------------------------------------------------

TEST(KeyDict, InternIsIdempotent) {
  KeyDict d;
  const Key a = d.intern("#java");
  const Key b = d.intern("#java");
  EXPECT_EQ(a, b);
  EXPECT_EQ(d.size(), 1u);
}

TEST(KeyDict, DistinctStringsDistinctKeys) {
  KeyDict d;
  EXPECT_NE(d.intern("asia"), d.intern("europe"));
  EXPECT_EQ(d.size(), 2u);
}

TEST(KeyDict, RoundTrip) {
  KeyDict d;
  const Key k = d.intern("oceania");
  EXPECT_EQ(d.name(k), "oceania");
}

TEST(KeyDict, FindWithoutInterning) {
  KeyDict d;
  d.intern("x");
  EXPECT_TRUE(d.find("x").has_value());
  EXPECT_FALSE(d.find("y").has_value());
}

// --- Topology --------------------------------------------------------------------

TEST(Topology, TwoStageFactoryIsValid) {
  const Topology t = chain3(4);
  EXPECT_TRUE(t.validate().is_ok());
  EXPECT_EQ(t.num_operators(), 3u);
  EXPECT_EQ(t.edges().size(), 2u);
  EXPECT_EQ(t.op(0).parallelism, 4u);  // replicated source
  EXPECT_TRUE(t.op(0).is_source);
  EXPECT_TRUE(t.op(1).stateful);
  EXPECT_EQ(t.edges()[0].key_field, 0u);
  EXPECT_EQ(t.edges()[1].key_field, 1u);
}

TEST(Topology, ValidateRejectsNoSource) {
  Topology t;
  const auto a = t.add_operator({.name = "a", .parallelism = 1});
  const auto b = t.add_operator({.name = "b", .parallelism = 1});
  t.connect(a, b, GroupingType::kShuffle);
  const Status s = t.validate();
  EXPECT_FALSE(s.is_ok());
}

TEST(Topology, ValidateRejectsUnreachableOperator) {
  Topology t;
  t.add_operator({.name = "s", .parallelism = 1, .is_source = true});
  t.add_operator({.name = "orphan", .parallelism = 1});
  EXPECT_FALSE(t.validate().is_ok());
}

TEST(Topology, ValidateRejectsStatefulWithShuffleInput) {
  Topology t;
  const auto s = t.add_operator({.name = "s", .parallelism = 1, .is_source = true});
  const auto a =
      t.add_operator({.name = "a", .parallelism = 2, .stateful = true});
  t.connect(s, a, GroupingType::kShuffle);
  EXPECT_FALSE(t.validate().is_ok());
}

TEST(Topology, ValidateRejectsSourceWithInput) {
  Topology t;
  const auto s1 = t.add_operator({.name = "s1", .parallelism = 1, .is_source = true});
  const auto s2 = t.add_operator({.name = "s2", .parallelism = 1, .is_source = true});
  t.connect(s1, s2, GroupingType::kShuffle);
  EXPECT_FALSE(t.validate().is_ok());
}

TEST(Topology, TopologicalOrderRespectsEdges) {
  Topology t;
  const auto s = t.add_operator({.name = "s", .parallelism = 1, .is_source = true});
  const auto a = t.add_operator({.name = "a", .parallelism = 1});
  const auto b = t.add_operator({.name = "b", .parallelism = 1});
  const auto c = t.add_operator({.name = "c", .parallelism = 1});
  t.connect(s, a, GroupingType::kShuffle);
  t.connect(s, b, GroupingType::kShuffle);
  t.connect(a, c, GroupingType::kShuffle);
  t.connect(b, c, GroupingType::kShuffle);
  const auto order = t.topological_order();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](OperatorId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(s), pos(a));
  EXPECT_LT(pos(a), pos(c));
  EXPECT_LT(pos(b), pos(c));
}

TEST(Topology, DagFanOutValidates) {
  // A diamond: source -> {a, b} -> join; the model is not chain-limited.
  Topology t;
  const auto s = t.add_operator({.name = "s", .parallelism = 1, .is_source = true});
  const auto a = t.add_operator({.name = "a", .parallelism = 2});
  const auto b = t.add_operator({.name = "b", .parallelism = 2});
  const auto j =
      t.add_operator({.name = "join", .parallelism = 2, .stateful = true});
  t.connect(s, a, GroupingType::kShuffle);
  t.connect(s, b, GroupingType::kShuffle);
  t.connect(a, j, GroupingType::kFields, 0);
  t.connect(b, j, GroupingType::kFields, 0);
  EXPECT_TRUE(t.validate().is_ok());
  EXPECT_EQ(t.in_edges(j).size(), 2u);
}

// --- Placement -------------------------------------------------------------------

TEST(Placement, RoundRobinMatchesPaperLayout) {
  const Topology t = chain3(4);
  const Placement p = Placement::round_robin(t, 4);
  for (OperatorId op = 0; op < 3; ++op) {
    for (InstanceIndex i = 0; i < 4; ++i) {
      EXPECT_EQ(p.server_of(op, i), i);
    }
  }
  EXPECT_EQ(p.num_servers(), 4u);
  EXPECT_EQ(p.parallelism_of(1), 4u);
}

TEST(Placement, RoundRobinWrapsWhenMoreInstancesThanServers) {
  const Topology t = chain3(6);
  const Placement p = Placement::round_robin(t, 3);
  EXPECT_EQ(p.server_of(1, 0), 0u);
  EXPECT_EQ(p.server_of(1, 3), 0u);
  EXPECT_EQ(p.server_of(1, 5), 2u);
  const auto& locals = p.local_instances(1, 0);
  EXPECT_EQ(locals, (std::vector<InstanceIndex>{0, 3}));
}

TEST(Placement, ExplicitPlacement) {
  const Topology t = chain3(2);
  Placement p = Placement::explicit_placement(
      {{1, 1}, {0, 1}, {1, 0}}, /*num_servers=*/2);
  EXPECT_EQ(p.server_of(0, 0), 1u);
  EXPECT_EQ(p.server_of(2, 1), 0u);
  EXPECT_TRUE(p.local_instances(1, 0) == std::vector<InstanceIndex>{0});
  EXPECT_TRUE(p.local_instances(2, 1) == std::vector<InstanceIndex>{0});
}

TEST(Placement, InstanceIdOverload) {
  const Topology t = chain3(3);
  const Placement p = Placement::round_robin(t, 3);
  EXPECT_EQ(p.server_of(InstanceId{1, 2}), 2u);
}

// --- Routers ----------------------------------------------------------------------

TEST(Routing, HashInstanceIsDeterministicAndInRange) {
  for (Key k = 0; k < 1000; ++k) {
    const InstanceIndex i = hash_instance(k, 7);
    EXPECT_LT(i, 7u);
    EXPECT_EQ(i, hash_instance(k, 7));
  }
}

TEST(Routing, ShuffleCoversAllInstancesEvenly) {
  ShuffleRouter r(4, /*seed=*/9);
  std::array<int, 4> hits{};
  Tuple t{.fields = {0}, .padding = 0};
  for (int i = 0; i < 400; ++i) ++hits[r.route(t)];
  for (const int h : hits) EXPECT_EQ(h, 100);
}

TEST(Routing, LocalOrShufflePrefersLocals) {
  LocalOrShuffleRouter r({1, 3}, 4, /*seed=*/5);
  Tuple t{.fields = {0}, .padding = 0};
  for (int i = 0; i < 100; ++i) {
    const InstanceIndex d = r.route(t);
    EXPECT_TRUE(d == 1 || d == 3);
  }
}

TEST(Routing, LocalOrShuffleFallsBackWithoutLocals) {
  LocalOrShuffleRouter r({}, 3, /*seed=*/5);
  Tuple t{.fields = {0}, .padding = 0};
  std::set<InstanceIndex> seen;
  for (int i = 0; i < 30; ++i) seen.insert(r.route(t));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Routing, FieldsRoutersUseDeclaredField) {
  HashFieldsRouter h(1, 5);
  Tuple t{.fields = {42, 77}, .padding = 0};
  EXPECT_EQ(h.route(t), hash_instance(77, 5));
  IdentityFieldsRouter id(1, 5, 0);
  EXPECT_EQ(id.route(t), 77u % 5u);
  IdentityFieldsRouter off(1, 5, 2);
  EXPECT_EQ(off.route(t), (77u + 2u) % 5u);
}

TEST(Routing, PermutationIsBijectiveAndStable) {
  PermutationFieldsRouter r(0, 6, /*seed=*/3);
  std::set<InstanceIndex> image;
  for (Key k = 0; k < 6; ++k) {
    Tuple t{.fields = {k}, .padding = 0};
    const InstanceIndex d = r.route(t);
    EXPECT_LT(d, 6u);
    image.insert(d);
    EXPECT_EQ(d, r.route(t));
  }
  EXPECT_EQ(image.size(), 6u);
}

TEST(Routing, TableRoutesExplicitKeysAndFallsBackToHash) {
  auto table = std::make_shared<RoutingTable>();
  table->assign(10, 3);
  TableFieldsRouter r(0, 5, table);
  Tuple hit{.fields = {10}, .padding = 0};
  EXPECT_EQ(r.route(hit), 3u);
  Tuple miss{.fields = {11}, .padding = 0};
  EXPECT_EQ(r.route(miss), hash_instance(11, 5));
}

TEST(Routing, TableHotSwap) {
  auto t1 = std::make_shared<RoutingTable>();
  t1->assign(1, 0);
  TableFieldsRouter r(0, 4, t1);
  Tuple t{.fields = {1}, .padding = 0};
  EXPECT_EQ(r.route(t), 0u);
  auto t2 = std::make_shared<RoutingTable>();
  t2->assign(1, 2);
  r.set_table(t2);
  EXPECT_EQ(r.route(t), 2u);
}

TEST(RoutingTable, VersionAndLookup) {
  RoutingTable t;
  EXPECT_EQ(t.version(), 0u);
  t.set_version(7);
  EXPECT_EQ(t.version(), 7u);
  EXPECT_FALSE(t.lookup(5).has_value());
  t.assign(5, 2);
  EXPECT_EQ(t.lookup(5).value(), 2u);
  t.assign(5, 3);  // overwrite
  EXPECT_EQ(t.lookup(5).value(), 3u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(Routing, MakeRouterSelectsImplementations) {
  const Topology topo = chain3(4);
  const Placement place = Placement::round_robin(topo, 4);
  const EdgeSpec& fields_edge = topo.edges()[1];
  Tuple t{.fields = {2, 4 + 3}, .padding = 0};  // field1 key space offset 4

  auto id = make_router(fields_edge, 1, topo, place, 0,
                        FieldsRouting::kIdentity, nullptr, 1);
  EXPECT_EQ(id->route(t), 3u);

  auto worst = make_router(fields_edge, 1, topo, place, 0,
                           FieldsRouting::kWorstCase, nullptr, 1);
  EXPECT_EQ(worst->route(t), (3u + 2u) % 4u);  // offset = edge_index + 1

  auto hash = make_router(fields_edge, 1, topo, place, 0, FieldsRouting::kHash,
                          nullptr, 1);
  EXPECT_EQ(hash->route(t), hash_instance(7, 4));

  auto table = make_router(fields_edge, 1, topo, place, 0,
                           FieldsRouting::kTable, nullptr, 1);
  EXPECT_EQ(table->route(t), hash_instance(7, 4));  // empty table == hash
}

TEST(Routing, WorstCaseDisagreesAcrossConsecutiveEdges) {
  // The defining property: a key pair aligned under identity routing is
  // never co-located under worst-case routing.
  const Topology topo = chain3(4);
  const Placement place = Placement::round_robin(topo, 4);
  auto w0 = make_router(topo.edges()[0], 0, topo, place, 0,
                        FieldsRouting::kWorstCase, nullptr, 1);
  auto w1 = make_router(topo.edges()[1], 1, topo, place, 0,
                        FieldsRouting::kWorstCase, nullptr, 1);
  for (Key k = 0; k < 16; ++k) {
    Tuple t{.fields = {k, 4 + k}, .padding = 0};  // correlated pair
    EXPECT_NE(w0->route(t), w1->route(t));
  }
}

}  // namespace
}  // namespace lar

namespace lar {
namespace {

TEST(Routing, PartialKeyUsesOnlyTheTwoCandidates) {
  PartialKeyRouter r(0, 6);
  for (Key k = 0; k < 50; ++k) {
    const auto [h1, h2] = r.candidates(k);
    for (int i = 0; i < 20; ++i) {
      Tuple t{.fields = {k}, .padding = 0};
      const InstanceIndex d = r.route(t);
      EXPECT_TRUE(d == h1 || d == h2) << "key " << k;
    }
  }
}

TEST(Routing, PartialKeyBalancesSkewBetterThanHash) {
  // One key carries 60% of the traffic: hash piles it onto one instance;
  // PKG splits it across its two candidates.
  constexpr std::uint32_t kFanout = 4;
  PartialKeyRouter pkg(0, kFanout);
  HashFieldsRouter hash(0, kFanout);
  std::vector<std::uint64_t> pkg_load(kFanout, 0);
  std::vector<std::uint64_t> hash_load(kFanout, 0);
  Rng rng(71);
  for (int i = 0; i < 40'000; ++i) {
    const Key key = rng.chance(0.6) ? 7 : 100 + rng.below(1000);
    Tuple t{.fields = {key}, .padding = 0};
    ++pkg_load[pkg.route(t)];
    ++hash_load[hash.route(t)];
  }
  EXPECT_LT(imbalance(pkg_load), imbalance(hash_load));
  EXPECT_LT(imbalance(pkg_load), 1.5);
}

TEST(Routing, PartialKeySentCountersResetOnTableSwap) {
  // PKG carries no routing table, but reconfiguration swaps still call
  // set_table on every router: the per-instance sent counters must reset so
  // post-swap choices are a pure function of post-swap tuples — a swapped
  // router and a fresh one route the same sequence identically.
  PartialKeyRouter swapped(0, 6);
  Rng rng(71);
  for (int i = 0; i < 5'000; ++i) {  // skew the counter history
    const Key key = rng.chance(0.6) ? 7 : 100 + rng.below(1000);
    Tuple t{.fields = {key}, .padding = 0};
    (void)swapped.route(t);
  }

  swapped.set_table(nullptr);
  PartialKeyRouter fresh(0, 6);
  for (int i = 0; i < 2'000; ++i) {
    const Key key = rng.chance(0.5) ? 7 : rng.below(64);
    Tuple t{.fields = {key}, .padding = 0};
    ASSERT_EQ(swapped.route(t), fresh.route(t)) << "step " << i;
  }
}

TEST(Routing, MakeRouterBuildsPartialKey) {
  const Topology topo = make_two_stage_topology(4);
  const Placement place = Placement::round_robin(topo, 4);
  auto r = make_router(topo.edges()[1], 1, topo, place, 0,
                       FieldsRouting::kPartialKey, nullptr, 1);
  Tuple t{.fields = {1, 9}, .padding = 0};
  EXPECT_LT(r->route(t), 4u);
}

}  // namespace
}  // namespace lar
