// Tests for the threaded runtime: channels, codec, engine data plane, and
// the online reconfiguration protocol with state migration.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/codec.hpp"
#include "runtime/engine.hpp"
#include "runtime/queue.hpp"
#include "sketch/exact_counter.hpp"
#include "workload/synthetic.hpp"

namespace lar::runtime {
namespace {

// --- Channel ------------------------------------------------------------------

TEST(Channel, FifoOrder) {
  Channel<int> ch(16);
  for (int i = 0; i < 10; ++i) ch.push(i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ch.pop().value(), i);
}

TEST(Channel, BlockingPushRespectsCapacity) {
  Channel<int> ch(2);
  ch.push(1);
  ch.push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    ch.push(3);
    third_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(third_pushed.load());  // full: producer is parked
  EXPECT_EQ(ch.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(Channel, UnboundedPushIgnoresCapacity) {
  Channel<int> ch(1);
  ch.push(1);
  EXPECT_TRUE(ch.push_unbounded(2));
  EXPECT_TRUE(ch.push_unbounded(3));
  EXPECT_EQ(ch.size(), 3u);
  EXPECT_EQ(ch.pop().value(), 1);
  EXPECT_EQ(ch.pop().value(), 2);  // still FIFO
}

TEST(Channel, TryPushFailsWhenFull) {
  Channel<int> ch(1);
  EXPECT_TRUE(ch.try_push(1));
  EXPECT_FALSE(ch.try_push(2));
}

TEST(Channel, CloseDrainsThenEnds) {
  Channel<int> ch(8);
  ch.push(42);
  ch.close();
  EXPECT_FALSE(ch.push(43));
  EXPECT_FALSE(ch.push_unbounded(44));
  EXPECT_EQ(ch.pop().value(), 42);
  EXPECT_FALSE(ch.pop().has_value());
}

TEST(Channel, CloseWakesBlockedConsumer) {
  Channel<int> ch(8);
  std::thread consumer([&] { EXPECT_FALSE(ch.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.close();
  consumer.join();
}

// --- codec --------------------------------------------------------------------

TEST(Codec, RoundTripPreservesFieldsAndPadding) {
  const Tuple t{.fields = {7, 1ULL << 40, 0}, .padding = 512};
  const auto wire = encode_tuple(t);
  EXPECT_EQ(wire.size(), t.serialized_size());
  const Tuple back = decode_tuple(wire);
  EXPECT_EQ(back.fields, t.fields);
  EXPECT_EQ(back.padding, t.padding);
}

TEST(Codec, EmptyTuple) {
  const Tuple t{};
  const Tuple back = decode_tuple(encode_tuple(t));
  EXPECT_TRUE(back.fields.empty());
  EXPECT_EQ(back.padding, 0u);
}

// --- engine fixtures -------------------------------------------------------------

OperatorFactory counting_factory() {
  return [](OperatorId op, InstanceIndex) -> std::unique_ptr<Operator> {
    if (op == 0) return std::make_unique<PassThroughOperator>();
    return std::make_unique<CountingOperator>(op == 1 ? 0 : 1);
  };
}

CountingOperator& counter_at(Engine& engine, OperatorId op, InstanceIndex i) {
  return static_cast<CountingOperator&>(engine.operator_at(op, i));
}

/// Injects `n` generated tuples, recording ground truth per field.
struct GroundTruth {
  sketch::ExactCounter<Key> field0;
  sketch::ExactCounter<Key> field1;
};

void pump(Engine& engine, workload::TupleGenerator& gen, int n,
          GroundTruth* truth = nullptr) {
  for (int i = 0; i < n; ++i) {
    Tuple t = gen.next();
    if (truth != nullptr) {
      truth->field0.add(t.fields[0]);
      truth->field1.add(t.fields[1]);
    }
    engine.inject(std::move(t));
  }
}

/// Asserts that, per key, the summed counts across instances equal ground
/// truth AND that exactly one instance holds each key (fields grouping
/// consistency, the invariant of Section 2.1).
void expect_counts_match(Engine& engine, OperatorId op, std::uint32_t par,
                         const sketch::ExactCounter<Key>& truth) {
  for (const auto& entry : truth.entries()) {
    std::uint64_t sum = 0;
    int holders = 0;
    for (InstanceIndex i = 0; i < par; ++i) {
      const std::uint64_t c = counter_at(engine, op, i).count(entry.key);
      sum += c;
      holders += (c > 0);
    }
    ASSERT_EQ(sum, entry.count) << "op " << op << " key " << entry.key;
    ASSERT_EQ(holders, 1) << "op " << op << " key " << entry.key
                          << " split across instances";
  }
}

// --- engine data plane -------------------------------------------------------------

TEST(Engine, CountsAreExactUnderHashRouting) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  Engine engine(topo, place, counting_factory(),
                {.fields_mode = FieldsRouting::kHash});
  engine.start();
  workload::SyntheticGenerator gen(
      {.num_values = 60, .locality = 0.5, .padding = 8, .seed = 21});
  GroundTruth truth;
  pump(engine, gen, 5000, &truth);
  engine.flush();
  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  const auto m = engine.metrics();
  EXPECT_EQ(m.tuples_injected, 5000u);
  EXPECT_EQ(m.instance_processed[0][0] + m.instance_processed[0][1] +
                m.instance_processed[0][2],
            5000u);
}

TEST(Engine, IdentityRoutingLocalityMatchesWorkload) {
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  Engine engine(topo, place, counting_factory(),
                {.fields_mode = FieldsRouting::kIdentity,
                 .source_mode = SourceMode::kAlignedField0});
  engine.start();
  workload::SyntheticGenerator gen(
      {.num_values = n, .locality = 1.0, .padding = 0, .seed = 22});
  pump(engine, gen, 4000);
  engine.flush();
  const auto m = engine.metrics();
  EXPECT_EQ(m.edges[0].remote, 0u);  // aligned source, identity routing
  EXPECT_EQ(m.edges[1].remote, 0u);  // 100% correlated
  EXPECT_EQ(m.edges[1].local, 4000u);
  EXPECT_EQ(m.edges[1].remote_bytes, 0u);
}

TEST(Engine, RemoteBytesAccounted) {
  const std::uint32_t n = 2;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  Engine engine(topo, place, counting_factory(),
                {.fields_mode = FieldsRouting::kWorstCase,
                 .source_mode = SourceMode::kAlignedField0});
  engine.start();
  const std::uint32_t padding = 100;
  workload::SyntheticGenerator gen(
      {.num_values = n, .locality = 1.0, .padding = padding, .seed = 23});
  pump(engine, gen, 100);
  engine.flush();
  const auto m = engine.metrics();
  // Worst-case: both hops always remote.
  EXPECT_EQ(m.edges[0].remote, 100u);
  EXPECT_EQ(m.edges[1].remote, 100u);
  const std::uint32_t per_tuple = Tuple{.fields = {0, 0}, .padding = padding}
                                      .serialized_size();
  EXPECT_EQ(m.edges[0].remote_bytes, 100u * per_tuple);
}

TEST(Engine, FlushIsIdempotentAndShutdownSafe) {
  const Topology topo = make_two_stage_topology(2);
  const Placement place = Placement::round_robin(topo, 2);
  Engine engine(topo, place, counting_factory(), {});
  engine.start();
  engine.flush();  // nothing injected
  engine.inject(Tuple{.fields = {0, 2}, .padding = 0});
  engine.flush();
  engine.flush();
  engine.shutdown();
  engine.shutdown();  // idempotent
}

// --- reconfiguration protocol --------------------------------------------------------

TEST(Engine, ReconfigureWithNoTrafficIsNoop) {
  const Topology topo = make_two_stage_topology(2);
  const Placement place = Placement::round_robin(topo, 2);
  Engine engine(topo, place, counting_factory(), {});
  engine.start();
  core::Manager mgr(topo, place, {});
  const auto plan = engine.reconfigure(mgr);
  EXPECT_TRUE(plan.tables.empty());
  engine.shutdown();
}

TEST(Engine, ReconfigureImprovesLocalityAndPreservesState) {
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  Engine engine(topo, place, counting_factory(),
                {.fields_mode = FieldsRouting::kTable,
                 .source_mode = SourceMode::kAlignedField0});
  engine.start();
  core::Manager mgr(topo, place, {});
  workload::SyntheticGenerator gen(
      {.num_values = n * 50, .locality = 0.9, .padding = 4, .seed = 24});
  GroundTruth truth;
  pump(engine, gen, 20'000, &truth);
  engine.flush();
  const auto before = engine.metrics();

  const auto plan = engine.reconfigure(mgr);
  EXPECT_GT(plan.keys_assigned, 0u);
  EXPECT_GT(plan.total_moves(), 0u);

  pump(engine, gen, 20'000, &truth);
  engine.flush();
  const auto after = engine.metrics();

  const double loc_before =
      static_cast<double>(before.edges[1].local) /
      static_cast<double>(before.edges[1].local + before.edges[1].remote);
  const double loc_after =
      static_cast<double>(after.edges[1].local - before.edges[1].local) /
      20'000.0;
  EXPECT_LT(loc_before, 0.5);
  EXPECT_GT(loc_after, 0.8);

  // No tuple lost, no duplication, every key on exactly one instance.
  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  engine.shutdown();
}

TEST(Engine, ReconfigureWhileStreamIsFlowing) {
  // Reconfiguration must not require quiescence: inject from another thread
  // for the whole duration.
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  Engine engine(topo, place, counting_factory(),
                {.fields_mode = FieldsRouting::kTable});
  engine.start();
  core::Manager mgr(topo, place, {});

  workload::SyntheticGenerator gen(
      {.num_values = 90, .locality = 0.8, .padding = 0, .seed = 25});
  GroundTruth truth;
  std::atomic<bool> stop{false};
  std::thread feeder([&] {
    workload::SyntheticGenerator fgen(
        {.num_values = 90, .locality = 0.8, .padding = 0, .seed = 26});
    while (!stop.load()) {
      Tuple t = fgen.next();
      truth.field0.add(t.fields[0]);
      truth.field1.add(t.fields[1]);
      engine.inject(std::move(t));
    }
  });

  // Warm up, then reconfigure twice against the live stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.reconfigure(mgr);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.reconfigure(mgr);
  stop = true;
  feeder.join();
  engine.flush();

  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  engine.shutdown();
}

TEST(Engine, RepeatedStableReconfigsMoveNothing) {
  const std::uint32_t n = 2;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  Engine engine(topo, place, counting_factory(),
                {.pair_stats_capacity = 0 /* exact */,
                 .fields_mode = FieldsRouting::kTable});
  engine.start();
  core::Manager mgr(topo, place, {});
  workload::SyntheticGenerator gen(
      {.num_values = 20, .locality = 1.0, .padding = 0, .seed = 27});
  pump(engine, gen, 10'000);
  engine.flush();
  engine.reconfigure(mgr);
  // Same distribution again: the second plan must be (nearly) a no-op —
  // the partitioner is deterministic and the workload is stable.
  workload::SyntheticGenerator gen2(
      {.num_values = 20, .locality = 1.0, .padding = 0, .seed = 27});
  pump(engine, gen2, 10'000);
  engine.flush();
  const auto plan2 = engine.reconfigure(mgr);
  EXPECT_EQ(plan2.total_moves(), 0u);
  engine.shutdown();
}

TEST(Engine, MigratedStateLandsOnTableTarget) {
  const std::uint32_t n = 2;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  Engine engine(topo, place, counting_factory(),
                {.fields_mode = FieldsRouting::kTable});
  engine.start();
  core::Manager mgr(topo, place, {});
  workload::SyntheticGenerator gen(
      {.num_values = 30, .locality = 1.0, .padding = 0, .seed = 28});
  pump(engine, gen, 8000);
  engine.flush();
  const auto plan = engine.reconfigure(mgr);
  engine.flush();
  // After migration, each table-assigned key's state lives exactly on its
  // assigned instance.
  for (const auto& [key, inst] : plan.tables.at(1)->sorted_entries()) {
    for (InstanceIndex i = 0; i < n; ++i) {
      const std::uint64_t c = counter_at(engine, 1, i).count(key);
      if (i == inst) {
        EXPECT_GT(c, 0u) << "key " << key;
      } else {
        EXPECT_EQ(c, 0u) << "key " << key << " instance " << i;
      }
    }
  }
  engine.shutdown();
}

}  // namespace
}  // namespace lar::runtime
