// Tests for lar::ckpt durability (ckpt/durable.hpp): the file-backed
// checkpoint store's epoch-file framing and byte-determinism, incremental
// dirty-key epochs folding onto a full base, compaction, torn-write and
// injected-io-error fallback, and engine cold restart — a brand-new Engine
// on the same store directory restores state, cursors and routing tables
// from the last durable epoch and is exactly-once against a driver that
// replays its stream from restored_inject_offset().
//
// Every test uses its own store directory under the system temp dir; the
// byte-identity assertions compare directory contents across same-seed runs
// (scripts/check.sh repeats the same diff on the durable ablation).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/durable.hpp"
#include "core/manager.hpp"
#include "obs/export.hpp"
#include "runtime/engine.hpp"
#include "sketch/exact_counter.hpp"
#include "sketch/zipf.hpp"
#include "workload/synthetic.hpp"

namespace lar {
namespace {

namespace fs = std::filesystem;
using chaos::FaultPlan;
using chaos::FaultSite;

// --- fixtures ----------------------------------------------------------------

/// Unique per-test scratch directory (wiped at entry, left behind for
/// post-mortem inspection on failure).
fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() /
                       ("lar_durable_" + name + "_" + std::to_string(getpid()));
  fs::remove_all(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

/// filename -> bytes for every regular file in `dir` (byte-identity diffs).
std::map<std::string, std::string> dir_contents(const fs::path& dir) {
  std::map<std::string, std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    out[entry.path().filename().string()] = read_file(entry.path());
  }
  return out;
}

ckpt::PoiCheckpoint make_slice(
    std::uint32_t flat, std::vector<std::pair<Key, std::uint64_t>> counts,
    bool delta = false, std::uint64_t cursor = 0) {
  ckpt::PoiCheckpoint pc;
  pc.op = 1;
  pc.index = flat;
  pc.flat = flat;
  pc.delta = delta;
  for (const auto& [key, count] : counts) {
    std::vector<std::byte> state(sizeof count);
    std::memcpy(state.data(), &count, sizeof count);
    pc.states.emplace_back(key, std::move(state));
  }
  pc.in_cursors.emplace_back(0, cursor);
  pc.out_cursors.emplace_back(1, cursor);
  return pc;
}

std::map<Key, std::uint64_t> counts_of(const ckpt::PoiCheckpoint& pc) {
  std::map<Key, std::uint64_t> out;
  for (const auto& [key, state] : pc.states) {
    std::uint64_t count = 0;
    EXPECT_EQ(state.size(), sizeof count);
    std::memcpy(&count, state.data(), sizeof count);
    out[key] = count;
  }
  return out;
}

std::unique_ptr<ckpt::DurableCheckpointStore> open_store(
    const fs::path& dir, ckpt::DurableStoreOptions opts = {}) {
  opts.dir = dir.string();
  return std::make_unique<ckpt::DurableCheckpointStore>(std::move(opts));
}

// --- base-store accessors (the non-copying surface crash recovery uses) ------

TEST(CheckpointStoreAccessors, FilteredSlicesAndMetaMatchTheFullCopy) {
  ckpt::CheckpointStore store;
  store.begin(1, /*active_servers=*/3, /*plan_version=*/7);
  store.add(1, make_slice(0, {{10, 1}}));
  store.add(1, make_slice(2, {{11, 2}, {12, 3}}));
  store.add(1, make_slice(5, {{13, 4}}));
  store.commit(1);

  const ckpt::Checkpoint full = store.last_committed();
  const ckpt::CheckpointMeta meta = store.last_committed_meta();
  EXPECT_EQ(meta.epoch, full.epoch);
  EXPECT_TRUE(meta.committed);
  EXPECT_EQ(meta.active_servers, 3u);
  EXPECT_EQ(meta.plan_version, 7u);
  EXPECT_EQ(meta.pois, full.pois.size());
  EXPECT_EQ(meta.total_states, full.total_states());
  EXPECT_EQ(meta.total_state_bytes, full.total_state_bytes());
  // The in-memory store never folds: captured == totals.
  EXPECT_EQ(meta.captured_states, meta.total_states);
  EXPECT_EQ(meta.captured_state_bytes, meta.total_state_bytes);

  const auto slices = store.last_committed_slices({2, 5});
  EXPECT_EQ(slices.size(), 2u);
  EXPECT_EQ(counts_of(slices.at(2)), counts_of(full.pois.at(2)));
  EXPECT_EQ(counts_of(slices.at(5)), counts_of(full.pois.at(5)));
  EXPECT_FALSE(slices.contains(0));
  // Unknown flats are simply absent, not an error.
  EXPECT_TRUE(store.last_committed_slices({99}).empty());
}

// --- epoch files -------------------------------------------------------------

TEST(DurableStore, BaseFileRoundTripsByteIdentically) {
  const fs::path dir_a = fresh_dir("base_a");
  const fs::path dir_b = fresh_dir("base_b");
  for (const fs::path& dir : {dir_a, dir_b}) {
    auto store = open_store(dir);
    store->begin(1, 3, 0);
    store->add(1, make_slice(0, {{10, 1}, {11, 2}}, false, 100));
    store->add(1, make_slice(1, {{12, 3}}, false, 200));
    store->commit(1);
  }
  const fs::path file = dir_a / "epoch-00000000000000000001.base";
  ASSERT_TRUE(fs::exists(file));
  const std::string bytes = read_file(file);
  EXPECT_FALSE(bytes.empty());
  // Same slices, same bytes — the framing has no timestamps or iteration
  // nondeterminism anywhere.
  EXPECT_EQ(dir_contents(dir_a), dir_contents(dir_b));

  // A fresh store on the same directory recovers the committed epoch.
  auto reopened = open_store(dir_a);
  EXPECT_EQ(reopened->last_committed_epoch(), 1u);
  const ckpt::Checkpoint snap = reopened->last_committed();
  EXPECT_TRUE(snap.committed);
  EXPECT_EQ(snap.active_servers, 3u);
  ASSERT_EQ(snap.pois.size(), 2u);
  EXPECT_EQ(counts_of(snap.pois.at(0)),
            (std::map<Key, std::uint64_t>{{10, 1}, {11, 2}}));
  EXPECT_EQ(snap.pois.at(0).in_cursors,
            (std::vector<std::pair<std::uint64_t, std::uint64_t>>{{0, 100}}));
  EXPECT_EQ(snap.pois.at(1).out_cursors,
            (std::vector<std::pair<std::uint64_t, std::uint64_t>>{{1, 200}}));
}

TEST(DurableStore, DeltaEpochsFoldOntoTheBaseInMemoryAndOnDisk) {
  const fs::path dir = fresh_dir("delta_fold");
  {
    auto store = open_store(dir);
    store->begin(1, 2, 0);
    EXPECT_FALSE(store->epoch_is_delta(1));  // first epoch: always full
    store->add(1, make_slice(0, {{10, 5}, {11, 6}}, false, 10));
    store->commit(1);

    store->begin(2, 2, 0);
    EXPECT_TRUE(store->epoch_is_delta(2));  // chained onto epoch 1
    // Only key 11 changed since the cut; cursors are always complete.
    store->add(2, make_slice(0, {{11, 9}}, true, 20));
    store->commit(2);

    // The committed in-memory view is the folded full state.
    const ckpt::Checkpoint folded = store->last_committed();
    EXPECT_EQ(folded.epoch, 2u);
    EXPECT_EQ(counts_of(folded.pois.at(0)),
              (std::map<Key, std::uint64_t>{{10, 5}, {11, 9}}));
    EXPECT_FALSE(folded.pois.at(0).delta);
    EXPECT_EQ(folded.pois.at(0).in_cursors,
              (std::vector<std::pair<std::uint64_t, std::uint64_t>>{{0, 20}}));
    // Raw capture (what the barrier round moved) is just the delta.
    EXPECT_EQ(store->last_committed_meta().captured_states, 1u);
    EXPECT_EQ(store->last_committed_meta().total_states, 2u);
    EXPECT_EQ(store->delta_depth(), 1u);
  }
  EXPECT_TRUE(fs::exists(dir / "epoch-00000000000000000001.base"));
  EXPECT_TRUE(fs::exists(dir / "epoch-00000000000000000002.delta"));
  // The delta file carries one state instead of two: strictly smaller.
  EXPECT_LT(fs::file_size(dir / "epoch-00000000000000000002.delta"),
            fs::file_size(dir / "epoch-00000000000000000001.base"));

  // Reopening folds base + delta to the same state.
  auto reopened = open_store(dir);
  EXPECT_EQ(reopened->last_committed_epoch(), 2u);
  EXPECT_EQ(counts_of(reopened->last_committed().pois.at(0)),
            (std::map<Key, std::uint64_t>{{10, 5}, {11, 9}}));
  EXPECT_EQ(reopened->delta_depth(), 1u);
}

TEST(DurableStore, PlanVersionChangeForcesAFullEpoch) {
  const fs::path dir = fresh_dir("plan_forces_full");
  auto store = open_store(dir);
  store->begin(1, 2, /*plan_version=*/0);
  store->add(1, make_slice(0, {{10, 1}}));
  store->commit(1);
  // Same plan version: delta.  A wave bumped it: full (keys may have moved,
  // and folding across the wave could resurrect one on its old owner).
  store->begin(2, 2, /*plan_version=*/1);
  EXPECT_FALSE(store->epoch_is_delta(2));
  store->add(2, make_slice(0, {{10, 2}}));
  store->commit(2);
  EXPECT_TRUE(fs::exists(dir / "epoch-00000000000000000002.base"));
  // The full epoch superseded everything before it.
  EXPECT_FALSE(fs::exists(dir / "epoch-00000000000000000001.base"));
  store->begin(3, 2, /*plan_version=*/1);
  EXPECT_TRUE(store->epoch_is_delta(3));
}

TEST(DurableStore, CompactionFoldsTheChainIntoANewBase) {
  const fs::path dir_a = fresh_dir("compact_a");
  const fs::path dir_b = fresh_dir("compact_b");
  ckpt::DurableStoreOptions opts;
  opts.compact_every = 2;
  for (const fs::path& dir : {dir_a, dir_b}) {
    auto store = open_store(dir, opts);
    store->begin(1, 2, 0);
    store->add(1, make_slice(0, {{10, 1}, {11, 1}}, false, 1));
    store->commit(1);
    store->begin(2, 2, 0);
    store->add(2, make_slice(0, {{10, 2}}, true, 2));
    store->commit(2);
    EXPECT_EQ(store->delta_depth(), 1u);
    // Second delta commit hits compact_every=2: written as a folded base.
    store->begin(3, 2, 0);
    store->add(3, make_slice(0, {{11, 3}}, true, 3));
    store->commit(3);
    EXPECT_EQ(store->compactions(), 1u);
    EXPECT_EQ(store->delta_depth(), 0u);
  }
  // Exactly one file remains: the compacted base.
  EXPECT_EQ(dir_contents(dir_a).size(), 1u);
  EXPECT_TRUE(fs::exists(dir_a / "epoch-00000000000000000003.base"));
  EXPECT_EQ(dir_contents(dir_a), dir_contents(dir_b));

  auto reopened = open_store(dir_a);
  EXPECT_EQ(reopened->last_committed_epoch(), 3u);
  EXPECT_EQ(counts_of(reopened->last_committed().pois.at(0)),
            (std::map<Key, std::uint64_t>{{10, 2}, {11, 3}}));
  EXPECT_EQ(reopened->last_committed().pois.at(0).in_cursors,
            (std::vector<std::pair<std::uint64_t, std::uint64_t>>{{0, 3}}));
}

// --- torn writes and io errors -----------------------------------------------

TEST(DurableStore, TornOrCorruptTailFallsBackToThePreviousEpoch) {
  const fs::path dir = fresh_dir("torn_tail");
  {
    auto store = open_store(dir);
    store->begin(1, 2, 0);
    store->add(1, make_slice(0, {{10, 1}}));
    store->commit(1);
    store->begin(2, 2, 0);
    store->add(2, make_slice(0, {{10, 2}}, true));
    store->commit(2);
    store->begin(3, 2, 0);
    store->add(3, make_slice(0, {{10, 3}}, true));
    store->commit(3);
  }
  const fs::path base = dir / "epoch-00000000000000000001.base";
  const fs::path d2 = dir / "epoch-00000000000000000002.delta";
  const fs::path d3 = dir / "epoch-00000000000000000003.delta";
  ASSERT_TRUE(fs::exists(d3));

  // A stray .tmp (a crash between write and rename) is ignored.
  std::ofstream(dir / "epoch-00000000000000000004.base.tmp") << "partial";
  // Torn tail: truncate the newest delta — the chain ends at epoch 2.
  fs::resize_file(d3, fs::file_size(d3) / 2);
  {
    auto reopened = open_store(dir);
    EXPECT_EQ(reopened->last_committed_epoch(), 2u);
    EXPECT_EQ(counts_of(reopened->last_committed().pois.at(0)),
              (std::map<Key, std::uint64_t>{{10, 2}}));
  }
  // A flipped byte mid-file fails the checksum the same way; a gap in the
  // middle of the delta run cuts everything after it.
  {
    std::fstream f(d2, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(d2) / 2));
    f.put('\x5a');
  }
  {
    auto reopened = open_store(dir);
    EXPECT_EQ(reopened->last_committed_epoch(), 1u);
    EXPECT_EQ(counts_of(reopened->last_committed().pois.at(0)),
              (std::map<Key, std::uint64_t>{{10, 1}}));
  }
  // Corrupt base too: nothing intact, the store opens fresh.
  fs::resize_file(base, 3);
  {
    auto reopened = open_store(dir);
    EXPECT_EQ(reopened->last_committed_epoch(), 0u);
  }
}

TEST(DurableStore, InjectedIoErrorsNeverCorruptTheCommittedChain) {
  const fs::path dir = fresh_dir("io_error");
  FaultPlan fplan(4040);
  fplan.set(FaultSite::kCkptIoError, {.rate = 0.5});
  obs::Registry registry;
  chaos::Injector inj(fplan, &registry);
  // The folded view the engine would see at each epoch, tracked shadow-side.
  std::map<Key, std::uint64_t> folded;
  std::map<std::uint64_t, std::map<Key, std::uint64_t>> at_epoch;
  std::uint64_t io_errors = 0;
  {
    ckpt::DurableStoreOptions opts;
    opts.dir = dir.string();
    opts.registry = &registry;
    opts.injector = &inj;
    auto store = std::make_unique<ckpt::DurableCheckpointStore>(opts);
    for (std::uint64_t epoch = 1; epoch <= 8; ++epoch) {
      store->begin(epoch, 2, 0);
      const bool delta = store->epoch_is_delta(epoch);
      const Key key = 10 + (epoch % 3);
      if (delta) {
        store->add(epoch, make_slice(0, {{key, epoch}}, true, epoch));
        folded[key] = epoch;
      } else {
        folded[key] = epoch;
        std::vector<std::pair<Key, std::uint64_t>> all(folded.begin(),
                                                       folded.end());
        store->add(epoch, make_slice(0, all, false, epoch));
      }
      store->commit(epoch);
      at_epoch[epoch] = folded;
      // Whatever the disk fate, the committed in-memory view is the fold.
      EXPECT_EQ(counts_of(store->last_committed().pois.at(0)), folded);
    }
    io_errors = store->io_errors();
    EXPECT_GT(io_errors, 0u);  // seed 4040 at rate 0.5 fires within 8 writes
    EXPECT_GT(inj.fired(FaultSite::kCkptIoError), 0u);
  }
  // No temp debris, and every surviving file is a valid chain prefix: the
  // reopened state must equal the shadow fold at the recovered epoch.
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension() == ".tmp", false) << entry.path();
  }
  auto reopened = open_store(dir);
  const std::uint64_t tip = reopened->last_committed_epoch();
  ASSERT_GT(tip, 0u);
  EXPECT_LE(tip, 8u);
  EXPECT_EQ(counts_of(reopened->last_committed().pois.at(0)), at_epoch[tip]);
  // Metric families registered (the io-error counter only because it fired).
  const std::string prom = obs::to_prometheus(registry);
  EXPECT_NE(prom.find("lar_ckpt_bytes_written_total"), std::string::npos);
  EXPECT_NE(prom.find("lar_ckpt_io_errors_total"), std::string::npos);
  EXPECT_EQ(chaos::to_string(FaultSite::kCkptIoError),
            std::string("ckpt_io_error"));
}

// --- engine fixtures (mirrors test_ckpt.cpp) ---------------------------------

runtime::OperatorFactory counting_factory() {
  return [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
    if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
    return std::make_unique<runtime::CountingOperator>(op == 1 ? 0 : 1);
  };
}

runtime::CountingOperator& counter_at(runtime::Engine& engine, OperatorId op,
                                      InstanceIndex i) {
  return static_cast<runtime::CountingOperator&>(engine.operator_at(op, i));
}

struct GroundTruth {
  sketch::ExactCounter<Key> field0;
  sketch::ExactCounter<Key> field1;
};

/// The driver's replayable input: the whole stream generated up front, so a
/// cold-restarted engine can re-inject stream[restored_inject_offset()..] —
/// the Kafka-offset contract.
std::vector<Tuple> make_stream(int n, std::uint64_t seed, GroundTruth* truth) {
  workload::SyntheticGenerator gen(
      {.num_values = 60, .locality = 0.8, .padding = 0, .seed = seed});
  std::vector<Tuple> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Tuple t = gen.next();
    if (truth != nullptr) {
      truth->field0.add(t.fields[0]);
      truth->field1.add(t.fields[1]);
    }
    out.push_back(std::move(t));
  }
  return out;
}

void replay(runtime::Engine& engine, const std::vector<Tuple>& stream,
            std::size_t from, std::size_t to) {
  for (std::size_t i = from; i < to; ++i) engine.inject(Tuple{stream[i]});
}

void expect_counts_match(runtime::Engine& engine, OperatorId op,
                         std::uint32_t par,
                         const sketch::ExactCounter<Key>& truth) {
  for (const auto& entry : truth.entries()) {
    std::uint64_t sum = 0;
    int holders = 0;
    for (InstanceIndex i = 0; i < par; ++i) {
      const std::uint64_t c = counter_at(engine, op, i).count(entry.key);
      sum += c;
      holders += (c > 0);
    }
    ASSERT_EQ(sum, entry.count) << "op " << op << " key " << entry.key;
    ASSERT_EQ(holders, 1) << "op " << op << " key " << entry.key
                          << " split across instances";
  }
}

// --- cold restart ------------------------------------------------------------

// The tentpole identity: kill the process after the last durable cut, start
// a brand-new Engine on the store directory, replay the stream from
// restored_inject_offset() — per-key counts equal ground truth exactly,
// with chaos duplicating and delaying channel traffic in both lives.
TEST(DurableEngine, ColdRestartIsExactlyOnceUnderChaosDupDelay) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  const fs::path dir = fresh_dir("cold_restart_chaos");
  GroundTruth truth;
  const std::vector<Tuple> stream = make_stream(15'000, 65, &truth);
  FaultPlan fplan(909);
  fplan.set(FaultSite::kChannelDuplicate, {.rate = 0.02});
  fplan.set(FaultSite::kChannelDelay, {.rate = 0.02});
  {
    chaos::Injector inj(fplan);
    ckpt::CheckpointCoordinator coord(open_store(dir));
    runtime::Engine engine(topo, place, counting_factory(),
                           {.fields_mode = FieldsRouting::kTable,
                            .injector = &inj,
                            .checkpoint = &coord});
    engine.start();
    EXPECT_EQ(engine.restored_inject_offset(), 0u);
    replay(engine, stream, 0, 10'000);
    engine.flush();
    EXPECT_EQ(engine.checkpoint(), 1u);
    // Everything after the cut dies with the process.
    replay(engine, stream, 10'000, 15'000);
    engine.flush();
    engine.shutdown();
  }
  {
    chaos::Injector inj(fplan);
    ckpt::CheckpointCoordinator coord(open_store(dir));
    runtime::Engine engine(topo, place, counting_factory(),
                           {.fields_mode = FieldsRouting::kTable,
                            .injector = &inj,
                            .checkpoint = &coord});
    engine.start();
    EXPECT_EQ(engine.restored_inject_offset(), 10'000u);
    EXPECT_GT(engine.metrics().states_restored, 0u);
    replay(engine, stream, engine.restored_inject_offset(), stream.size());
    engine.flush();
    expect_counts_match(engine, 1, n, truth.field0);
    expect_counts_match(engine, 2, n, truth.field1);
    // Cold restart composes with in-process crash recovery: epoch numbering
    // resumed from the store, so the next cut is epoch 2.
    EXPECT_EQ(engine.checkpoint(), 2u);
    engine.crash_and_recover(1);
    engine.flush();
    expect_counts_match(engine, 1, n, truth.field0);
    expect_counts_match(engine, 2, n, truth.field1);
    engine.shutdown();
  }
}

// Cold restart across a reconfiguration wave and an elastic resize: the new
// Engine restores the deployed routing tables and the widened active set
// from the chain's base file (the manager restores from its own snapshot,
// the paper's stable-storage rule) and the fleet keeps resizing afterwards.
TEST(DurableEngine, ColdRestartRestoresWavesAndTheElasticFleet) {
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  const fs::path dir = fresh_dir("cold_restart_elastic");
  GroundTruth truth;
  const std::vector<Tuple> stream = make_stream(15'000, 66, &truth);
  core::ManagerOptions mopts;
  {
    ckpt::CheckpointCoordinator coord(open_store(dir));
    runtime::Engine engine(topo, place, counting_factory(),
                           {.fields_mode = FieldsRouting::kTable,
                            .checkpoint = &coord,
                            .active_servers = 2});
    engine.start();
    mopts.snapshot_path = (dir / "manager.plan").string();
    core::Manager mgr(topo, place, mopts);
    replay(engine, stream, 0, 6'000);
    engine.flush();
    engine.reconfigure(mgr);   // wave + auto-checkpoint
    engine.add_servers(mgr, 4);  // resize + auto-checkpoint
    replay(engine, stream, 6'000, 12'000);
    engine.flush();
    engine.checkpoint();
    engine.shutdown();
  }
  {
    ckpt::CheckpointCoordinator coord(open_store(dir));
    runtime::Engine engine(topo, place, counting_factory(),
                           {.fields_mode = FieldsRouting::kTable,
                            .checkpoint = &coord,
                            .active_servers = 2});
    engine.start();
    // The epoch is the truth, not EngineOptions: the fleet comes back at 4.
    EXPECT_EQ(engine.active_servers(), 4u);
    EXPECT_EQ(engine.restored_inject_offset(), 12'000u);
    core::Manager mgr(topo, place, mopts);
    ASSERT_TRUE(mgr.restore_from_snapshot().is_ok());
    replay(engine, stream, 12'000, stream.size());
    engine.flush();
    expect_counts_match(engine, 1, n, truth.field0);
    expect_counts_match(engine, 2, n, truth.field1);
    // Elasticity survives the restart: retire a server through the restored
    // manager, then verify nothing was lost in the migration.
    engine.retire_servers(mgr, 3);
    EXPECT_EQ(engine.active_servers(), 3u);
    engine.flush();
    expect_counts_match(engine, 1, n, truth.field0);
    expect_counts_match(engine, 2, n, truth.field1);
    engine.shutdown();
  }
}

// --- incremental epochs ------------------------------------------------------

// Delta epochs capture only the keys dirtied since the previous cut — a
// narrow post-checkpoint write burst produces a tiny delta slice over a
// large resident state, the delta chain survives a process restart, and
// cold restore folds it back exactly.
TEST(DurableEngine, IncrementalEpochsCaptureOnlyDirtyKeys) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  const fs::path dir = fresh_dir("dirty_keys");
  GroundTruth truth;
  const std::vector<Tuple> stream = make_stream(5'000, 67, &truth);
  auto hot_tuple = [] { return Tuple{{7, 9}, 0}; };
  {
    ckpt::CheckpointCoordinator coord(open_store(dir));
    runtime::Engine engine(topo, place, counting_factory(),
                           {.fields_mode = FieldsRouting::kTable,
                            .checkpoint = &coord});
    engine.start();
    replay(engine, stream, 0, stream.size());
    engine.flush();
    EXPECT_EQ(engine.checkpoint(), 1u);  // full base
    // Touch exactly one key per counting stage, then cut again.
    for (int i = 0; i < 100; ++i) {
      truth.field0.add(7);
      truth.field1.add(9);
      engine.inject(hot_tuple());
    }
    engine.flush();
    EXPECT_EQ(engine.checkpoint(), 2u);  // delta epoch
    const ckpt::CheckpointMeta meta = coord.store().last_committed_meta();
    EXPECT_EQ(meta.epoch, 2u);
    // Two dirtied keys -> two captured states; the folded epoch holds the
    // whole resident keyspace.
    EXPECT_LE(meta.captured_states, 4u);
    EXPECT_GT(meta.total_states, 100u);
    engine.shutdown();
  }
  ASSERT_TRUE(fs::exists(dir / "epoch-00000000000000000002.delta"));
  // The delta file skips the resident state (two keys instead of ~120); the
  // per-POI cursor framing is shared by both files, so well under half.
  EXPECT_LT(fs::file_size(dir / "epoch-00000000000000000002.delta"),
            fs::file_size(dir / "epoch-00000000000000000001.base") / 2);
  {
    ckpt::CheckpointCoordinator coord(open_store(dir));
    runtime::Engine engine(topo, place, counting_factory(),
                           {.fields_mode = FieldsRouting::kTable,
                            .checkpoint = &coord});
    engine.start();
    EXPECT_EQ(engine.restored_inject_offset(), 5'100u);
    engine.flush();
    expect_counts_match(engine, 1, n, truth.field0);
    expect_counts_match(engine, 2, n, truth.field1);
    // The chain keeps extending across the restart: same plan version, so
    // the next epoch is again a delta.
    for (int i = 0; i < 50; ++i) {
      truth.field0.add(7);
      truth.field1.add(9);
      engine.inject(hot_tuple());
    }
    engine.flush();
    EXPECT_EQ(engine.checkpoint(), 3u);
    EXPECT_LE(coord.store().last_committed_meta().captured_states, 4u);
    expect_counts_match(engine, 1, n, truth.field0);
    engine.shutdown();
  }
}

// Same seed, same script -> byte-identical store directories (the in-test
// twin of scripts/check.sh's durable-ablation double-run diff).
TEST(DurableEngine, SameSeedRunsWriteByteIdenticalStores) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  const fs::path dir_a = fresh_dir("identical_a");
  const fs::path dir_b = fresh_dir("identical_b");
  for (const fs::path& dir : {dir_a, dir_b}) {
    GroundTruth truth;
    const std::vector<Tuple> stream = make_stream(9'000, 68, &truth);
    ckpt::CheckpointCoordinator coord(open_store(dir));
    runtime::Engine engine(topo, place, counting_factory(),
                           {.fields_mode = FieldsRouting::kTable,
                            .checkpoint = &coord});
    engine.start();
    core::Manager mgr(topo, place, {});
    replay(engine, stream, 0, 6'000);
    engine.flush();
    engine.checkpoint();
    engine.reconfigure(mgr);  // plan bytes land in the post-wave base file
    replay(engine, stream, 6'000, 9'000);
    engine.flush();
    engine.checkpoint();
    engine.shutdown();
  }
  const auto contents = dir_contents(dir_a);
  EXPECT_GE(contents.size(), 2u);  // post-wave base + trailing delta
  EXPECT_EQ(contents, dir_contents(dir_b));
}

// --- incremental x hot-key splitting -----------------------------------------

/// Zipf-keyed single-field tuples (local copy of test_split's generator).
class ZipfGenerator final : public workload::TupleGenerator {
 public:
  ZipfGenerator(std::size_t n, double s, std::uint64_t seed)
      : zipf_(n, s), rng_(seed) {}
  [[nodiscard]] Tuple next() override {
    return Tuple{{static_cast<Key>(zipf_.sample(rng_))}, 0};
  }

 private:
  sketch::ZipfSampler zipf_;
  Rng rng_;
};

Topology make_split_topology(std::uint32_t n) {
  Topology t;
  const OperatorId s = t.add_operator({.name = "S",
                                       .parallelism = n,
                                       .stateful = false,
                                       .is_source = true,
                                       .cpu_cost_per_tuple = 0.05});
  const OperatorId partial =
      t.add_operator({.name = "partial", .parallelism = n, .stateful = true});
  const OperatorId merge =
      t.add_operator({.name = "merge", .parallelism = n, .stateful = true});
  t.connect(s, partial, GroupingType::kFields, /*key_field=*/0);
  t.connect(partial, merge, GroupingType::kFields, /*key_field=*/0);
  LAR_CHECK(t.validate().is_ok());
  return t;
}

runtime::OperatorFactory split_factory() {
  return [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
    if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
    if (op == 1) return std::make_unique<runtime::PartialCountOperator>(0);
    return std::make_unique<runtime::MergeCountOperator>(0, 1);
  };
}

// Incremental and full durable stores agree byte-for-state across waves
// that split the Zipf head and then converge it back (degree increase and
// decrease both force full epochs — the plan version changed); the deltas
// in between fold exactly, verified by a cold restart in each mode.
TEST(DurableEngine, IncrementalAndFullAgreeAcrossDegreeChangingWaves) {
  const std::uint32_t n = 3;
  const Topology topo = make_split_topology(n);
  const Placement place = Placement::round_robin(topo, n);

  // (instance, key) -> count at both stages after the cold restart.
  using StateMap = std::map<std::pair<InstanceIndex, Key>, std::uint64_t>;
  auto run_mode = [&](bool incremental,
                      const fs::path& dir) -> std::pair<StateMap, StateMap> {
    sketch::ExactCounter<Key> truth;
    std::vector<Tuple> stream;
    // Skewed head window (splits), then a near-uniform window (the next
    // wave converges the replicas), then a short tail.
    ZipfGenerator skewed(40, 1.5, 71);
    ZipfGenerator uniform(40, 0.1, 72);
    for (int i = 0; i < 12'000; ++i) stream.push_back(skewed.next());
    for (int i = 0; i < 3'000; ++i) stream.push_back(uniform.next());
    for (int i = 0; i < 2'000; ++i) stream.push_back(skewed.next());
    for (const Tuple& t : stream) truth.add(t.fields[0]);

    core::ManagerOptions mopts;
    mopts.split.max_degree = 3;
    ckpt::DurableStoreOptions sopts;
    sopts.incremental = incremental;
    std::uint64_t keys_split = 0;
    {
      ckpt::CheckpointCoordinator coord(open_store(dir, sopts));
      runtime::Engine engine(topo, place, split_factory(),
                             {.fields_mode = FieldsRouting::kTable,
                              .checkpoint = &coord});
      engine.start();
      core::Manager mgr(topo, place, mopts);
      replay(engine, stream, 0, 12'000);
      engine.flush();
      keys_split = engine.reconfigure(mgr).keys_split;  // split + auto-ckpt
      replay(engine, stream, 12'000, 15'000);
      engine.flush();
      engine.checkpoint();       // delta in incremental mode
      engine.reconfigure(mgr);   // degree-decreasing wave, full again
      replay(engine, stream, 15'000, 17'000);
      engine.flush();
      engine.checkpoint();
      engine.shutdown();
    }
    EXPECT_GT(keys_split, 0u);  // the head really ran split

    ckpt::CheckpointCoordinator coord(open_store(dir, sopts));
    runtime::Engine engine(topo, place, split_factory(),
                           {.fields_mode = FieldsRouting::kTable,
                            .checkpoint = &coord});
    engine.start();
    EXPECT_EQ(engine.restored_inject_offset(), stream.size());
    engine.flush();
    StateMap partials;
    StateMap totals;
    std::uint64_t merged_sum = 0;
    for (const auto& entry : truth.entries()) {
      std::uint64_t merged = 0;
      for (InstanceIndex i = 0; i < n; ++i) {
        const auto p = static_cast<runtime::PartialCountOperator&>(
                           engine.operator_at(1, i))
                           .partial(entry.key);
        const auto t = static_cast<runtime::MergeCountOperator&>(
                           engine.operator_at(2, i))
                           .total(entry.key);
        if (p > 0) partials[{i, entry.key}] = p;
        if (t > 0) totals[{i, entry.key}] = t;
        merged += t;
      }
      // Exactly-once through splitting, both waves, and the cold restart.
      EXPECT_EQ(merged, entry.count) << "key " << entry.key;
      merged_sum += merged;
    }
    EXPECT_EQ(merged_sum, stream.size());
    engine.shutdown();
    return {std::move(partials), std::move(totals)};
  };

  const auto inc = run_mode(true, fresh_dir("degree_inc"));
  const auto full = run_mode(false, fresh_dir("degree_full"));
  // Snapshot mode is invisible to routing and state: both restarts land on
  // identical per-instance partials and merged totals.
  EXPECT_EQ(inc.first, full.first);
  EXPECT_EQ(inc.second, full.second);
}

}  // namespace
}  // namespace lar
