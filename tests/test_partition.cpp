// Unit and property tests for the multilevel graph partitioner.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "partition/coarsen.hpp"
#include "partition/graph.hpp"
#include "partition/initial.hpp"
#include "partition/partitioner.hpp"
#include "partition/quality.hpp"
#include "partition/refine.hpp"

namespace lar::partition {
namespace {

/// Two dense clusters of `half` vertices each, connected internally with
/// weight `strong` and across with weight `weak`: the planted bisection any
/// decent partitioner must recover.
Graph two_clusters(std::size_t half, std::uint64_t strong, std::uint64_t weak) {
  GraphBuilder b;
  for (std::size_t i = 0; i < 2 * half; ++i) b.add_vertex(1);
  for (std::size_t c = 0; c < 2; ++c) {
    const auto base = static_cast<VertexId>(c * half);
    for (std::size_t i = 0; i < half; ++i) {
      for (std::size_t j = i + 1; j < half; ++j) {
        b.add_edge(base + static_cast<VertexId>(i),
                   base + static_cast<VertexId>(j), strong);
      }
    }
  }
  for (std::size_t i = 0; i < half; ++i) {
    b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(half + i), weak);
  }
  return b.build();
}

Graph random_graph(std::size_t n, std::size_t edges, std::uint64_t seed) {
  GraphBuilder b;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) b.add_vertex(1 + rng.below(5));
  for (std::size_t e = 0; e < edges; ++e) {
    const auto a = static_cast<VertexId>(rng.below(n));
    auto c = static_cast<VertexId>(rng.below(n));
    if (a == c) c = static_cast<VertexId>((c + 1) % n);
    b.add_edge(a, c, 1 + rng.below(10));
  }
  return b.build();
}

// --- GraphBuilder / Graph ----------------------------------------------------

TEST(GraphBuilder, BasicCsrLayout) {
  GraphBuilder b;
  const VertexId v0 = b.add_vertex(3);
  const VertexId v1 = b.add_vertex(5);
  const VertexId v2 = b.add_vertex(7);
  b.add_edge(v0, v1, 10);
  b.add_edge(v1, v2, 20);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.total_vertex_weight(), 15u);
  EXPECT_EQ(g.total_edge_weight(), 30u);
  EXPECT_EQ(g.degree(v1), 2u);
  EXPECT_EQ(g.degree(v0), 1u);
  EXPECT_EQ(g.neighbors(v0)[0], v1);
  EXPECT_EQ(g.neighbor_weights(v0)[0], 10u);
}

TEST(GraphBuilder, ParallelEdgesMerge) {
  GraphBuilder b;
  b.add_vertex(1);
  b.add_vertex(1);
  b.add_edge(0, 1, 4);
  b.add_edge(1, 0, 6);  // same undirected edge, reversed
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.neighbor_weights(0)[0], 10u);
  EXPECT_EQ(g.total_edge_weight(), 10u);
}

TEST(GraphBuilder, AddVertexWeight) {
  GraphBuilder b;
  const VertexId v = b.add_vertex(1);
  b.add_vertex_weight(v, 9);
  const Graph g = b.build();
  EXPECT_EQ(g.vertex_weight(v), 10u);
}

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder b;
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilder, IsolatedVertices) {
  GraphBuilder b;
  b.add_vertex(2);
  b.add_vertex(3);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
}

// --- quality ------------------------------------------------------------------

TEST(Quality, EdgeCutCountsCrossEdgesOnce) {
  const Graph g = two_clusters(3, 5, 2);
  std::vector<std::uint32_t> planted(6);
  for (std::size_t i = 0; i < 6; ++i) planted[i] = i < 3 ? 0 : 1;
  EXPECT_EQ(edge_cut(g, planted), 3u * 2u);  // the 3 weak bridges
  const std::vector<std::uint32_t> all_same(6, 0);
  EXPECT_EQ(edge_cut(g, all_same), 0u);
}

TEST(Quality, PartWeightsAndImbalance) {
  GraphBuilder b;
  b.add_vertex(10);
  b.add_vertex(20);
  b.add_vertex(30);
  const Graph g = b.build();
  const std::vector<std::uint32_t> assign{0, 0, 1};
  const auto w = part_weights(g, assign, 2);
  EXPECT_EQ(w[0], 30u);
  EXPECT_EQ(w[1], 30u);
  EXPECT_DOUBLE_EQ(partition_imbalance(g, assign, 2), 1.0);
  const std::vector<std::uint32_t> skewed{0, 1, 1};
  EXPECT_DOUBLE_EQ(partition_imbalance(g, skewed, 2), 50.0 / 30.0);
}

// --- coarsening ----------------------------------------------------------------

TEST(Coarsen, PreservesTotalVertexWeight) {
  const Graph g = random_graph(200, 600, 1);
  Rng rng(2);
  const CoarseLevel lvl = coarsen_once(g, rng);
  EXPECT_EQ(lvl.graph.total_vertex_weight(), g.total_vertex_weight());
}

TEST(Coarsen, ShrinksTheGraph) {
  const Graph g = random_graph(200, 600, 3);
  Rng rng(4);
  const CoarseLevel lvl = coarsen_once(g, rng);
  EXPECT_LT(lvl.graph.num_vertices(), g.num_vertices());
  // Heavy-edge matching halves a well-connected graph almost perfectly.
  EXPECT_LE(lvl.graph.num_vertices(), g.num_vertices() * 3 / 4);
}

TEST(Coarsen, MappingIsOntoAndValid) {
  const Graph g = random_graph(100, 300, 5);
  Rng rng(6);
  const CoarseLevel lvl = coarsen_once(g, rng);
  ASSERT_EQ(lvl.fine_to_coarse.size(), g.num_vertices());
  std::vector<bool> hit(lvl.graph.num_vertices(), false);
  for (const VertexId c : lvl.fine_to_coarse) {
    ASSERT_LT(c, lvl.graph.num_vertices());
    hit[c] = true;
  }
  for (const bool h : hit) EXPECT_TRUE(h);
}

TEST(Coarsen, CutIsPreservedUnderProjection) {
  // Any coarse partition, projected to the fine graph, has the same cut:
  // matched pairs stay together, and edge weights are merged, not lost.
  const Graph g = random_graph(120, 400, 7);
  Rng rng(8);
  const CoarseLevel lvl = coarsen_once(g, rng);
  std::vector<std::uint8_t> coarse_side(lvl.graph.num_vertices());
  Rng rng2(9);
  for (auto& s : coarse_side) s = static_cast<std::uint8_t>(rng2.below(2));
  std::vector<std::uint8_t> fine_side(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    fine_side[v] = coarse_side[lvl.fine_to_coarse[v]];
  }
  EXPECT_EQ(bisection_cut(lvl.graph, coarse_side),
            bisection_cut(g, fine_side));
}

TEST(Coarsen, SingletonGraph) {
  GraphBuilder b;
  b.add_vertex(5);
  const Graph g = b.build();
  Rng rng(1);
  const CoarseLevel lvl = coarsen_once(g, rng);
  EXPECT_EQ(lvl.graph.num_vertices(), 1u);
  EXPECT_EQ(lvl.graph.vertex_weight(0), 5u);
}

// --- initial bisection -----------------------------------------------------------

TEST(Initial, RespectsTargetRoughly) {
  const Graph g = random_graph(100, 300, 11);
  Rng rng(12);
  const std::uint64_t total = g.total_vertex_weight();
  const auto side =
      grow_bisection(g, total / 2, {total, total}, rng, /*trials=*/4);
  std::uint64_t w0 = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (side[v] == 0) w0 += g.vertex_weight(v);
  }
  EXPECT_GT(w0, total / 4);
  EXPECT_LT(w0, total * 3 / 4);
}

TEST(Initial, FindsPlantedClusters) {
  const Graph g = two_clusters(20, 10, 1);
  Rng rng(13);
  const std::uint64_t total = g.total_vertex_weight();
  const auto side = grow_bisection(g, total / 2, {total, total}, rng, 8);
  // Perfect recovery cuts exactly the 20 weak bridges.
  EXPECT_LE(bisection_cut(g, side), 20u * 1u + 10u);
}

// --- FM refinement -----------------------------------------------------------------

TEST(Refine, NeverIncreasesCut) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = random_graph(150, 500, seed);
    Rng rng(seed + 100);
    std::vector<std::uint8_t> side(g.num_vertices());
    for (auto& s : side) s = static_cast<std::uint8_t>(rng.below(2));
    const std::uint64_t before = bisection_cut(g, side);
    const std::uint64_t total = g.total_vertex_weight();
    const std::uint64_t after = fm_refine(g, side, {total, total}, 8);
    EXPECT_LE(after, before);
    EXPECT_EQ(after, bisection_cut(g, side));  // returned cut is consistent
  }
}

TEST(Refine, RepairsPerturbedPlantedPartition) {
  const Graph g = two_clusters(15, 10, 1);
  std::vector<std::uint8_t> side(30);
  for (std::size_t i = 0; i < 30; ++i) side[i] = i < 15 ? 0 : 1;
  // Perturb: move 3 vertices to the wrong side.
  side[0] = 1;
  side[1] = 1;
  side[16] = 0;
  const std::uint64_t total = g.total_vertex_weight();
  const std::uint64_t cut =
      fm_refine(g, side, {total * 6 / 10, total * 6 / 10}, 8);
  EXPECT_EQ(cut, 15u);  // back to cutting only the weak bridges
}

TEST(Refine, HonorsWeightCaps) {
  // A graph that wants to collapse into one side; caps must prevent it.
  const Graph g = two_clusters(10, 1, 5);  // cross edges heavier than intra!
  std::vector<std::uint8_t> side(20);
  for (std::size_t i = 0; i < 20; ++i) side[i] = i < 10 ? 0 : 1;
  const std::uint64_t total = g.total_vertex_weight();
  fm_refine(g, side, {total * 55 / 100, total * 55 / 100}, 8);
  std::uint64_t w0 = 0;
  for (VertexId v = 0; v < 20; ++v) {
    if (side[v] == 0) w0 += g.vertex_weight(v);
  }
  EXPECT_LE(w0, total * 55 / 100);
  EXPECT_LE(total - w0, total * 55 / 100);
}

TEST(Refine, EmptyGraphIsFine) {
  const Graph g = GraphBuilder().build();
  std::vector<std::uint8_t> side;
  EXPECT_EQ(fm_refine(g, side, {0, 0}, 4), 0u);
}

// --- full partitioner ---------------------------------------------------------------

struct KwayParam {
  std::size_t vertices;
  std::size_t edges;
  std::uint32_t parts;
};

class PartitionerProperty : public ::testing::TestWithParam<KwayParam> {};

TEST_P(PartitionerProperty, ValidBalancedAssignment) {
  const auto [n, e, k] = GetParam();
  const Graph g = random_graph(n, e, n + e + k);
  PartitionOptions opts;
  opts.num_parts = k;
  opts.alpha = 1.10;
  const PartitionResult res = partition_graph(g, opts);
  ASSERT_EQ(res.assignment.size(), n);
  for (const auto p : res.assignment) EXPECT_LT(p, k);
  EXPECT_EQ(res.edge_cut, edge_cut(g, res.assignment));
  EXPECT_LE(res.edge_cut, g.total_edge_weight());
  // Uniform-ish weights: the alpha bound must be (approximately) feasible.
  // Allow slack for integer granularity on small parts.
  const double avg = static_cast<double>(g.total_vertex_weight()) / k;
  EXPECT_LE(res.achieved_imbalance, opts.alpha + 6.0 / avg + 0.05)
      << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PartitionerProperty,
    ::testing::Values(KwayParam{50, 150, 2}, KwayParam{50, 150, 3},
                      KwayParam{200, 800, 4}, KwayParam{200, 800, 6},
                      KwayParam{1000, 4000, 6}, KwayParam{1000, 4000, 8},
                      KwayParam{3000, 12000, 5}, KwayParam{500, 1000, 7}));

TEST(Partitioner, DeterministicForFixedSeed) {
  const Graph g = random_graph(300, 1000, 21);
  PartitionOptions opts;
  opts.num_parts = 4;
  opts.seed = 77;
  const auto a = partition_graph(g, opts);
  const auto b = partition_graph(g, opts);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.edge_cut, b.edge_cut);
}

TEST(Partitioner, RecoversPlantedBisection) {
  const Graph g = two_clusters(50, 10, 1);
  PartitionOptions opts;
  opts.num_parts = 2;
  const PartitionResult res = partition_graph(g, opts);
  EXPECT_EQ(res.edge_cut, 50u);  // only the weak bridges
  EXPECT_LE(res.achieved_imbalance, 1.03 + 0.03);
}

TEST(Partitioner, SinglePartIsTrivial) {
  const Graph g = random_graph(50, 100, 31);
  PartitionOptions opts;
  opts.num_parts = 1;
  const PartitionResult res = partition_graph(g, opts);
  for (const auto p : res.assignment) EXPECT_EQ(p, 0u);
  EXPECT_EQ(res.edge_cut, 0u);
}

TEST(Partitioner, EmptyGraph) {
  const Graph g = GraphBuilder().build();
  PartitionOptions opts;
  opts.num_parts = 4;
  const PartitionResult res = partition_graph(g, opts);
  EXPECT_TRUE(res.assignment.empty());
  EXPECT_EQ(res.edge_cut, 0u);
}

TEST(Partitioner, MorePartsThanVertices) {
  GraphBuilder b;
  b.add_vertex(1);
  b.add_vertex(1);
  const Graph g = b.build();
  PartitionOptions opts;
  opts.num_parts = 5;
  const PartitionResult res = partition_graph(g, opts);
  for (const auto p : res.assignment) EXPECT_LT(p, 5u);
  EXPECT_EQ(res.edge_cut, 0u);
}

TEST(Partitioner, DisconnectedComponentsHandled) {
  GraphBuilder b;
  for (int i = 0; i < 40; ++i) b.add_vertex(1);
  // Two disjoint paths.
  for (VertexId i = 0; i + 1 < 20; ++i) b.add_edge(i, i + 1, 3);
  for (VertexId i = 20; i + 1 < 40; ++i) b.add_edge(i, i + 1, 3);
  const Graph g = b.build();
  PartitionOptions opts;
  opts.num_parts = 2;
  opts.alpha = 1.05;
  const PartitionResult res = partition_graph(g, opts);
  // Ideal: one component per part, zero cut.
  EXPECT_LE(res.edge_cut, 3u);
  EXPECT_LE(res.achieved_imbalance, 1.11);
}

TEST(Partitioner, RefinementImprovesQuality) {
  const Graph g = random_graph(600, 3000, 55);
  PartitionOptions with;
  with.num_parts = 4;
  PartitionOptions without = with;
  without.enable_refinement = false;
  const auto cut_with = partition_graph(g, with).edge_cut;
  const auto cut_without = partition_graph(g, without).edge_cut;
  EXPECT_LE(cut_with, cut_without);
}

TEST(Partitioner, SkewedVertexWeightsBestEffort) {
  // One vertex holds half the weight: alpha 1.03 with k=4 is infeasible;
  // the partitioner must still return a complete assignment and report the
  // real imbalance instead of looping or crashing.
  GraphBuilder b;
  b.add_vertex(1000);
  for (int i = 0; i < 30; ++i) b.add_vertex(10);
  for (VertexId i = 1; i < 31; ++i) b.add_edge(0, i, 1);
  const Graph g = b.build();
  PartitionOptions opts;
  opts.num_parts = 4;
  const PartitionResult res = partition_graph(g, opts);
  ASSERT_EQ(res.assignment.size(), 31u);
  EXPECT_GE(res.achieved_imbalance, 1.0);
}

}  // namespace
}  // namespace lar::partition

namespace lar::partition {
namespace {

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.add_vertex(static_cast<std::uint64_t>(i + 1));
  b.add_edge(0, 1, 10);
  b.add_edge(1, 2, 20);
  b.add_edge(2, 3, 30);
  b.add_edge(3, 4, 40);
  const Graph g = b.build();
  const Subgraph sub = induced_subgraph(g, {1, 2, 4});
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 1u);  // only 1-2 survives
  EXPECT_EQ(sub.graph.total_edge_weight(), 20u);
  EXPECT_EQ(sub.graph.vertex_weight(0), 2u);  // vertex 1's weight
  EXPECT_EQ(sub.to_parent, (std::vector<VertexId>{1, 2, 4}));
}

TEST(InducedSubgraph, EmptySelection) {
  GraphBuilder b;
  b.add_vertex(1);
  const Graph g = b.build();
  const Subgraph sub = induced_subgraph(g, {});
  EXPECT_EQ(sub.graph.num_vertices(), 0u);
}

TEST(InducedSubgraph, FullSelectionIsIsomorphic) {
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_vertex(1);
  b.add_edge(0, 1, 1);
  b.add_edge(2, 3, 2);
  const Graph g = b.build();
  const Subgraph sub = induced_subgraph(g, {0, 1, 2, 3});
  EXPECT_EQ(sub.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(sub.graph.num_edges(), g.num_edges());
  EXPECT_EQ(sub.graph.total_edge_weight(), g.total_edge_weight());
}

}  // namespace
}  // namespace lar::partition
